//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the API shape TAO's `benches/` use:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups with [`Throughput`] and [`BenchmarkId`], and `Bencher::iter`.
//!
//! Instead of upstream's statistical analysis it times `sample_size`
//! batches with `std::time::Instant` and reports min/mean/median/stddev
//! per iteration — enough to compare kernels locally; not a rigorous
//! estimator. Samples outside the Tukey fences (1.5·IQR beyond the
//! median-split quartiles, upstream's "mild outlier" rule) are rejected
//! before the statistics are computed — one preempted sample no longer
//! skews a mean — and the rejected count is reported. When the binary is
//! invoked with `--test` (as `cargo test --benches` does), each benchmark
//! body runs exactly once so benches stay cheap smoke tests.
//!
//! For figure-ready data, set `CRITERION_CSV=<path>` in the environment:
//! every benchmark appends one CSV row
//! (`id,samples,min_ns,mean_ns,median_ns,stddev_ns,throughput_unit,throughput_per_iter,outliers_rejected`)
//! to that file, creating it with a header when absent.

// The stub is gated behind the default-on `vendored-bench` feature: its
// presence in a build is an explicit, greppable opt-in. Disabling it does
// not conjure the real crate (this environment is offline) — it tells you
// exactly how to switch to it.
#[cfg(not(feature = "vendored-bench"))]
compile_error!(
    "the vendored criterion stand-in was disabled (feature `vendored-bench` off). \
     To benchmark with the real crate in a networked environment, point the \
     workspace dependency at crates.io instead: in the root Cargo.toml replace \
     `criterion = { path = \"vendor/criterion\" }` with \
     `criterion = { version = \"0.5\" }` and drop `vendor/criterion` from \
     [workspace.members]."
);

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark body; handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration (reported in binary multiples upstream).
    Bytes(u64),
    /// Bytes per iteration, decimal multiples.
    BytesDecimal(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Top-level benchmark driver; a stub of upstream's `Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `routine` as a standalone benchmark named `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        run_one(id, None, self.sample_size, self.test_mode, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `routine` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.test_mode,
            routine,
        );
        self
    }

    /// Runs `routine` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.test_mode,
            |b| routine(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the stub only closes
    /// the scope).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut routine: F,
) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        println!("test {id} ... ok (bench smoke)");
        return;
    }
    // One untimed warm-up, then `sample_size` timed single-iteration samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        routine(&mut b);
        samples.push(b.elapsed);
    }
    let stats = SampleStats::from_samples(&samples);
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                let gib = n as f64 / (1u64 << 30) as f64;
                format!("  {:.3} GiB/s", gib / stats.mean.as_secs_f64().max(1e-12))
            }
            Throughput::Elements(n) => {
                format!(
                    "  {:.3e} elem/s",
                    n as f64 / stats.mean.as_secs_f64().max(1e-12)
                )
            }
        })
        .unwrap_or_default();
    let rejected = if stats.outliers > 0 {
        format!("  ({} outliers rejected)", stats.outliers)
    } else {
        String::new()
    };
    println!(
        "bench {id:<48} min {:>10?}  mean {:>10?}  median {:>10?}  stddev {:>10?}{rate}{rejected}",
        stats.min, stats.mean, stats.median, stats.stddev
    );
    if let Ok(path) = std::env::var("CRITERION_CSV") {
        if !path.is_empty() {
            if let Err(e) = append_csv(&path, id, samples.len(), &stats, throughput) {
                eprintln!("criterion: CSV export to {path} failed: {e}");
            }
        }
    }
}

/// Per-iteration summary statistics over the timed samples, after Tukey
/// outlier rejection.
#[derive(Debug, Clone, Copy)]
struct SampleStats {
    min: Duration,
    mean: Duration,
    median: Duration,
    stddev: Duration,
    /// Samples rejected by the Tukey fences before computing the stats.
    outliers: usize,
}

/// Median of a sorted f64 slice.
fn median_sorted(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        0.0
    } else if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    }
}

/// Rejects samples outside the Tukey fences `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`
/// (quartiles by the median-split rule, the middle sample excluded on odd
/// counts). Fewer than 4 samples have no meaningful quartiles and are kept
/// verbatim. The kept samples preserve their original order.
fn tukey_keep(samples: &[Duration]) -> Vec<Duration> {
    if samples.len() < 4 {
        return samples.to_vec();
    }
    let mut sorted: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    sorted.sort_unstable_by(f64::total_cmp);
    let q1 = median_sorted(&sorted[..sorted.len() / 2]);
    let q3 = median_sorted(&sorted[sorted.len().div_ceil(2)..]);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    samples
        .iter()
        .copied()
        .filter(|d| (lo..=hi).contains(&d.as_secs_f64()))
        .collect()
}

impl SampleStats {
    fn from_samples(samples: &[Duration]) -> Self {
        let kept = tukey_keep(samples);
        let outliers = samples.len() - kept.len();
        let n = kept.len().max(1);
        let min = kept.iter().min().copied().unwrap_or_default();
        let total: Duration = kept.iter().sum();
        let mean = total / n as u32;
        let mut sorted: Vec<Duration> = kept.clone();
        sorted.sort_unstable();
        // Even counts average the two central samples, as upstream does.
        let median = if sorted.is_empty() {
            Duration::ZERO
        } else if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2
        };
        let mean_s = mean.as_secs_f64();
        let var = kept
            .iter()
            .map(|d| {
                let diff = d.as_secs_f64() - mean_s;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        let stddev = Duration::from_secs_f64(var.sqrt());
        SampleStats {
            min,
            mean,
            median,
            stddev,
            outliers,
        }
    }
}

/// Appends one benchmark row to the CSV at `path`, writing the header
/// first when the file does not exist yet.
fn append_csv(
    path: &str,
    id: &str,
    samples: usize,
    stats: &SampleStats,
    throughput: Option<Throughput>,
) -> std::io::Result<()> {
    let exists = std::path::Path::new(path).exists();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if !exists {
        writeln!(
            file,
            "id,samples,min_ns,mean_ns,median_ns,stddev_ns,throughput_unit,throughput_per_iter,outliers_rejected"
        )?;
    }
    let (unit, per_iter) = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => ("bytes", n),
        Some(Throughput::Elements(n)) => ("elements", n),
        None => ("", 0),
    };
    writeln!(
        file,
        "{},{},{},{},{},{},{},{},{}",
        // Commas in ids would shift columns; escape with semicolons.
        id.replace(',', ";"),
        samples,
        stats.min.as_nanos(),
        stats.mean.as_nanos(),
        stats.median.as_nanos(),
        stats.stddev.as_nanos(),
        unit,
        per_iter,
        stats.outliers
    )
}

/// Declares a benchmark group function, mirroring upstream's two forms:
/// `criterion_group!(name, target, ...)` and the
/// `criterion_group! { name = ...; config = ...; targets = ... }` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            calls += 1;
        });
        assert!(calls >= 1);
    }

    #[test]
    fn stats_are_exact_on_known_samples() {
        let samples = [1u64, 3, 5, 7].map(Duration::from_millis).to_vec();
        let stats = SampleStats::from_samples(&samples);
        assert_eq!(stats.min, Duration::from_millis(1));
        assert_eq!(stats.mean, Duration::from_millis(4));
        assert_eq!(stats.median, Duration::from_millis(4));
        // Population stddev of {1,3,5,7} ms = sqrt(5) ms.
        let want = 5.0f64.sqrt() * 1e-3;
        assert!((stats.stddev.as_secs_f64() - want).abs() < 1e-9);
        // {1,3,5,7} sits inside its own Tukey fences [-4 ms, 12 ms].
        assert_eq!(stats.outliers, 0);
        let one = SampleStats::from_samples(&[Duration::from_millis(2)]);
        assert_eq!(one.median, Duration::from_millis(2));
        assert_eq!(one.stddev, Duration::ZERO);
        assert_eq!(one.outliers, 0);
    }

    #[test]
    fn tukey_fences_reject_planted_outliers() {
        // One preempted (slow) sample among tight timings: sorted
        // {10,10,10,11,11,12,100} ms has Q1 = 10, Q3 = 12, IQR = 2, so the
        // fences are [7 ms, 15 ms] and 100 ms is rejected.
        let samples = [10u64, 11, 10, 12, 11, 10, 100]
            .map(Duration::from_millis)
            .to_vec();
        let stats = SampleStats::from_samples(&samples);
        assert_eq!(stats.outliers, 1);
        assert_eq!(stats.min, Duration::from_millis(10));
        // Mean over the kept {10,11,10,12,11,10} = 64/6 ms, far from the
        // naive 164/7 ≈ 23.4 ms the outlier would have produced.
        assert!((stats.mean.as_secs_f64() - 64.0 / 6.0 * 1e-3).abs() < 1e-7);
        assert_eq!(stats.median, Duration::from_micros(10_500));

        // A low outlier is rejected symmetrically: sorted
        // {1,99,100,100,101,102} ms has fences [96 ms, 104 ms].
        let samples = [100u64, 1, 99, 101, 100, 102]
            .map(Duration::from_millis)
            .to_vec();
        let stats = SampleStats::from_samples(&samples);
        assert_eq!(stats.outliers, 1);
        assert_eq!(stats.min, Duration::from_millis(99), "min is post-rejection");

        // Fewer than 4 samples: no quartiles, keep everything.
        let tiny = [1u64, 500, 1_000].map(Duration::from_millis).to_vec();
        assert_eq!(SampleStats::from_samples(&tiny).outliers, 0);
    }

    #[test]
    fn csv_export_appends_with_header() {
        let dir = std::env::temp_dir().join(format!("criterion-csv-{}", std::process::id()));
        let path = dir.join("bench.csv");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(&path);
        let stats = SampleStats::from_samples(&[Duration::from_micros(10)]);
        let p = path.to_str().unwrap();
        append_csv(p, "g/one", 1, &stats, Some(Throughput::Elements(64))).unwrap();
        append_csv(p, "g/t,wo", 1, &stats, None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("id,samples,min_ns"));
        assert!(lines[0].ends_with(",outliers_rejected"));
        assert!(lines[1].starts_with("g/one,1,10000,"));
        assert!(lines[1].ends_with(",elements,64,0"));
        assert!(
            lines[2].starts_with("g/t;wo,"),
            "comma escaped: {}",
            lines[2]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("plain", |b| b.iter(|| black_box(0)));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }
}
