//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the API shape TAO's `benches/` use:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups with [`Throughput`] and [`BenchmarkId`], and `Bencher::iter`.
//!
//! Instead of upstream's statistical analysis it times `sample_size`
//! batches with `std::time::Instant` and reports min/mean per iteration —
//! enough to compare kernels locally; not a rigorous estimator. When the
//! binary is invoked with `--test` (as `cargo test --benches` does), each
//! benchmark body runs exactly once so benches stay cheap smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark body; handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration (reported in binary multiples upstream).
    Bytes(u64),
    /// Bytes per iteration, decimal multiples.
    BytesDecimal(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Top-level benchmark driver; a stub of upstream's `Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `routine` as a standalone benchmark named `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        run_one(id, None, self.sample_size, self.test_mode, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `routine` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.test_mode,
            routine,
        );
        self
    }

    /// Runs `routine` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.test_mode,
            |b| routine(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the stub only closes
    /// the scope).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut routine: F,
) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        println!("test {id} ... ok (bench smoke)");
        return;
    }
    // One untimed warm-up, then `sample_size` timed single-iteration samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        routine(&mut b);
        samples.push(b.elapsed);
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / sample_size.max(1) as u32;
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                let gib = n as f64 / (1u64 << 30) as f64;
                format!("  {:.3} GiB/s", gib / mean.as_secs_f64().max(1e-12))
            }
            Throughput::Elements(n) => {
                format!("  {:.3e} elem/s", n as f64 / mean.as_secs_f64().max(1e-12))
            }
        })
        .unwrap_or_default();
    println!("bench {id:<48} min {:>12?}  mean {:>12?}{rate}", min, mean);
}

/// Declares a benchmark group function, mirroring upstream's two forms:
/// `criterion_group!(name, target, ...)` and the
/// `criterion_group! { name = ...; config = ...; targets = ... }` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            calls += 1;
        });
        assert!(calls >= 1);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("plain", |b| b.iter(|| black_box(0)));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }
}
