//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: [`Mutex`] and [`RwLock`] wrappers over `std::sync` that match
//! parking_lot's poison-free API (`lock()` returns the guard directly).
//!
//! A thread that panics while holding a std lock poisons it; parking_lot's
//! contract is to keep going, so these wrappers recover the inner guard on
//! poison instead of propagating the error.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
