//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`] on top of the vendored `rand` traits.
//!
//! This *is* a genuine ChaCha8 keystream generator (the full quarter-round
//! schedule, 8 rounds), but the `seed_from_u64` key-expansion uses SplitMix64
//! rather than upstream's scheme, so streams are deterministic per seed yet
//! **not** byte-identical to the real crate. TAO only relies on seeded
//! determinism, never on upstream-exact streams.

use rand::{RngCore, SeedableRng};

/// ChaCha stream cipher based generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; 16], out: &mut [u32; 16]) {
    let mut s = *input;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (o, (w, i)) in out.iter_mut().zip(s.iter().zip(input.iter())) {
        *o = w.wrapping_add(*i);
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        chacha_block(&self.state, &mut self.buf);
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let w = splitmix64(&mut sm);
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter starts at zero; nonce fixed to zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 4096;
        let ones: u32 = (0..n).map(|_| rng.next_u64().count_ones()).sum();
        let mean = ones as f64 / n as f64;
        assert!((mean - 32.0).abs() < 1.0, "bit balance off: {mean}");
    }
}
