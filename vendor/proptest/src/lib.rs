//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset of the DSL that TAO's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter` / `prop_flat_map`,
//! * range strategies (`0usize..50`, `-100.0f32..100.0`, ...) and
//!   [`strategy::Just`],
//! * [`collection::vec`] with exact or ranged sizes,
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from upstream, deliberately accepted for an offline stub:
//! cases are sampled from a deterministic per-test stream (seeded by the
//! test name, stable across runs and machines), there is **no shrinking**
//! of failing inputs, and the default case count is 64 rather than 256.

/// Runner configuration ([`ProptestConfig`](test_runner::ProptestConfig))
/// and case execution.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Deterministic sampling source handed to strategies.
pub mod rng {
    /// SplitMix64 stream; seeded per (test-name, case-index) pair.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Stream for one case of one named test.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::Range;

    /// How many draws a filter may reject before the test aborts.
    const FILTER_MAX_RETRIES: usize = 10_000;

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy here is just a deterministic sampler over a [`TestRng`].
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Rejects values failing `pred`, retrying with fresh draws.
        /// `whence` labels the filter in the abort message.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence,
                pred,
            }
        }

        /// Feeds generated values into `f` to obtain a dependent strategy,
        /// then samples from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_MAX_RETRIES {
                let v = self.source.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected {} consecutive draws",
                self.whence, FILTER_MAX_RETRIES
            );
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + draw) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }
}

/// Collection strategies ([`vec`](collection::vec)).
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let Range { start, end } = self.size.0;
            assert!(start < end, "cannot sample empty size range");
            let len = start + rng.below(end - start);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub fn __run_cases<F>(config: test_runner::ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut rng::TestRng) -> Result<(), String>,
{
    for i in 0..config.cases {
        let mut rng = rng::TestRng::for_case(name, i as u64);
        if let Err(msg) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {i}/{}: {msg}",
                config.cases
            );
        }
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `fn name(pat in strategy, ...) { .. }`
/// items carrying arbitrary attributes (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::__run_cases(config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                let __proptest_body: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __proptest_body
            });
        }
    )*};
}

/// Asserts a condition inside [`proptest!`], failing the current case (with
/// an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside [`proptest!`]; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                l, r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion inside [`proptest!`]; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: `{:?}`", l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: `{:?}`: {}",
                l, ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(n in 1usize..9, x in -2.0f64..2.0) {
            prop_assert!((1..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u64..10, 2..5)
                .prop_filter("nonempty", |v| !v.is_empty())
                .prop_map(|v| v.len()),
        ) {
            prop_assert!((2..5).contains(&v));
        }

        #[test]
        fn flat_map_binds(t in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..5, n))) {
            prop_assert!(!t.is_empty() && t.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_is_honored(s in 0u64..100) {
            prop_assert!(s < 100);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::__run_cases(
            crate::test_runner::ProptestConfig::with_cases(4),
            "always_fails",
            |_| Err("nope".into()),
        );
    }
}
