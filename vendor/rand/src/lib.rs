//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The TAO build environment is fully offline, so the workspace vendors the
//! *exact* API slice it consumes instead of pulling the real crate:
//!
//! * [`RngCore`] / [`SeedableRng`] — the generator traits,
//! * [`Rng::gen_range`] over integer and float [`Range`]s,
//! * [`Rng::gen_ratio`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic for a given seed, which is all TAO's
//! reproducibility story needs; no claim of statistical equivalence with the
//! upstream crate is made. Integer sampling uses a simple modulo reduction,
//! whose bias is negligible for the small spans used here.

use std::ops::Range;

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`] by
    /// default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be deterministically constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single seed word.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that support drawing one uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_signed_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against `start + span * unit` rounding up to `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = self.start + (self.end - self.start) * unit;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range` (half-open).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(numerator <= denominator, "gen_ratio needs p <= 1");
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::RngCore;

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place using `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let u: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f: f64 = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g: f32 = rng.gen_range(0.5f32..0.75);
            assert!((0.5..0.75).contains(&g));
        }
    }

    #[test]
    fn ratio_is_sane() {
        let mut rng = Counter(1);
        assert!((0..100).all(|_| rng.gen_ratio(1, 1)));
        assert!((0..100).map(|_| rng.gen_ratio(0, 3)).all(|b| !b));
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle should permute");
    }
}
