//! Cross-crate integration tests live under `tests/tests/*.rs`; this stub
//! only anchors the package.
