//! Integration tests for the tolerance semantics: theoretical-bound
//! soundness over whole models and empirical-threshold coverage of honest
//! heterogeneity.

use tao_bounds::{check_within_bound, BoundEngine};
use tao_calib::{calibrate, error_profile, DEFAULT_EPS};
use tao_device::{Device, Fleet};
use tao_graph::{eval_node, execute};
use tao_models::{bert, data, qwen, resnet, BertConfig, QwenConfig, ResNetConfig};
use tao_tensor::KernelConfig;

#[test]
fn theoretical_bounds_cover_every_operator_of_every_model() {
    // The soundness property at model scale: re-executing each operator on
    // any device from the reference trace's inputs stays within 2 tau.
    let models = [
        bert::build(
            BertConfig {
                layers: 1,
                ..BertConfig::small()
            },
            1,
        ),
        qwen::build(
            QwenConfig {
                layers: 1,
                ..QwenConfig::small()
            },
            1,
        ),
        resnet::build(
            ResNetConfig {
                blocks: 1,
                ..ResNetConfig::small()
            },
            1,
        ),
    ];
    let inputs: Vec<Vec<tao_tensor::Tensor<f32>>> = vec![
        vec![bert::sample_ids(BertConfig::small(), 11)],
        vec![qwen::sample_ids(QwenConfig::small(), 12)],
        vec![data::class_image(3, 16, 2, 13)],
    ];
    let engine = BoundEngine::paper_default();
    for (model, input) in models.iter().zip(&inputs) {
        let reference = execute(&model.graph, input, &KernelConfig::reference(), None).unwrap();
        let bounds = engine.co_execute(&model.graph, &reference).unwrap();
        for dev in Device::standard_fleet() {
            for node in model.graph.nodes() {
                // Re-execute this single operator from the reference trace
                // inputs under the device's kernels (operator-local check).
                let device_out =
                    eval_node(&model.graph, node, &reference.values, input, dev.config()).unwrap();
                let report = check_within_bound(
                    &device_out,
                    &reference.values[node.id.0],
                    &bounds[node.id.0],
                    2.0,
                );
                assert!(
                    report.passed,
                    "{}: node {} ({}) violates 2tau on {} ({} violations, worst {:.2})",
                    model.name,
                    node.id,
                    node.kind.mnemonic(),
                    dev.name(),
                    report.violations,
                    report.worst_ratio
                );
            }
        }
    }
}

#[test]
fn empirical_thresholds_cover_unseen_devices_pairings_and_inputs() {
    let cfg = QwenConfig {
        layers: 1,
        ..QwenConfig::small()
    };
    let model = qwen::build(cfg, 5);
    let samples = data::token_dataset(40, cfg.seq, cfg.vocab, 400);
    let record = calibrate(&model.graph, &samples, &Fleet::standard()).unwrap();
    let bundle = record.into_thresholds(3.0);
    // Fresh inputs across every ordered device pair.
    let fleet = Fleet::standard();
    for s in 0..4u64 {
        let input = vec![qwen::sample_ids(cfg, 5_000 + s)];
        let traces: Vec<_> = fleet
            .devices()
            .iter()
            .map(|d| execute(&model.graph, &input, d.config(), None).unwrap())
            .collect();
        for i in 0..traces.len() {
            for j in 0..traces.len() {
                if i == j {
                    continue;
                }
                for op in &bundle.operators {
                    let prof = error_profile(
                        &traces[i].values[op.node.0],
                        &traces[j].values[op.node.0],
                        DEFAULT_EPS,
                    );
                    let exc = bundle.exceedance(op.node, &prof).unwrap();
                    assert!(
                        exc <= 1.0,
                        "false positive at node {} ({}) pair ({i},{j}): {exc}",
                        op.node,
                        op.mnemonic
                    );
                }
            }
        }
    }
}

#[test]
fn empirical_thresholds_are_orders_tighter_than_theoretical() {
    // The Fig. 7 headline: empirical envelopes sit far below worst-case
    // theory for transformer reductions.
    let cfg = BertConfig {
        layers: 1,
        ..BertConfig::small()
    };
    let model = bert::build(cfg, 6);
    let samples = data::token_dataset(8, cfg.seq, cfg.vocab, 800);
    let record = calibrate(&model.graph, &samples, &Fleet::standard()).unwrap();
    let engine = BoundEngine::paper_default();
    let input = vec![bert::sample_ids(cfg, 31)];
    let exec = execute(&model.graph, &input, &KernelConfig::reference(), None).unwrap();
    let bounds = engine.co_execute(&model.graph, &exec).unwrap();

    let mut ratios = Vec::new();
    for (idx, &node) in record.nodes.iter().enumerate() {
        let kind = model.graph.node(node).unwrap().kind.mnemonic();
        if kind != "matmul" && kind != "linear" {
            continue;
        }
        let emp = record.envelopes[idx].abs.last().copied().unwrap_or(0.0);
        let theo = bounds[node.0].data().iter().cloned().fold(0.0f64, f64::max);
        if emp > 0.0 {
            ratios.push(theo / emp);
        }
    }
    assert!(!ratios.is_empty());
    let geo = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    // The gap grows with the reduction depth k; the paper's 1e2-1e3x holds
    // at k ~ 1024-8192, while our laptop-scale models use k ~ 32-128, so a
    // single-decade gap is the correct shape at this scale.
    assert!(geo > 3.0, "expected a multi-x tightness gap, got {geo:.1}x");
}
