//! Integration tests for the commitment loop: the trace root is bound
//! into `C0`, dispute reveals are verified against it, and a proposer
//! whose revealed digests disagree with the committed root is *detected
//! and attributed* — a tampered or stale digest cache can no longer
//! silently steer the bisection.

use tao::{deploy, Deployment};
use tao_device::{Device, Fleet};
use tao_graph::{execute, execute_observed, Perturbations};
use tao_merkle::{StreamingCommitter, TraceCommitment};
use tao_models::{bert, data, BertConfig};
use tao_protocol::{
    run_dispute, ChallengerView, DisputeConfig, DisputeOutcome, DisputeResult, ProposerView,
};
use tao_tensor::Tensor;

fn deployment() -> (Deployment, Vec<Tensor<f32>>, BertConfig) {
    let cfg = BertConfig {
        layers: 1,
        ..BertConfig::small()
    };
    let model = bert::build(cfg, 1);
    let samples = data::token_dataset(16, cfg.seq, cfg.vocab, 10);
    let d = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    let inputs = vec![bert::sample_ids(cfg, 123)];
    (d, inputs, cfg)
}

/// Runs a dispute for a proposer that perturbed mid-graph, with the given
/// commitment presented for the descent and the given root anchored into
/// the claim. The honest-commitment root comes from streaming digests
/// through the proposer's own forward pass, exactly as a real session
/// prepares `C0`.
fn dispute_with(
    d: &Deployment,
    inputs: &[Tensor<f32>],
    commitment: Option<&TraceCommitment>,
    anchor_root: Option<&tao_merkle::Digest>,
) -> DisputeOutcome {
    let graph = &d.model.graph;
    let challenger = Device::h100_like();
    let target = graph.compute_nodes()[5];
    let honest = execute(graph, inputs, Device::rtx4090_like().config(), None).unwrap();
    let shape = honest.values[target.0].dims().to_vec();
    let mut p = Perturbations::new();
    p.insert(target, Tensor::<f32>::randn(&shape, 4_242).mul_scalar(0.05));
    let trace = execute(
        graph,
        inputs,
        Device::rtx4090_like().config(),
        Some(&p),
    )
    .unwrap();
    let mut proposer = ProposerView::new(&trace);
    if let Some(c) = commitment {
        proposer = proposer.with_commitment(c);
    }
    let mut anchors = d.dispute_anchors();
    if let Some(root) = anchor_root {
        anchors = anchors.with_trace_root(root);
    }
    run_dispute(
        graph,
        anchors,
        proposer,
        inputs,
        ChallengerView::fresh(&challenger),
        &d.thresholds,
        DisputeConfig { n_way: 2 },
    )
    .unwrap()
}

/// The proposer's committed trace, streamed through the perturbed forward
/// pass (same perturbation as [`dispute_with`]).
fn streamed_commitment(d: &Deployment, inputs: &[Tensor<f32>]) -> TraceCommitment {
    let graph = &d.model.graph;
    let target = graph.compute_nodes()[5];
    let honest = execute(graph, inputs, Device::rtx4090_like().config(), None).unwrap();
    let shape = honest.values[target.0].dims().to_vec();
    let mut p = Perturbations::new();
    p.insert(target, Tensor::<f32>::randn(&shape, 4_242).mul_scalar(0.05));
    let mut committer = StreamingCommitter::new(graph.len());
    let trace = execute_observed(
        graph,
        inputs,
        Device::rtx4090_like().config(),
        Some(&p),
        &mut committer,
    )
    .unwrap();
    let commitment = committer.finish();
    // Streamed digests are bit-identical to the post-hoc oracle.
    assert_eq!(
        commitment.root(),
        TraceCommitment::build(&trace.values).root()
    );
    commitment
}

#[test]
fn honest_commitment_survives_anchored_descent() {
    let (d, inputs, _) = deployment();
    let commitment = streamed_commitment(&d, &inputs);
    let root = commitment.root();
    let unanchored = dispute_with(&d, &inputs, Some(&commitment), None);
    let anchored = dispute_with(&d, &inputs, Some(&commitment), Some(&root));
    // Anchoring changes nothing for an honest committer: same leaf, same
    // challenger cost, zero leaf rehashes — but now the reveals are
    // *verified*, not trusted.
    assert_eq!(anchored.result, unanchored.result);
    assert!(matches!(anchored.result, DisputeResult::Leaf(_)));
    assert_eq!(anchored.rehashed_leaves, 0);
    assert_eq!(anchored.challenger_flops, unanchored.challenger_flops);
    assert_eq!(unanchored.reveal_checks, 0);
    assert!(anchored.reveal_checks > 0);
}

#[test]
fn single_corrupted_digest_is_detected_and_attributed() {
    let (d, inputs, _) = deployment();
    let commitment = streamed_commitment(&d, &inputs);
    let honest_root = commitment.root();
    // The proposer plants one corrupted digest in the cache it serves
    // reveals from — the classic "steer the descent off the fraud" move.
    let mut digests = commitment.digests().to_vec();
    digests[d.model.graph.len() / 2][0] ^= 0x01;
    let tampered = TraceCommitment::from_digests(digests);
    assert_ne!(tampered.root(), honest_root);
    let outcome = dispute_with(&d, &inputs, Some(&tampered), Some(&honest_root));
    // The reveals open against the tampered tree, not the root bound into
    // C0: the descent terminates with an attributable breach at round 0
    // instead of descending on garbage.
    assert!(
        matches!(
            outcome.result,
            DisputeResult::CommitmentBreach { round: 0, .. }
        ),
        "tampered cache must be detected: {:?}",
        outcome.result
    );
    assert!(outcome.reveal_checks > 0 || outcome.rounds.len() == 1);
}

#[test]
fn stale_commitment_over_wrong_trace_is_detected() {
    let (d, inputs, cfg) = deployment();
    let commitment = streamed_commitment(&d, &inputs);
    let honest_root = commitment.root();
    // A stale cache: digests from a different request's trace entirely.
    let other_inputs = vec![bert::sample_ids(cfg, 999)];
    let stale = streamed_commitment(&d, &other_inputs);
    assert_ne!(stale.root(), honest_root);
    let outcome = dispute_with(&d, &inputs, Some(&stale), Some(&honest_root));
    assert!(
        matches!(outcome.result, DisputeResult::CommitmentBreach { .. }),
        "stale cache must be detected: {:?}",
        outcome.result
    );
}

#[test]
fn dropping_the_commitment_is_no_escape_hatch() {
    let (d, inputs, _) = deployment();
    let commitment = streamed_commitment(&d, &inputs);
    let honest_root = commitment.root();
    // Withholding the commitment produces records with no reveals; under
    // an anchored dispute that is itself a breach (missing reveal), not a
    // quiet fallback to unverified hashing.
    let outcome = dispute_with(&d, &inputs, None, Some(&honest_root));
    assert!(
        matches!(
            outcome.result,
            DisputeResult::CommitmentBreach { round: 0, .. }
        ),
        "withheld commitment must be a breach: {:?}",
        outcome.result
    );
}
