//! Seeded-interleaving stress for the sharded coordinator's two-lock
//! transfer ordering — the deadlock / lost-update trap.
//!
//! Six accounts form every ordered (proposer, challenger) pair, so for
//! each pair `(a, b)` the reversed pair `(b, a)` is also in the batch:
//! proposer-win settlements fire `escrow_transfer(challenger → proposer)`
//! in **both directions between the same two accounts at the same time**.
//! Without the ascending shard-index lock order this is the classic ABBA
//! deadlock; with sloppy locking it is a lost update. The test drives the
//! settle/challenge phases from forced thread counts (2/8/32, or
//! `TAO_TEST_WORKERS` in CI's fail-fast step) under a 60 s watchdog and
//! asserts balance conservation — `Σ balances + Σ escrowed deposits`
//! equals the ledger's injected supply **exactly** — **after every
//! phase**, plus bit-exact equivalence to the single-mutex serial oracle
//! at the end.

mod common;

use std::sync::Arc;

use common::{
    commitment as tagged_commitment, econ_and_slash, meta, with_deadlock_watchdog, worker_counts,
    COMMITTEE, WINDOW,
};
use tao_protocol::{parallel_map, ClaimStatus, Coordinator, Money, Party, SerialCoordinator};

const ACCOUNTS: [&str; 6] = ["n0", "n1", "n2", "n3", "n4", "n5"];
/// Claims per ordered account pair (6·5 pairs → 90 claims).
const CLAIMS_PER_LANE: usize = 3;

/// SplitMix64: a tiny deterministic stream for seeding winners.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One claim lane: proposer, challenger, and the seeded dispute winner.
#[derive(Debug, Clone, Copy)]
struct Lane {
    proposer: &'static str,
    challenger: &'static str,
    winner: Party,
}

/// Every ordered pair of distinct accounts, `CLAIMS_PER_LANE` times, with
/// seeded winners. Even lane indices force `Party::Proposer` so reversed
/// pairs are guaranteed to run escrow transfers in both directions.
fn lanes(seed: u64) -> Vec<Lane> {
    let mut state = seed;
    let mut lanes = Vec::new();
    for _ in 0..CLAIMS_PER_LANE {
        for (i, proposer) in ACCOUNTS.into_iter().enumerate() {
            for (j, challenger) in ACCOUNTS.into_iter().enumerate() {
                if i == j {
                    continue;
                }
                let winner = if lanes.len() % 2 == 0 || splitmix(&mut state).is_multiple_of(2) {
                    Party::Proposer
                } else {
                    Party::Challenger
                };
                lanes.push(Lane {
                    proposer,
                    challenger,
                    winner,
                });
            }
        }
    }
    lanes
}

fn commitment(i: usize) -> tao_merkle::Digest {
    tagged_commitment("stress", i)
}

/// Asserts `Σ balances + Σ escrow == injected` on the sharded ledger —
/// exactly, in micro-credits.
fn assert_conserved(c: &Coordinator, phase: &str) {
    let ledger = c.ledger();
    let (value, injected) = (ledger.total_value(), ledger.injected());
    assert_eq!(
        value, injected,
        "conservation violated after {phase}: value {value} vs injected {injected}"
    );
}

#[test]
fn overlapping_pair_settlement_conserves_and_matches_serial() {
    let (econ, slash) = econ_and_slash();
    let lanes = lanes(0xC0FFEE);

    // Serial oracle: the same protocol events, one at a time on the
    // single-mutex arbiter.
    let mut oracle = SerialCoordinator::new(econ, slash).unwrap();
    for account in ACCOUNTS {
        oracle.fund(account, 30_000);
    }
    for (i, lane) in lanes.iter().enumerate() {
        let id = oracle
            .submit_claim(lane.proposer, commitment(i), &meta())
            .unwrap();
        assert_eq!(id, i as u64);
    }
    for (i, lane) in lanes.iter().enumerate() {
        oracle.open_challenge(i as u64, lane.challenger).unwrap();
    }
    for (i, lane) in lanes.iter().enumerate() {
        oracle.settle(i as u64, lane.winner, COMMITTEE).unwrap();
    }

    for workers in worker_counts() {
        let coordinator = Arc::new(Coordinator::new(econ, slash).unwrap());
        for account in ACCOUNTS {
            coordinator.fund(account, 30_000);
        }
        assert_conserved(&coordinator, "funding");

        // Serial submit (deterministic ids), as the scheduler does.
        for (i, lane) in lanes.iter().enumerate() {
            let id = coordinator
                .submit_claim(lane.proposer, commitment(i), &meta())
                .unwrap();
            assert_eq!(id, i as u64, "dense deterministic claim ids");
        }
        assert_conserved(&coordinator, "submission");
        let escrowed: Money = ACCOUNTS.iter().map(|a| coordinator.escrowed(a)).sum();
        assert_eq!(
            escrowed,
            coordinator.amounts().d_p * lanes.len() as u64,
            "every proposer deposit escrowed exactly once"
        );

        // Parallel challenge phase at the forced worker count.
        let jobs: Vec<(u64, Lane)> = lanes
            .iter()
            .enumerate()
            .map(|(i, l)| (i as u64, *l))
            .collect();
        let coord = coordinator.clone();
        let challenged = with_deadlock_watchdog(move || {
            let inner = coord.clone();
            parallel_map(jobs, workers, move |(id, lane)| {
                inner.open_challenge(id, lane.challenger).unwrap();
                (id, lane)
            })
        });
        assert_conserved(&coordinator, "parallel challenge");

        // Parallel settle phase: reversed pairs settle concurrently, so
        // escrow transfers run in both directions between the same
        // accounts — the two-lock-ordering trap.
        let coord = coordinator.clone();
        with_deadlock_watchdog(move || {
            parallel_map(challenged, workers, move |(id, lane)| {
                coord.settle(id, lane.winner, COMMITTEE).unwrap();
            });
        });
        assert_conserved(&coordinator, "parallel settlement");

        // Every claim settled with its seeded winner, no escrow left.
        for (i, lane) in lanes.iter().enumerate() {
            assert_eq!(
                coordinator.claim(i as u64).unwrap().status,
                ClaimStatus::Settled {
                    winner: lane.winner
                },
                "claim {i} ({workers} workers)"
            );
        }
        for account in ACCOUNTS {
            assert_eq!(
                coordinator.escrowed(account),
                Money::ZERO,
                "{account} escrow drained"
            );
            let (serial, sharded) = (oracle.balance(account), coordinator.balance(account));
            assert_eq!(
                serial, sharded,
                "{account}: serial {serial} vs sharded {sharded} ({workers} workers)"
            );
        }
        assert_eq!(
            oracle.balance("committee-pool"),
            coordinator.balance("committee-pool"),
            "committee-pool: serial vs sharded"
        );
    }
}

/// Settles and window-elapse advances racing together: honest claims
/// finalize exactly once (one deposit release, one reward) no matter how
/// many concurrent `advance` calls sweep the shards.
#[test]
fn concurrent_advances_finalize_each_claim_exactly_once() {
    let (econ, slash) = econ_and_slash();
    for workers in worker_counts() {
        let coordinator = Arc::new(Coordinator::new(econ, slash).unwrap());
        coordinator.fund("prop", 60_000);
        let n = 64u64;
        for i in 0..n {
            coordinator
                .submit_claim("prop", commitment(i as usize), &meta())
                .unwrap();
        }
        let coord = coordinator.clone();
        let finalized: Vec<u64> = with_deadlock_watchdog(move || {
            parallel_map((0..workers).collect(), workers, move |_| {
                coord.advance(WINDOW + 1)
            })
            .into_iter()
            .flatten()
            .collect()
        });
        // Exactly one advance wins each claim.
        let mut sorted = finalized.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), finalized.len(), "no double finalization");
        assert_eq!(sorted, (0..n).collect::<Vec<u64>>(), "all claims finalized");
        // One deposit release + one reward per claim, exactly.
        let expected = Money::from_credits(60_000) + coordinator.amounts().r_p * n;
        assert_eq!(
            coordinator.balance("prop"),
            expected,
            "one release + one reward per claim"
        );
        assert_eq!(coordinator.escrowed("prop"), Money::ZERO);
        assert_conserved(&coordinator, "concurrent advances");
    }
}
