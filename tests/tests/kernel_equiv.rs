//! Differential kernel-equivalence harness: the blocked/packed/threaded
//! hot-path kernels must be **bit-identical** to the scalar oracle kernels
//! for every `KernelConfig` — accumulation order and FMA contraction are
//! part of the committed numeric contract the TAO protocol verifies, so a
//! reassociated addition here is a consensus bug, not a speedup.
//!
//! Two layers of coverage:
//!
//! * exhaustive sweeps over every accumulation mode × FMA setting (and
//!   intrinsic family for the transcendental-bearing kernels) at fixed
//!   ragged shapes chosen to cross every block/panel boundary;
//! * proptests sampling shapes (ragged, batched, broadcast), seeds and
//!   configurations jointly.

use proptest::prelude::*;
use tao_tensor::kernel::{gemm, PackedRhs, MAX_KERNEL_THREADS, PANEL};
use tao_tensor::{AccumMode, Conv2dParams, KernelConfig, MathLib, Tensor};

/// Every accumulation mode × FMA combination the fleet can express,
/// including block sizes that divide, straddle and exceed the panel width.
fn all_configs() -> Vec<KernelConfig> {
    let mut cfgs = Vec::new();
    for accum in [
        AccumMode::Sequential,
        AccumMode::Pairwise,
        AccumMode::Blocked(1),
        AccumMode::Blocked(7),
        AccumMode::Blocked(8),
        AccumMode::Blocked(32),
        AccumMode::Blocked(64),
        AccumMode::Kahan,
    ] {
        for fma in [false, true] {
            cfgs.push(KernelConfig {
                accum,
                fma,
                math: MathLib::Reference,
            });
        }
    }
    cfgs
}

fn assert_bits_eq(fast: &Tensor<f32>, slow: &Tensor<f32>, what: &str) {
    assert_eq!(fast.dims(), slow.dims(), "{what}: dims");
    for (i, (f, s)) in fast.data().iter().zip(slow.data()).enumerate() {
        assert_eq!(
            f.to_bits(),
            s.to_bits(),
            "{what}: element {i} blocked {f:e} vs oracle {s:e}"
        );
    }
}

fn bits_eq(fast: &Tensor<f32>, slow: &Tensor<f32>) -> bool {
    fast.dims() == slow.dims()
        && fast
            .data()
            .iter()
            .zip(slow.data())
            .all(|(f, s)| f.to_bits() == s.to_bits())
}

/// Mixed-magnitude operands: rounding differences between accumulation
/// orders show up in the last bits, so any reassociation in the blocked
/// kernels would be caught, not masked by exact arithmetic.
fn operand(dims: &[usize], seed: u64) -> Tensor<f32> {
    Tensor::<f32>::rand_uniform(dims, -100.0, 100.0, seed)
}

// ---------------------------------------------------------------------------
// Exhaustive mode × FMA sweeps at boundary-crossing shapes.
// ---------------------------------------------------------------------------

#[test]
fn matmul_every_mode_and_fma_bit_equal() {
    // k values straddle the Blocked(7/8/32/64) chunk edges and the PANEL
    // register-tile width; m/n values straddle the panel count.
    for &(m, k, n) in &[(1, 1, 1), (3, 7, 5), (5, 33, 9), (4, 65, 17), (2, 129, 8)] {
        let a = operand(&[m, k], 1000 + k as u64);
        let b = operand(&[k, n], 2000 + n as u64);
        for cfg in all_configs() {
            let fast = a.matmul(&b, &cfg).unwrap();
            let slow = a.matmul_reference(&b, &cfg).unwrap();
            assert_bits_eq(&fast, &slow, &format!("matmul {m}x{k}x{n} {cfg:?}"));
        }
    }
}

#[test]
fn linear_every_mode_and_fma_bit_equal() {
    let x = operand(&[3, 4, 33], 31);
    let w = operand(&[19, 33], 32);
    let bias = operand(&[19], 33);
    for cfg in all_configs() {
        for b in [None, Some(&bias)] {
            let fast = x.linear(&w, b, &cfg).unwrap();
            let slow = x.linear_reference(&w, b, &cfg).unwrap();
            assert_bits_eq(
                &fast,
                &slow,
                &format!("linear bias={} {cfg:?}", b.is_some()),
            );
        }
    }
}

#[test]
fn conv2d_every_mode_and_fma_bit_equal() {
    let x = operand(&[2, 3, 9, 8], 41);
    let w = operand(&[5, 3, 3, 3], 42);
    let bias = operand(&[5], 43);
    let params = Conv2dParams {
        stride: 2,
        padding: 1,
    };
    for cfg in all_configs() {
        let fast = x.conv2d(&w, Some(&bias), params, &cfg).unwrap();
        let slow = x.conv2d_reference(&w, Some(&bias), params, &cfg).unwrap();
        assert_bits_eq(&fast, &slow, &format!("conv2d {cfg:?}"));
    }
}

#[test]
fn norms_every_mode_fma_and_intrinsic_family_bit_equal() {
    let x = operand(&[6, 37], 51);
    let gamma = Tensor::<f32>::rand_uniform(&[37], 0.5, 1.5, 52);
    let beta = Tensor::<f32>::rand_uniform(&[37], -0.5, 0.5, 53);
    for mut cfg in all_configs() {
        for math in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
            cfg.math = math;
            assert_bits_eq(
                &x.softmax_last(&cfg).unwrap(),
                &x.softmax_last_reference(&cfg).unwrap(),
                &format!("softmax {cfg:?}"),
            );
            assert_bits_eq(
                &x.layer_norm(&gamma, &beta, 1e-5, &cfg).unwrap(),
                &x.layer_norm_reference(&gamma, &beta, 1e-5, &cfg).unwrap(),
                &format!("layer_norm {cfg:?}"),
            );
            assert_bits_eq(
                &x.rms_norm(&gamma, 1e-6, &cfg).unwrap(),
                &x.rms_norm_reference(&gamma, 1e-6, &cfg).unwrap(),
                &format!("rms_norm {cfg:?}"),
            );
        }
    }
}

#[test]
fn gemm_thread_count_never_changes_bits() {
    let (m, k, n) = (23, 77, 29);
    let a = operand(&[m, k], 61);
    let b = operand(&[k, n], 62);
    let packed = PackedRhs::from_row_major(b.data(), k, n);
    for cfg in all_configs() {
        let one = gemm(&cfg, a.data(), m, &packed, 1);
        for threads in [2, 5, MAX_KERNEL_THREADS, 3 * MAX_KERNEL_THREADS] {
            let many = gemm(&cfg, a.data(), m, &packed, threads);
            assert!(
                one.iter()
                    .zip(&many)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads} {cfg:?}"
            );
        }
    }
}

#[test]
fn large_reductions_cross_the_parallel_threshold_bit_equal() {
    // 256x256x256 engages row-band threading inside matmul (when the host
    // has the cores) and the lane fan-out inside softmax/layer_norm; the
    // oracle is single-threaded either way.
    let cfg = KernelConfig {
        accum: AccumMode::Blocked(32),
        fma: true,
        math: MathLib::VariantA,
    };
    let a = operand(&[256, 256], 71);
    let b = operand(&[256, 256], 72);
    assert_bits_eq(
        &a.matmul(&b, &cfg).unwrap(),
        &a.matmul_reference(&b, &cfg).unwrap(),
        "matmul 256^3",
    );
    let x = Tensor::<f32>::rand_uniform(&[512, 128], -4.0, 4.0, 73);
    assert_bits_eq(
        &x.softmax_last(&cfg).unwrap(),
        &x.softmax_last_reference(&cfg).unwrap(),
        "softmax 512x128",
    );
}

// ---------------------------------------------------------------------------
// Proptests over joint (shape, seed, config) space.
// ---------------------------------------------------------------------------

/// Samples one of the full mode × FMA configuration set.
fn config_strategy() -> impl Strategy<Value = KernelConfig> {
    let cfgs = all_configs();
    (0..cfgs.len()).prop_map(move |i| cfgs[i].clone())
}

proptest! {
    #[test]
    fn prop_matmul_ragged_shapes_bit_equal(
        m in 1usize..24,
        k in 1usize..150,
        n in 1usize..24,
        seed in 0u64..1_000_000,
        cfg in config_strategy(),
    ) {
        let a = operand(&[m, k], seed);
        let b = operand(&[k, n], seed ^ 0xabcd);
        let fast = a.matmul(&b, &cfg).unwrap();
        let slow = a.matmul_reference(&b, &cfg).unwrap();
        prop_assert!(bits_eq(&fast, &slow), "matmul {m}x{k}x{n} seed {seed} {cfg:?}");
    }

    #[test]
    fn prop_batched_and_broadcast_matmul_bit_equal(
        batch in 1usize..5,
        m in 1usize..10,
        k in 1usize..40,
        n in 1usize..10,
        mode in 0usize..3,
        seed in 0u64..1_000_000,
        cfg in config_strategy(),
    ) {
        // mode 0: both batched; 1: rhs broadcast; 2: lhs broadcast.
        let (a_dims, b_dims): (Vec<usize>, Vec<usize>) = match mode {
            0 => (vec![batch, m, k], vec![batch, k, n]),
            1 => (vec![batch, m, k], vec![k, n]),
            _ => (vec![m, k], vec![batch, k, n]),
        };
        let a = operand(&a_dims, seed);
        let b = operand(&b_dims, seed ^ 0x77);
        let fast = a.matmul(&b, &cfg).unwrap();
        let slow = a.matmul_reference(&b, &cfg).unwrap();
        prop_assert!(
            bits_eq(&fast, &slow),
            "batched matmul mode {mode} b={batch} {m}x{k}x{n} {cfg:?}"
        );
    }

    #[test]
    fn prop_linear_bit_equal(
        rows in 1usize..12,
        in_f in 1usize..80,
        out_f in 1usize..20,
        with_bias in 0usize..2,
        seed in 0u64..1_000_000,
        cfg in config_strategy(),
    ) {
        let x = operand(&[rows, in_f], seed);
        let w = operand(&[out_f, in_f], seed ^ 0x1111);
        let b = operand(&[out_f], seed ^ 0x2222);
        let bias = (with_bias == 1).then_some(&b);
        let fast = x.linear(&w, bias, &cfg).unwrap();
        let slow = x.linear_reference(&w, bias, &cfg).unwrap();
        prop_assert!(bits_eq(&fast, &slow), "linear {rows}x{in_f}->{out_f} {cfg:?}");
    }

    #[test]
    fn prop_conv2d_bit_equal(
        n in 1usize..3,
        c_in in 1usize..4,
        c_out in 1usize..5,
        hw in 3usize..9,
        ks in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        with_bias in 0usize..2,
        seed in 0u64..1_000_000,
        cfg in config_strategy(),
    ) {
        let x = operand(&[n, c_in, hw, hw + 1], seed);
        let w = operand(&[c_out, c_in, ks, ks], seed ^ 0x3333);
        let b = operand(&[c_out], seed ^ 0x4444);
        let bias = (with_bias == 1).then_some(&b);
        let params = Conv2dParams { stride, padding };
        let fast = x.conv2d(&w, bias, params, &cfg).unwrap();
        let slow = x.conv2d_reference(&w, bias, params, &cfg).unwrap();
        prop_assert!(
            bits_eq(&fast, &slow),
            "conv2d n={n} c={c_in}->{c_out} hw={hw} k={ks} s={stride} p={padding} {cfg:?}"
        );
    }

    #[test]
    fn prop_norm_lanes_bit_equal(
        rows in 1usize..16,
        d in 1usize..130,
        math in 0usize..3,
        seed in 0u64..1_000_000,
        mut cfg in config_strategy(),
    ) {
        cfg.math = [MathLib::Reference, MathLib::VariantA, MathLib::VariantB][math];
        let x = Tensor::<f32>::rand_uniform(&[rows, d], -6.0, 6.0, seed);
        let gamma = Tensor::<f32>::rand_uniform(&[d], 0.5, 1.5, seed ^ 0x5555);
        let beta = Tensor::<f32>::rand_uniform(&[d], -0.5, 0.5, seed ^ 0x6666);
        prop_assert!(bits_eq(
            &x.softmax_last(&cfg).unwrap(),
            &x.softmax_last_reference(&cfg).unwrap(),
        ), "softmax {rows}x{d} {cfg:?}");
        prop_assert!(bits_eq(
            &x.layer_norm(&gamma, &beta, 1e-5, &cfg).unwrap(),
            &x.layer_norm_reference(&gamma, &beta, 1e-5, &cfg).unwrap(),
        ), "layer_norm {rows}x{d} {cfg:?}");
        prop_assert!(bits_eq(
            &x.rms_norm(&gamma, 1e-6, &cfg).unwrap(),
            &x.rms_norm_reference(&gamma, 1e-6, &cfg).unwrap(),
        ), "rms_norm {rows}x{d} {cfg:?}");
    }

    #[test]
    fn prop_axis_reductions_bit_equal(
        d0 in 1usize..8,
        d1 in 1usize..40,
        d2 in 1usize..8,
        axis in 0usize..3,
        seed in 0u64..1_000_000,
        cfg in config_strategy(),
    ) {
        // Oracle: materialize each lane and reduce it with the scalar
        // `cfg.sum`, exactly as the kernel contract specifies.
        let t = operand(&[d0, d1, d2], seed);
        let fast = t.sum_axis(axis, &cfg).unwrap();
        let dims = [d0, d1, d2];
        let extent = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let outer: usize = dims[..axis].iter().product();
        let mut slow = Vec::with_capacity(outer * inner);
        let mut lane = vec![0f32; extent];
        for o in 0..outer {
            for i in 0..inner {
                for (k, slot) in lane.iter_mut().enumerate() {
                    *slot = t.data()[o * extent * inner + k * inner + i];
                }
                slow.push(cfg.sum(&lane));
            }
        }
        prop_assert!(
            fast.data().iter().zip(&slow).all(|(f, s)| f.to_bits() == s.to_bits()),
            "sum_axis {d0}x{d1}x{d2} axis {axis} {cfg:?}"
        );
    }

    #[test]
    fn prop_gemm_panel_tail_and_k_boundaries(
        k in 1usize..140,
        n_off in 0usize..(2 * PANEL),
        seed in 0u64..1_000_000,
        cfg in config_strategy(),
    ) {
        // n deliberately sweeps the panel remainder 0..PANEL-1 twice.
        let n = 1 + n_off;
        let a = operand(&[1, k], seed);
        let b = operand(&[k, n], seed ^ 0x9999);
        let packed = PackedRhs::from_row_major(b.data(), k, n);
        let fast = gemm(&cfg, a.data(), 1, &packed, 1);
        for (col, f) in fast.iter().enumerate() {
            let col_vals: Vec<f32> = (0..k).map(|kk| b.data()[kk * n + col]).collect();
            let oracle = cfg.dot(a.data(), &col_vals);
            prop_assert!(
                f.to_bits() == oracle.to_bits(),
                "gemm k={k} n={n} col={col} {cfg:?}"
            );
        }
    }
}
