//! Multi-step workloads (§7): temporal commitment over a DDIM sampling
//! trajectory with prefix finality — bisect across time to the earliest
//! offending step, then dispute within that step's graph.

use tao_calib::{calibrate, error_profile, DEFAULT_EPS};
use tao_device::{Device, Fleet};
use tao_graph::execute;
use tao_merkle::{tensor_hash, MerkleTree, TokenChain};
use tao_models::{diffusion, greedy_decode, greedy_decode_committed, qwen, Argmax, DiffusionConfig, QwenConfig};
use tao_tensor::{KernelConfig, Tensor};

/// Re-runs the sampler on the challenger device and returns the earliest
/// step whose latent deviates beyond a tolerance from the proposer's
/// committed trajectory.
fn earliest_offending_step(
    proposer: &[Tensor<f32>],
    challenger: &[Tensor<f32>],
    tol: f64,
) -> Option<usize> {
    proposer.iter().zip(challenger).position(|(a, b)| {
        let (abs, _) = tao_calib::elementwise_errors(a, b, DEFAULT_EPS);
        abs.iter().cloned().fold(0.0f64, f64::max) > tol
    })
}

#[test]
fn honest_trajectories_agree_within_tolerance_across_devices() {
    let cfg = DiffusionConfig::small();
    let model = diffusion::build(cfg, 1);
    let steps = 5;
    let a = diffusion::ddim_sample(&model, cfg, steps, 9, Device::rtx4090_like().config()).unwrap();
    let b = diffusion::ddim_sample(&model, cfg, steps, 9, Device::h100_like().config()).unwrap();
    // Cross-device drift compounds across steps but stays small.
    assert_eq!(earliest_offending_step(&a, &b, 1e-2), None);
    // The drift is nonzero (kernels really differ).
    assert_ne!(a.last().unwrap().data(), b.last().unwrap().data());
}

#[test]
fn temporal_bisection_finds_tampered_step() {
    let cfg = DiffusionConfig::small();
    let model = diffusion::build(cfg, 1);
    let steps = 6;
    let dev = Device::rtx4090_like();
    let honest = diffusion::ddim_sample(&model, cfg, steps, 4, dev.config()).unwrap();
    // A malicious proposer swaps out step 3's latent (content injection).
    let mut tampered = honest.clone();
    tampered[3] = tampered[3].add_scalar(0.05);
    // Later steps in a real attack would be recomputed from the tampered
    // latent; the earliest offense is still step 3.
    let offending = earliest_offending_step(&tampered, &honest, 1e-3);
    assert_eq!(offending, Some(3));
    // Prefix finality: steps before 3 agree bit-for-bit.
    for i in 0..3 {
        assert_eq!(tampered[i].data(), honest[i].data());
    }
}

#[test]
fn trajectory_commitment_is_a_merkle_chain() {
    let cfg = DiffusionConfig::small();
    let model = diffusion::build(cfg, 1);
    let traj = diffusion::ddim_sample(&model, cfg, 4, 2, Device::reference().config()).unwrap();
    let leaves: Vec<Vec<u8>> = traj.iter().map(|t| tensor_hash(t).to_vec()).collect();
    let tree = MerkleTree::from_leaves(&leaves);
    // Any step's latent can be proven against the trajectory root.
    for (i, leaf) in leaves.iter().enumerate() {
        let proof = tree.prove(i).unwrap();
        assert!(tao_merkle::verify_inclusion(&tree.root(), leaf, &proof));
    }
    // Tampering one step changes the root.
    let mut tampered = leaves.clone();
    tampered[2][0] ^= 0xff;
    assert_ne!(tree.root(), MerkleTree::from_leaves(&tampered).root());
}

#[test]
fn batch_screening_amortizes_one_deployment_across_steps() {
    // A multi-step trajectory is many claims over ONE committed UNet
    // deployment: batch-screen every step's (latent, t-emb) -> eps claim
    // in a single call and reuse the committed thresholds throughout.
    let cfg = DiffusionConfig::small();
    let model = diffusion::build(cfg, 1);
    let samples: Vec<Vec<Tensor<f32>>> = (0..12)
        .map(|i| {
            vec![
                Tensor::<f32>::randn(&model.input_shapes[0], 300 + i),
                diffusion::time_embedding(i as usize % 6 + 1, cfg.temb),
            ]
        })
        .collect();
    let deployment = tao::deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    let proposer = Device::rtx4090_like();
    let challenger = Device::h100_like();

    // Per-step claims: honest proposer outputs, with step 1 tampered.
    let step_inputs: Vec<Vec<Tensor<f32>>> = (0..3)
        .map(|step| {
            vec![
                Tensor::<f32>::randn(&deployment.model.input_shapes[0], 900 + step),
                diffusion::time_embedding(step as usize + 1, cfg.temb),
            ]
        })
        .collect();
    let mut outputs: Vec<Tensor<f32>> = step_inputs
        .iter()
        .map(|inputs| {
            execute(&deployment.model.graph, inputs, proposer.config(), None)
                .unwrap()
                .value(deployment.model.logits)
                .unwrap()
                .clone()
        })
        .collect();
    outputs[1] = outputs[1].add_scalar(0.05);

    let claims: Vec<tao_protocol::ClaimCheck<'_>> = step_inputs
        .iter()
        .zip(&outputs)
        .map(|(inputs, claimed_output)| tao_protocol::ClaimCheck {
            inputs,
            claimed_output,
        })
        .collect();
    let screenings = tao_protocol::screen_batch(
        &deployment.model.graph,
        deployment.model.logits,
        &deployment.thresholds,
        &claims,
        &challenger,
    )
    .unwrap();
    assert_eq!(screenings.len(), 3);
    for (step, s) in screenings.iter().enumerate() {
        assert_eq!(
            s.flagged,
            step == 1,
            "step {step}: exceedance {}",
            s.exceedance
        );
        // Each screening keeps its trace so a dispute on the flagged step
        // would start with zero recomputation.
        assert_eq!(s.trace.values.len(), deployment.model.graph.len());
    }
}

#[test]
fn decode_sessions_are_disputable_at_token_granularity() {
    // A long autoregressive session carries one trace root per token plus
    // a prefix-stable rolling chain: contesting token t needs only
    // step_roots[t] and the chain prefix — earlier tokens are never
    // recommitted.
    let cfg = QwenConfig::small();
    let model = qwen::build(cfg, 3);
    let prompt = qwen::sample_ids(cfg, 11);
    let k = KernelConfig::reference();
    let (steps, commit) = greedy_decode_committed(&model, cfg, &prompt, 6, &k, &Argmax).unwrap();
    // Commitment never perturbs the decode.
    let plain = greedy_decode(&model, cfg, &prompt, 6, &k, &Argmax).unwrap();
    let plain_tokens: Vec<usize> = plain.iter().map(|s| s.token).collect();
    let tokens: Vec<usize> = steps.iter().map(|s| s.token).collect();
    assert_eq!(tokens, plain_tokens);
    // Decode commitments are seed-deterministic: a re-run reproduces every
    // step root and the chain bit-for-bit (whatever committer mode the
    // host picks).
    let (_, again) = greedy_decode_committed(&model, cfg, &prompt, 6, &k, &Argmax).unwrap();
    assert_eq!(commit.step_roots, again.step_roots);
    assert_eq!(commit.chain.root(), again.chain.root());
    // Extending the session from 6 to 7 tokens rehashes no prefix state:
    // the first six step roots and every intermediate chain root match.
    let (_, longer) = greedy_decode_committed(&model, cfg, &prompt, 7, &k, &Argmax).unwrap();
    assert_eq!(&longer.step_roots[..6], &commit.step_roots[..]);
    for t in 0..6 {
        assert_eq!(longer.chain.root_at(t), commit.chain.root_at(t), "t={t}");
    }
    // Tampering one step's root breaks the chain from that point on while
    // the prefix stays final — the temporal-bisection property at token
    // granularity.
    let mut forged: Vec<(u64, tao_merkle::Digest)> = steps
        .iter()
        .zip(&commit.step_roots)
        .map(|(s, r)| (s.token as u64, *r))
        .collect();
    forged[3].1[0] ^= 0x01;
    let forged_chain = TokenChain::from_steps(&forged);
    for t in 0..3 {
        assert_eq!(forged_chain.root_at(t), commit.chain.root_at(t), "prefix t={t}");
    }
    for t in 3..6 {
        assert_ne!(forged_chain.root_at(t), commit.chain.root_at(t), "suffix t={t}");
    }
}

#[test]
fn per_step_unet_disputes_work_like_single_inference() {
    // Within a disputed step, the UNet graph behaves exactly like any
    // other model under the dispute pipeline: calibrate, perturb, detect.
    let cfg = DiffusionConfig::small();
    let model = diffusion::build(cfg, 1);
    let samples: Vec<Vec<Tensor<f32>>> = (0..12)
        .map(|i| {
            vec![
                Tensor::<f32>::randn(&model.input_shapes[0], 100 + i),
                diffusion::time_embedding(i as usize % 6 + 1, cfg.temb),
            ]
        })
        .collect();
    let record = calibrate(&model.graph, &samples, &Fleet::standard()).unwrap();
    let bundle = record.into_thresholds(3.0);
    let input = vec![
        Tensor::<f32>::randn(&model.input_shapes[0], 999),
        diffusion::time_embedding(3, cfg.temb),
    ];
    let a = execute(&model.graph, &input, Device::rtx4090_like().config(), None).unwrap();
    let b = execute(&model.graph, &input, Device::a100_like().config(), None).unwrap();
    for op in &bundle.operators {
        let prof = error_profile(&a.values[op.node.0], &b.values[op.node.0], DEFAULT_EPS);
        assert!(
            bundle.exceedance(op.node, &prof).unwrap() <= 1.0,
            "honest UNet op {} flagged",
            op.node
        );
    }
}
