//! Differential equivalence harness for the int8-quantized kernel family.
//!
//! The quantized GEMM's AVX2 fast path must be **bit-identical** to the
//! in-tree scalar int8 oracle at every shape and thread count: integer
//! widening products with wrapping `i32` accumulation are associative, so
//! any evaluation order reproduces the oracle bits exactly. That exactness
//! is what the protocol leans on — quantized operators calibrate to
//! all-zero envelopes and dispute with zero-tolerance strictness, so a
//! single flipped bit on a quantized operator is an infinite-exceedance
//! offense this suite plants and localizes end-to-end.

use proptest::prelude::*;
use tao::{default_coordinator, deploy, ProposerBehavior, SessionBuilder, SharedCoordinator};
use tao_device::{Device, Fleet};
use tao_graph::{execute, execute_with_stats, OpKind, Perturbations};
use tao_models::{data, quantize_linears, transformer, TransformerConfig};
use tao_protocol::{ClaimStatus, DisputeResult, LeafVerdict, Party};
use tao_tensor::kernel::{PackedRhs, MAX_KERNEL_THREADS};
use tao_tensor::quant::{
    quant_gemm_into, quant_gemm_reference, quantize_symmetric, quantize_value, symmetric_scale,
};
use tao_tensor::Tensor;

fn operand(dims: &[usize], seed: u64) -> Tensor<f32> {
    Tensor::<f32>::rand_uniform(dims, -4.0, 4.0, seed)
}

fn assert_f32_bits_eq(fast: &Tensor<f32>, slow: &Tensor<f32>, what: &str) {
    assert_eq!(fast.dims(), slow.dims(), "{what}: dims");
    for (i, (f, s)) in fast.data().iter().zip(slow.data()).enumerate() {
        assert_eq!(
            f.to_bits(),
            s.to_bits(),
            "{what}: element {i} fast {f:e} vs oracle {s:e}"
        );
    }
}

// ---------------------------------------------------------------------------
// Raw int8 GEMM: AVX2 dispatch vs the scalar oracle, exhaustive boundaries.
// ---------------------------------------------------------------------------

#[test]
fn quant_gemm_bit_equal_at_panel_and_tile_boundaries() {
    // Shapes straddle the PANEL width (8), the MR register tile (4) and the
    // odd-k scalar tail of the AVX2 micro-kernel.
    for &(m, k, n) in &[
        (1, 1, 1),
        (3, 7, 5),
        (4, 8, 8),
        (5, 33, 9),
        (4, 64, 16),
        (7, 129, 17),
        (16, 96, 24),
    ] {
        let (qa, _) = quantize_symmetric(operand(&[m, k], 900 + k as u64).data());
        let (qb, _) = quantize_symmetric(operand(&[k, n], 901 + n as u64).data());
        let rhs = PackedRhs::from_row_major(&qb, k, n);
        let oracle = quant_gemm_reference(&qa, m, k, &qb, n);
        for threads in [1, 2, 5, MAX_KERNEL_THREADS] {
            let mut fast = vec![0i32; m * n];
            quant_gemm_into(&qa, m, &rhs, &mut fast, threads);
            assert_eq!(fast, oracle, "quant gemm {m}x{k}x{n} threads {threads}");
        }
    }
}

#[test]
fn tensor_quant_ops_bit_equal_to_reference() {
    let x = operand(&[5, 33], 1);
    let b_mat = operand(&[33, 9], 2);
    assert_f32_bits_eq(
        &x.quant_matmul(&b_mat).unwrap(),
        &x.quant_matmul_reference(&b_mat).unwrap(),
        "quant_matmul",
    );
    let w = operand(&[9, 33], 3);
    let bias = operand(&[9], 4);
    for bias in [None, Some(&bias)] {
        assert_f32_bits_eq(
            &x.quant_linear(&w, bias).unwrap(),
            &x.quant_linear_reference(&w, bias).unwrap(),
            "quant_linear",
        );
    }
}

/// A model whose quantized operators consume only graph inputs, parameters
/// and other quantized operators: with no float-accumulation op upstream,
/// every device feeds them identical bits, so the integer kernels make the
/// whole chain cross-device exact. (Quantized operators *inside* a float
/// model are only as reproducible as their inputs — a 1-ULP upstream
/// wobble can cross a rounding boundary and move an output by a full
/// quantization step, which calibration duly records.)
fn quantized_chain_model() -> tao_models::Model {
    use tao_graph::GraphBuilder;
    let mut b = GraphBuilder::new(1);
    let x = b.input(0, "x"); // [4, 16]
    let w = b.parameter(
        "w",
        Tensor::<f32>::rand_uniform(&[6, 16], -1.0, 1.0, 91),
    );
    let bias = b.parameter("bias", Tensor::<f32>::rand_uniform(&[6], -0.5, 0.5, 92));
    let w2 = b.parameter(
        "w2",
        Tensor::<f32>::rand_uniform(&[6, 8], -1.0, 1.0, 93),
    );
    let ql = b.op("ql", OpKind::QuantLinear, &[x, w, bias]);
    let qm = b.op("qm", OpKind::QuantMatmul, &[ql, w2]);
    let qz = b.op("qz", OpKind::Quantize { scale: 0.02 }, &[qm]);
    let dq = b.op("dq", OpKind::Dequantize { scale: 0.02 }, &[qz]);
    let head = b.op("head", OpKind::Softmax, &[dq]);
    tao_models::Model {
        name: "quant-chain".into(),
        graph: b.finish(vec![head]).unwrap(),
        logits: head,
        input_shapes: vec![vec![4, 16]],
    }
}

fn chain_samples(n: usize, seed: u64) -> Vec<Vec<Tensor<f32>>> {
    (0..n)
        .map(|i| vec![operand(&[4, 16], seed + i as u64)])
        .collect()
}

/// The fleet's `KernelConfig`s differ in accumulation order and FMA — none
/// of which the integer kernels consult. On identical inputs every device
/// must produce the same bits at every quantized operator: this is the
/// cross-device exactness that makes their calibrated envelopes all-zero.
#[test]
fn quantized_chain_is_bit_exact_across_every_fleet_device() {
    let m = quantized_chain_model();
    let inputs = vec![operand(&[4, 16], 5)];
    let fleet = Fleet::standard();
    let traces: Vec<_> = fleet
        .devices()
        .iter()
        .map(|d| execute(&m.graph, &inputs, d.config(), None).unwrap())
        .collect();
    let quant_nodes: Vec<_> = m
        .graph
        .nodes()
        .iter()
        .filter(|n| {
            matches!(
                n.kind,
                OpKind::QuantLinear
                    | OpKind::QuantMatmul
                    | OpKind::Quantize { .. }
                    | OpKind::Dequantize { .. }
            )
        })
        .map(|n| n.id)
        .collect();
    assert_eq!(quant_nodes.len(), 4);
    for &node in &quant_nodes {
        let first = &traces[0].values[node.0];
        for (di, t) in traces.iter().enumerate().skip(1) {
            assert_f32_bits_eq(
                first,
                &t.values[node.0],
                &format!("node {node} on device {di}"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rounding policy and round-trip bounds.
// ---------------------------------------------------------------------------

#[test]
fn quantize_round_trip_stays_within_half_a_step() {
    let x = operand(&[1024], 77);
    let (q, scale) = quantize_symmetric(x.data());
    for (i, (&orig, &qi)) in x.data().iter().zip(&q).enumerate() {
        let back = (f64::from(qi) * scale) as f32;
        let err = f64::from((orig - back).abs());
        assert!(
            err <= scale * 0.5 + 1e-6,
            "element {i}: {orig} -> {qi} -> {back}, err {err} vs step {scale}"
        );
    }
}

#[test]
fn static_scale_ops_invert_exactly_on_grid_points() {
    // Inputs already on the quantization grid survive the fake-quant pair
    // bit-for-bit; -128 is never produced.
    let scale = 0.25f64;
    let data: Vec<f32> = (-127..128).map(|q| (f64::from(q) * scale) as f32).collect();
    let t = Tensor::<f32>::from_vec(data.clone(), &[255]).unwrap();
    let round = t
        .quantize_static(scale)
        .unwrap()
        .dequantize_static(scale)
        .unwrap();
    assert_f32_bits_eq(&round, &t, "grid round-trip");
    for &v in t.quantize_static(scale).unwrap().data() {
        assert!((-127.0..=127.0).contains(&v));
    }
}

// ---------------------------------------------------------------------------
// Proptests: shapes × scales × thread counts, jointly sampled.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn prop_quant_gemm_bit_equal(
        m in 1usize..20,
        k in 1usize..130,
        n in 1usize..20,
        threads in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let (qa, _) = quantize_symmetric(operand(&[m, k], seed).data());
        let (qb, _) = quantize_symmetric(operand(&[k, n], seed ^ 0xbeef).data());
        let rhs = PackedRhs::from_row_major(&qb, k, n);
        let mut fast = vec![0i32; m * n];
        quant_gemm_into(&qa, m, &rhs, &mut fast, threads);
        let oracle = quant_gemm_reference(&qa, m, k, &qb, n);
        prop_assert_eq!(fast, oracle, "quant gemm {}x{}x{} t{}", m, k, n, threads);
    }

    #[test]
    fn prop_quant_linear_bit_equal(
        rows in 1usize..10,
        in_f in 1usize..70,
        out_f in 1usize..16,
        with_bias in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let x = operand(&[rows, in_f], seed);
        let w = operand(&[out_f, in_f], seed ^ 0x5a5a);
        let b = operand(&[out_f], seed ^ 0xa5a5);
        let bias = (with_bias == 1).then_some(&b);
        let fast = x.quant_linear(&w, bias).unwrap();
        let slow = x.quant_linear_reference(&w, bias).unwrap();
        prop_assert_eq!(
            fast.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "quant_linear {}x{}->{}", rows, in_f, out_f
        );
    }

    #[test]
    fn prop_rounding_is_ties_away_and_clamped(
        num in -2_000_000i64..2_000_000,
        scale_mil in 1u32..5_000,
    ) {
        let scale = f64::from(scale_mil) / 1_000.0;
        let x = (num as f64 / 1_000.0) as f32;
        let q = quantize_value(x, scale);
        let expected = (f64::from(x) / scale).round().clamp(-127.0, 127.0) as i8;
        prop_assert_eq!(q, expected);
        prop_assert!(q >= -127, "quantizer must never emit -128");
    }

    #[test]
    fn prop_symmetric_scale_covers_max(max_mil in 1u32..4_000_000) {
        let max = f64::from(max_mil) as f32 / 1_000.0;
        let s = symmetric_scale(max);
        // The largest-magnitude value always lands on ±127 (no clamping
        // ever loses range).
        prop_assert_eq!(quantize_value(max, s), 127);
        prop_assert_eq!(quantize_value(-max, s), -127);
    }
}

// ---------------------------------------------------------------------------
// End-to-end: quantized transformer calibrates, screens and disputes.
// ---------------------------------------------------------------------------

/// Runs a malicious session with the given planted perturbation and
/// asserts the dispute localizes it to `target` with cached digests,
/// verified reveals and a challenger win.
fn assert_dispute_localizes(
    deployment: &tao::Deployment,
    inputs: Vec<Tensor<f32>>,
    target: tao_graph::NodeId,
    p: Perturbations,
    what: &str,
) {
    let coord = SharedCoordinator::new(default_coordinator().unwrap());
    let report = SessionBuilder::new(deployment, inputs)
        .behavior(ProposerBehavior::Malicious(p))
        .run(&coord)
        .unwrap();
    assert!(report.challenged, "{what}: cheat must not pass screening");
    let dispute = report.dispute.expect("dispute ran");
    assert_eq!(dispute.result, DisputeResult::Leaf(target), "{what}");
    assert_eq!(dispute.rehashed_leaves, 0, "{what}: digests must be cached");
    assert!(dispute.reveal_checks > 0, "{what}: reveals must be verified");
    assert_eq!(report.verdict.unwrap().1, LeafVerdict::Fraud, "{what}");
    assert!(
        matches!(
            report.final_status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ),
        "{what}"
    );
}

/// Deploys the purely-quantized chain: its operators calibrate to exactly
/// zero envelopes (they are cross-device bit-exact), so flipping a single
/// int8 LSB on one element — the smallest deviation a corrupted
/// accumulator can produce after dequantization — is an
/// infinite-exceedance offense the dispute pins to the cheating node.
#[test]
fn quantized_chain_zero_envelopes_catch_a_single_lsb_flip() {
    let model = quantized_chain_model();
    let deployment = deploy(model, Fleet::standard(), &chain_samples(16, 500), 3.0).unwrap();
    let inputs = vec![operand(&[4, 16], 77)];

    let quant_nodes: Vec<_> = deployment
        .model
        .graph
        .nodes()
        .iter()
        .filter(|n| {
            matches!(
                n.kind,
                OpKind::QuantLinear
                    | OpKind::QuantMatmul
                    | OpKind::Quantize { .. }
                    | OpKind::Dequantize { .. }
            )
        })
        .map(|n| n.id)
        .collect();
    for &node in &quant_nodes {
        let thr = deployment.thresholds.for_node(node).unwrap();
        assert!(
            thr.thresholds
                .abs
                .iter()
                .chain(&thr.thresholds.rel)
                .all(|&v| v == 0.0),
            "quantized node {node} calibrated a nonzero envelope"
        );
    }

    // One int8 LSB on one element of the *last* quantized operator (the
    // dequantize): exactly its static scale. Screening only sees the model
    // output, so the cheat must be planted where no later quantizer can
    // re-absorb a sub-step deviation — an interior flip that rounds away
    // downstream is not an observable lie about the committed output. The
    // softmax head transmits the step loudly, screening flags the claim,
    // and the dispute walks back to the zero-envelope node.
    let target = *quant_nodes.last().unwrap();
    let step = 0.02f32;
    let mut delta = vec![0.0f32; 4 * 8];
    delta[0] = step;
    let mut p = Perturbations::new();
    p.insert(target, Tensor::<f32>::from_vec(delta, &[4, 8]).unwrap());

    assert_dispute_localizes(&deployment, inputs, target, p, "chain lsb flip");
}

/// Plants an int8 cheat on the first `QuantLinear` of a fully quantized
/// transformer and runs the complete protocol — calibrate, screen,
/// dispute — and pins the admission seam: the static gas quote and FLOP
/// ledger equal the measured execution exactly.
#[test]
fn quantized_transformer_dispute_localizes_planted_int8_cheat() {
    let cfg = TransformerConfig {
        layers: 1,
        ..TransformerConfig::small()
    };
    let model = quantize_linears(&transformer::build(cfg, 3));
    let samples = data::token_dataset(16, cfg.seq, cfg.vocab, 30);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    let inputs = vec![transformer::sample_ids(cfg, 44)];

    // Static gas quote == measured gas, exactly: the same FLOP formula
    // feeds both sides of the admission seam.
    let (exec, stats) = execute_with_stats(
        &deployment.model.graph,
        &inputs,
        Device::rtx4090_like().config(),
        None,
    )
    .unwrap();
    assert_eq!(deployment.static_report.flops, exec.flops);
    assert_eq!(
        deployment.static_report.peak_resident_bytes,
        stats.peak_resident_bytes
    );
    assert_eq!(
        deployment.static_report.gas_quote,
        tao_analysis::GAS_BASE
            + deployment.static_report.total_flops() / tao_analysis::FLOPS_PER_GAS
            + deployment.static_report.bytes_moved / tao_analysis::BYTES_PER_GAS
    );

    // An in-model quantized operator calibrates a small nonzero envelope
    // (its *inputs* wobble across devices, and one boundary-crossing
    // element moves by a whole quantization step), so the planted cheat is
    // a visible accumulator corruption, not a single LSB.
    let target = deployment
        .model
        .graph
        .nodes()
        .iter()
        .find(|n| matches!(n.kind, OpKind::QuantLinear))
        .map(|n| n.id)
        .expect("quantized model has a QuantLinear node");
    let shape = exec.values[target.0].dims().to_vec();
    let delta = Tensor::<f32>::randn(&shape, 4_242).mul_scalar(0.05);
    let mut p = Perturbations::new();
    p.insert(target, delta);

    assert_dispute_localizes(&deployment, inputs, target, p, "transformer int8 cheat");
}
