//! Cross-crate property tests on protocol invariants.

use proptest::prelude::*;
use tao_calib::{CapCurve, PercentilePair, PERCENTILE_GRID};
use tao_graph::partition;
use tao_merkle::MerkleTree;
use tao_protocol::EconParams;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_is_exact_cover(start in 0usize..50, len in 1usize..60, n in 1usize..12) {
        let parts = partition(start, start + len, n);
        prop_assert!(!parts.is_empty());
        prop_assert_eq!(parts.first().unwrap().0, start);
        prop_assert_eq!(parts.last().unwrap().1, start + len);
        let mut covered = 0usize;
        for (i, &(s, e)) in parts.iter().enumerate() {
            prop_assert!(s < e, "empty slice at {i}");
            covered += e - s;
            if i > 0 {
                prop_assert_eq!(parts[i - 1].1, s);
            }
        }
        prop_assert_eq!(covered, len);
        // Near-equal: sizes differ by at most one.
        let sizes: Vec<usize> = parts.iter().map(|&(s, e)| e - s).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn merkle_proofs_verify_for_random_sizes(n in 1usize..80, probe in 0usize..80) {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, (i * 7) as u8]).collect();
        let tree = MerkleTree::from_leaves(&leaves);
        let idx = probe % n;
        let proof = tree.prove(idx).unwrap();
        prop_assert!(tao_merkle::verify_inclusion(&tree.root(), &leaves[idx], &proof));
        // A proof never verifies a different leaf.
        if n > 1 {
            let other = (idx + 1) % n;
            prop_assert!(!tao_merkle::verify_inclusion(&tree.root(), &leaves[other], &proof));
        }
    }

    #[test]
    fn cap_projection_is_idempotent_and_feasible(
        base in 1e-9f64..1e-4,
        raw_scale in 0.1f32..100.0,
        n in 1usize..64,
    ) {
        let thresholds = PercentilePair {
            abs: PERCENTILE_GRID.iter().map(|&p| base * (1.0 + p)).collect(),
            rel: vec![0.0; PERCENTILE_GRID.len()],
        };
        let curve = CapCurve::from_thresholds(&thresholds);
        let raw: Vec<f32> = (0..n)
            .map(|i| raw_scale * (base as f32) * (i as f32 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let once = curve.project(&raw);
        let mags: Vec<f64> = once.iter().map(|v| v.abs() as f64).collect();
        prop_assert!(curve.admits(&mags));
        let twice = curve.project(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() <= f32::EPSILON * a.abs().max(1e-30));
        }
    }

    #[test]
    fn feasible_region_slash_satisfies_all_constraints(
        phi in 0.01f64..0.5,
        phi_ch in 0.0f64..0.4,
        eps1 in 0.0f64..0.5,
        c_gap in 1.0f64..20.0,
    ) {
        let p = EconParams {
            phi,
            phi_ch,
            eps1,
            c_p: 10.0 + c_gap,
            c_p_cheap: 10.0,
            d_p: 1e7,
            ..EconParams::default_market()
        };
        if let Some((lo, hi)) = p.feasible_slash_region() {
            let s = (lo + hi) / 2.0;
            prop_assert!(p.u_proposer_honest(s) > p.u_proposer_cheap(s));
            prop_assert!(p.u_challenger_guilty(s) > 0.0);
            prop_assert!(p.u_committee_guilty(s) > 0.0);
            prop_assert!(p.u_challenger_clean() < 0.0);
        }
    }

    #[test]
    fn exceedance_monotone_in_observation(scale in 1.0f64..10.0) {
        use tao_graph::NodeId;
        use tao_calib::{OperatorThreshold, ThresholdBundle};
        let bundle = ThresholdBundle {
            grid: PERCENTILE_GRID.to_vec(),
            alpha: 3.0,
            operators: vec![OperatorThreshold {
                node: NodeId(0),
                mnemonic: "matmul".into(),
                thresholds: PercentilePair {
                    abs: vec![1e-6; PERCENTILE_GRID.len()],
                    rel: vec![1e-5; PERCENTILE_GRID.len()],
                },
                mean_abs_error: 0.0,
            }],
        };
        let small = PercentilePair {
            abs: vec![1e-7; PERCENTILE_GRID.len()],
            rel: vec![1e-6; PERCENTILE_GRID.len()],
        };
        let big = PercentilePair {
            abs: small.abs.iter().map(|v| v * scale).collect(),
            rel: small.rel.iter().map(|v| v * scale).collect(),
        };
        let e_small = bundle.exceedance(NodeId(0), &small).unwrap();
        let e_big = bundle.exceedance(NodeId(0), &big).unwrap();
        prop_assert!(e_big >= e_small);
        prop_assert!((e_big / e_small - scale).abs() < 1e-9);
    }
}

mod dispute_localization {
    use super::*;
    use std::sync::OnceLock;
    use tao::Deployment;
    use tao_device::{Device, Fleet};
    use tao_graph::{execute, Execution, Perturbations};
    use tao_models::{bert, data, BertConfig};
    use tao_protocol::{run_dispute, ChallengerView, DisputeConfig, DisputeResult, ProposerView};
    use tao_tensor::Tensor;

    /// One deployment, one input, and the challenger's screening trace of
    /// that input — shared across all proptest cases. The screening trace
    /// depends only on the challenger device and the inputs, never on the
    /// proposer's perturbation, so every dispute below reuses it exactly
    /// as the session runtime does.
    fn deployment() -> &'static (Deployment, Vec<Tensor<f32>>, Execution) {
        static CELL: OnceLock<(Deployment, Vec<Tensor<f32>>, Execution)> = OnceLock::new();
        CELL.get_or_init(|| {
            let cfg = BertConfig {
                layers: 1,
                ..BertConfig::small()
            };
            let model = bert::build(cfg, 8);
            let samples = data::token_dataset(8, cfg.seq, cfg.vocab, 77);
            let d = tao::deploy(model, Fleet::standard(), &samples, 3.0).expect("deploy");
            let inputs = vec![bert::sample_ids(cfg, 55)];
            let screening = execute(&d.model.graph, &inputs, Device::h100_like().config(), None)
                .expect("challenger screening");
            (d, inputs, screening)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For any perturbed compute node and any partition width, the
        /// dispute game localizes to exactly the perturbed operator.
        #[test]
        fn dispute_localizes_any_perturbed_node(which in 0usize..100, n_way in 2usize..9, seed in 0u64..1000) {
            let (d, inputs, screening) = deployment();
            let nodes = d.model.graph.compute_nodes();
            let target = nodes[which % nodes.len()];
            let proposer = Device::rtx4090_like();
            let honest = execute(&d.model.graph, inputs, proposer.config(), None).expect("forward");
            let shape = honest.values[target.0].dims().to_vec();
            let delta = Tensor::<f32>::randn(&shape, seed).mul_scalar(0.05);
            let mut p = Perturbations::new();
            p.insert(target, delta);
            let trace = execute(&d.model.graph, inputs, proposer.config(), Some(&p)).expect("forward");
            let challenger_dev = Device::h100_like();
            let proposer_commitment = tao_merkle::TraceCommitment::build(&trace.values);
            let outcome = run_dispute(
                &d.model.graph, d.dispute_anchors(),
                ProposerView::new(&trace).with_commitment(&proposer_commitment), inputs,
                ChallengerView::with_screening(&challenger_dev, screening),
                &d.thresholds,
                DisputeConfig { n_way },
            ).expect("dispute");
            prop_assert_eq!(outcome.challenger_forward_passes, 0);
            prop_assert_eq!(outcome.rehashed_leaves, 0);
            // A perturbation can be numerically absorbed downstream (e.g.
            // a near-uniform delta into softmax); when it is observable at
            // all, the game must land exactly on the perturbed operator.
            if let DisputeResult::Leaf(leaf) = outcome.result {
                prop_assert_eq!(leaf, target, "N = {}", n_way);
            }
        }
    }
}
