//! Scheduler equivalence: running a batch of mixed honest/malicious
//! sessions concurrently must be observationally identical to running the
//! same sessions one after another — same claim ids, same challenge
//! flags, same winners, and bit-exact final balances.

use tao::{
    deploy, Deployment, ProposerBehavior, Scheduler, SessionBuilder, SessionReport,
    SharedCoordinator,
};
use tao_device::{Device, Fleet};
use tao_graph::{execute, Perturbations};
use tao_models::{bert, data, BertConfig};
use tao_protocol::{ClaimStatus, Coordinator, EconParams, LeafVerdict, Party};
use tao_tensor::Tensor;

const JOBS: usize = 6;
/// Which session indices cheat.
const CHEATS: [usize; 2] = [1, 4];

fn deployment() -> (Deployment, BertConfig) {
    let cfg = BertConfig {
        layers: 1,
        ..BertConfig::small()
    };
    let model = bert::build(cfg, 1);
    // 16 samples for envelope coverage on fresh inputs (see e2e notes).
    let samples = data::token_dataset(16, cfg.seq, cfg.vocab, 10);
    let d = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    (d, cfg)
}

/// A coordinator funded for the whole batch at once: concurrent sessions
/// escrow all their deposits simultaneously, so the proposer needs
/// `JOBS * D_p` available rather than `D_p` at a time.
fn coordinator() -> SharedCoordinator {
    let econ = EconParams::default_market();
    let (lo, hi) = econ.feasible_slash_region().unwrap();
    let c = Coordinator::new(econ, (lo + hi) / 2.0).unwrap();
    c.fund("proposer", 50_000);
    c.fund("challenger", 5_000);
    SharedCoordinator::new(c)
}

/// The same batch of sessions every time: inputs vary per job, and the
/// cheating jobs perturb different operators.
fn builders(d: &Deployment, cfg: BertConfig) -> Vec<SessionBuilder> {
    let nodes = d.model.graph.compute_nodes();
    (0..JOBS)
        .map(|i| {
            let inputs = vec![bert::sample_ids(cfg, 500 + i as u64)];
            let b = SessionBuilder::new(d, inputs.clone());
            if CHEATS.contains(&i) {
                let target = nodes[(2 + 3 * i) % nodes.len()];
                let honest = execute(
                    &d.model.graph,
                    &inputs,
                    Device::rtx4090_like().config(),
                    None,
                )
                .unwrap();
                let shape = honest.values[target.0].dims().to_vec();
                let delta = Tensor::<f32>::randn(&shape, 9_000 + i as u64).mul_scalar(0.05);
                let mut p = Perturbations::new();
                p.insert(target, delta);
                b.behavior(ProposerBehavior::Malicious(p))
            } else {
                b
            }
        })
        .collect()
}

fn winner_of(report: &SessionReport) -> Option<Party> {
    match report.final_status {
        ClaimStatus::Settled { winner } => Some(winner),
        _ => None,
    }
}

#[test]
fn concurrent_scheduler_is_equivalent_to_serial_execution() {
    let (d, cfg) = deployment();

    // Serial baseline: one session at a time through the one-shot runner.
    let serial_coord = coordinator();
    let serial: Vec<SessionReport> = builders(&d, cfg)
        .into_iter()
        .map(|b| b.run(&serial_coord).unwrap())
        .collect();

    // Concurrent run over a fresh coordinator, with a pool wider than the
    // old 8-worker cap so the parallel settle phase is genuinely
    // concurrent even for this 6-session batch.
    let parallel_coord = coordinator();
    let parallel = Scheduler::with_threads(12)
        .run(&parallel_coord, builders(&d, cfg))
        .unwrap();

    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.claim_id, i as u64, "serial claim ids are sequential");
        assert_eq!(p.claim_id, i as u64, "parallel claim ids are deterministic");
        assert_eq!(s.challenged, p.challenged, "session {i} challenge flag");
        assert_eq!(
            s.challenged,
            CHEATS.contains(&i),
            "session {i}: exactly the cheats are flagged (exceedance {})",
            s.exceedance
        );
        assert_eq!(s.final_status, p.final_status, "session {i} final status");
        assert_eq!(winner_of(s), winner_of(p), "session {i} winner");
        assert_eq!(
            s.verdict.map(|(_, v)| v),
            p.verdict.map(|(_, v)| v),
            "session {i} leaf verdict"
        );
        if s.challenged {
            assert_eq!(winner_of(s), Some(Party::Challenger));
            assert_eq!(s.verdict.map(|(_, v)| v), Some(LeafVerdict::Fraud));
            // Both paths reuse the screening trace inside the dispute.
            assert_eq!(
                s.dispute.as_ref().unwrap().challenger_forward_passes,
                0,
                "serial dispute recomputed the forward pass"
            );
            assert_eq!(
                p.dispute.as_ref().unwrap().challenger_forward_passes,
                0,
                "parallel dispute recomputed the forward pass"
            );
        }
    }

    // Final balances are bit-identical: the fixed-point ledger makes bond
    // arithmetic a sum of exact per-event deltas, independent of
    // interleaving.
    for account in ["proposer", "challenger", "committee-pool"] {
        let a = serial_coord.balance(account);
        let b = parallel_coord.balance(account);
        assert_eq!(a, b, "{account}: serial {a} vs parallel {b}");
    }
    // And nothing is left in escrow on either path.
    let serial_inner = serial_coord.into_inner();
    let parallel_inner = parallel_coord.into_inner();
    for account in ["proposer", "challenger"] {
        assert_eq!(serial_inner.escrowed(account), tao_protocol::Money::ZERO);
        assert_eq!(parallel_inner.escrowed(account), tao_protocol::Money::ZERO);
    }
}
