//! Shared harness for the coordinator concurrency tests
//! (`coordinator_invariants.rs`, `coordinator_stress.rs`): forced worker
//! counts, the deadlock watchdog, and the common claim/economics setup.
//! Cargo skips subdirectories of `tests/`, so this compiles only as a
//! module of each test binary that declares `mod common;`.

use std::sync::mpsc;
use std::time::Duration;

use tao_merkle::ClaimMeta;
use tao_protocol::EconParams;

/// Challenge-window length used by every generated claim.
pub const WINDOW: u64 = 10;
/// Committee size used by every settlement.
pub const COMMITTEE: usize = 3;

/// Forced worker counts: `TAO_TEST_WORKERS=<n>` pins one (the CI
/// fail-fast step runs 2, 8 and 32), default sweeps all three.
pub fn worker_counts() -> Vec<usize> {
    match std::env::var("TAO_TEST_WORKERS") {
        Ok(v) => vec![v.parse().expect("TAO_TEST_WORKERS must be a number")],
        Err(_) => vec![2, 8, 32],
    }
}

/// Runs `f` on a helper thread and fails the test if it has not finished
/// within 60 s — a deadlock in the shard locking would otherwise hang the
/// suite forever.
pub fn with_deadlock_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(60))
        .expect("deadlock watchdog: parallel coordinator phase exceeded 60s")
}

/// Claim metadata shared by every generated claim.
pub fn meta() -> ClaimMeta {
    ClaimMeta {
        device: "sim-a100".into(),
        kernel: "pairwise".into(),
        dtype: "f32".into(),
        challenge_window: WINDOW,
    }
}

/// Default market economics with a mid-region slash.
pub fn econ_and_slash() -> (EconParams, f64) {
    let econ = EconParams::default_market();
    let (lo, hi) = econ.feasible_slash_region().unwrap();
    (econ, (lo + hi) / 2.0)
}

/// A per-test-distinct claim commitment.
pub fn commitment(tag: &str, i: usize) -> tao_merkle::Digest {
    tao_merkle::sha256(format!("{tag}-{i}").as_bytes())
}
