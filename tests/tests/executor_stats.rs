//! Executor cost-regression suite: the `Arc`-sharing and buffer-pool
//! contracts of `tao-graph`, pinned on a transformer-shaped graph.
//!
//! Contracts under test:
//!
//! * **Zero parameter copies.** Tensor storage is copy-on-write, so a
//!   `Parameter` node's value shares the graph's weight buffer — in both
//!   the trace executor and the pooled forward executor, on every pass.
//! * **Pooled forward allocates strictly fewer buffers** than the trace
//!   executor on the same graph (structural sharing plus pool reuse), and
//!   its peak resident set is strictly below keep-everything.
//! * **Bit-identical outputs.** The pooled executor runs the same kernels
//!   in the same order; recycled buffers must never change a bit.

use tao_graph::{execute, execute_with_stats, forward_with_stats, BufferPool, OpKind};
use tao_models::{qwen, QwenConfig};
use tao_tensor::{KernelConfig, Tensor};

fn transformer() -> (tao_graph::Graph, Vec<Tensor<f32>>) {
    let cfg = QwenConfig::small();
    let model = qwen::build(cfg, 77);
    let inputs = vec![qwen::sample_ids(cfg, 5)];
    (model.graph, inputs)
}

#[test]
fn trace_executor_shares_parameters_with_zero_copies() {
    let (graph, inputs) = transformer();
    let cfg = KernelConfig::reference();
    let (exec, stats) = execute_with_stats(&graph, &inputs, &cfg, None).unwrap();
    assert_eq!(stats.param_copies, 0, "parameters must be Arc-shared");
    // Spot-check the sharing directly: every Parameter node's traced value
    // aliases the graph's own weight buffer.
    let mut params_seen = 0;
    for node in graph.nodes() {
        if let OpKind::Parameter(name) = &node.kind {
            params_seen += 1;
            assert!(
                exec.values[node.id.0].shares_buffer(graph.param(name).unwrap()),
                "parameter {name:?} was deep-copied into the trace"
            );
        }
    }
    assert!(params_seen > 10, "transformer should have many parameters");
    assert!(stats.peak_resident_bytes > 0);
}

#[test]
fn pooled_forward_allocates_strictly_less_and_matches_bitwise() {
    let (graph, inputs) = transformer();
    let cfg = KernelConfig::reference();
    let (trace, trace_stats) = execute_with_stats(&graph, &inputs, &cfg, None).unwrap();
    let want = trace.outputs(&graph);

    let mut pool = BufferPool::new();
    for pass in 0..2 {
        let (outputs, stats) = forward_with_stats(&graph, &inputs, &cfg, &mut pool).unwrap();
        // Bit-identical outputs: same kernels, same order, recycled
        // buffers change nothing.
        assert_eq!(outputs.len(), want.len());
        for (got, want) in outputs.iter().zip(&want) {
            assert_eq!(got.dims(), want.dims(), "pass {pass}");
            let same = got
                .data()
                .iter()
                .zip(want.data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "pass {pass}: pooled forward drifted from the trace");
        }
        assert_eq!(stats.param_copies, 0, "pass {pass}");
        assert!(
            stats.fresh_allocations < trace_stats.fresh_allocations,
            "pass {pass}: pooled {} fresh buffers vs trace executor {}",
            stats.fresh_allocations,
            trace_stats.fresh_allocations
        );
        // With softmax/norm outputs routed through the pool the working
        // set is a small fraction of keep-everything; pin at least 2x.
        assert!(
            stats.peak_resident_bytes * 2 < trace_stats.peak_resident_bytes,
            "pass {pass}: pooled peak {} must undercut keep-everything {} by 2x",
            stats.peak_resident_bytes,
            trace_stats.peak_resident_bytes
        );
        if pass > 0 {
            assert!(
                stats.pool_hits > 0,
                "warm passes must draw from the buffer pool"
            );
        }
    }
}

#[test]
fn warm_pool_reduces_fresh_allocations_further() {
    let (graph, inputs) = transformer();
    let cfg = KernelConfig::reference();
    let mut pool = BufferPool::new();
    let (_, cold) = forward_with_stats(&graph, &inputs, &cfg, &mut pool).unwrap();
    let (_, warm) = forward_with_stats(&graph, &inputs, &cfg, &mut pool).unwrap();
    assert!(
        warm.fresh_allocations < cold.fresh_allocations,
        "warm pass: {} fresh vs cold {}",
        warm.fresh_allocations,
        cold.fresh_allocations
    );
    assert!(warm.pool_hits >= cold.pool_hits);
}

#[test]
fn every_pooled_capable_op_draws_from_a_warm_pool() {
    // The pooled kernel set covers elementwise, GEMM, convolution, softmax
    // and normalization ops. After one priming pass every such node must
    // compute into a recycled buffer — a fresh allocation for any of them
    // means an op silently fell back to the allocating kernel (the
    // norm/softmax/conv regression this test exists to catch).
    let (graph, inputs) = transformer();
    let cfg = KernelConfig::reference();
    let pooled_capable = graph
        .nodes()
        .iter()
        .filter(|n| {
            matches!(
                n.kind,
                OpKind::Add
                    | OpKind::Sub
                    | OpKind::Mul
                    | OpKind::Div
                    | OpKind::Neg
                    | OpKind::AddScalar(_)
                    | OpKind::MulScalar(_)
                    | OpKind::Relu
                    | OpKind::MatMul
                    | OpKind::Linear
                    | OpKind::Conv2d { .. }
                    | OpKind::Softmax
                    | OpKind::LayerNorm { .. }
                    | OpKind::RmsNorm { .. }
            )
        })
        .count() as u64;
    assert!(
        graph
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::Softmax | OpKind::RmsNorm { .. })),
        "fixture must exercise the softmax/norm pooled arms"
    );
    let mut pool = BufferPool::new();
    let _ = forward_with_stats(&graph, &inputs, &cfg, &mut pool).unwrap();
    let (_, warm) = forward_with_stats(&graph, &inputs, &cfg, &mut pool).unwrap();
    assert_eq!(
        warm.pool_hits, pooled_capable,
        "warm pass: {} pool hits but {} pooled-capable ops — some op is \
         allocating fresh instead of recycling",
        warm.pool_hits, pooled_capable
    );
}

#[test]
fn background_committer_keeps_pool_economics_identical() {
    // The streamed-commitment hook must not tax the pooled executor: a
    // retired buffer is handed to the background hasher *by value* (no
    // clone) and comes back to the pool once digested. With the
    // end-of-pass drain, an observed warm pass draws exactly as many
    // buffers from the pool as an unobserved one — and still produces the
    // bit-identical commitment.
    use tao_merkle::{StreamingCommitter, TraceCommitment};

    let (graph, inputs) = transformer();
    let cfg = KernelConfig::reference();
    let trace = execute(&graph, &inputs, &cfg, None).unwrap();
    let oracle = TraceCommitment::build(&trace.values);

    // Baseline: unobserved cold + warm passes.
    let mut pool = BufferPool::new();
    let _ = forward_with_stats(&graph, &inputs, &cfg, &mut pool).unwrap();
    let (_, warm) = forward_with_stats(&graph, &inputs, &cfg, &mut pool).unwrap();
    assert!(warm.pool_hits > 0);

    // Observed: explicit background mode (`new` would pick inline on a
    // single-core host) with its own pool, same cold + warm schedule.
    let mut pool_obs = BufferPool::new();
    for pass in 0..2u32 {
        let mut committer = StreamingCommitter::background(graph.len());
        let (_, stats) = tao_graph::forward_observed_with_stats(
            &graph,
            &inputs,
            &cfg,
            &mut pool_obs,
            &mut committer,
        )
        .unwrap();
        committer.drain_returns(&mut pool_obs);
        assert_eq!(committer.finish(), oracle, "pass {pass}");
        if pass == 1 {
            assert_eq!(
                stats.pool_hits, warm.pool_hits,
                "no-clone retirement changed the warm pool economics"
            );
            assert_eq!(stats.fresh_allocations, warm.fresh_allocations);
            assert_eq!(stats.param_copies, 0);
        }
    }
    // After the drain, the observed pool holds exactly what the
    // unobserved one does.
    assert_eq!(pool_obs.len(), pool.len());
    assert_eq!(pool_obs.held_bytes(), pool.held_bytes());
}

#[test]
fn greedy_decode_runs_pooled_with_zero_parameter_copies() {
    // The decode loop rides the pooled executor; its per-step stats are
    // internal, so pin the contract at the executor level on the same
    // graph and assert decode stays deterministic across executors.
    let cfg = QwenConfig::small();
    let model = qwen::build(cfg, 11);
    let prompt = qwen::sample_ids(cfg, 2);
    let kernel = KernelConfig::reference();
    let steps = tao_models::greedy_decode(
        &model,
        cfg,
        &prompt,
        3,
        &kernel,
        &tao_models::decode::Argmax,
    )
    .unwrap();
    assert_eq!(steps.len(), 3);
    // Reference: drive the trace executor by hand and compare tokens.
    let mut window = prompt.clone();
    for step in &steps {
        let exec = execute(&model.graph, std::slice::from_ref(&window), &kernel, None).unwrap();
        let logits = exec.value(model.logits).unwrap();
        let lane = &logits.data()[logits.len() - cfg.vocab..];
        let argmax = lane
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(step.token, argmax, "pooled decode diverged from trace");
        let mut ids = window.data()[1..].to_vec();
        ids.push(step.token as f32);
        window = Tensor::from_vec(ids, &[cfg.seq]).unwrap();
    }
}

