//! Calibrated-coverage sweep: how honest fresh-input exceedance behaves as
//! the calibration sample count and the safety factor α vary.
//!
//! Max-envelope thresholds are max-statistics: with few calibration
//! samples an honest operator's fresh-input tail can exceed its own τ
//! (exceedance just above 1). That bit PR 1 (e2e disputes mislocalized to
//! honest nodes at 6 samples) and PR 2 (`marketplace_sim`'s round-0
//! descent walked into an honest child at 24 samples/α=3). This sweep
//! turns the gotcha into a regression test: coverage must hold at the
//! documented safe operating point, improve monotonically with samples,
//! and scale exactly linearly with α.

use tao_calib::{calibrate, error_profile, TailEstimator, ThresholdBundle, DEFAULT_EPS};
use tao_device::Fleet;
use tao_graph::{execute, Graph, GraphBuilder, OpKind};
use tao_tensor::Tensor;

const SAMPLE_COUNTS: [usize; 4] = [6, 12, 24, 48];
const ALPHAS: [f64; 2] = [3.0, 5.0];
const FRESH_INPUTS: usize = 6;

/// Documented safe operating point (PR 2's `marketplace_sim` workaround):
/// honest fresh-input exceedance must stay ≤ 1 here.
const SAFE_SAMPLES: usize = 48;
const SAFE_ALPHA: f64 = 5.0;

/// A compact model with the reduction families whose cross-device drift
/// the thresholds must cover: matmul, GELU, linear and softmax.
fn model() -> Graph {
    let mut b = GraphBuilder::new(1);
    let x = b.input(0, "x");
    let w1 = b.parameter("w1", Tensor::<f32>::rand_uniform(&[48, 32], -0.4, 0.4, 1));
    let m1 = b.op("m1", OpKind::MatMul, &[x, w1]);
    let g1 = b.op("g1", OpKind::Gelu, &[m1]);
    let w2 = b.parameter("w2", Tensor::<f32>::rand_uniform(&[32, 32], -0.4, 0.4, 2));
    let b2 = b.parameter("b2", Tensor::<f32>::rand_uniform(&[32], -0.1, 0.1, 3));
    let l2 = b.op("l2", OpKind::Linear, &[g1, w2, b2]);
    let sm = b.op("sm", OpKind::Softmax, &[l2]);
    b.finish(vec![sm]).unwrap()
}

fn sample(seed: u64) -> Vec<Tensor<f32>> {
    vec![Tensor::<f32>::rand_uniform(&[6, 48], -1.5, 1.5, seed)]
}

/// Max honest fresh-input exceedance over every thresholded operator,
/// every ordered device pair, and `FRESH_INPUTS` unseen inputs.
fn max_fresh_exceedance(g: &Graph, bundle: &ThresholdBundle, fleet: &Fleet) -> f64 {
    let mut worst = 0.0f64;
    for s in 0..FRESH_INPUTS as u64 {
        let input = sample(9_000 + s);
        let traces: Vec<_> = fleet
            .devices()
            .iter()
            .map(|d| execute(g, &input, d.config(), None).unwrap())
            .collect();
        for i in 0..traces.len() {
            for j in 0..traces.len() {
                if i == j {
                    continue;
                }
                for op in &bundle.operators {
                    let prof = error_profile(
                        &traces[i].values[op.node.0],
                        &traces[j].values[op.node.0],
                        DEFAULT_EPS,
                    );
                    worst = worst.max(bundle.exceedance(op.node, &prof).unwrap());
                }
            }
        }
    }
    worst
}

#[test]
fn coverage_sweep_over_sample_counts_and_alpha() {
    let g = model();
    let fleet = Fleet::standard();
    // Nested calibration sets: the n-sample set is a prefix of the
    // (n+1)-sample set, so envelopes (and thus thresholds) are pointwise
    // non-decreasing in n and exceedance is exactly non-increasing.
    let all_samples: Vec<Vec<Tensor<f32>>> = (0..*SAMPLE_COUNTS.iter().max().unwrap() as u64)
        .map(|i| sample(100 + i))
        .collect();

    // sweep[(n, α)] -> max honest fresh exceedance.
    let mut sweep = Vec::new();
    for &n in &SAMPLE_COUNTS {
        let record = calibrate(&g, &all_samples[..n], &fleet).unwrap();
        for &alpha in &ALPHAS {
            let bundle = record.clone().into_thresholds(alpha);
            let exc = max_fresh_exceedance(&g, &bundle, &fleet);
            println!("coverage sweep: samples={n:2} alpha={alpha} max fresh exceedance {exc:.3}");
            sweep.push((n, alpha, exc));
        }
    }

    let exc_at = |n: usize, alpha: f64| {
        sweep
            .iter()
            .find(|&&(sn, sa, _)| sn == n && sa == alpha)
            .map(|&(_, _, e)| e)
            .unwrap()
    };

    // 1. The documented operating point covers honest heterogeneity.
    let safe = exc_at(SAFE_SAMPLES, SAFE_ALPHA);
    assert!(
        safe <= 1.0,
        "honest fresh-input exceedance {safe:.3} > 1 at the documented \
         operating point ({SAFE_SAMPLES} samples, alpha={SAFE_ALPHA})"
    );

    // 2. Exceedance is non-increasing in the (nested) sample count.
    for &alpha in &ALPHAS {
        for w in SAMPLE_COUNTS.windows(2) {
            let (lo, hi) = (exc_at(w[0], alpha), exc_at(w[1], alpha));
            assert!(
                hi <= lo * (1.0 + 1e-12),
                "coverage regressed with more samples at alpha={alpha}: \
                 {lo:.3} @ {} -> {hi:.3} @ {}",
                w[0],
                w[1]
            );
        }
    }

    // 3. Thresholds scale linearly with α, so exceedance scales with 1/α.
    for &n in &SAMPLE_COUNTS {
        let (e3, e5) = (exc_at(n, 3.0), exc_at(n, 5.0));
        assert!(
            (e5 - e3 * 3.0 / 5.0).abs() <= 1e-9 * e3.max(1.0),
            "alpha scaling broken at {n} samples: {e3:.4} @ alpha 3 vs {e5:.4} @ alpha 5"
        );
    }
}

#[test]
fn alpha_inflation_never_shrinks_thresholds() {
    // Structural sanity for the sweep arithmetic: inflating an envelope by
    // a larger alpha dominates pointwise.
    let g = model();
    let samples: Vec<Vec<Tensor<f32>>> = (0..8).map(|i| sample(500 + i)).collect();
    let record = calibrate(&g, &samples, &Fleet::standard()).unwrap();
    let b3 = record.clone().into_thresholds(3.0);
    let b5 = record.into_thresholds(5.0);
    for (t3, t5) in b3.operators.iter().zip(&b5.operators) {
        for (a3, a5) in t3.thresholds.abs.iter().zip(&t5.thresholds.abs) {
            assert!(a5 >= a3);
        }
        for (r3, r5) in t3.thresholds.rel.iter().zip(&t5.thresholds.rel) {
            assert!(r5 >= r3);
        }
    }
}

/// Differential coverage, raw max envelope vs smoothed-tail estimator:
/// the smoothed bundle dominates pointwise at every (sample count, α)
/// cell, so honest-operator coverage never decreases, and the
/// nested-sample monotonicity of the raw sweep survives smoothing. The
/// documented safe operating point must hold under both estimators.
#[test]
fn smoothed_tail_estimator_never_reduces_honest_coverage() {
    let g = model();
    let fleet = Fleet::standard();
    let all_samples: Vec<Vec<Tensor<f32>>> = (0..*SAMPLE_COUNTS.iter().max().unwrap() as u64)
        .map(|i| sample(100 + i))
        .collect();

    let mut smoothed_sweep = Vec::new();
    for &n in &SAMPLE_COUNTS {
        let record = calibrate(&g, &all_samples[..n], &fleet).unwrap();
        for &alpha in &ALPHAS {
            let raw = record
                .clone()
                .into_thresholds_with(alpha, TailEstimator::RawMax);
            let smoothed = record
                .clone()
                .into_thresholds_with(alpha, TailEstimator::smoothed_default());
            // Pointwise dominance: smoothing only adds tail slack.
            for (r, s) in raw.operators.iter().zip(&smoothed.operators) {
                for (a, b) in r.thresholds.abs.iter().zip(&s.thresholds.abs) {
                    assert!(b >= a, "smoothed abs threshold shrank at {n} samples");
                }
                for (a, b) in r.thresholds.rel.iter().zip(&s.thresholds.rel) {
                    assert!(b >= a, "smoothed rel threshold shrank at {n} samples");
                }
            }
            let exc_raw = max_fresh_exceedance(&g, &raw, &fleet);
            let exc_smoothed = max_fresh_exceedance(&g, &smoothed, &fleet);
            println!(
                "smoothed coverage: samples={n:2} alpha={alpha} \
                 raw exc {exc_raw:.3} -> smoothed exc {exc_smoothed:.3}"
            );
            assert!(
                exc_smoothed <= exc_raw * (1.0 + 1e-12),
                "smoothed estimator reduced honest coverage at {n} samples, alpha={alpha}: \
                 {exc_raw:.3} -> {exc_smoothed:.3}"
            );
            smoothed_sweep.push((n, alpha, exc_smoothed));
        }
    }

    // Nested-sample monotonicity still holds under the smoothed estimator.
    let exc_at = |n: usize, alpha: f64| {
        smoothed_sweep
            .iter()
            .find(|&&(sn, sa, _)| sn == n && sa == alpha)
            .map(|&(_, _, e)| e)
            .unwrap()
    };
    for &alpha in &ALPHAS {
        for w in SAMPLE_COUNTS.windows(2) {
            let (lo, hi) = (exc_at(w[0], alpha), exc_at(w[1], alpha));
            assert!(
                hi <= lo * (1.0 + 1e-12),
                "smoothed coverage regressed with more samples at alpha={alpha}: \
                 {lo:.3} @ {} -> {hi:.3} @ {}",
                w[0],
                w[1]
            );
        }
    }

    // The documented operating point covers under the smoothed bundle too.
    let safe = exc_at(SAFE_SAMPLES, SAFE_ALPHA);
    assert!(safe <= 1.0, "smoothed safe-point exceedance {safe:.3} > 1");
}
