//! Scheduler stress: a batch of 32 mixed honest/cheating sessions on a
//! 16-worker pool (twice the old 8-worker ceiling, which the sharded
//! coordinator lifted). Under that contention the pool bound, the
//! deterministic claim-id assignment and the serial-equivalence guarantee
//! — now including the **parallel settle phase** — must all still hold.

use tao::{
    deploy, Deployment, ProposerBehavior, Scheduler, SessionBuilder, SessionReport,
    SharedCoordinator,
};
use tao_device::{Device, Fleet};
use tao_graph::{execute, Perturbations};
use tao_models::{bert, data, BertConfig};
use tao_protocol::{ClaimStatus, Coordinator, EconParams, Party, MAX_PAR_THREADS, MAX_WORKERS};
use tao_tensor::Tensor;

const JOBS: usize = 32;
/// Every fourth session cheats, each at a different operator.
const fn cheats(i: usize) -> bool {
    i % 4 == 1
}

fn deployment() -> (Deployment, BertConfig) {
    let cfg = BertConfig {
        layers: 1,
        ..BertConfig::small()
    };
    let model = bert::build(cfg, 1);
    let samples = data::token_dataset(16, cfg.seq, cfg.vocab, 10);
    let d = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    (d, cfg)
}

/// Funded for all 32 concurrent deposits at once.
fn coordinator() -> SharedCoordinator {
    let econ = EconParams::default_market();
    let (lo, hi) = econ.feasible_slash_region().unwrap();
    let c = Coordinator::new(econ, (lo + hi) / 2.0).unwrap();
    c.fund("proposer", 500_000);
    c.fund("challenger", 50_000);
    SharedCoordinator::new(c)
}

fn builders(d: &Deployment, cfg: BertConfig) -> Vec<SessionBuilder> {
    let nodes = d.model.graph.compute_nodes();
    (0..JOBS)
        .map(|i| {
            let inputs = vec![bert::sample_ids(cfg, 40_000 + i as u64)];
            let b = SessionBuilder::new(d, inputs.clone());
            if cheats(i) {
                let target = nodes[(1 + 2 * i) % nodes.len()];
                let honest = execute(
                    &d.model.graph,
                    &inputs,
                    Device::rtx4090_like().config(),
                    None,
                )
                .unwrap();
                let shape = honest.values[target.0].dims().to_vec();
                let delta = Tensor::<f32>::randn(&shape, 70_000 + i as u64).mul_scalar(0.05);
                let mut p = Perturbations::new();
                p.insert(target, delta);
                b.behavior(ProposerBehavior::Malicious(p))
            } else {
                b
            }
        })
        .collect()
}

fn winner_of(report: &SessionReport) -> Option<Party> {
    match report.final_status {
        ClaimStatus::Settled { winner } => Some(winner),
        _ => None,
    }
}

#[test]
fn worker_pool_is_configurable_beyond_the_old_cap() {
    // The old 8-worker ceiling (MAX_PAR_THREADS) is lifted: pools size
    // freely up to MAX_WORKERS, and only degenerate requests clamp.
    const { assert!(MAX_WORKERS > MAX_PAR_THREADS) };
    assert_eq!(Scheduler::with_threads(16).threads(), 16);
    assert_eq!(Scheduler::with_threads(32).threads(), 32);
    assert_eq!(Scheduler::with_threads(1_000).threads(), MAX_WORKERS);
    assert_eq!(Scheduler::with_threads(0).threads(), 1);
    assert_eq!(Scheduler::with_threads(3).threads(), 3);
    assert!(Scheduler::new().threads() <= MAX_WORKERS);
}

#[test]
fn batch_of_32_under_contention_matches_serial_execution() {
    let (d, cfg) = deployment();

    // Serial baseline through the one-shot runner.
    let serial_coord = coordinator();
    let serial: Vec<SessionReport> = builders(&d, cfg)
        .into_iter()
        .map(|b| b.run(&serial_coord).unwrap())
        .collect();

    // Concurrent run on a 16-worker pool — beyond the old 8-worker cap —
    // over 32 sessions, so every worker still multiplexes sessions and
    // the settle phase runs 16-wide over the sharded coordinator.
    let parallel_coord = coordinator();
    let scheduler = Scheduler::with_threads(16);
    assert_eq!(scheduler.threads(), 16);
    let parallel = scheduler.run(&parallel_coord, builders(&d, cfg)).unwrap();

    assert_eq!(serial.len(), JOBS);
    assert_eq!(parallel.len(), JOBS);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        // Claim ids deterministic in session order on both paths.
        assert_eq!(s.claim_id, i as u64, "serial claim id {i}");
        assert_eq!(p.claim_id, i as u64, "parallel claim id {i}");
        // Exactly the cheats get challenged, and observably identically.
        assert_eq!(s.challenged, cheats(i), "session {i} challenge flag");
        assert_eq!(s.challenged, p.challenged, "session {i} flag parity");
        assert_eq!(s.final_status, p.final_status, "session {i} status");
        assert_eq!(winner_of(s), winner_of(p), "session {i} winner");
        if cheats(i) {
            assert_eq!(winner_of(p), Some(Party::Challenger), "cheat {i} caught");
            // Screening-trace reuse holds under contention too.
            assert_eq!(p.dispute.as_ref().unwrap().challenger_forward_passes, 0);
        } else {
            assert!(p.proposer_prevailed(), "honest session {i}");
        }
    }

    // Balances and escrow match the serial run bit-exactly — fixed-point
    // money leaves no rounding noise to tolerate.
    for account in ["proposer", "challenger", "committee-pool"] {
        let a = serial_coord.balance(account);
        let b = parallel_coord.balance(account);
        assert_eq!(a, b, "{account}: serial {a} vs parallel {b}");
    }
    let serial_inner = serial_coord.into_inner();
    let parallel_inner = parallel_coord.into_inner();
    for account in ["proposer", "challenger"] {
        assert_eq!(serial_inner.escrowed(account), tao_protocol::Money::ZERO);
        assert_eq!(parallel_inner.escrowed(account), tao_protocol::Money::ZERO);
    }
    // Ledger conservation after the parallel settle phase — exact.
    let ledger = parallel_inner.ledger();
    assert_eq!(
        ledger.total_value(),
        ledger.injected(),
        "conservation violated after parallel settle"
    );
}
