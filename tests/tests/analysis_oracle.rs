//! Differential oracle for the static analysis layer: the report
//! [`tao_analysis::analyze`] folds out of the contracts must agree
//! *exactly* with what `execute_with_stats` measures on a real forward
//! pass — per-node shapes, per-node FLOPs, and the trace executor's peak
//! resident bytes — on every bundled model, on an operator zoo covering
//! every `OpKind`, and on proptest-random graphs with ragged, broadcast
//! and batched shapes.
//!
//! The suite also pins the gas schedule cross-crate (the static base must
//! equal `tao_protocol::gas::commit_claim()`) and exercises the linter's
//! red path: planted-violation fixtures must be rejected.

use proptest::prelude::*;
use tao_analysis::{
    analyze, analyze_with, LintConfig, LintRule, Severity, StaticReport, BYTES_PER_GAS,
    FLOPS_PER_GAS, GAS_BASE,
};
use tao_graph::{execute_with_stats, Graph, GraphBuilder, NodeId, OpKind};
use tao_models::{
    bert, data, diffusion, qwen, resnet, transformer, BertConfig, DiffusionConfig, Model,
    QwenConfig, ResNetConfig, TransformerConfig,
};
use tao_tensor::{KernelConfig, Tensor};

/// Runs the graph and asserts the static report matches the measured
/// execution exactly: shapes, per-node FLOPs, peak resident bytes, and
/// the gas quote recomputed from the measured costs.
fn assert_static_matches_measured(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    label: &str,
) -> StaticReport {
    let shapes: Vec<Vec<usize>> = inputs.iter().map(|t| t.dims().to_vec()).collect();
    let report = analyze(graph, &shapes);
    assert!(
        report.is_admissible(),
        "{label}: deny findings on an executable graph: {:?}",
        report.lint_findings
    );
    let cfg = KernelConfig::reference();
    let (exec, stats) = execute_with_stats(graph, inputs, &cfg, None)
        .unwrap_or_else(|e| panic!("{label}: admissible graph failed to execute: {e}"));
    assert_eq!(report.shapes.len(), graph.len(), "{label}: shape count");
    for (i, node) in graph.nodes().iter().enumerate() {
        assert_eq!(
            report.shapes[i].as_deref(),
            Some(exec.values[i].dims()),
            "{label}: node {i} ({}, {:?}) inferred shape drifted from execution",
            node.name,
            node.kind
        );
    }
    assert_eq!(
        report.flops, exec.flops,
        "{label}: static per-node FLOPs drifted from the executor's ledger"
    );
    assert_eq!(
        report.peak_resident_bytes, stats.peak_resident_bytes,
        "{label}: static peak resident bytes drifted from the trace executor"
    );
    assert_eq!(
        report.gas_quote,
        GAS_BASE + report.total_flops() / FLOPS_PER_GAS + report.bytes_moved / BYTES_PER_GAS,
        "{label}: gas quote must be the published linear schedule"
    );
    report
}

/// Builds a bundled model at its small configuration together with valid
/// sample inputs (token models need in-vocabulary ids).
fn bundled(name: &str) -> (Model, Vec<Tensor<f32>>) {
    match name {
        "transformer" => {
            let cfg = TransformerConfig::small();
            (
                transformer::build(cfg, 1),
                vec![transformer::sample_ids(cfg, 42)],
            )
        }
        "bert" => {
            let cfg = BertConfig::small();
            (bert::build(cfg, 1), vec![bert::sample_ids(cfg, 42)])
        }
        "qwen" => {
            let cfg = QwenConfig::small();
            (qwen::build(cfg, 1), vec![qwen::sample_ids(cfg, 42)])
        }
        "resnet" => {
            let cfg = ResNetConfig::small();
            (
                resnet::build(cfg, 1),
                vec![data::class_image(cfg.in_channels, cfg.image, 3, 42)],
            )
        }
        "diffusion" => {
            let cfg = DiffusionConfig::small();
            let model = diffusion::build(cfg, 1);
            let latent = Tensor::<f32>::randn(&model.input_shapes[0], 42);
            let temb = diffusion::time_embedding(5, cfg.temb);
            (model, vec![latent, temb])
        }
        other => panic!("unknown bundled model {other:?}"),
    }
}

#[test]
fn static_report_matches_measured_execution_on_every_bundled_model() {
    for name in ["transformer", "bert", "qwen", "resnet", "diffusion"] {
        let (model, inputs) = bundled(name);
        let report = assert_static_matches_measured(&model.graph, &inputs, name);
        assert!(report.total_flops() > 0, "{name}: zero-cost model");
        assert!(
            report.deposit_bound > tao_protocol::Money::ZERO,
            "{name}: deposit bound must scale with work"
        );
    }
}

#[test]
fn gas_base_is_pinned_to_the_coordinator_schedule() {
    // The static quote and the coordinator's ledger must price a claim
    // commitment identically; this is the cross-crate seam the quoted
    // admission path (`submit_claim_quoted`) relies on.
    assert_eq!(GAS_BASE, tao_protocol::gas::commit_claim());
}

/// One graph exercising every `OpKind` at least once: a 2-D path with
/// ragged/broadcast operands, a 4-D NCHW path for conv/pool/norm ops, and
/// an embedding lookup. Every op node is a graph output so nothing is
/// dead code.
fn op_zoo() -> (Graph, Vec<Tensor<f32>>) {
    let mut b = GraphBuilder::new(3);
    let x = b.input(0, "x"); // [3, 8]
    let img = b.input(1, "img"); // [2, 4, 6, 6]
    let ids = b.input(2, "ids"); // [4]

    let row = b.parameter("row", Tensor::<f32>::randn(&[8], 11));
    let w_mm = b.parameter("w_mm", Tensor::<f32>::randn(&[8, 5], 12).mul_scalar(0.3));
    let w_lin = b.parameter("w_lin", Tensor::<f32>::randn(&[5, 8], 13).mul_scalar(0.3));
    let b_lin = b.parameter("b_lin", Tensor::<f32>::randn(&[5], 14));
    let gamma = b.parameter("gamma", Tensor::<f32>::ones(&[8]));
    let beta = b.parameter("beta", Tensor::<f32>::zeros(&[8]));
    let table = b.parameter("table", Tensor::<f32>::randn(&[10, 8], 15));
    let mask = b.parameter(
        "mask",
        Tensor::<f32>::from_vec(vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0], &[8]).unwrap(),
    );
    let w_cv = b.parameter("w_cv", Tensor::<f32>::randn(&[5, 4, 3, 3], 16).mul_scalar(0.2));
    let b_cv = b.parameter("b_cv", Tensor::<f32>::randn(&[5], 17));
    let g4 = b.parameter("g4", Tensor::<f32>::ones(&[4]));
    let be4 = b.parameter("be4", Tensor::<f32>::zeros(&[4]));
    let mu4 = b.parameter("mu4", Tensor::<f32>::zeros(&[4]));
    let var4 = b.parameter("var4", Tensor::<f32>::ones(&[4]));

    let mut outs: Vec<NodeId> = Vec::new();
    let mut op = |b: &mut GraphBuilder, name: &str, kind: OpKind, ins: &[NodeId]| -> NodeId {
        let id = b.op(name, kind, ins);
        outs.push(id);
        id
    };

    // Positivity scaffolding so div/log/rsqrt lint clean.
    let sig = op(&mut b, "sig", OpKind::Sigmoid, &[x]);
    let pos = op(&mut b, "pos", OpKind::AddScalar(1.0), &[sig]);

    // Binary elementwise with a broadcast [8] operand.
    let a1 = op(&mut b, "a1", OpKind::Add, &[x, row]);
    let s1 = op(&mut b, "s1", OpKind::Sub, &[a1, x]);
    let m1 = op(&mut b, "m1", OpKind::Mul, &[s1, x]);
    let _d1 = op(&mut b, "d1", OpKind::Div, &[m1, pos]);
    let _pw = op(&mut b, "pw", OpKind::Pow, &[pos, sig]);

    // Unary chains (domains kept valid: sqrt of a square, log of pos).
    let n1 = op(&mut b, "n1", OpKind::Neg, &[x]);
    let as1 = op(&mut b, "as1", OpKind::AddScalar(0.5), &[n1]);
    let ms1 = op(&mut b, "ms1", OpKind::MulScalar(2.0), &[as1]);
    let ps1 = op(&mut b, "ps1", OpKind::PowScalar(2.0), &[ms1]);
    let _sq = op(&mut b, "sq", OpKind::Sqrt, &[ps1]);
    let _rs = op(&mut b, "rs", OpKind::Rsqrt, &[pos]);
    let _ex = op(&mut b, "ex", OpKind::Exp, &[sig]);
    let _lg = op(&mut b, "lg", OpKind::Log, &[pos]);
    let _sn = op(&mut b, "sn", OpKind::Sin, &[x]);
    let _cs = op(&mut b, "cs", OpKind::Cos, &[x]);
    let _th = op(&mut b, "th", OpKind::Tanh, &[x]);
    let _rl = op(&mut b, "rl", OpKind::Relu, &[x]);
    let _ge = op(&mut b, "ge", OpKind::Gelu, &[x]);
    let _si = op(&mut b, "si", OpKind::Silu, &[x]);

    // Softmax / normalization.
    let sm = op(&mut b, "sm", OpKind::Softmax, &[x]);
    let _ln = op(
        &mut b,
        "ln",
        OpKind::LayerNorm { eps: 1e-5 },
        &[x, gamma, beta],
    );
    let _rn = op(&mut b, "rn", OpKind::RmsNorm { eps: 1e-6 }, &[x, gamma]);

    // Linear algebra (ragged shapes: [3,8] @ [8,5]).
    let _mm = op(&mut b, "mm", OpKind::MatMul, &[x, w_mm]);
    let _li = op(&mut b, "li", OpKind::Linear, &[x, w_lin, b_lin]);

    // Int8-quantized linear algebra and the static-scale fake-quant pair.
    let _qm = op(&mut b, "qm", OpKind::QuantMatmul, &[x, w_mm]);
    let _ql = op(&mut b, "ql", OpKind::QuantLinear, &[x, w_lin, b_lin]);
    let qz = op(&mut b, "qz", OpKind::Quantize { scale: 0.05 }, &[x]);
    let _dq = op(&mut b, "dq", OpKind::Dequantize { scale: 0.05 }, &[qz]);

    // Reductions.
    let _ma = op(&mut b, "ma", OpKind::MeanAll, &[x]);
    let _sa = op(&mut b, "sa", OpKind::SumAll, &[x]);
    let _sx = op(&mut b, "sx", OpKind::SumAxis(1), &[x]);
    let _mx = op(&mut b, "mx", OpKind::MeanAxis(1), &[x]);
    let _xx = op(&mut b, "xx", OpKind::MaxAxis(0), &[x]);

    // Structural / movement ops.
    let _rh = op(&mut b, "rh", OpKind::Reshape(vec![4, 6]), &[x]);
    let _fl = op(&mut b, "fl", OpKind::Flatten, &[x]);
    let _ff = op(&mut b, "ff", OpKind::FlattenFrom(1), &[x]);
    let _tr = op(&mut b, "tr", OpKind::Transpose(0, 1), &[x]);
    let _pm = op(&mut b, "pm", OpKind::Permute(vec![1, 0]), &[x]);
    let _sl = op(
        &mut b,
        "sl",
        OpKind::Slice {
            axis: 1,
            start: 2,
            end: 6,
        },
        &[x],
    );
    let _cc = op(&mut b, "cc", OpKind::Concat(0), &[x, sm]);
    let _em = op(&mut b, "em", OpKind::Embedding, &[table, ids]);
    let _mf = op(&mut b, "mf", OpKind::MaskedFill(-1e9), &[x, mask]);
    let _id = op(&mut b, "id", OpKind::Identity, &[x]);

    // 4-D NCHW path: convolution, pooling, resampling, batch/group norm.
    let _cv = op(
        &mut b,
        "cv",
        OpKind::Conv2d {
            stride: 1,
            padding: 1,
        },
        &[img, w_cv, b_cv],
    );
    let _bn = op(
        &mut b,
        "bn",
        OpKind::BatchNorm2d { eps: 1e-5 },
        &[img, g4, be4, mu4, var4],
    );
    let _gn = op(
        &mut b,
        "gn",
        OpKind::GroupNorm {
            groups: 2,
            eps: 1e-5,
        },
        &[img, g4, be4],
    );
    let _mp = op(
        &mut b,
        "mp",
        OpKind::MaxPool2d {
            kernel: 2,
            stride: 2,
        },
        &[img],
    );
    let _ap = op(
        &mut b,
        "ap",
        OpKind::AvgPool2d {
            kernel: 2,
            stride: 2,
        },
        &[img],
    );
    let _gp = op(&mut b, "gp", OpKind::AdaptiveAvgPool1x1, &[img]);
    let _up = op(&mut b, "up", OpKind::UpsampleNearest(2), &[img]);

    let graph = b.finish(outs).expect("zoo graph is well-formed");
    let inputs = vec![
        Tensor::<f32>::randn(&[3, 8], 21),
        Tensor::<f32>::randn(&[2, 4, 6, 6], 22),
        Tensor::<f32>::from_vec(vec![0.0, 3.0, 7.0, 9.0], &[4]).unwrap(),
    ];
    (graph, inputs)
}

#[test]
fn op_zoo_covers_every_kind_and_matches_measured_execution() {
    let (graph, inputs) = op_zoo();
    // Coverage: every OpKind discriminant appears in the zoo.
    let mut seen: Vec<std::mem::Discriminant<OpKind>> = Vec::new();
    for node in graph.nodes() {
        let d = std::mem::discriminant(&node.kind);
        if !seen.contains(&d) {
            seen.push(d);
        }
    }
    // 53 OpKind variants (incl. Input/Parameter); a new op without zoo
    // coverage shows up as a count mismatch here.
    assert_eq!(seen.len(), 53, "zoo must exercise every OpKind exactly");
    assert_static_matches_measured(&graph, &inputs, "op-zoo");
}

/// Deterministically grows a random-but-valid op chain over a base shape,
/// tracking the current shape so each op choice is admissible. Covers
/// ragged dims, broadcast operands, rank changes and batched matmul.
fn chain_graph(base: &[usize], codes: &[u8]) -> (Graph, Vec<Tensor<f32>>) {
    let mut b = GraphBuilder::new(1);
    let mut cur = b.input(0, "x");
    let mut shape: Vec<usize> = base.to_vec();
    for (i, &c) in codes.iter().enumerate() {
        let name = format!("n{i}");
        match c % 10 {
            0 => cur = b.op(name, OpKind::AddScalar(0.5), &[cur]),
            1 => cur = b.op(name, OpKind::MulScalar(1.5), &[cur]),
            2 => cur = b.op(name, OpKind::Relu, &[cur]),
            3 => cur = b.op(name, OpKind::Tanh, &[cur]),
            4 => cur = b.op(name, OpKind::Softmax, &[cur]),
            5 => {
                // Broadcast add against a trailing-dim parameter.
                let d = *shape.last().unwrap();
                let p = b.parameter(
                    format!("p{i}"),
                    Tensor::<f32>::randn(&[d], 100 + i as u64),
                );
                cur = b.op(name, OpKind::Add, &[cur, p]);
            }
            6 if shape.len() >= 2 => {
                // (Batched) matmul against [k, n]; ragged n from the code.
                let k = *shape.last().unwrap();
                let n = (c as usize / 10) % 4 + 1;
                let p = b.parameter(
                    format!("w{i}"),
                    Tensor::<f32>::randn(&[k, n], 200 + i as u64).mul_scalar(0.3),
                );
                cur = b.op(name, OpKind::MatMul, &[cur, p]);
                *shape.last_mut().unwrap() = n;
            }
            7 if shape.len() >= 2 => {
                cur = b.op(name, OpKind::SumAxis(0), &[cur]);
                shape.remove(0);
            }
            8 if shape.len() >= 2 => {
                cur = b.op(name, OpKind::Transpose(0, shape.len() - 1), &[cur]);
                let r = shape.len();
                shape.swap(0, r - 1);
            }
            9 => {
                cur = b.op(name, OpKind::Flatten, &[cur]);
                shape = vec![shape.iter().product()];
            }
            _ => cur = b.op(name, OpKind::Sigmoid, &[cur]),
        }
    }
    let head = b.op("head", OpKind::Softmax, &[cur]);
    let graph = b.finish(vec![head]).expect("chain graph is well-formed");
    (graph, vec![Tensor::<f32>::randn(base, 7)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_graphs_match_measured_execution(
        base in prop::collection::vec(1usize..5, 1..4),
        codes in prop::collection::vec(0u8..255, 1..12),
    ) {
        let (graph, inputs) = chain_graph(&base, &codes);
        assert_static_matches_measured(&graph, &inputs, "proptest-chain");
    }
}

// ---------------------------------------------------------------------
// Linter red path: planted violations must be rejected.
// ---------------------------------------------------------------------

#[test]
fn planted_shape_mismatch_is_denied_by_default() {
    let mut b = GraphBuilder::new(1);
    let x = b.input(0, "x");
    let w = b.parameter("w", Tensor::<f32>::zeros(&[3, 5]));
    let y = b.op("y", OpKind::MatMul, &[x, w]);
    let g = b.finish(vec![y]).unwrap();
    let report = analyze(&g, &[vec![2, 4]]);
    assert!(!report.is_admissible(), "inner-dim mismatch must deny");
    assert!(report
        .lint_findings
        .iter()
        .any(|f| f.rule == LintRule::ShapeMismatch && f.severity == Severity::Deny));
}

#[test]
fn planted_unreachable_and_raw_head_fail_only_under_strict() {
    let mut b = GraphBuilder::new(1);
    let x = b.input(0, "x");
    let _dead = b.op("dead", OpKind::Relu, &[x]);
    let w = b.parameter("w", Tensor::<f32>::eye(4));
    let y = b.op("y", OpKind::MatMul, &[x, w]); // raw-logit head
    let g = b.finish(vec![y]).unwrap();

    let default = analyze_with(&g, &[vec![2, 4]], &LintConfig::default());
    assert!(default.is_admissible(), "warnings admit by default");
    assert!(default
        .lint_findings
        .iter()
        .any(|f| f.rule == LintRule::Unreachable));
    assert!(default
        .lint_findings
        .iter()
        .any(|f| f.rule == LintRule::CalibrationSafety));

    let strict = analyze_with(&g, &[vec![2, 4]], &LintConfig::strict());
    assert!(!strict.is_admissible(), "strict mode escalates to deny");
}

#[test]
fn planted_unbounded_denominator_fails_only_under_strict() {
    let mut b = GraphBuilder::new(2);
    let x = b.input(0, "x");
    let d = b.input(1, "d");
    let q = b.op("q", OpKind::Div, &[x, d]);
    let s = b.op("out", OpKind::Softmax, &[q]);
    let g = b.finish(vec![s]).unwrap();
    let shapes = [vec![2, 4], vec![2, 4]];
    let default = analyze_with(&g, &shapes, &LintConfig::default());
    assert!(default.is_admissible());
    assert!(default
        .lint_findings
        .iter()
        .any(|f| f.rule == LintRule::UnboundedDenominator && f.severity == Severity::Warn));
    let strict = analyze_with(&g, &shapes, &LintConfig::strict());
    assert!(!strict.is_admissible());
}
