//! Integration tests for commitment integrity: model swaps, weight
//! tampering and graph rewrites must break the Merkle commitments.

use tao_graph::extract;
use tao_merkle::{
    claim_commitment, commit_model, graph_tree, sha256, tensor_hash, weight_tree, ClaimMeta,
};
use tao_models::{bert, qwen, BertConfig, QwenConfig};
use tao_protocol::{make_record, verify_record};
use tao_tensor::{KernelConfig, Tensor};

fn meta() -> ClaimMeta {
    ClaimMeta {
        device: "sim-h100".into(),
        kernel: "pairwise".into(),
        dtype: "f32".into(),
        challenge_window: 5,
    }
}

#[test]
fn model_swap_changes_all_roots() {
    let a = bert::build(BertConfig::small(), 1);
    let b = qwen::build(QwenConfig::small(), 1);
    let ca = commit_model(&a.graph, &[b"t".to_vec()]);
    let cb = commit_model(&b.graph, &[b"t".to_vec()]);
    assert_ne!(ca.weight_root, cb.weight_root);
    assert_ne!(ca.graph_root, cb.graph_root);
}

#[test]
fn quantization_like_weight_change_detected() {
    // Simulate undeclared quantization: round every weight to 2^-8 grid.
    let m = bert::build(BertConfig::small(), 2);
    let original = commit_model(&m.graph, &[b"t".to_vec()]);
    let quantized = bert::build(BertConfig::small(), 2);
    // Rebuild with quantized weights through a fresh builder.
    let names: Vec<String> = quantized.graph.params().keys().cloned().collect();
    let mut any_changed = false;
    // Quantize each parameter and check detectability via exact bytes.
    for name in names {
        let t = quantized.graph.param(&name).unwrap();
        let q: Vec<f32> = t
            .data()
            .iter()
            .map(|&v| (v * 256.0).round() / 256.0)
            .collect();
        if q != t.data() {
            any_changed = true;
        }
    }
    assert!(any_changed, "quantization must actually change weights");
    // The weight root is a function of exact bytes: rebuilding the same
    // model with the same seed reproduces it...
    assert_eq!(original.weight_root, weight_tree(&quantized.graph).root());
    // ...and any bit change to a parameter breaks it (checked at the
    // tensor level by the merkle crate's tests; here we check the model
    // scale end-to-end via claim commitments).
    let x = Tensor::<f32>::ones(&[8]);
    let y1 = Tensor::<f32>::ones(&[1, 14]);
    let mut y2 = y1.clone();
    y2.data_mut()[3] += 1e-6;
    let rt = sha256(b"trace-root");
    let c1 = claim_commitment(&original, &tensor_hash(&x), &tensor_hash(&y1), &rt, &meta());
    let c2 = claim_commitment(&original, &tensor_hash(&x), &tensor_hash(&y2), &rt, &meta());
    assert_ne!(c1, c2, "output hash binds the claim to exact bytes");
}

#[test]
fn subgraph_records_bind_interfaces_across_whole_model() {
    let m = qwen::build(
        QwenConfig {
            layers: 1,
            ..QwenConfig::small()
        },
        3,
    );
    let gt = graph_tree(&m.graph);
    let wt = weight_tree(&m.graph);
    let inputs = vec![qwen::sample_ids(QwenConfig::small(), 5)];
    let exec = tao_graph::execute(&m.graph, &inputs, &KernelConfig::reference(), None).unwrap();

    // Every quarter-slice of the model verifies, and tampering any slice's
    // trace breaks its live-out hash.
    let quarters = tao_graph::partition(0, m.graph.len(), 4);
    for (s, e) in quarters {
        let sub = extract(&m.graph, s, e).unwrap();
        let rec = make_record(&m.graph, &gt, &wt, &sub, &exec).unwrap();
        let checks = verify_record(&m.graph, &gt.root(), &wt.root(), &rec).unwrap();
        assert!(checks > 0);
        if let Some(&out_node) = sub.live_out.first() {
            let mut tampered = exec.clone();
            tampered.values[out_node.0].data_mut()[0] += 0.5;
            let rec2 = make_record(&m.graph, &gt, &wt, &sub, &tampered).unwrap();
            assert_ne!(rec.live_out_hash, rec2.live_out_hash);
        }
    }
}

#[test]
fn meta_binds_device_and_window() {
    let m = bert::build(BertConfig::small(), 4);
    let c = commit_model(&m.graph, &[b"t".to_vec()]);
    let x = Tensor::<f32>::ones(&[8]);
    let y = Tensor::<f32>::ones(&[1, 14]);
    let rt = sha256(b"trace-root");
    let c1 = claim_commitment(&c, &tensor_hash(&x), &tensor_hash(&y), &rt, &meta());
    let mut other = meta();
    other.device = "sim-a100".into();
    let c2 = claim_commitment(&c, &tensor_hash(&x), &tensor_hash(&y), &rt, &other);
    assert_ne!(c1, c2);
    // The trace root is bound too: same everything else, different root.
    let c3 = claim_commitment(&c, &tensor_hash(&x), &tensor_hash(&y), &sha256(b"other"), &meta());
    assert_ne!(c1, c3, "trace root must be bound into C0");
}
