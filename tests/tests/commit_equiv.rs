//! Differential equivalence harness for the commitment layer — the
//! `kernel_equiv` idiom applied to hashing: every fast path (multi-way
//! SHA-256 backends, streaming canonical encoders, level-parallel tree
//! builds, the trace committer) must be **bit-identical** to the seed
//! scalar oracles, for every supported backend, any message mix, ragged
//! leaf counts, and any forced thread count.

use proptest::prelude::*;
use tao_graph::{execute_observed, forward_observed, BufferPool, GraphBuilder, OpKind};
use tao_merkle::{
    canon_tensor, sha256, sha256_batch_with, sha256_with, tensor_hash, tensor_hash_reference,
    Backend, Digest, FastSha256, MerkleTree, Sha256, StreamingCommitter, TokenChain,
    TraceCommitment,
};
use tao_tensor::{KernelConfig, Tensor};

fn message(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Multi-way batches equal the scalar map for any message count and
    /// any length mix (padding boundaries included), on every backend.
    #[test]
    fn sha256_batch_equals_scalar_for_any_count_and_lengths(
        lens in prop::collection::vec(0usize..300, 0..40),
    ) {
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| message(len, i as u8))
            .collect();
        let want: Vec<_> = msgs.iter().map(|m| sha256(m)).collect();
        for backend in Backend::available() {
            prop_assert_eq!(&sha256_batch_with(backend, &msgs), &want, "{:?}", backend);
        }
    }

    /// The streaming hasher equals the scalar oracle for any chunking of
    /// any message, on every backend.
    #[test]
    fn fast_hasher_equals_oracle_for_any_chunking(
        len in 0usize..2048,
        split in 1usize..97,
        seed in 0u8..255,
    ) {
        let data = message(len, seed);
        let want = sha256(&data);
        for backend in Backend::available() {
            let mut h = FastSha256::with_backend(backend);
            for chunk in data.chunks(split) {
                h.update(chunk);
            }
            prop_assert_eq!(h.finalize(), want, "{:?} split {}", backend, split);
            prop_assert_eq!(sha256_with(backend, &data), want, "{:?} one-shot", backend);
        }
    }

    /// Fast tree builds (multi-way leaves + level-parallel interior) equal
    /// the seed serial builder for ragged leaf counts, on every backend
    /// and forced thread count — including counts past the fan-out
    /// threshold when the leaf set is large.
    #[test]
    fn tree_builds_equal_reference_for_ragged_counts_and_threads(
        n in 0usize..90,
        leaf_len in 1usize..80,
        boost in 0usize..2,
    ) {
        // `boost` occasionally pushes the leaf count past the parallel
        // fan-out threshold so the banded path is exercised, not just the
        // serial small-level path.
        let n = if boost == 1 { n * 64 } else { n };
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| message(leaf_len, i as u8)).collect();
        let oracle = MerkleTree::from_leaves_reference(&leaves);
        prop_assert_eq!(&MerkleTree::from_leaves(&leaves), &oracle, "auto path");
        let digests: Vec<_> = leaves
            .iter()
            .map(|l| {
                let mut h = Sha256::new();
                h.update(&[0x00]);
                h.update(l);
                h.finalize()
            })
            .collect();
        for backend in Backend::available() {
            for threads in [1usize, 2, 3, 8] {
                let fast = MerkleTree::from_leaf_digests_with(digests.clone(), backend, threads);
                prop_assert_eq!(&fast, &oracle, "{:?} threads={}", backend, threads);
            }
        }
    }

    /// The streaming tensor digest equals hashing the materialized
    /// canonical bytes, and the trace committer equals the seed
    /// materializing path, for any mix of tensor shapes.
    #[test]
    fn trace_commitments_equal_reference_for_any_shape_mix(
        shapes in prop::collection::vec(0usize..6, 0..24),
    ) {
        let values: Vec<Tensor<f32>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let dims: &[usize] = match s {
                    0 => &[1],
                    1 => &[17],
                    2 => &[4, 4],
                    3 => &[4, 4], // repeated shape: exercises lane batching
                    4 => &[2, 3, 5],
                    _ => &[],     // rank-0 scalar
                };
                Tensor::<f32>::rand_uniform(dims, -2.0, 2.0, 1000 + i as u64)
            })
            .collect();
        for t in &values {
            prop_assert_eq!(tensor_hash(t), tensor_hash_reference(t));
            prop_assert_eq!(tensor_hash(t), sha256(&canon_tensor(t)));
        }
        let oracle = TraceCommitment::reference(&values);
        for backend in Backend::available() {
            prop_assert_eq!(
                &TraceCommitment::build_with(&values, backend),
                &oracle,
                "{:?}",
                backend
            );
        }
    }

    /// Streamed commitments (digests hashed as the executor retires each
    /// node, in retirement order) are bit-identical to the post-hoc oracle
    /// over the finished trace — for both executors, both committer modes,
    /// and any chain depth/width/seed.
    #[test]
    fn streamed_commitment_equals_post_hoc_for_any_graph(
        depth in 1usize..4,
        width in 2usize..17,
        seed in 0u64..1000,
    ) {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let mut cur = x;
        for i in 0..depth {
            let w = b.parameter(
                format!("w{i}"),
                Tensor::<f32>::rand_uniform(&[width, width], -0.4, 0.4, seed + i as u64),
            );
            let m = b.op(format!("mm{i}"), OpKind::MatMul, &[cur, w]);
            cur = b.op(format!("act{i}"), OpKind::Gelu, &[m]);
        }
        let g = b.finish(vec![cur]).unwrap();
        let inputs = vec![Tensor::<f32>::rand_uniform(&[3, width], -1.0, 1.0, seed + 99)];
        let k = KernelConfig::reference();
        // Post-hoc oracle over the trace executor's kept-alive values.
        let mut probe = StreamingCommitter::inline(g.len());
        let trace = execute_observed(&g, &inputs, &k, None, &mut probe).unwrap();
        let oracle = TraceCommitment::build(&trace.values);
        prop_assert_eq!(probe.finish().root(), oracle.root(), "trace inline");
        let mut bg = StreamingCommitter::background(g.len());
        execute_observed(&g, &inputs, &k, None, &mut bg).unwrap();
        prop_assert_eq!(bg.finish().root(), oracle.root(), "trace background");
        // The pooled executor observes in retirement order, not id order;
        // the commitment must not care.
        for mode in 0..2usize {
            let mut committer = if mode == 0 {
                StreamingCommitter::inline(g.len())
            } else {
                StreamingCommitter::background(g.len())
            };
            let mut pool = BufferPool::new();
            forward_observed(&g, &inputs, &k, &mut pool, &mut committer).unwrap();
            prop_assert_eq!(
                committer.finish().root(),
                oracle.root(),
                "pooled mode {}",
                mode
            );
        }
    }

    /// The rolling token chain equals its post-hoc oracle and is prefix
    /// stable at every length: root_at(t) of the long chain equals the
    /// root of the chain stopped at t.
    #[test]
    fn token_chain_matches_oracle_and_is_prefix_stable(
        tokens in prop::collection::vec(0u64..50_000, 1..20),
    ) {
        let steps: Vec<(u64, Digest)> = tokens
            .iter()
            .enumerate()
            .map(|(t, &tok)| (tok, sha256(&[t as u8, tok as u8])))
            .collect();
        let mut chain = TokenChain::new();
        for (tok, root) in &steps {
            chain.append(*tok, root);
        }
        let oracle = TokenChain::from_steps(&steps);
        prop_assert_eq!(chain.root(), oracle.root());
        for t in 0..steps.len() {
            let prefix = TokenChain::from_steps(&steps[..=t]);
            prop_assert_eq!(*chain.root_at(t).unwrap(), prefix.root(), "prefix t={}", t);
        }
    }
}

/// Non-prop boundary sweep: every padding-relevant message length on every
/// backend (cheap, exhaustive, deterministic).
#[test]
fn padding_boundaries_on_every_backend() {
    for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 118, 119, 120, 127, 128, 129] {
        let data = message(len, 9);
        let want = sha256(&data);
        for backend in Backend::available() {
            assert_eq!(sha256_with(backend, &data), want, "{backend:?} len {len}");
        }
    }
}

/// The weight tree's streaming leaf encoder equals the seed materializing
/// path on a real model's state dict.
#[test]
fn weight_tree_streaming_equals_reference() {
    use tao_models::{bert, BertConfig};
    let model = bert::build(
        BertConfig {
            layers: 1,
            ..BertConfig::small()
        },
        3,
    );
    let fast = tao_merkle::weight_tree(&model.graph);
    let oracle = tao_merkle::weight_tree_reference(&model.graph);
    assert_eq!(fast, oracle);
    assert_eq!(fast.root(), oracle.root());
}
