//! Integration tests for the §7 / §5.5 extensions: temporal disputes over
//! DDIM trajectories, tie-break rules at decode time, and the randomized
//! audit channel.

use tao_device::Device;
use tao_graph::execute;
use tao_merkle::{sha256, ClaimMeta};
use tao_models::{diffusion, qwen, DiffusionConfig, QwenConfig};
use tao_protocol::{
    earliest_offense, states_agree, tie_seed, ClaimStatus, Coordinator, EconParams, Party,
    TemporalCommitment, TemporalVerdict, TieBreakRule,
};
use tao_tensor::Tensor;

#[test]
fn temporal_dispute_over_ddim_trajectory() {
    let cfg = DiffusionConfig::small();
    let model = diffusion::build(cfg, 3);
    let steps = 6;
    let dev = Device::rtx4090_like();
    let honest = diffusion::ddim_sample(&model, cfg, steps, 11, dev.config()).expect("sampling");

    // Proposer tampers from step 4 on: in a real attack every later step
    // is computed from the tampered state, so disagreement persists (the
    // monotonicity the time-first bisection relies on).
    let mut claimed = honest.clone();
    for state in claimed.iter_mut().skip(4) {
        *state = state.add_scalar(0.2);
    }
    let commitment = TemporalCommitment::new(&claimed);

    // Challenger re-samples on its own device and bisects across time.
    let challenger = diffusion::ddim_sample(&model, cfg, steps, 11, Device::h100_like().config())
        .expect("sampling");
    let verdict = earliest_offense(steps, |i| states_agree(&claimed[i], &challenger[i], 1e-2));
    let TemporalVerdict::OffenseAt { step, probes } = verdict else {
        panic!("tampered trajectory must offend");
    };
    assert_eq!(step, 4);
    assert!(probes <= 5, "O(log n) probes, got {probes}");

    // The disputed step state is provable against the temporal root, so
    // the per-step operator dispute starts from committed data.
    let proof = commitment.prove_step(step).expect("in range");
    assert!(TemporalCommitment::verify_step(
        &commitment.root(),
        &claimed[step],
        &proof
    ));
    // Prefix finality: earlier steps agree across devices.
    for i in 0..step {
        assert!(states_agree(&claimed[i], &challenger[i], 1e-2));
    }
}

#[test]
fn tie_break_rules_make_decoding_deterministic_across_devices() {
    // Two honest devices decode the same prompt; the committed tie-break
    // rule must pick the same next token even when logits drift within
    // tolerance.
    let cfg = QwenConfig::small();
    let model = qwen::build(cfg, 7);
    let ids = qwen::sample_ids(cfg, 17);
    let rule = TieBreakRule::Lexicographic { margin: 1e-4 };
    let seed = tie_seed(&sha256(b"prompt"), 0);

    let mut picks = Vec::new();
    for dev in Device::standard_fleet() {
        let exec =
            execute(&model.graph, std::slice::from_ref(&ids), dev.config(), None).expect("forward");
        let logits = exec.value(model.logits).expect("logits");
        let lane = &logits.data()[logits.len() - cfg.vocab..];
        picks.push(rule.select(lane, &seed).expect("nonempty"));
    }
    assert!(
        picks.windows(2).all(|w| w[0] == w[1]),
        "devices must decode identically: {picks:?}"
    );

    // The hash-seeded rule is equally consistent.
    let hashed = TieBreakRule::HashSeeded { margin: 1e-4 };
    let mut picks2 = Vec::new();
    for dev in Device::standard_fleet() {
        let exec =
            execute(&model.graph, std::slice::from_ref(&ids), dev.config(), None).expect("forward");
        let logits = exec.value(model.logits).expect("logits");
        let lane = &logits.data()[logits.len() - cfg.vocab..];
        picks2.push(hashed.select(lane, &seed).expect("nonempty"));
    }
    assert!(picks2.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn randomized_audit_channel_enforces_like_a_challenge() {
    let econ = EconParams::default_market();
    let (lo, hi) = econ.feasible_slash_region().expect("region");
    let coord = Coordinator::new(econ, (lo + hi) / 2.0).expect("feasible");
    coord.fund("prop", 10_000);
    let meta = ClaimMeta {
        device: "sim-a100".into(),
        kernel: "pairwise".into(),
        dtype: "f32".into(),
        challenge_window: 10,
    };
    // Submit many claims; audit-selected ones get frozen and adjudicated.
    let mut audited = 0;
    for i in 0..200u32 {
        let id = coord
            .submit_claim("prop", sha256(format!("claim-{i}").as_bytes()), &meta)
            .expect("funded");
        if coord.audit_selected(id, 42).expect("known claim") {
            coord.open_audit(id).expect("pending claim");
            audited += 1;
            // Audit rules the claim clean: the proposer is made whole and
            // the committee is paid from fees.
            coord.settle(id, Party::Proposer, 3).expect("disputed");
            assert!(matches!(
                coord.claim(id).expect("known").status,
                ClaimStatus::Settled {
                    winner: Party::Proposer
                }
            ));
        } else {
            coord.advance(11);
        }
    }
    assert!(audited > 0, "phi = 0.05 over 200 claims should audit some");
    assert!(audited < 40, "audit rate should be near phi");
    assert!(coord.balance("committee-pool") > tao_protocol::Money::ZERO);
}

/// Adapter: a committed tie-break rule as a decoding policy.
struct CommittedRule {
    rule: TieBreakRule,
    input_hash: tao_merkle::Digest,
}

impl tao_models::SelectToken for CommittedRule {
    fn select(&self, logits: &[f32], step: u64) -> Option<usize> {
        self.rule.select(logits, &tie_seed(&self.input_hash, step))
    }
}

#[test]
fn committed_decoding_converges_across_devices_and_commits_temporally() {
    use tao_models::greedy_decode;
    let cfg = QwenConfig::small();
    let model = qwen::build(cfg, 13);
    let prompt = qwen::sample_ids(cfg, 71);
    let policy = CommittedRule {
        rule: TieBreakRule::Lexicographic { margin: 1e-4 },
        input_hash: tao_merkle::tensor_hash(&prompt),
    };

    // Every fleet device decodes the same token sequence under the
    // committed rule, despite bit-level logit drift.
    let mut sequences = Vec::new();
    let mut trajectories = Vec::new();
    for dev in Device::standard_fleet() {
        let steps =
            greedy_decode(&model, cfg, &prompt, 6, dev.config(), &policy).expect("decoding");
        sequences.push(steps.iter().map(|s| s.token).collect::<Vec<_>>());
        trajectories.push(
            steps
                .iter()
                .map(|s| Tensor::from_vec(s.logits.clone(), &[cfg.vocab]).expect("lane"))
                .collect::<Vec<_>>(),
        );
    }
    assert!(
        sequences.windows(2).all(|w| w[0] == w[1]),
        "devices diverged: {sequences:?}"
    );

    // The per-step logits form a temporal commitment chain; honest
    // trajectories agree within tolerance step by step.
    let c = TemporalCommitment::new(&trajectories[0]);
    assert_eq!(c.len(), 6);
    let verdict = earliest_offense(6, |i| {
        states_agree(&trajectories[0][i], &trajectories[1][i], 1e-3)
    });
    assert_eq!(verdict, TemporalVerdict::AllAgree);
}
