//! Adversarial-campaign integration: the paper's security and economic
//! floors re-validated under concurrent load, plus ledger conservation
//! over random adversary mixes and seed-replay determinism — the
//! acceptance harness for the `tao-campaign` crate.

// This binary uses only the watchdog and worker-count helpers of the
// shared harness; the claim/economics constructors stay dormant here.
#[allow(dead_code)]
mod common;

use common::{with_deadlock_watchdog, worker_counts};
use proptest::prelude::*;
use tao_calib::TailEstimator;
use tao_campaign::{Campaign, CampaignConfig, Population};

/// The full-size campaign floors at every forced worker count (the CI
/// matrix runs 2, 8 and 32): all planted cheats caught, zero false
/// flags, no admissible PGD flip, every honest operator in the black and
/// every adversary role in the red.
#[test]
fn campaign_floors_hold_at_every_worker_count() {
    for workers in worker_counts() {
        let report = with_deadlock_watchdog(move || {
            Campaign::new(CampaignConfig {
                workers,
                ..CampaignConfig::new(7)
            })
            .run()
            .unwrap()
        });
        report.assert_floors();
        assert!(report.planted() > 0, "campaign planted nothing");
        assert_eq!(
            report.caught(),
            report.planted(),
            "cheat escaped at {workers} workers"
        );
        assert_eq!(report.false_flags(), 0, "false flag at {workers} workers");
        assert_eq!(report.admissible_flips, 0);
        assert!(
            report.min_honest_operator_net >= 0.0,
            "honest operator in the red at {workers} workers"
        );
        // Watchtowers are honest challengers: catching the planted cheats
        // must pay for their screening work.
        assert!(
            report.final_nets.watchtower > 0.0,
            "watchtowers net {} at {workers} workers",
            report.final_nets.watchtower
        );
    }
}

/// The floors are estimator-independent: committing the smoothed-tail
/// bundle (raw max as shadow) changes coverage slack, not outcomes.
#[test]
fn campaign_floors_hold_with_smoothed_estimator_committed() {
    let report = with_deadlock_watchdog(|| {
        Campaign::new(CampaignConfig {
            estimator: TailEstimator::smoothed_default(),
            ..CampaignConfig::smoke(11)
        })
        .run()
        .unwrap()
    });
    report.assert_floors();
    assert_eq!(report.committed, "smoothed-tail-k4");
    assert_eq!(report.shadow, "raw-max");
    assert_eq!(report.caught(), report.planted());
}

/// Same seed, any worker count: claim ids, statuses, winners, screening
/// exceedances and challenge decisions replay bit-identically, and the
/// fixed-point ledger makes every balance bit-exact too — no tolerance.
#[test]
fn campaign_replays_identically_from_the_same_seed() {
    let runs: Vec<_> = worker_counts()
        .into_iter()
        .map(|workers| {
            with_deadlock_watchdog(move || {
                Campaign::new(CampaignConfig {
                    workers,
                    ..CampaignConfig::smoke(23)
                })
                .run()
                .unwrap()
            })
        })
        .collect();
    let base = &runs[0];
    for r in &runs[1..] {
        assert_eq!(base.outcomes.len(), r.outcomes.len());
        for (a, b) in base.outcomes.iter().zip(&r.outcomes) {
            assert_eq!(a.claim_id, b.claim_id, "claim-id assignment diverged");
            assert_eq!(a.operator, b.operator);
            assert_eq!(a.final_status, b.final_status, "claim {} status", a.claim_id);
            assert_eq!(a.challenged, b.challenged, "claim {} challenge", a.claim_id);
            assert_eq!(
                a.exceedance.to_bits(),
                b.exceedance.to_bits(),
                "claim {} screening exceedance must replay exactly",
                a.claim_id
            );
        }
        assert_eq!(
            base.wealth.keys().collect::<Vec<_>>(),
            r.wealth.keys().collect::<Vec<_>>()
        );
        for (account, w) in &base.wealth {
            assert_eq!(
                *w, r.wealth[account],
                "{account}: wealth must replay bit-exactly"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random adversary mixes at every forced worker count: the ledger
    /// conserves value at every campaign epoch boundary
    /// (Σ balances + Σ escrow == injected) and every floor holds — spam
    /// is pinned ≥ 1 so the population always posts a claim.
    #[test]
    fn random_mixes_conserve_value_and_hold_floors(
        honest in 0usize..4,
        evasion in 0usize..3,
        spam in 1usize..3,
        collusion in 0usize..3,
        griefers in 0usize..3,
        seed in 0u64..1 << 32,
    ) {
        let population = Population { honest, evasion, spam, collusion, griefers };
        for workers in worker_counts() {
            let report = with_deadlock_watchdog(move || {
                Campaign::new(CampaignConfig {
                    workers,
                    population,
                    epochs: 2,
                    ..CampaignConfig::smoke(seed)
                })
                .run()
                .unwrap()
            });
            prop_assert_eq!(report.epochs.len(), 2);
            for e in &report.epochs {
                prop_assert_eq!(
                    e.conservation_err_units, 0,
                    "conservation broke at epoch {} ({} workers): {} units",
                    e.epoch, workers, e.conservation_err_units
                );
            }
            report.assert_floors();
        }
    }
}
