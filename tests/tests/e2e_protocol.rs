//! End-to-end protocol integration: full sessions across model families.

use tao::{
    default_coordinator, deploy, ProposerBehavior, SessionBuilder, SessionConfig, SharedCoordinator,
};
use tao_device::{Device, Fleet};
use tao_graph::{execute, Perturbations};
use tao_models::{bert, data, qwen, resnet, BertConfig, QwenConfig, ResNetConfig};
use tao_protocol::{ClaimStatus, DisputeResult, LeafVerdict, Party};
use tao_tensor::Tensor;

fn perturbation_at(
    deployment: &tao::Deployment,
    inputs: &[Tensor<f32>],
    index: usize,
    magnitude: f32,
) -> (tao_graph::NodeId, Perturbations) {
    let nodes = deployment.model.graph.compute_nodes();
    let target = nodes[index % nodes.len()];
    let honest = execute(
        &deployment.model.graph,
        inputs,
        Device::rtx4090_like().config(),
        None,
    )
    .expect("forward");
    let shape = honest.values[target.0].dims().to_vec();
    // Non-uniform perturbation: a uniform constant before a softmax would
    // be absorbed by shift invariance and change nothing observable.
    let delta = Tensor::<f32>::randn(&shape, 4_242).mul_scalar(magnitude);
    let mut p = Perturbations::new();
    p.insert(target, delta);
    (target, p)
}

#[test]
fn bert_honest_and_malicious_sessions() {
    let cfg = BertConfig {
        layers: 1,
        ..BertConfig::small()
    };
    let model = bert::build(cfg, 1);
    // 16 samples: max-envelope thresholds are max-statistics, and at the
    // 6-sample scale the relative-error tail of an honest sibling operator
    // can exceed its own tau on a fresh input, mislocalizing the dispute.
    let samples = data::token_dataset(16, cfg.seq, cfg.vocab, 10);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    let inputs = vec![bert::sample_ids(cfg, 123)];
    let coord = SharedCoordinator::new(default_coordinator().unwrap());

    let honest = SessionBuilder::new(&deployment, inputs.clone())
        .run(&coord)
        .unwrap();
    assert!(!honest.challenged);
    assert!(matches!(honest.final_status, ClaimStatus::Finalized));

    let (target, p) = perturbation_at(&deployment, &inputs, 5, 0.05);
    let evil = SessionBuilder::new(&deployment, inputs)
        .behavior(ProposerBehavior::Malicious(p))
        .run(&coord)
        .unwrap();
    assert!(evil.challenged);
    let dispute = evil.dispute.expect("dispute ran");
    assert_eq!(dispute.result, DisputeResult::Leaf(target));
    assert_eq!(
        dispute.challenger_forward_passes, 0,
        "dispute must reuse the screening trace"
    );
    assert_eq!(
        dispute.rehashed_leaves, 0,
        "dispute must derive child commitments from the cached subtree digests"
    );
    assert!(
        dispute.reveal_checks > 0,
        "dispute must verify reveals against the C0-bound trace root"
    );
    assert_eq!(evil.verdict.unwrap().1, LeafVerdict::Fraud);
    assert!(matches!(
        evil.final_status,
        ClaimStatus::Settled {
            winner: Party::Challenger
        }
    ));
}

#[test]
fn qwen_dispute_localizes_across_partition_widths() {
    let cfg = QwenConfig {
        layers: 2,
        ..QwenConfig::small()
    };
    let model = qwen::build(cfg, 2);
    // 16 samples for envelope coverage; see bert_honest_and_malicious_sessions.
    let samples = data::token_dataset(16, cfg.seq, cfg.vocab, 20);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    let inputs = vec![qwen::sample_ids(cfg, 55)];
    let (target, p) = perturbation_at(&deployment, &inputs, 9, 0.05);

    let mut rounds_by_n = Vec::new();
    for n_way in [2usize, 4, 8] {
        let coord = SharedCoordinator::new(default_coordinator().unwrap());
        let report = SessionBuilder::new(&deployment, inputs.clone())
            .config(SessionConfig {
                n_way,
                ..SessionConfig::default()
            })
            .behavior(ProposerBehavior::Malicious(p.clone()))
            .run(&coord)
            .unwrap();
        let dispute = report.dispute.expect("dispute ran");
        assert_eq!(dispute.result, DisputeResult::Leaf(target), "N = {n_way}");
        assert_eq!(dispute.rehashed_leaves, 0, "N = {n_way}: digests must be cached");
        assert!(dispute.reveal_checks > 0, "N = {n_way}: reveals must be verified");
        rounds_by_n.push(dispute.rounds.len());
    }
    assert!(
        rounds_by_n[2] <= rounds_by_n[0],
        "wider partitions cannot need more rounds: {rounds_by_n:?}"
    );
}

#[test]
fn resnet_session_catches_conv_perturbation() {
    let cfg = ResNetConfig {
        blocks: 2,
        ..ResNetConfig::small()
    };
    let model = resnet::build(cfg, 3);
    let samples = data::image_dataset(6, cfg.in_channels, cfg.image, cfg.classes, 30);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    let inputs = vec![data::class_image(cfg.in_channels, cfg.image, 1, 777)];
    let (_, p) = perturbation_at(&deployment, &inputs, 3, 0.1);
    let coord = SharedCoordinator::new(default_coordinator().unwrap());
    let report = SessionBuilder::new(&deployment, inputs)
        .behavior(ProposerBehavior::Malicious(p))
        .run(&coord)
        .unwrap();
    assert!(report.challenged);
    assert!(!report.proposer_prevailed());
}

#[test]
fn honest_sessions_never_flagged_across_device_pairings() {
    let cfg = BertConfig {
        layers: 1,
        ..BertConfig::small()
    };
    let model = bert::build(cfg, 4);
    let samples = data::token_dataset(8, cfg.seq, cfg.vocab, 40);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    let fleet = Fleet::standard();
    for proposer in fleet.devices() {
        for challenger in fleet.devices() {
            let coord = SharedCoordinator::new(default_coordinator().unwrap());
            let inputs = vec![bert::sample_ids(cfg, 900)];
            let report = SessionBuilder::new(&deployment, inputs)
                .config(SessionConfig {
                    proposer: proposer.clone(),
                    challenger: challenger.clone(),
                    ..SessionConfig::default()
                })
                .run(&coord)
                .unwrap();
            assert!(
                !report.challenged,
                "false positive: {} vs {}",
                proposer.name(),
                challenger.name()
            );
        }
    }
}

#[test]
fn coordinator_pays_and_slashes_consistently() {
    let cfg = BertConfig {
        layers: 1,
        ..BertConfig::small()
    };
    let model = bert::build(cfg, 6);
    let samples = data::token_dataset(5, cfg.seq, cfg.vocab, 60);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
    let inputs = vec![bert::sample_ids(cfg, 31)];
    let coord = SharedCoordinator::new(default_coordinator().unwrap());
    let p0 = coord.balance("proposer");
    let c0 = coord.balance("challenger");

    // Honest: proposer gains the reward.
    SessionBuilder::new(&deployment, inputs.clone())
        .run(&coord)
        .unwrap();
    assert!(coord.balance("proposer") > p0);

    // Malicious: proposer slashed, challenger rewarded.
    let (_, p) = perturbation_at(&deployment, &inputs, 4, 0.05);
    let mid = coord.balance("proposer");
    SessionBuilder::new(&deployment, inputs)
        .behavior(ProposerBehavior::Malicious(p))
        .run(&coord)
        .unwrap();
    assert!(coord.balance("proposer") < mid);
    assert!(coord.balance("challenger") > c0);
    assert!(coord.lock().gas().total > 0);
}

/// Disputes raised *inside a concurrent campaign* must still reuse the
/// challenger's screening trace and the proposer's session commitment:
/// zero challenger forward passes and zero re-hashed leaves per dispute,
/// across every adversary archetype (escalated evasion, spam logits,
/// colluding pairs adopted by watchtowers, and griefed honest claims).
#[test]
fn campaign_disputes_reuse_screening_traces_and_commitments() {
    let report = tao_campaign::Campaign::new(tao_campaign::CampaignConfig::smoke(5))
        .run()
        .unwrap();
    report.assert_floors();
    let mut disputes = 0;
    for outcome in &report.outcomes {
        let Some(d) = &outcome.dispute else { continue };
        disputes += 1;
        assert_eq!(
            d.challenger_forward_passes, 0,
            "claim {} ({:?}): campaign dispute re-executed the challenger forward pass",
            outcome.claim_id, outcome.role
        );
        assert_eq!(
            d.rehashed_leaves, 0,
            "claim {} ({:?}): campaign dispute re-hashed proposer trace leaves",
            outcome.claim_id, outcome.role
        );
        assert!(
            d.reveal_checks > 0,
            "claim {} ({:?}): campaign dispute skipped reveal verification",
            outcome.claim_id, outcome.role
        );
    }
    // Every planted cheat and every griefed honest claim carries a dispute.
    let pop = report.population;
    let expected = (pop.planted() + pop.griefers.min(pop.honest)) * report.epochs.len();
    assert_eq!(disputes, expected, "campaign dispute count");
}
