//! Differential concurrency invariants for the sharded coordinator.
//!
//! The hard contract of the sharding PR, tightened by the fixed-point
//! money PR: for any batch of sessions, the sharded coordinator driven
//! **in parallel** is observationally equivalent to the pre-sharding
//! single-mutex arbiter ([`SerialCoordinator`]) driven **serially** —
//! same claim statuses, same winners, **bit-exact** final balances and
//! escrow (`==`, no tolerance anywhere), the same canonical gas log to
//! the byte, and the same per-epoch settlement Merkle root — and the
//! ledger conserves value (`Σ balances + Σ escrow == injected supply`)
//! **exactly** at every phase boundary.
//!
//! Sessions here are protocol-level abstractions (the expensive
//! model-level flags/winners equivalence lives in
//! `tests/tests/scheduler.rs` and `tests/tests/scheduler_stress.rs`,
//! which drive real forward passes through the same coordinator): a spec
//! says who proposes, who challenges, and how the session resolves —
//! honest (finalizes by window elapse), fraud (challenger wins the
//! dispute), spam (proposer wins and takes the challenger deposit), or
//! underfunded (the submission itself must bounce, identically on both
//! paths).
//!
//! Worker counts are forced via `TAO_TEST_WORKERS` (CI runs 2, 8 and 32
//! as a fail-fast step); without it every count is swept. A 60 s
//! watchdog turns any shard-lock deadlock into a test failure instead of
//! a hang. Set `TAO_EPOCH_CSV` to a path to export the canonical epoch
//! log as CSV (the artifact CI uploads).

mod common;

use std::sync::Arc;

use common::{
    commitment as tagged_commitment, econ_and_slash, meta, with_deadlock_watchdog, worker_counts,
    COMMITTEE, WINDOW,
};
use proptest::prelude::*;
use tao_protocol::{
    canonical_log, encode_log, epoch_root, parallel_map, ClaimStatus, Coordinator, Money, Party,
    SerialCoordinator,
};

const PROPOSERS: [&str; 4] = ["alice", "bob", "carol", "dave"];
const CHALLENGERS: [&str; 3] = ["eve", "frank", "grace"];
const PAUPER: &str = "pauper";

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Honest,
    Fraud,
    Spam,
    Underfunded,
}

#[derive(Debug, Clone)]
struct Spec {
    proposer: &'static str,
    challenger: &'static str,
    kind: Kind,
}

/// Decodes one generated integer into a session spec; 48 codes cover
/// every (proposer, challenger, kind) combination.
fn decode(code: usize) -> Spec {
    let kind = match (code / 12) % 4 {
        0 => Kind::Honest,
        1 => Kind::Fraud,
        2 => Kind::Spam,
        _ => Kind::Underfunded,
    };
    Spec {
        proposer: if kind == Kind::Underfunded {
            PAUPER
        } else {
            PROPOSERS[code % 4]
        },
        challenger: CHALLENGERS[(code / 4) % 3],
        kind,
    }
}

fn fund_serial(c: &mut SerialCoordinator) {
    for p in PROPOSERS {
        c.fund(p, 20_000);
    }
    for ch in CHALLENGERS {
        c.fund(ch, 10_000);
    }
    c.fund(PAUPER, 1);
}

fn fund_sharded(c: &Coordinator) {
    for p in PROPOSERS {
        c.fund(p, 20_000);
    }
    for ch in CHALLENGERS {
        c.fund(ch, 10_000);
    }
    c.fund(PAUPER, 1);
}

fn commitment(i: usize) -> tao_merkle::Digest {
    tagged_commitment("claim", i)
}

/// Every account the batch can touch.
fn accounts() -> Vec<&'static str> {
    let mut all: Vec<&str> = PROPOSERS.into_iter().chain(CHALLENGERS).collect();
    all.push(PAUPER);
    all.push("committee-pool");
    all
}

/// Drives the batch serially through the single-mutex PR 2 oracle,
/// phase by phase in the scheduler's protocol-event order. Returns the
/// per-spec claim ids (None when the submission bounced).
fn run_serial_oracle(specs: &[Spec], oracle: &mut SerialCoordinator) -> Vec<Option<u64>> {
    let ids: Vec<Option<u64>> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| oracle.submit_claim(s.proposer, commitment(i), &meta()).ok())
        .collect();
    for (s, id) in specs.iter().zip(&ids) {
        if let Some(id) = id {
            if matches!(s.kind, Kind::Fraud | Kind::Spam) {
                oracle.open_challenge(*id, s.challenger).unwrap();
            }
        }
    }
    for (s, id) in specs.iter().zip(&ids) {
        let Some(id) = id else { continue };
        match s.kind {
            Kind::Fraud => oracle.settle(*id, Party::Challenger, COMMITTEE).unwrap(),
            Kind::Spam => oracle.settle(*id, Party::Proposer, COMMITTEE).unwrap(),
            Kind::Honest => {
                oracle.advance(WINDOW + 1);
            }
            Kind::Underfunded => unreachable!("underfunded submissions bounce"),
        }
    }
    ids
}

/// Drives the same batch against the sharded coordinator: serial submit
/// (deterministic ids, as the scheduler does), then parallel challenge
/// and parallel settle phases on `workers` threads.
fn run_sharded_parallel(
    specs: Vec<Spec>,
    coordinator: Arc<Coordinator>,
    workers: usize,
) -> Vec<Option<u64>> {
    let ids: Vec<Option<u64>> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            coordinator
                .submit_claim(s.proposer, commitment(i), &meta())
                .ok()
        })
        .collect();
    let jobs: Vec<(Spec, Option<u64>)> = specs.into_iter().zip(ids.iter().copied()).collect();
    with_deadlock_watchdog(move || {
        let coord = coordinator.clone();
        let challenged = parallel_map(jobs, workers, move |(s, id)| {
            if let Some(id) = id {
                if matches!(s.kind, Kind::Fraud | Kind::Spam) {
                    coord.open_challenge(id, s.challenger).unwrap();
                }
            }
            (s, id)
        });
        // Phase boundary: every deposit escrowed, nothing settled yet.
        // The fixed-point ledger conserves exactly — no tolerance.
        let ledger = coordinator.ledger();
        assert_eq!(
            ledger.total_value(),
            ledger.injected(),
            "conservation violated after the challenge phase"
        );
        let coord = coordinator.clone();
        parallel_map(challenged, workers, move |(s, id)| {
            let Some(id) = id else { return };
            match s.kind {
                Kind::Fraud => coord.settle(id, Party::Challenger, COMMITTEE).unwrap(),
                Kind::Spam => coord.settle(id, Party::Proposer, COMMITTEE).unwrap(),
                Kind::Honest => {
                    coord.advance(WINDOW + 1);
                }
                Kind::Underfunded => unreachable!("underfunded submissions bounce"),
            }
        });
    });
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed batches: sharded-parallel ≡ single-mutex-serial on
    /// statuses, winners, balances, escrow, canonical gas logs and epoch
    /// roots — all bit-exact — at every forced worker count, with value
    /// conserved exactly at phase boundaries.
    #[test]
    fn sharded_parallel_is_equivalent_to_single_mutex_serial(
        codes in prop::collection::vec(0usize..48, 1..25),
    ) {
        let specs: Vec<Spec> = codes.into_iter().map(decode).collect();
        let (econ, slash) = econ_and_slash();

        let mut oracle = SerialCoordinator::new(econ, slash).unwrap();
        fund_serial(&mut oracle);
        let serial_ids = run_serial_oracle(&specs, &mut oracle);
        let serial_log = canonical_log(&oracle.gas);

        for workers in worker_counts() {
            let coordinator = Arc::new(Coordinator::new(econ, slash).unwrap());
            fund_sharded(&coordinator);
            let ids = run_sharded_parallel(specs.clone(), coordinator.clone(), workers);

            prop_assert_eq!(&ids, &serial_ids, "claim-id assignment ({workers} workers)");
            for (i, (spec, id)) in specs.iter().zip(&ids).enumerate() {
                let Some(id) = id else {
                    prop_assert_eq!(spec.kind, Kind::Underfunded,
                        "only underfunded submissions may bounce");
                    continue;
                };
                let status = coordinator.claim(*id).unwrap().status;
                let expected = match spec.kind {
                    Kind::Honest => ClaimStatus::Finalized,
                    Kind::Fraud => ClaimStatus::Settled { winner: Party::Challenger },
                    Kind::Spam => ClaimStatus::Settled { winner: Party::Proposer },
                    Kind::Underfunded => unreachable!(),
                };
                prop_assert_eq!(&status, &expected, "spec {i} final status");
                prop_assert_eq!(
                    &status,
                    &oracle.claim(*id).unwrap().status,
                    "spec {i}: sharded vs serial status"
                );
            }
            for account in accounts() {
                prop_assert_eq!(
                    oracle.balance(account),
                    coordinator.balance(account),
                    "{account} balance: serial vs sharded ({workers} workers)"
                );
                prop_assert_eq!(
                    oracle.escrowed(account),
                    coordinator.escrowed(account),
                    "{account} escrow: serial vs sharded ({workers} workers)"
                );
            }
            let ledger = coordinator.ledger();
            prop_assert_eq!(
                ledger.total_value(),
                ledger.injected(),
                "conservation after settlement"
            );
            // The canonical settlement+gas log is byte-identical to the
            // serial oracle's, and so is its Merkle commitment.
            let sharded_log = canonical_log(&coordinator.gas());
            prop_assert_eq!(
                encode_log(&serial_log),
                encode_log(&sharded_log),
                "canonical log bytes diverged ({workers} workers)"
            );
            prop_assert_eq!(
                epoch_root(&serial_log),
                epoch_root(&sharded_log),
                "epoch root diverged ({workers} workers)"
            );
        }
    }
}

/// Shard counts are runtime-configurable (PR 4 leftover): a 1-shard
/// coordinator — the serial single-lock layout — and a 64-shard one must
/// both be observationally equivalent to the serial oracle on a fixed
/// mixed batch at every forced worker count. Bit-exact, like everything
/// else in this suite.
#[test]
fn shard_count_sweep_is_serial_equivalent() {
    let specs: Vec<Spec> = (0..48).map(decode).collect();
    let (econ, slash) = econ_and_slash();
    let mut oracle = SerialCoordinator::new(econ, slash).unwrap();
    fund_serial(&mut oracle);
    let serial_ids = run_serial_oracle(&specs, &mut oracle);
    for shards in [1usize, 64] {
        for workers in worker_counts() {
            let coordinator = Arc::new(Coordinator::with_shards(econ, slash, shards, shards).unwrap());
            assert_eq!(coordinator.shard_counts(), (shards, shards));
            fund_sharded(&coordinator);
            let ids = run_sharded_parallel(specs.clone(), coordinator.clone(), workers);
            assert_eq!(ids, serial_ids, "{shards} shards, {workers} workers");
            for id in ids.iter().flatten() {
                assert_eq!(
                    coordinator.claim(*id).unwrap().status,
                    oracle.claim(*id).unwrap().status,
                    "{shards} shards, {workers} workers: claim {id} status"
                );
            }
            for account in accounts() {
                assert_eq!(
                    oracle.balance(account),
                    coordinator.balance(account),
                    "{shards} shards, {workers} workers: {account} balance"
                );
                assert_eq!(
                    oracle.escrowed(account),
                    coordinator.escrowed(account),
                    "{shards} shards, {workers} workers: {account} escrow"
                );
            }
            let ledger = coordinator.ledger();
            assert_eq!(
                ledger.total_value(),
                ledger.injected(),
                "{shards} shards, {workers} workers: conservation"
            );
        }
    }
}

/// Satellite determinism check for the epoch commitment layer: the same
/// fixed mixed batch driven at 2, 8 and 32 workers (and serially through
/// the oracle) produces byte-identical canonical log encodings and the
/// **identical** sealed epoch Merkle root. When `TAO_EPOCH_CSV` is set,
/// the canonical epoch log is exported as CSV — the artifact CI uploads.
#[test]
fn epoch_root_is_identical_across_worker_counts() {
    let specs: Vec<Spec> = (0..48).map(decode).collect();
    let (econ, slash) = econ_and_slash();
    let mut oracle = SerialCoordinator::new(econ, slash).unwrap();
    fund_serial(&mut oracle);
    run_serial_oracle(&specs, &mut oracle);
    let serial_epoch = oracle.seal_epoch();
    assert!(
        !serial_epoch.entries.is_empty(),
        "the batch must log gas events"
    );

    let mut roots = vec![serial_epoch.root];
    for workers in [2usize, 8, 32] {
        let coordinator = Arc::new(Coordinator::new(econ, slash).unwrap());
        fund_sharded(&coordinator);
        run_sharded_parallel(specs.clone(), coordinator.clone(), workers);
        let epoch = coordinator.seal_epoch();
        assert_eq!(
            encode_log(&serial_epoch.entries),
            encode_log(&epoch.entries),
            "canonical log bytes diverged at {workers} workers"
        );
        assert_eq!(
            serial_epoch.root, epoch.root,
            "epoch root diverged at {workers} workers"
        );
        assert_eq!(coordinator.epoch_roots(), vec![epoch.root]);
        roots.push(epoch.root);
    }
    assert!(roots.windows(2).all(|w| w[0] == w[1]));

    if let Ok(path) = std::env::var("TAO_EPOCH_CSV") {
        if !path.is_empty() {
            let csv = tao_protocol::log_csv(serial_epoch.index, &serial_epoch.entries);
            std::fs::write(&path, csv).expect("write TAO_EPOCH_CSV artifact");
        }
    }
}

/// The audit channel goes through the same shard paths as a voluntary
/// challenge (deposit-free freeze, then settlement); the proptest above
/// covers challenges exhaustively, this covers the audit transitions and
/// conservation.
#[test]
fn audit_lifecycle_settles_and_conserves_on_shards() {
    let (econ, slash) = econ_and_slash();
    let sharded = Coordinator::new(econ, slash).unwrap();
    sharded.fund("prop", 5_000);

    let id = sharded.submit_claim("prop", commitment(0), &meta()).unwrap();
    sharded.open_audit(id).unwrap();
    sharded.settle(id, Party::Proposer, COMMITTEE).unwrap();
    assert!(matches!(
        sharded.claim(id).unwrap().status,
        ClaimStatus::Settled { winner: Party::Proposer }
    ));
    // Committee fees paid, proposer made whole plus reward — exactly.
    assert!(sharded.balance("committee-pool") > Money::ZERO);
    assert!(sharded.balance("prop") > Money::from_credits(5_000));
    assert_eq!(sharded.escrowed("prop"), Money::ZERO);
    let ledger = sharded.ledger();
    assert_eq!(ledger.total_value(), ledger.injected());
}
