//! Per-operator analysis contracts.
//!
//! Every [`OpKind`] gets one declarative [`OpContract`]: how many inputs it
//! takes, whether its output aliases an existing buffer, and which
//! [`ErrorRule`] class its floating-point rounding behaviour falls into.
//! Static shape inference ([`infer_shape`]) mirrors the runtime validation
//! of `tao-tensor` exactly — an operator admits a shape statically if and
//! only if the kernel would accept tensors of those shapes — which is what
//! lets `tests/tests/analysis_oracle.rs` assert *exact* equality between
//! the static report and `execute_with_stats` measurements.
//!
//! The bounds engine (`tao-bounds`) dispatches on [`ErrorRule`] instead of
//! matching `OpKind` directly, so the per-op classification lives in
//! exactly one place; the value-level bound templates stay with the engine.

use tao_graph::OpKind;
use tao_tensor::Shape;

/// Intrinsic math functions with documented maximum-ULP errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// `exp(x)`.
    Exp,
    /// `ln(x)`.
    Log,
    /// `tanh(x)`.
    Tanh,
    /// `1/sqrt(x)`.
    Rsqrt,
}

/// Rounding-error classification of an operator: which first-order bound
/// template applies (§3.1 of the paper). The bounds engine owns the
/// value-level math; this enum owns the *classification*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorRule {
    /// Structural or exact (data movement, comparisons): zero error.
    Exact,
    /// `scale` fresh roundings on the output: `ε ≤ scale·u·|out|`.
    Fresh {
        /// Number of unit roundoffs charged per element.
        scale: f64,
    },
    /// Library intrinsic with a documented max-ULP relative error.
    Intrinsic(Intrinsic),
    /// `sin`/`cos`: 2 ULP absolute at unit scale (`|out| ≤ 1`).
    UnitRange,
    /// `σ(x) = 1/(1+e^{-x})` composite template.
    Sigmoid,
    /// `x·σ(x)` composite template.
    Silu,
    /// Tanh-approximation GELU composite template.
    Gelu,
    /// Shifted-softmax lane template.
    Softmax,
    /// Mean/variance normalization lane template.
    LayerNorm,
    /// Root-mean-square normalization lane template.
    RmsNorm,
    /// Per-channel affine normalization with running statistics.
    BatchNorm,
    /// Per-group normalization over NCHW input.
    GroupNorm,
    /// Length-`k` dot products under `γ_k` accumulation (matmul, linear,
    /// conv2d; the engine recovers the geometry from the node).
    DotProduct,
    /// Single ordered whole-tensor sum.
    SumAll,
    /// Whole-tensor mean: sum chain plus one division rounding.
    MeanAll,
    /// Per-lane reduction along one axis.
    ReduceAxis {
        /// Whether a division by the lane extent follows the sum.
        mean: bool,
    },
    /// Windowed average pooling.
    AvgPool,
    /// Global (adaptive 1x1) average pooling.
    GlobalAvgPool,
    /// Int8-quantized operator: the committed numeric contract is exact
    /// integer arithmetic (widening wrapping-`i32` accumulation plus
    /// deterministic `f64` scale roundings), so the *cross-device
    /// deviation* bound is zero — every honest device reproduces the same
    /// bits at every `KernelConfig`.
    Quantized,
}

/// How many inputs an operator accepts (mirrors `eval_node`'s checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n` inputs.
    Exact(usize),
    /// Between `lo` and `hi` inputs inclusive (e.g. optional bias).
    Range(usize, usize),
    /// At least `n` inputs (variadic concat).
    AtLeast(usize),
}

impl Arity {
    /// Whether `got` inputs satisfy this arity.
    pub fn admits(&self, got: usize) -> bool {
        match *self {
            Arity::Exact(n) => got == n,
            Arity::Range(lo, hi) => (lo..=hi).contains(&got),
            Arity::AtLeast(n) => got >= n,
        }
    }
}

/// The declarative analysis contract of one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpContract {
    /// Input count the executor accepts.
    pub arity: Arity,
    /// Whether the output tensor shares the storage of its first input
    /// (or of a graph parameter / caller input): `Arc`-clone ops allocate
    /// nothing, which is what the static peak-memory model folds over.
    pub aliasing: bool,
    /// Rounding-error classification consumed by `tao-bounds`.
    pub error: ErrorRule,
}

/// The analysis contract for `kind`. Total over [`OpKind`]; adding an
/// operator without a contract is a compile error here rather than a
/// runtime surprise in three crates.
pub fn contract(kind: &OpKind) -> OpContract {
    use ErrorRule as E;
    let c = |arity, aliasing, error| OpContract {
        arity,
        aliasing,
        error,
    };
    match kind {
        OpKind::Input(_) => c(Arity::Exact(0), true, E::Exact),
        OpKind::Parameter(_) => c(Arity::Exact(0), true, E::Exact),
        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => {
            c(Arity::Exact(2), false, E::Fresh { scale: 1.0 })
        }
        OpKind::Pow => c(Arity::Exact(2), false, E::Fresh { scale: 6.0 }),
        OpKind::Neg => c(Arity::Exact(1), false, E::Exact),
        OpKind::AddScalar(_) | OpKind::MulScalar(_) => {
            c(Arity::Exact(1), false, E::Fresh { scale: 1.0 })
        }
        OpKind::PowScalar(_) => c(Arity::Exact(1), false, E::Fresh { scale: 6.0 }),
        OpKind::Sqrt => c(Arity::Exact(1), false, E::Fresh { scale: 1.0 }),
        OpKind::Rsqrt => c(Arity::Exact(1), false, E::Intrinsic(Intrinsic::Rsqrt)),
        OpKind::Exp => c(Arity::Exact(1), false, E::Intrinsic(Intrinsic::Exp)),
        OpKind::Log => c(Arity::Exact(1), false, E::Intrinsic(Intrinsic::Log)),
        OpKind::Tanh => c(Arity::Exact(1), false, E::Intrinsic(Intrinsic::Tanh)),
        OpKind::Sin | OpKind::Cos => c(Arity::Exact(1), false, E::UnitRange),
        OpKind::Relu => c(Arity::Exact(1), false, E::Exact),
        OpKind::Gelu => c(Arity::Exact(1), false, E::Gelu),
        OpKind::Silu => c(Arity::Exact(1), false, E::Silu),
        OpKind::Sigmoid => c(Arity::Exact(1), false, E::Sigmoid),
        OpKind::Softmax => c(Arity::Exact(1), false, E::Softmax),
        OpKind::LayerNorm { .. } => c(Arity::Exact(3), false, E::LayerNorm),
        OpKind::RmsNorm { .. } => c(Arity::Exact(2), false, E::RmsNorm),
        OpKind::BatchNorm2d { .. } => c(Arity::Exact(5), false, E::BatchNorm),
        OpKind::GroupNorm { .. } => c(Arity::Exact(3), false, E::GroupNorm),
        OpKind::MatMul => c(Arity::Exact(2), false, E::DotProduct),
        OpKind::Linear => c(Arity::Range(2, 3), false, E::DotProduct),
        OpKind::Conv2d { .. } => c(Arity::Range(2, 3), false, E::DotProduct),
        OpKind::QuantMatmul => c(Arity::Exact(2), false, E::Quantized),
        OpKind::QuantLinear => c(Arity::Range(2, 3), false, E::Quantized),
        OpKind::Quantize { .. } | OpKind::Dequantize { .. } => {
            c(Arity::Exact(1), false, E::Quantized)
        }
        OpKind::MeanAll => c(Arity::Exact(1), false, E::MeanAll),
        OpKind::SumAll => c(Arity::Exact(1), false, E::SumAll),
        OpKind::SumAxis(_) => c(Arity::Exact(1), false, E::ReduceAxis { mean: false }),
        OpKind::MeanAxis(_) => c(Arity::Exact(1), false, E::ReduceAxis { mean: true }),
        OpKind::MaxAxis(_) => c(Arity::Exact(1), false, E::Exact),
        OpKind::MaxPool2d { .. } => c(Arity::Exact(1), false, E::Exact),
        OpKind::AvgPool2d { .. } => c(Arity::Exact(1), false, E::AvgPool),
        OpKind::AdaptiveAvgPool1x1 => c(Arity::Exact(1), false, E::GlobalAvgPool),
        OpKind::UpsampleNearest(_) => c(Arity::Exact(1), false, E::Exact),
        OpKind::Reshape(_) => c(Arity::Exact(1), true, E::Exact),
        OpKind::Flatten => c(Arity::Exact(1), true, E::Exact),
        OpKind::FlattenFrom(_) => c(Arity::Exact(1), true, E::Exact),
        OpKind::Transpose(_, _) => c(Arity::Exact(1), false, E::Exact),
        OpKind::Permute(_) => c(Arity::Exact(1), false, E::Exact),
        OpKind::Slice { .. } => c(Arity::Exact(1), false, E::Exact),
        OpKind::Concat(_) => c(Arity::AtLeast(1), false, E::Exact),
        OpKind::Embedding => c(Arity::Exact(2), false, E::Exact),
        OpKind::MaskedFill(_) => c(Arity::Exact(2), false, E::Exact),
        OpKind::Identity => c(Arity::Exact(1), true, E::Exact),
    }
}

/// A static shape-inference failure, phrased for lint output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeIssue(pub String);

impl std::fmt::Display for ShapeIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

type ShapeResult = std::result::Result<Vec<usize>, ShapeIssue>;

fn issue(msg: impl Into<String>) -> ShapeIssue {
    ShapeIssue(msg.into())
}

/// Infers the output shape of `kind` from its input shapes, reproducing
/// the validation rules of the `tao-tensor` kernels (same accept/reject
/// decisions, same output dims). `Input`/`Parameter` shapes come from
/// context and are resolved by the interpreter, not here.
///
/// # Errors
///
/// Returns a [`ShapeIssue`] exactly when the corresponding kernel would
/// reject tensors of these shapes.
#[allow(clippy::too_many_lines)]
pub fn infer_shape(kind: &OpKind, inputs: &[&[usize]]) -> ShapeResult {
    let ct = contract(kind);
    if !ct.arity.admits(inputs.len()) {
        return Err(issue(format!(
            "{kind:?}: arity {:?} violated by {} inputs",
            ct.arity,
            inputs.len()
        )));
    }
    let broadcast = |a: &[usize], b: &[usize]| -> ShapeResult {
        Shape::new(a)
            .broadcast(&Shape::new(b))
            .map(|s| s.dims().to_vec())
            .map_err(|_| issue(format!("{kind:?}: shapes {a:?} and {b:?} do not broadcast")))
    };
    let nchw = |dims: &[usize]| -> std::result::Result<(usize, usize, usize, usize), ShapeIssue> {
        match dims {
            [n, c, h, w] => Ok((*n, *c, *h, *w)),
            _ => Err(issue(format!("{kind:?}: expected NCHW input, got {dims:?}"))),
        }
    };
    let last_axis = |dims: &[usize]| -> std::result::Result<usize, ShapeIssue> {
        match dims.last() {
            Some(&d) if d > 0 => Ok(d),
            Some(_) => Err(issue(format!("{kind:?} over empty last axis"))),
            None => Err(issue(format!("{kind:?} needs rank >= 1"))),
        }
    };
    match kind {
        OpKind::Input(_) | OpKind::Parameter(_) => {
            Err(issue("input/parameter shapes come from context"))
        }

        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Pow => {
            broadcast(inputs[0], inputs[1])
        }
        OpKind::Neg
        | OpKind::AddScalar(_)
        | OpKind::MulScalar(_)
        | OpKind::PowScalar(_)
        | OpKind::Sqrt
        | OpKind::Rsqrt
        | OpKind::Exp
        | OpKind::Log
        | OpKind::Sin
        | OpKind::Cos
        | OpKind::Tanh
        | OpKind::Relu
        | OpKind::Gelu
        | OpKind::Silu
        | OpKind::Sigmoid
        | OpKind::Identity => Ok(inputs[0].to_vec()),

        OpKind::Softmax => {
            last_axis(inputs[0])?;
            Ok(inputs[0].to_vec())
        }
        OpKind::LayerNorm { .. } => {
            let d = last_axis(inputs[0])?;
            if inputs[1] != [d] || inputs[2] != [d] {
                return Err(issue(format!(
                    "layer_norm params {:?}/{:?} must be [{d}]",
                    inputs[1], inputs[2]
                )));
            }
            Ok(inputs[0].to_vec())
        }
        OpKind::RmsNorm { .. } => {
            let d = last_axis(inputs[0])?;
            if inputs[1] != [d] {
                return Err(issue(format!("rms_norm gamma {:?} must be [{d}]", inputs[1])));
            }
            Ok(inputs[0].to_vec())
        }
        OpKind::BatchNorm2d { .. } => {
            let (_, c, _, _) = nchw(inputs[0])?;
            for p in &inputs[1..5] {
                if **p != [c] {
                    return Err(issue(format!("batch_norm2d param {p:?} must be [{c}]")));
                }
            }
            Ok(inputs[0].to_vec())
        }
        OpKind::GroupNorm { groups, .. } => {
            let (_, c, _, _) = nchw(inputs[0])?;
            if *groups == 0 || c % *groups != 0 {
                return Err(issue(format!(
                    "group_norm: {groups} groups do not divide {c} channels"
                )));
            }
            if inputs[1] != [c] || inputs[2] != [c] {
                return Err(issue(format!(
                    "group_norm params {:?}/{:?} must be [{c}]",
                    inputs[1], inputs[2]
                )));
            }
            Ok(inputs[0].to_vec())
        }

        OpKind::MatMul => {
            let (a, b) = (inputs[0], inputs[1]);
            if a.len() < 2 || b.len() < 2 {
                return Err(issue(format!("matmul needs rank >= 2, got {a:?} @ {b:?}")));
            }
            let (m, ka) = (a[a.len() - 2], a[a.len() - 1]);
            let (kb, n) = (b[b.len() - 2], b[b.len() - 1]);
            if ka != kb {
                return Err(issue(format!("matmul inner dims differ: {a:?} @ {b:?}")));
            }
            let batch_dims = if a.len() == 2 && b.len() > 2 {
                b[..b.len() - 2].to_vec()
            } else if b.len() == 2 && a.len() > 2 {
                a[..a.len() - 2].to_vec()
            } else {
                if a[..a.len() - 2] != b[..b.len() - 2] {
                    return Err(issue(format!("matmul batch dims differ: {a:?} @ {b:?}")));
                }
                a[..a.len() - 2].to_vec()
            };
            let mut out = batch_dims;
            out.push(m);
            out.push(n);
            Ok(out)
        }
        OpKind::Linear => {
            let (x, w) = (inputs[0], inputs[1]);
            if w.len() != 2 {
                return Err(issue(format!("linear weight must be rank 2, got {w:?}")));
            }
            let in_f = *x
                .last()
                .ok_or_else(|| issue("linear input needs rank >= 1"))?;
            let (out_f, w_in) = (w[0], w[1]);
            if w_in != in_f {
                return Err(issue(format!("linear features differ: {x:?} @ {w:?}")));
            }
            if let Some(b) = inputs.get(2) {
                if **b != [out_f] {
                    return Err(issue(format!("linear bias {b:?} must be [{out_f}]")));
                }
            }
            let mut out = x.to_vec();
            *out.last_mut().expect("rank checked") = out_f;
            Ok(out)
        }
        OpKind::QuantMatmul => {
            // Rank-2 only, mirroring the kernel's `quant_matmul_check`.
            let (a, b) = (inputs[0], inputs[1]);
            if a.len() != 2 || b.len() != 2 {
                return Err(issue(format!(
                    "quant_matmul needs rank 2 operands, got {a:?} @ {b:?}"
                )));
            }
            if a[1] != b[0] {
                return Err(issue(format!("quant_matmul inner dims differ: {a:?} @ {b:?}")));
            }
            Ok(vec![a[0], b[1]])
        }
        OpKind::QuantLinear => {
            let (x, w) = (inputs[0], inputs[1]);
            if w.len() != 2 {
                return Err(issue(format!("quant_linear weight must be rank 2, got {w:?}")));
            }
            let in_f = *x
                .last()
                .ok_or_else(|| issue("quant_linear input needs rank >= 1"))?;
            let (out_f, w_in) = (w[0], w[1]);
            if w_in != in_f {
                return Err(issue(format!("quant_linear features differ: {x:?} @ {w:?}")));
            }
            if let Some(b) = inputs.get(2) {
                if **b != [out_f] {
                    return Err(issue(format!("quant_linear bias {b:?} must be [{out_f}]")));
                }
            }
            let mut out = x.to_vec();
            *out.last_mut().expect("rank checked") = out_f;
            Ok(out)
        }
        OpKind::Quantize { scale } | OpKind::Dequantize { scale } => {
            // Mirrors the kernel's `check_scale` so an inadmissible scale
            // is a lint finding, not a runtime surprise.
            if !scale.is_finite() || *scale <= 0.0 {
                return Err(issue(format!(
                    "{kind:?}: scale must be finite and positive, got {scale}"
                )));
            }
            Ok(inputs[0].to_vec())
        }
        OpKind::Conv2d { stride, padding } => {
            let (n, c_in, h, w) = nchw(inputs[0])?;
            let (c_out, wc_in, kh, kw) = nchw(inputs[1])
                .map_err(|_| issue(format!("conv2d weight must be rank 4, got {:?}", inputs[1])))?;
            if wc_in != c_in {
                return Err(issue(format!(
                    "conv2d channels differ: input {:?}, weight {:?}",
                    inputs[0], inputs[1]
                )));
            }
            if let Some(b) = inputs.get(2) {
                if **b != [c_out] {
                    return Err(issue(format!("conv2d bias {b:?} must be [{c_out}]")));
                }
            }
            if *stride == 0 {
                return Err(issue("conv2d stride must be > 0"));
            }
            let ext = |input: usize, kernel: usize| {
                (input + 2 * padding)
                    .checked_sub(kernel)
                    .map(|v| v / stride + 1)
            };
            let oh = ext(h, kh).ok_or_else(|| issue("conv2d: kernel taller than input"))?;
            let ow = ext(w, kw).ok_or_else(|| issue("conv2d: kernel wider than input"))?;
            Ok(vec![n, c_out, oh, ow])
        }

        OpKind::MeanAll | OpKind::SumAll => Ok(vec![]),
        OpKind::SumAxis(axis) | OpKind::MeanAxis(axis) | OpKind::MaxAxis(axis) => {
            let dims = inputs[0];
            if *axis >= dims.len() {
                return Err(issue(format!("axis {axis} out of range for {dims:?}")));
            }
            if dims[*axis] == 0 {
                return Err(issue("reduce over empty axis"));
            }
            let mut out = dims.to_vec();
            out.remove(*axis);
            Ok(out)
        }
        OpKind::MaxPool2d { kernel, stride } | OpKind::AvgPool2d { kernel, stride } => {
            let (n, c, h, w) = nchw(inputs[0])?;
            if *kernel == 0 || *stride == 0 || *kernel > h || *kernel > w {
                return Err(issue(format!(
                    "pool2d: kernel {kernel}/stride {stride} invalid for {h}x{w}"
                )));
            }
            Ok(vec![n, c, (h - kernel) / stride + 1, (w - kernel) / stride + 1])
        }
        OpKind::AdaptiveAvgPool1x1 => {
            let (n, c, _, _) = nchw(inputs[0])?;
            Ok(vec![n, c, 1, 1])
        }
        OpKind::UpsampleNearest(factor) => {
            let (n, c, h, w) = nchw(inputs[0])?;
            if *factor == 0 {
                return Err(issue("upsample factor must be > 0"));
            }
            Ok(vec![n, c, h * factor, w * factor])
        }

        OpKind::Reshape(dims) => {
            let vol: usize = inputs[0].iter().product();
            let new_vol: usize = dims.iter().product();
            if vol != new_vol {
                return Err(issue(format!(
                    "reshape {:?} -> {dims:?} changes volume {vol} -> {new_vol}",
                    inputs[0]
                )));
            }
            Ok(dims.clone())
        }
        OpKind::Flatten => Ok(vec![inputs[0].iter().product()]),
        OpKind::FlattenFrom(axis) => {
            let dims = inputs[0];
            if *axis > dims.len() {
                return Err(issue(format!(
                    "flatten_from axis {axis} out of range for {dims:?}"
                )));
            }
            let mut out = dims[..*axis].to_vec();
            out.push(dims[*axis..].iter().product());
            Ok(out)
        }
        OpKind::Transpose(a, b) => {
            let dims = inputs[0];
            if *a >= dims.len() || *b >= dims.len() {
                return Err(issue(format!(
                    "transpose axes ({a},{b}) out of range for {dims:?}"
                )));
            }
            let mut out = dims.to_vec();
            out.swap(*a, *b);
            Ok(out)
        }
        OpKind::Permute(perm) => {
            let dims = inputs[0];
            let rank = dims.len();
            if perm.len() != rank {
                return Err(issue(format!("permute {perm:?} rank differs from {dims:?}")));
            }
            let mut seen = vec![false; rank];
            for &p in perm {
                if p >= rank || seen[p] {
                    return Err(issue(format!(
                        "permute: {perm:?} is not a permutation of 0..{rank}"
                    )));
                }
                seen[p] = true;
            }
            Ok(perm.iter().map(|&p| dims[p]).collect())
        }
        OpKind::Slice { axis, start, end } => {
            let dims = inputs[0];
            if *axis >= dims.len() {
                return Err(issue(format!("slice axis {axis} out of range for {dims:?}")));
            }
            let extent = dims[*axis];
            if start > end || *end > extent {
                return Err(issue(format!(
                    "slice: bounds [{start}, {end}) invalid for extent {extent}"
                )));
            }
            let mut out = dims.to_vec();
            out[*axis] = end - start;
            Ok(out)
        }
        OpKind::Concat(axis) => {
            let first = inputs[0];
            let rank = first.len();
            if *axis >= rank {
                return Err(issue(format!("concat axis {axis} out of range for {first:?}")));
            }
            let mut total = 0;
            for t in inputs {
                if t.len() != rank {
                    return Err(issue(format!("concat rank differs: {first:?} vs {t:?}")));
                }
                for a in 0..rank {
                    if a != *axis && t[a] != first[a] {
                        return Err(issue(format!(
                            "concat off-axis dims differ: {first:?} vs {t:?}"
                        )));
                    }
                }
                total += t[*axis];
            }
            let mut out = first.to_vec();
            out[*axis] = total;
            Ok(out)
        }
        OpKind::Embedding => {
            let table = inputs[0];
            if table.len() != 2 {
                return Err(issue(format!("embedding table must be rank 2, got {table:?}")));
            }
            let ids: usize = inputs[1].iter().product();
            Ok(vec![ids, table[1]])
        }
        OpKind::MaskedFill(_) => {
            if !Shape::new(inputs[1]).broadcastable_to(&Shape::new(inputs[0])) {
                return Err(issue(format!(
                    "masked_fill mask {:?} not broadcastable to {:?}",
                    inputs[1], inputs[0]
                )));
            }
            Ok(inputs[0].to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_broadcasts() {
        assert_eq!(
            infer_shape(&OpKind::Add, &[&[2, 3], &[3]]).unwrap(),
            vec![2, 3]
        );
        assert!(infer_shape(&OpKind::Add, &[&[2, 3], &[4]]).is_err());
    }

    #[test]
    fn matmul_batch_rules() {
        assert_eq!(
            infer_shape(&OpKind::MatMul, &[&[4, 2, 3], &[4, 3, 5]]).unwrap(),
            vec![4, 2, 5]
        );
        assert_eq!(
            infer_shape(&OpKind::MatMul, &[&[2, 3], &[4, 3, 5]]).unwrap(),
            vec![4, 2, 5]
        );
        assert!(infer_shape(&OpKind::MatMul, &[&[2, 3], &[4, 5]]).is_err());
        assert!(infer_shape(&OpKind::MatMul, &[&[2, 2, 3], &[4, 3, 5]]).is_err());
    }

    #[test]
    fn conv_geometry_matches_kernel() {
        let k = OpKind::Conv2d {
            stride: 2,
            padding: 1,
        };
        assert_eq!(
            infer_shape(&k, &[&[1, 3, 8, 8], &[8, 3, 3, 3]]).unwrap(),
            vec![1, 8, 4, 4]
        );
        // Kernel taller than the padded input is rejected.
        assert!(infer_shape(&k, &[&[1, 3, 2, 2], &[8, 3, 5, 5]]).is_err());
    }

    #[test]
    fn arity_is_enforced() {
        assert!(infer_shape(&OpKind::Add, &[&[2]]).is_err());
        assert!(infer_shape(&OpKind::Linear, &[&[4, 3], &[5, 3], &[5]]).is_ok());
        assert!(infer_shape(&OpKind::Linear, &[&[4, 3]]).is_err());
    }

    #[test]
    fn every_kind_has_a_contract() {
        // Spot-check aliasing classification for the Arc-clone ops.
        for kind in [
            OpKind::Reshape(vec![4]),
            OpKind::Flatten,
            OpKind::FlattenFrom(1),
            OpKind::Identity,
        ] {
            assert!(contract(&kind).aliasing, "{kind:?} aliases its input");
        }
        assert!(!contract(&OpKind::Transpose(0, 1)).aliasing);
        assert_eq!(contract(&OpKind::Softmax).error, ErrorRule::Softmax);
    }
}
