//! The graph linter: well-formedness and calibration-safety rules.
//!
//! Severities are graded. `Deny` findings mean the graph cannot be
//! admitted (shape mismatches, missing parameters, arity violations —
//! execution would fail). `Warn` findings flag patterns that execute fine
//! but are hazardous in a tolerance-calibrated marketplace: unreachable
//! nodes (dead weight in the commitment), divisions / logs / rsqrts whose
//! argument is not provably positive, and — the PR 6 gotcha — output
//! heads that expose *raw logits* instead of a bounded activation, where
//! per-element thresholds calibrated on unbounded values invite false
//! flags. [`LintConfig::strict`] escalates every warning to `Deny` for CI
//! gating of planted-violation fixtures.
//!
//! Positivity is tracked with a tiny abstract domain folded over the
//! graph: `exp`/`softmax`/`sigmoid` outputs are positive, `relu` is
//! non-negative, parameters are inspected directly, and structural ops
//! pass the class through. It is deliberately conservative — `Unknown`
//! never produces a `Deny` on its own under the default configuration.

use tao_graph::{Graph, NodeId, OpKind};

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Hazardous pattern; admission proceeds under the default config.
    Warn,
    /// Malformed graph; admission must reject.
    Deny,
}

/// Which lint rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintRule {
    /// Node does not reach any graph output.
    Unreachable,
    /// Static shape inference rejected the node (incl. arity violations).
    ShapeMismatch,
    /// `Parameter` node references a name absent from the state dict.
    MissingParameter,
    /// Division / log / rsqrt whose argument is not provably positive.
    UnboundedDenominator,
    /// Output head exposes raw (unbounded) logits; thresholds calibrated
    /// on such heads are a false-flag hazard.
    CalibrationSafety,
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: LintRule,
    /// Severity after any configured escalation.
    pub severity: Severity,
    /// The offending node, when the finding is node-local.
    pub node: Option<NodeId>,
    /// Human-readable explanation.
    pub message: String,
}

impl LintFinding {
    /// A `Deny` finding.
    pub fn deny(rule: LintRule, node: Option<NodeId>, message: impl Into<String>) -> Self {
        LintFinding {
            rule,
            severity: Severity::Deny,
            node,
            message: message.into(),
        }
    }
}

/// Linter configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// Escalate every `Warn` finding to `Deny` (CI fixture gating).
    pub escalate_warnings: bool,
}

impl LintConfig {
    /// Strict mode: warnings become `Deny`.
    pub fn strict() -> Self {
        LintConfig {
            escalate_warnings: true,
        }
    }
}

/// Positivity abstract domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Positivity {
    Positive,
    NonNegative,
    Unknown,
}

impl Positivity {
    fn meet(self, other: Positivity) -> Positivity {
        use Positivity::*;
        match (self, other) {
            (Positive, Positive) => Positive,
            (Unknown, _) | (_, Unknown) => Unknown,
            _ => NonNegative,
        }
    }

    fn at_least_nonneg(self) -> bool {
        !matches!(self, Positivity::Unknown)
    }
}

/// Folds the positivity domain over the graph. `shapes` gates nothing
/// here; parameters are inspected from the state dict directly.
fn positivity(graph: &Graph) -> Vec<Positivity> {
    use Positivity::*;
    let mut classes: Vec<Positivity> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let arg = |k: usize| -> Positivity {
            node.inputs
                .get(k)
                .map_or(Unknown, |id| classes[id.0])
        };
        let class = match &node.kind {
            OpKind::Parameter(name) => match graph.param(name) {
                Ok(t) if t.data().iter().all(|&v| v > 0.0) && !t.is_empty() => Positive,
                Ok(t) if t.data().iter().all(|&v| v >= 0.0) => NonNegative,
                _ => Unknown,
            },
            OpKind::Exp | OpKind::Softmax | OpKind::Sigmoid => Positive,
            OpKind::Relu => match arg(0) {
                Positive => Positive,
                _ => NonNegative,
            },
            OpKind::Sqrt => arg(0),
            OpKind::Rsqrt => match arg(0) {
                Positive => Positive,
                _ => Unknown,
            },
            OpKind::AddScalar(s) => {
                if *s > 0.0 && arg(0).at_least_nonneg() {
                    Positive
                } else if *s >= 0.0 {
                    arg(0)
                } else {
                    Unknown
                }
            }
            OpKind::MulScalar(s) => {
                if *s > 0.0 {
                    arg(0)
                } else if *s == 0.0 {
                    NonNegative
                } else {
                    Unknown
                }
            }
            OpKind::Add => match (arg(0), arg(1)) {
                (Positive, b) if b.at_least_nonneg() => Positive,
                (a, Positive) if a.at_least_nonneg() => Positive,
                (NonNegative, NonNegative) => NonNegative,
                _ => Unknown,
            },
            OpKind::Mul => match (arg(0), arg(1)) {
                (Positive, Positive) => Positive,
                (a, b) if a.at_least_nonneg() && b.at_least_nonneg() => NonNegative,
                _ => Unknown,
            },
            OpKind::Div => match (arg(0), arg(1)) {
                (Positive, Positive) => Positive,
                (NonNegative, Positive) => NonNegative,
                _ => Unknown,
            },
            // Sums/means/maxima of non-negative lanes keep the class;
            // pooling and spatial resampling likewise.
            OpKind::SumAll
            | OpKind::MeanAll
            | OpKind::SumAxis(_)
            | OpKind::MeanAxis(_)
            | OpKind::MaxAxis(_)
            | OpKind::MaxPool2d { .. }
            | OpKind::AvgPool2d { .. }
            | OpKind::AdaptiveAvgPool1x1
            | OpKind::UpsampleNearest(_) => arg(0),
            // Structural pass-through.
            OpKind::Reshape(_)
            | OpKind::Flatten
            | OpKind::FlattenFrom(_)
            | OpKind::Transpose(_, _)
            | OpKind::Permute(_)
            | OpKind::Slice { .. }
            | OpKind::Identity => arg(0),
            OpKind::Concat(_) => node
                .inputs
                .iter()
                .map(|id| classes[id.0])
                .fold(Positive, Positivity::meet),
            _ => Unknown,
        };
        classes.push(class);
    }
    classes
}

/// Bounded output heads a calibrated threshold is safe against.
fn bounded_head(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Softmax | OpKind::Sigmoid | OpKind::Tanh | OpKind::Sin | OpKind::Cos
    )
}

/// Runs the graph-level lint rules (reachability, positivity hazards,
/// calibration safety). Shape/arity/parameter findings are produced by
/// the interpreter during shape inference and merged by the caller.
pub fn lint_graph(
    graph: &Graph,
    shapes: &[Option<Vec<usize>>],
    cfg: &LintConfig,
) -> Vec<LintFinding> {
    let _ = shapes;
    let mut findings = Vec::new();
    let warn = |rule, node, message: String| LintFinding {
        rule,
        severity: if cfg.escalate_warnings {
            Severity::Deny
        } else {
            Severity::Warn
        },
        node: Some(node),
        message,
    };

    // Reachability: walk backwards from the outputs.
    let mut live = vec![false; graph.len()];
    let mut stack: Vec<NodeId> = graph.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id.0], true) {
            continue;
        }
        if let Ok(node) = graph.node(id) {
            stack.extend(node.inputs.iter().copied());
        }
    }
    for node in graph.nodes() {
        if !live[node.id.0] {
            findings.push(warn(
                LintRule::Unreachable,
                node.id,
                format!(
                    "node {} ({:?}) does not reach any output; dead weight in the commitment",
                    node.name, node.kind
                ),
            ));
        }
    }

    // Positivity hazards: div/log/rsqrt by a value not provably positive.
    let classes = positivity(graph);
    for node in graph.nodes() {
        let hazard = match &node.kind {
            OpKind::Div => node.inputs.get(1).map(|id| ("denominator", *id)),
            OpKind::Log => node.inputs.first().map(|id| ("log argument", *id)),
            OpKind::Rsqrt => node.inputs.first().map(|id| ("rsqrt argument", *id)),
            _ => None,
        };
        if let Some((what, src)) = hazard {
            if classes[src.0] != Positivity::Positive {
                findings.push(warn(
                    LintRule::UnboundedDenominator,
                    node.id,
                    format!(
                        "node {} ({:?}): {what} is not provably positive; \
                         zero crossings produce inf/nan outside any calibrated envelope",
                        node.name, node.kind
                    ),
                ));
            }
        }
    }

    // Calibration safety: outputs should end in a bounded activation.
    // Structural ops are looked through to the node that computes the
    // head values.
    for &out in graph.outputs() {
        let mut id = out;
        let head = loop {
            match graph.node(id) {
                Ok(n) if n.kind.is_structural() && !n.inputs.is_empty() => {
                    if matches!(n.kind, OpKind::Concat(_) | OpKind::MaskedFill(_)) {
                        break Some(n);
                    }
                    id = n.inputs[0];
                }
                Ok(n) => break Some(n),
                Err(_) => break None,
            }
        };
        if let Some(n) = head {
            if !bounded_head(&n.kind) {
                findings.push(warn(
                    LintRule::CalibrationSafety,
                    n.id,
                    format!(
                        "output head {} ({:?}) exposes raw logits; thresholds calibrated \
                         on unbounded values are a false-flag hazard (prefer a softmax head)",
                        n.name, n.kind
                    ),
                ));
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::GraphBuilder;
    use tao_tensor::Tensor;

    #[test]
    fn unreachable_node_warns() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let _dead = b.op("dead", OpKind::Relu, &[x]);
        let s = b.op("s", OpKind::Softmax, &[x]);
        let g = b.finish(vec![s]).unwrap();
        let f = lint_graph(&g, &[], &LintConfig::default());
        assert!(f
            .iter()
            .any(|f| f.rule == LintRule::Unreachable && f.severity == Severity::Warn));
        let strict = lint_graph(&g, &[], &LintConfig::strict());
        assert!(strict
            .iter()
            .any(|f| f.rule == LintRule::Unreachable && f.severity == Severity::Deny));
    }

    #[test]
    fn softmax_head_is_calibration_safe_through_reshape() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let s = b.op("s", OpKind::Softmax, &[x]);
        let r = b.op("r", OpKind::Reshape(vec![4]), &[s]);
        let g = b.finish(vec![r]).unwrap();
        let f = lint_graph(&g, &[], &LintConfig::strict());
        assert!(
            f.iter().all(|f| f.rule != LintRule::CalibrationSafety),
            "{f:?}"
        );
    }

    #[test]
    fn raw_logit_head_flagged() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::eye(4));
        let y = b.op("y", OpKind::MatMul, &[x, w]);
        let g = b.finish(vec![y]).unwrap();
        let f = lint_graph(&g, &[], &LintConfig::default());
        assert!(f
            .iter()
            .any(|f| f.rule == LintRule::CalibrationSafety && f.severity == Severity::Warn));
    }

    #[test]
    fn division_by_softmax_output_is_positive() {
        let mut b = GraphBuilder::new(2);
        let x = b.input(0, "x");
        let d = b.input(1, "d");
        let sm = b.op("sm", OpKind::Softmax, &[d]);
        let q = b.op("q", OpKind::Div, &[x, sm]);
        let s2 = b.op("out", OpKind::Softmax, &[q]);
        let g = b.finish(vec![s2]).unwrap();
        let f = lint_graph(&g, &[], &LintConfig::default());
        assert!(
            f.iter().all(|f| f.rule != LintRule::UnboundedDenominator),
            "{f:?}"
        );
    }

    #[test]
    fn division_by_raw_input_warns() {
        let mut b = GraphBuilder::new(2);
        let x = b.input(0, "x");
        let d = b.input(1, "d");
        let q = b.op("q", OpKind::Div, &[x, d]);
        let s = b.op("out", OpKind::Softmax, &[q]);
        let g = b.finish(vec![s]).unwrap();
        let f = lint_graph(&g, &[], &LintConfig::default());
        assert!(f.iter().any(|f| f.rule == LintRule::UnboundedDenominator));
    }

    #[test]
    fn positive_parameter_plus_eps_pattern_is_clean() {
        // var + eps then rsqrt: the BatchNorm denominator idiom.
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let var = b.parameter("var", Tensor::<f32>::from_vec(vec![0.5, 1.0], &[2]).unwrap());
        let shifted = b.op("shifted", OpKind::AddScalar(1e-5), &[var]);
        let inv = b.op("inv", OpKind::Rsqrt, &[shifted]);
        let y = b.op("y", OpKind::Mul, &[x, inv]);
        let s = b.op("out", OpKind::Softmax, &[y]);
        let g = b.finish(vec![s]).unwrap();
        let f = lint_graph(&g, &[], &LintConfig::default());
        assert!(
            f.iter().all(|f| f.rule != LintRule::UnboundedDenominator),
            "{f:?}"
        );
    }
}
