//! The contract interpreter: folds [`crate::contract()`] rules over a
//! [`Graph`] without executing it, producing a [`StaticReport`].
//!
//! The cost model is pinned to the executor's measurements:
//!
//! - **shapes / FLOPs** — shape inference mirrors the kernel validation
//!   rules and the FLOP rule is literally [`OpKind::flops`] evaluated on
//!   the inferred shapes, so both are *exactly* what
//!   `execute_with_stats` records (asserted per-model in
//!   `tests/tests/analysis_oracle.rs`).
//! - **peak resident bytes** — the trace executor retains every node's
//!   value and deduplicates by buffer: `Arc`-clone operators (reshape,
//!   flatten, identity, parameter/input fan-out) contribute their storage
//!   once. The interpreter reproduces this with alias classes: every
//!   aliasing op joins its producer's class, every materializing op opens
//!   a fresh class, and the peak is the byte sum over classes.
//! - **bytes moved** — a convention (not an oracle-checked quantity):
//!   each materializing operator reads its full input operands and writes
//!   its output once, 4 bytes per element; aliasing ops move nothing.
//!
//! Gas quoting maps the cost vector onto the coordinator's EVM-calibrated
//! schedule: the base is pinned to `tao_protocol::gas::commit_claim()`
//! (checked cross-crate in the oracle tests) and compute/traffic surcharge
//! linearly on top. The deposit bound scales with FLOPs so an admission
//! deposit can never be dwarfed by the work a claim commits to.

use std::collections::HashMap;

use tao_graph::{Graph, OpKind};
use tao_money::Money;
use tao_tensor::Shape;

use crate::contract::{contract, infer_shape};
use crate::lint::{lint_graph, LintConfig, LintFinding, LintRule, Severity};

/// Gas base of a claim commitment; equals
/// `tao_protocol::gas::commit_claim()` (one fresh storage slot plus ~160
/// calldata bytes on top of the transaction base cost). Pinned by test.
pub const GAS_BASE: u64 = 21_000 + 22_100 + 160 * 16;

/// FLOPs covered by one unit of quoted gas.
pub const FLOPS_PER_GAS: u64 = 1_000;

/// Bytes of operand traffic covered by one unit of quoted gas.
pub const BYTES_PER_GAS: u64 = 10_000;

/// FLOPs covered by one micro-credit of deposit bound: the bound is
/// `total_flops / FLOPS_PER_DEPOSIT_UNIT` micro-credits, i.e. one
/// millicredit per MFLOP — exact integer arithmetic, small relative to
/// the protocol's flat proposer deposit for the bundled models; claims
/// larger than ~1 GFLOP start scaling the reserve.
pub const FLOPS_PER_DEPOSIT_UNIT: u64 = 1_000;

/// Everything the coordinator needs to price, bound and sanity-check a
/// claim before any forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticReport {
    /// Inferred output shape per node (graph order); `None` when inference
    /// failed upstream (a `Deny` finding explains why).
    pub shapes: Vec<Option<Vec<usize>>>,
    /// Static FLOP count per node, [`OpKind::flops`] on inferred shapes.
    pub flops: Vec<u64>,
    /// Total operand bytes read + written by materializing operators.
    pub bytes_moved: u64,
    /// Bytes resident when the full trace is retained (the trace
    /// executor's `peak_resident_bytes`).
    pub peak_resident_bytes: u64,
    /// Admission gas quote for committing this claim.
    pub gas_quote: u64,
    /// FLOP-proportional lower bound on the proposer deposit, exact.
    pub deposit_bound: Money,
    /// Linter findings (well-formedness + calibration safety).
    pub lint_findings: Vec<LintFinding>,
}

impl StaticReport {
    /// Sum of per-node FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Number of `Deny`-severity findings.
    pub fn deny_count(&self) -> usize {
        self.lint_findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Whether the graph passes admission (no `Deny` findings).
    pub fn is_admissible(&self) -> bool {
        self.deny_count() == 0
    }
}

/// [`analyze_with`] under the default lint configuration.
pub fn analyze(graph: &Graph, input_shapes: &[Vec<usize>]) -> StaticReport {
    analyze_with(graph, input_shapes, &LintConfig::default())
}

/// Folds the analysis contracts over `graph` given the caller-input
/// shapes, producing the full [`StaticReport`]. Never fails: malformed
/// regions surface as `Deny` findings and downstream shapes degrade to
/// `None` (their costs count as zero).
pub fn analyze_with(graph: &Graph, input_shapes: &[Vec<usize>], cfg: &LintConfig) -> StaticReport {
    let mut shapes: Vec<Option<Vec<usize>>> = Vec::with_capacity(graph.len());
    let mut flops: Vec<u64> = Vec::with_capacity(graph.len());
    let mut findings: Vec<LintFinding> = Vec::new();
    let mut bytes_moved: u64 = 0;
    // Alias class -> resident bytes; keys are the class representative.
    #[derive(Hash, PartialEq, Eq, Clone)]
    enum ClassKey {
        Input(usize),
        Param(String),
        Node(usize),
    }
    let mut class_of: Vec<Option<ClassKey>> = Vec::with_capacity(graph.len());
    let mut resident: HashMap<ClassKey, u64> = HashMap::new();

    for node in graph.nodes() {
        let ct = contract(&node.kind);
        let out_shape: Option<Vec<usize>> = match &node.kind {
            OpKind::Input(idx) => match input_shapes.get(*idx) {
                Some(s) => Some(s.clone()),
                None => {
                    findings.push(LintFinding::deny(
                        LintRule::ShapeMismatch,
                        Some(node.id),
                        format!(
                            "node {} reads input {idx} but only {} input shapes were provided",
                            node.name,
                            input_shapes.len()
                        ),
                    ));
                    None
                }
            },
            OpKind::Parameter(name) => match graph.param(name) {
                Ok(t) => Some(t.dims().to_vec()),
                Err(_) => {
                    findings.push(LintFinding::deny(
                        LintRule::MissingParameter,
                        Some(node.id),
                        format!("node {} references unknown parameter {name:?}", node.name),
                    ));
                    None
                }
            },
            kind => {
                let resolved: Option<Vec<&[usize]>> = node
                    .inputs
                    .iter()
                    .map(|id| shapes[id.0].as_deref())
                    .collect();
                match resolved {
                    // Upstream failure already reported; stay silent to
                    // avoid cascading findings.
                    None => None,
                    Some(ins) => match infer_shape(kind, &ins) {
                        Ok(dims) => Some(dims),
                        Err(e) => {
                            findings.push(LintFinding::deny(
                                LintRule::ShapeMismatch,
                                Some(node.id),
                                format!("node {}: {e}", node.name),
                            ));
                            None
                        }
                    },
                }
            }
        };

        // Costs, only where shapes resolved.
        let node_flops = match &out_shape {
            Some(out) => {
                let in_shapes: Option<Vec<Shape>> = node
                    .inputs
                    .iter()
                    .map(|id| shapes[id.0].as_deref().map(Shape::new))
                    .collect();
                in_shapes.map_or(0, |ins| {
                    let refs: Vec<&Shape> = ins.iter().collect();
                    let out = Shape::new(out);
                    if !ct.aliasing {
                        let read: usize = ins.iter().map(Shape::volume).sum();
                        bytes_moved += 4 * (read + out.volume()) as u64;
                    }
                    node.kind.flops(&refs, &out)
                })
            }
            None => 0,
        };

        // Alias class for the peak-resident model.
        let key = match &node.kind {
            OpKind::Input(idx) => Some(ClassKey::Input(*idx)),
            OpKind::Parameter(name) => graph.param(name).ok().map(|_| ClassKey::Param(name.clone())),
            _ if ct.aliasing => node.inputs.first().and_then(|id| class_of[id.0].clone()),
            _ => Some(ClassKey::Node(node.id.0)),
        };
        if let (Some(k), Some(out)) = (&key, &out_shape) {
            let bytes = 4 * out.iter().product::<usize>() as u64;
            resident.entry(k.clone()).or_insert(bytes);
        }
        class_of.push(key);
        shapes.push(out_shape);
        flops.push(node_flops);
    }

    let peak_resident_bytes: u64 = resident.values().sum();
    let total_flops: u64 = flops.iter().sum();
    let gas_quote = GAS_BASE + total_flops / FLOPS_PER_GAS + bytes_moved / BYTES_PER_GAS;
    let deposit_bound = Money::from_units((total_flops / FLOPS_PER_DEPOSIT_UNIT) as i128);

    findings.extend(lint_graph(graph, &shapes, cfg));

    StaticReport {
        shapes,
        flops,
        bytes_moved,
        peak_resident_bytes,
        gas_quote,
        deposit_bound,
        lint_findings: findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::GraphBuilder;
    use tao_tensor::Tensor;

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::eye(4));
        let y = b.op("y", OpKind::MatMul, &[x, w]);
        let s = b.op("s", OpKind::Softmax, &[y]);
        b.finish(vec![s]).unwrap()
    }

    #[test]
    fn shapes_and_flops_fold_over_the_graph() {
        let g = tiny_graph();
        let r = analyze(&g, &[vec![2, 4]]);
        assert!(r.is_admissible(), "{:?}", r.lint_findings);
        assert_eq!(r.shapes[2].as_deref(), Some(&[2usize, 4][..]));
        assert_eq!(r.shapes[3].as_deref(), Some(&[2usize, 4][..]));
        // MatMul: 2*m*n*k = 2*2*4*4; Softmax: 5 per element.
        assert_eq!(r.flops, vec![0, 0, 64, 40]);
        assert_eq!(r.total_flops(), 104);
        // x(32) + w(64) + y(32) + s(32) bytes, all distinct buffers.
        assert_eq!(r.peak_resident_bytes, 160);
        assert!(r.gas_quote >= GAS_BASE);
        // 104 FLOPs / 1_000 FLOPs-per-unit floors to zero micro-credits.
        assert_eq!(r.deposit_bound, Money::from_units(0));
        // A graph past the unit threshold gets a positive exact bound.
        let big = analyze(&g, &[vec![64, 4]]);
        assert_eq!(
            big.deposit_bound,
            Money::from_units((big.total_flops() / FLOPS_PER_DEPOSIT_UNIT) as i128)
        );
        assert!(big.deposit_bound > Money::ZERO);
    }

    #[test]
    fn aliasing_ops_share_their_producer_class() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let r1 = b.op("r1", OpKind::Reshape(vec![4, 2]), &[x]);
        let f = b.op("f", OpKind::Flatten, &[r1]);
        let g = b.finish(vec![f]).unwrap();
        let rep = analyze(&g, &[vec![2, 4]]);
        // One shared 32-byte buffer, not three.
        assert_eq!(rep.peak_resident_bytes, 32);
        assert_eq!(rep.bytes_moved, 0);
    }

    #[test]
    fn missing_input_shape_is_a_deny_finding() {
        let g = tiny_graph();
        let r = analyze(&g, &[]);
        assert!(!r.is_admissible());
        // The input node and everything downstream of it degrades to
        // `None`; the parameter's shape is still known from the state dict.
        assert_eq!(r.shapes[0], None);
        assert_eq!(r.shapes[2], None);
        assert_eq!(r.shapes[3], None);
        assert_eq!(r.total_flops(), 0);
    }

    #[test]
    fn shape_mismatch_reported_once_not_cascaded() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::zeros(&[3, 5]));
        let y = b.op("y", OpKind::MatMul, &[x, w]);
        let s = b.op("s", OpKind::Softmax, &[y]);
        let g = b.finish(vec![s]).unwrap();
        let r = analyze(&g, &[vec![2, 4]]);
        let denies: Vec<_> = r
            .lint_findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .collect();
        assert_eq!(denies.len(), 1, "{denies:?}");
        assert_eq!(r.shapes[2], None);
        assert_eq!(r.shapes[3], None);
    }
}
