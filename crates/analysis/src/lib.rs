//! Static analysis of committed graphs — the admission-time seam of the
//! TAO marketplace.
//!
//! Every [`tao_graph::OpKind`] carries one declarative analysis contract
//! ([`contract()`]): arity, output aliasing, an [`ErrorRule`] classification
//! consumed by the bounds engine, and shape-inference rules that mirror
//! the `tao-tensor` kernel validation exactly. The interpreter
//! ([`analyze`]) folds those contracts over a graph *without executing
//! it*, producing a [`StaticReport`] — inferred shapes, FLOPs, operand
//! traffic, peak resident bytes, an admission gas quote, a deposit bound,
//! and linter findings — that the coordinator uses to price and
//! sanity-check a claim before any forward pass.
//!
//! The report is oracle-checked: `tests/tests/analysis_oracle.rs` asserts
//! exact shape/FLOP/peak-memory equality against `execute_with_stats`
//! measurements on every bundled model and on proptest-random graphs.

#![warn(missing_docs)]

pub mod contract;
pub mod interp;
pub mod lint;

pub use contract::{contract, infer_shape, Arity, ErrorRule, Intrinsic, OpContract, ShapeIssue};
pub use interp::{
    analyze, analyze_with, StaticReport, BYTES_PER_GAS, FLOPS_PER_DEPOSIT_UNIT, FLOPS_PER_GAS, GAS_BASE,
};
pub use lint::{lint_graph, LintConfig, LintFinding, LintRule, Severity};
