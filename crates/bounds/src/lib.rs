//! # tao-bounds
//!
//! Theoretical IEEE-754 rounding-error bounds for traced neural-network
//! operators (§3.1 and Appendix A of the TAO paper): the deterministic
//! `γ_k` and probabilistic `γ̃_k(λ)` accumulation factors, vendor-style
//! maximum-ULP intrinsic tables, per-operator first-order bound templates
//! (softmax, normalization, matmul/conv, reductions, activations), FP64
//! co-execution over an execution trace, and the element-wise leaf check
//! used in Phase 3 adjudication.
//!
//! # Examples
//!
//! ```
//! use tao_bounds::BoundEngine;
//! use tao_graph::{execute, GraphBuilder, OpKind};
//! use tao_tensor::{KernelConfig, Tensor};
//!
//! let mut b = GraphBuilder::new(1);
//! let x = b.input(0, "x");
//! let y = b.op("y", OpKind::Softmax, &[x]);
//! let graph = b.finish(vec![y]).unwrap();
//! let input = Tensor::<f32>::rand_uniform(&[2, 8], -1.0, 1.0, 0);
//! let exec = execute(&graph, &[input], &KernelConfig::reference(), None).unwrap();
//! let bounds = BoundEngine::paper_default().co_execute(&graph, &exec).unwrap();
//! assert!(bounds[y.0].data().iter().all(|&t| t > 0.0));
//! ```

pub mod check;
pub mod engine;
pub mod error;
pub mod gamma;

pub use check::{check_within_bound, CheckReport};
pub use engine::BoundEngine;
pub use error::BoundError;
pub use gamma::{gamma_det, gamma_prob, BoundMode, DEFAULT_LAMBDA, U32, U64};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, BoundError>;
