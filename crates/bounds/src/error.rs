//! Error types for bound computation.

use core::fmt;

/// Errors from theoretical-bound co-execution.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundError {
    /// The execution trace does not match the graph.
    TraceMismatch {
        /// Node count of the graph.
        graph_len: usize,
        /// Value count of the trace.
        trace_len: usize,
    },
    /// An underlying graph error.
    Graph(String),
    /// An underlying tensor error.
    Tensor(tao_tensor::TensorError),
}

impl fmt::Display for BoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundError::TraceMismatch {
                graph_len,
                trace_len,
            } => {
                write!(
                    f,
                    "trace has {trace_len} values for graph of {graph_len} nodes"
                )
            }
            BoundError::Graph(m) => write!(f, "graph error: {m}"),
            BoundError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for BoundError {}

impl From<tao_graph::GraphError> for BoundError {
    fn from(e: tao_graph::GraphError) -> Self {
        BoundError::Graph(e.to_string())
    }
}

impl From<tao_tensor::TensorError> for BoundError {
    fn from(e: tao_tensor::TensorError) -> Self {
        BoundError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = BoundError::TraceMismatch {
            graph_len: 3,
            trace_len: 1,
        };
        assert!(e.to_string().contains("3 nodes"));
        let t: BoundError = tao_tensor::TensorError::InvalidArgument("z".into()).into();
        assert!(t.to_string().contains("tensor error"));
    }
}
