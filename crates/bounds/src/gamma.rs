//! IEEE-754 rounding-error accumulation factors.
//!
//! Implements the standard deterministic bound `γ_k = ku/(1-ku)` (Higham)
//! and the probabilistic bound `γ̃_k(λ) = exp(λ√k·u + ku²/(1-u)) − 1`
//! (Higham & Mary), as stated in Appendix A.2 of the paper. With `λ = 4`
//! the probabilistic bound holds with probability `≥ 1 − 2exp(−λ²(1−u)²/2)
//! ≈ 99.93%` and behaves like `4u√k`, markedly tighter than `ku` for
//! large reductions.

/// Unit roundoff of IEEE-754 binary32 (`2^-24`).
pub const U32: f64 = 5.960_464_477_539_063e-8;

/// Unit roundoff of IEEE-754 binary64 (`2^-53`).
pub const U64: f64 = 1.110_223_024_625_156_5e-16;

/// Default tail parameter for the probabilistic bound.
pub const DEFAULT_LAMBDA: f64 = 4.0;

/// Which theoretical accumulation factor to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundMode {
    /// Worst-case `γ_k = ku/(1-ku)`.
    Deterministic,
    /// High-probability `γ̃_k(λ)`.
    Probabilistic {
        /// Tail parameter `λ`.
        lambda: f64,
    },
}

impl BoundMode {
    /// The paper's default probabilistic mode (`λ = 4`).
    pub fn probabilistic() -> Self {
        BoundMode::Probabilistic {
            lambda: DEFAULT_LAMBDA,
        }
    }

    /// Accumulation factor for a `k`-step rounding chain at unit roundoff
    /// `u`. Returns `0` for `k = 0`.
    pub fn gamma(&self, k: usize, u: f64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        match *self {
            BoundMode::Deterministic => gamma_det(k, u),
            BoundMode::Probabilistic { lambda } => gamma_prob(k, u, lambda),
        }
    }

    /// Confidence of the bound: `1` for deterministic, `P(λ)` otherwise.
    pub fn confidence(&self, u: f64) -> f64 {
        match *self {
            BoundMode::Deterministic => 1.0,
            BoundMode::Probabilistic { lambda } => {
                1.0 - 2.0 * (-lambda * lambda * (1.0 - u) * (1.0 - u) / 2.0).exp()
            }
        }
    }
}

/// Deterministic `γ_k = ku/(1-ku)`; saturates when `ku >= 1`.
pub fn gamma_det(k: usize, u: f64) -> f64 {
    let ku = k as f64 * u;
    if ku >= 1.0 {
        f64::INFINITY
    } else {
        ku / (1.0 - ku)
    }
}

/// Probabilistic `γ̃_k(λ) = exp(λ√k·u + ku²/(1-u)) − 1`.
pub fn gamma_prob(k: usize, u: f64, lambda: f64) -> f64 {
    let kf = k as f64;
    (lambda * kf.sqrt() * u + kf * u * u / (1.0 - u)).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundoffs_match_epsilon() {
        assert_eq!(U32, (f32::EPSILON as f64) / 2.0);
        assert_eq!(U64, f64::EPSILON / 2.0);
    }

    #[test]
    fn gamma_det_small_k_is_ku() {
        let g = gamma_det(10, U32);
        assert!((g - 10.0 * U32).abs() < 1e-12);
    }

    #[test]
    fn gamma_det_saturates() {
        assert!(gamma_det(1 << 25, U32).is_infinite());
    }

    #[test]
    fn gamma_prob_scales_like_sqrt_k() {
        // γ̃_k(4) ≈ 4u√k for moderate k.
        for k in [16usize, 256, 4096] {
            let g = gamma_prob(k, U32, 4.0);
            let approx = 4.0 * U32 * (k as f64).sqrt();
            assert!((g / approx - 1.0).abs() < 1e-3, "k={k}: {g} vs {approx}");
        }
    }

    #[test]
    fn probabilistic_tighter_for_large_k() {
        for k in [64usize, 1024, 65536] {
            assert!(
                gamma_prob(k, U32, 4.0) < gamma_det(k, U32),
                "probabilistic must be tighter at k={k}"
            );
        }
    }

    #[test]
    fn deterministic_tighter_for_tiny_k() {
        // At k = 1 the probabilistic bound (4u) exceeds the worst case (u).
        assert!(gamma_prob(1, U32, 4.0) > gamma_det(1, U32));
    }

    #[test]
    fn mode_dispatch_and_confidence() {
        let det = BoundMode::Deterministic;
        let prob = BoundMode::probabilistic();
        assert_eq!(det.gamma(0, U32), 0.0);
        assert_eq!(prob.gamma(0, U32), 0.0);
        assert_eq!(det.confidence(U32), 1.0);
        let c = prob.confidence(U32);
        assert!(c > 0.999 && c < 1.0, "confidence {c}");
    }

    #[test]
    fn gamma_monotone_in_k() {
        let mut prev = 0.0;
        for k in 1..100 {
            let g = gamma_det(k, U32);
            assert!(g > prev);
            prev = g;
        }
    }
}
