//! Leaf-level theoretical-bound verification.

use tao_tensor::Tensor;

/// Outcome of an element-wise bound check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// True when every element respects its bound.
    pub passed: bool,
    /// Number of violating elements.
    pub violations: usize,
    /// Largest ratio `|claimed - reference| / τ` observed (0 for empty).
    pub worst_ratio: f64,
}

/// Verifies `|claimed - reference| ≤ scale·τ` element-wise — the Phase 3
/// theoretical-bound check with an optional diagnostic scale `α`.
///
/// Tensors must have identical lengths; mismatched shapes fail the check
/// outright (a shape change is a graph violation, not a rounding one).
pub fn check_within_bound(
    claimed: &Tensor<f32>,
    reference: &Tensor<f32>,
    tau: &Tensor<f64>,
    scale: f64,
) -> CheckReport {
    if claimed.len() != reference.len() || claimed.len() != tau.len() {
        return CheckReport {
            passed: false,
            violations: claimed.len().max(1),
            worst_ratio: f64::INFINITY,
        };
    }
    let mut violations = 0;
    let mut worst: f64 = 0.0;
    for i in 0..claimed.len() {
        let dev = (claimed.data()[i] as f64 - reference.data()[i] as f64).abs();
        let limit = scale * tau.data()[i];
        let ratio = if limit > 0.0 {
            dev / limit
        } else if dev > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        worst = worst.max(ratio);
        if dev > limit {
            violations += 1;
        }
    }
    CheckReport {
        passed: violations == 0,
        violations,
        worst_ratio: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let tau = Tensor::<f64>::from_vec(vec![1e-7, 1e-7], &[2]).unwrap();
        let r = check_within_bound(&a, &a, &tau, 1.0);
        assert!(r.passed);
        assert_eq!(r.violations, 0);
        assert_eq!(r.worst_ratio, 0.0);
    }

    #[test]
    fn violation_detected() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![1.0, 2.5], &[2]).unwrap();
        let tau = Tensor::<f64>::from_vec(vec![1e-7, 1e-7], &[2]).unwrap();
        let r = check_within_bound(&b, &a, &tau, 1.0);
        assert!(!r.passed);
        assert_eq!(r.violations, 1);
        assert!(r.worst_ratio > 1.0);
    }

    #[test]
    fn scale_loosens() {
        let a = Tensor::<f32>::from_vec(vec![1.0], &[1]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![1.0 + 1.5e-7], &[1]).unwrap();
        let tau = Tensor::<f64>::from_vec(vec![1e-7], &[1]).unwrap();
        assert!(!check_within_bound(&b, &a, &tau, 1.0).passed);
        assert!(check_within_bound(&b, &a, &tau, 2.0).passed);
    }

    #[test]
    fn zero_bound_requires_exact() {
        let a = Tensor::<f32>::from_vec(vec![1.0], &[1]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![1.0 + 1e-7], &[1]).unwrap();
        let tau = Tensor::<f64>::zeros(&[1]);
        let pass = check_within_bound(&a, &a, &tau, 1.0);
        assert!(pass.passed);
        let fail = check_within_bound(&b, &a, &tau, 1.0);
        assert!(!fail.passed);
        assert!(fail.worst_ratio.is_infinite());
    }

    #[test]
    fn shape_mismatch_fails() {
        let a = Tensor::<f32>::zeros(&[2]);
        let b = Tensor::<f32>::zeros(&[3]);
        let tau = Tensor::<f64>::zeros(&[2]);
        assert!(!check_within_bound(&b, &a, &tau, 1.0).passed);
    }
}
