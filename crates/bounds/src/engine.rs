//! Per-operator theoretical error-bound templates and graph co-execution.
//!
//! Each traced operator is lowered to its primitive sub-steps and a
//! first-order sensitivity envelope is accumulated across them (§3.1):
//! propagated error `Σ |∂f/∂x_i| ε_i` plus fresh rounding `u·|f̂|`, with
//! reduction steps using `γ_k`/`γ̃_k(λ)` and intrinsics using their
//! documented maximum-ULP errors. Bounds are *operator-local*: inputs are
//! treated as exact, because TAO localizes disputes instead of propagating
//! error across the network.
//!
//! All bound arithmetic runs in f64 (the paper's runtime uses FP64 for
//! error-bound calculations), on the FP32 values of the execution trace.

use tao_analysis::{contract, ErrorRule, Intrinsic};
use tao_tensor::{MathLib, Tensor};

use tao_graph::{Execution, Graph, Node, NodeId, OpKind};

use crate::error::BoundError;
use crate::gamma::{BoundMode, U32};
use crate::Result;

/// Computes element-wise theoretical bounds `τ_theo` for traced operators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundEngine {
    /// Accumulation-factor flavour (deterministic or probabilistic).
    pub mode: BoundMode,
    /// Intrinsic family whose documented ULP errors to charge.
    pub math: MathLib,
}

impl BoundEngine {
    /// Engine with the paper's defaults: probabilistic bounds (`λ = 4`)
    /// against the reference intrinsic family.
    pub fn paper_default() -> Self {
        BoundEngine {
            mode: BoundMode::probabilistic(),
            math: MathLib::Reference,
        }
    }

    /// Engine with deterministic worst-case factors.
    pub fn deterministic() -> Self {
        BoundEngine {
            mode: BoundMode::Deterministic,
            math: MathLib::Reference,
        }
    }

    /// Accumulation factor for a `k`-step chain at binary32 roundoff.
    pub fn gamma(&self, k: usize) -> f64 {
        self.mode.gamma(k, U32)
    }

    /// Relative error budget charged to an intrinsic with `ulp` documented
    /// maximum ULP error (one ULP spans two unit roundoffs).
    fn intrinsic_rel(&self, ulp: f64) -> f64 {
        2.0 * ulp * U32
    }

    /// ULP budget for `exp`: the proposer may legally use any allowed
    /// intrinsic family, so a sound check charges the fleet-worst ULP plus
    /// one ULP for the reference re-execution.
    fn exp_ulp(&self) -> f64 {
        self.math.exp_max_ulp().max(MathLib::exp_fleet_ulp()) + 1.0
    }

    /// ULP budget for `tanh` (fleet-worst plus reference).
    fn tanh_ulp(&self) -> f64 {
        self.math.tanh_max_ulp().max(MathLib::tanh_fleet_ulp()) + 1.0
    }

    /// ULP budget for `ln` (fleet-worst plus reference).
    fn ln_ulp(&self) -> f64 {
        self.math.ln_max_ulp().max(MathLib::ln_fleet_ulp()) + 1.0
    }

    /// ULP budget for `rsqrt` (fleet-worst plus reference).
    fn rsqrt_ulp(&self) -> f64 {
        self.math.rsqrt_max_ulp().max(MathLib::rsqrt_fleet_ulp()) + 1.0
    }

    /// ULP budget for the intrinsic named by an analysis contract.
    fn intrinsic_ulp(&self, intrinsic: Intrinsic) -> f64 {
        match intrinsic {
            Intrinsic::Exp => self.exp_ulp(),
            Intrinsic::Log => self.ln_ulp(),
            Intrinsic::Tanh => self.tanh_ulp(),
            Intrinsic::Rsqrt => self.rsqrt_ulp(),
        }
    }

    /// Co-executes bounds for the whole trace: `τ_theo` for every node
    /// (zero tensors for structural operators).
    ///
    /// # Errors
    ///
    /// Returns an error when the trace does not match the graph.
    pub fn co_execute(&self, graph: &Graph, exec: &Execution) -> Result<Vec<Tensor<f64>>> {
        if exec.values.len() != graph.len() {
            return Err(BoundError::TraceMismatch {
                graph_len: graph.len(),
                trace_len: exec.values.len(),
            });
        }
        graph
            .nodes()
            .iter()
            .map(|node| self.node_bound(graph, node, exec))
            .collect()
    }

    /// Element-wise bound `τ_theo` for one node, given the trace.
    ///
    /// # Errors
    ///
    /// Returns an error for a malformed trace or unsupported shapes.
    #[allow(clippy::too_many_lines)]
    pub fn node_bound(&self, graph: &Graph, node: &Node, exec: &Execution) -> Result<Tensor<f64>> {
        let _ = graph; // Reserved for templates that need parameter lookup.
        let val = |id: NodeId| -> Result<Tensor<f64>> {
            Ok(exec.value(id).map_err(BoundError::from)?.cast::<f64>())
        };
        let out = exec.value(node.id).map_err(BoundError::from)?.cast::<f64>();
        let zero = || Tensor::<f64>::zeros(out.dims());
        let fresh = |scale: f64| out.map(|y| scale * U32 * y.abs());

        // Dispatch on the analysis contract's error classification: the
        // per-op -> rule mapping lives in `tao-analysis` (one place for
        // every crate), while the value-level bound templates stay here.
        let bound = match contract(&node.kind).error {
            // Structural / exact operators contribute no rounding error.
            ErrorRule::Exact => zero(),

            // Quantized operators pin their entire numeric pipeline
            // (integer accumulation, deterministic f64 scale roundings),
            // so every honest device reproduces identical bits at every
            // `KernelConfig`: the cross-device deviation bound is zero and
            // *any* nonzero deviation is adversarial.
            ErrorRule::Quantized => zero(),

            // `scale` fresh roundings on the output: ε ≤ scale·u|out|
            // (elementwise arithmetic at 1, exp(y ln x) chains at 6, …).
            ErrorRule::Fresh { scale } => fresh(scale),

            // Intrinsics: documented max-ULP relative errors.
            ErrorRule::Intrinsic(i) => {
                fresh(self.intrinsic_rel(self.intrinsic_ulp(i)) / U32)
            }
            ErrorRule::UnitRange => {
                // |sin|,|cos| ≤ 1: charge 2 ULP absolute at unit scale.
                out.map(|y| 2.0 * U32 * (y.abs() + 1.0))
            }

            ErrorRule::Sigmoid => {
                // s = 1/(1 + exp(-x)): ε_e = ulp_exp·e, ε_d = ε_e + u·d,
                // ε_s = s²·ε_d + u·s  (|d(1/d)| = 1/d² = s²/…).
                let x = val(node.inputs[0])?;
                let rel_exp = self.intrinsic_rel(self.exp_ulp());
                Tensor::from_vec(
                    x.data()
                        .iter()
                        .map(|&v| {
                            let e = (-v).exp();
                            let d = 1.0 + e;
                            let s = 1.0 / d;
                            let eps_e = rel_exp * e;
                            let eps_d = eps_e + U32 * d;
                            s * s * eps_d + U32 * s
                        })
                        .collect(),
                    x.dims(),
                )?
            }
            ErrorRule::Silu => {
                // out = x·σ(x): ε = |x| ε_σ + u|out|.
                let x = val(node.inputs[0])?;
                let rel_exp = self.intrinsic_rel(self.exp_ulp());
                Tensor::from_vec(
                    x.data()
                        .iter()
                        .map(|&v| {
                            let e = (-v).exp();
                            let d = 1.0 + e;
                            let s = 1.0 / d;
                            let eps_s = s * s * (rel_exp * e + U32 * d) + U32 * s;
                            v.abs() * eps_s + U32 * (v * s).abs()
                        })
                        .collect(),
                    x.dims(),
                )?
            }
            ErrorRule::Gelu => {
                // u1 = c(x + kx³): 4 roundings on monomials;
                // t = tanh(u1): ε_t = (1-t²) ε_u1 + ulp_tanh·|t|;
                // out = 0.5x(1+t): ε = 0.5|x| ε_t + 2u|out|.
                let x = val(node.inputs[0])?;
                const C: f64 = 0.797_884_560_802_865_4;
                const K: f64 = 0.044_715;
                let rel_tanh = self.intrinsic_rel(self.tanh_ulp());
                let g4 = self.gamma(4);
                Tensor::from_vec(
                    x.data()
                        .iter()
                        .map(|&v| {
                            let inner = C * (v + K * v * v * v);
                            let t = inner.tanh();
                            let eps_inner = g4 * (C * v.abs() + C * K * v.abs().powi(3));
                            let eps_t = (1.0 - t * t) * eps_inner + rel_tanh * t.abs();
                            let y = 0.5 * v * (1.0 + t);
                            0.5 * v.abs() * eps_t + 2.0 * U32 * y.abs()
                        })
                        .collect(),
                    x.dims(),
                )?
            }

            ErrorRule::Softmax => self.softmax_bound(&val(node.inputs[0])?)?,

            ErrorRule::LayerNorm => {
                let OpKind::LayerNorm { eps } = &node.kind else {
                    unreachable!("contract classified {:?} as LayerNorm", node.kind)
                };
                let x = val(node.inputs[0])?;
                let gamma_p = val(node.inputs[1])?;
                self.layer_norm_bound(&x, &gamma_p, *eps)?
            }
            ErrorRule::RmsNorm => {
                let OpKind::RmsNorm { eps } = &node.kind else {
                    unreachable!("contract classified {:?} as RmsNorm", node.kind)
                };
                let x = val(node.inputs[0])?;
                let gamma_p = val(node.inputs[1])?;
                self.rms_norm_bound(&x, &gamma_p, *eps)?
            }
            ErrorRule::BatchNorm => {
                let OpKind::BatchNorm2d { eps } = &node.kind else {
                    unreachable!("contract classified {:?} as BatchNorm", node.kind)
                };
                let x = val(node.inputs[0])?;
                let gamma_p = val(node.inputs[1])?;
                let mean = val(node.inputs[3])?;
                let var = val(node.inputs[4])?;
                self.batch_norm_bound(&x, &gamma_p, &mean, &var, *eps)?
            }
            ErrorRule::GroupNorm => {
                let OpKind::GroupNorm { groups, eps } = &node.kind else {
                    unreachable!("contract classified {:?} as GroupNorm", node.kind)
                };
                let x = val(node.inputs[0])?;
                let gamma_p = val(node.inputs[1])?;
                self.group_norm_bound(&x, &gamma_p, *groups, *eps)?
            }

            // Length-k dot products under γ_k accumulation; the geometry
            // (and optional bias rounding) comes back off the node.
            ErrorRule::DotProduct => match &node.kind {
                OpKind::MatMul => {
                    // |fl(aᵀb) − aᵀb| ≤ γ_k Σ|a_i||b_i| with k the dot length.
                    let a = val(node.inputs[0])?.abs();
                    let b = val(node.inputs[1])?.abs();
                    let k = *a.dims().last().unwrap_or(&1);
                    let absprod = a
                        .matmul(&b, &tao_tensor::KernelConfig::reference())
                        .map_err(BoundError::from)?;
                    absprod.mul_scalar(self.gamma(k))
                }
                OpKind::Linear => {
                    let x = val(node.inputs[0])?.abs();
                    let w = val(node.inputs[1])?.abs();
                    let k = *x.dims().last().unwrap_or(&1);
                    let cfg = tao_tensor::KernelConfig::reference();
                    let base = match node.inputs.get(2) {
                        Some(&b) => {
                            let bias = val(b)?.abs();
                            x.linear(&w, Some(&bias), &cfg).map_err(BoundError::from)?
                        }
                        None => x.linear(&w, None, &cfg).map_err(BoundError::from)?,
                    };
                    base.mul_scalar(self.gamma(k + 1))
                }
                OpKind::Conv2d { stride, padding } => {
                    let x = val(node.inputs[0])?.abs();
                    let w = val(node.inputs[1])?.abs();
                    let patch: usize = w.dims()[1..].iter().product();
                    let cfg = tao_tensor::KernelConfig::reference();
                    let params = tao_tensor::Conv2dParams {
                        stride: *stride,
                        padding: *padding,
                    };
                    let base = match node.inputs.get(2) {
                        Some(&b) => {
                            let bias = val(b)?.abs();
                            x.conv2d(&w, Some(&bias), params, &cfg)
                                .map_err(BoundError::from)?
                        }
                        None => x.conv2d(&w, None, params, &cfg).map_err(BoundError::from)?,
                    };
                    base.mul_scalar(self.gamma(patch + 1))
                }
                kind => unreachable!("contract classified {kind:?} as DotProduct"),
            },

            ErrorRule::SumAll => {
                let x = val(node.inputs[0])?;
                let abs_sum: f64 = x.data().iter().map(|v| v.abs()).sum();
                Tensor::scalar(self.gamma(x.len().saturating_sub(1)) * abs_sum)
            }
            ErrorRule::MeanAll => {
                let x = val(node.inputs[0])?;
                let n = x.len().max(1) as f64;
                let abs_sum: f64 = x.data().iter().map(|v| v.abs()).sum();
                let y = out.data()[0];
                Tensor::scalar(self.gamma(x.len().saturating_sub(1)) * abs_sum / n + U32 * y.abs())
            }
            ErrorRule::ReduceAxis { mean } => {
                let (OpKind::SumAxis(axis) | OpKind::MeanAxis(axis)) = &node.kind else {
                    unreachable!("contract classified {:?} as ReduceAxis", node.kind)
                };
                let x = val(node.inputs[0])?;
                let extent = x.dims()[*axis];
                let g = self.gamma(extent.saturating_sub(1));
                let cfg = tao_tensor::KernelConfig::reference();
                let abs_sums = x.abs().sum_axis(*axis, &cfg).map_err(BoundError::from)?;
                let scale = if mean { 1.0 / extent as f64 } else { 1.0 };
                let mut t = abs_sums.mul_scalar(g * scale);
                if mean {
                    t = t.add(&fresh(1.0)).map_err(BoundError::from)?;
                }
                t
            }
            ErrorRule::AvgPool => {
                let OpKind::AvgPool2d { kernel, .. } = &node.kind else {
                    unreachable!("contract classified {:?} as AvgPool", node.kind)
                };
                // Per window: γ_{k²-1}·Σ|window|/k² + u|out|; bound the
                // window abs-sum by k²·max|x| for a cheap envelope.
                let x = val(node.inputs[0])?;
                let k2 = (kernel * kernel) as f64;
                let g = self.gamma(kernel * kernel - 1);
                let max_abs = x.max_abs();
                out.map(|y| g * max_abs * k2 / k2 + U32 * y.abs())
            }
            ErrorRule::GlobalAvgPool => {
                let x = val(node.inputs[0])?;
                let (h, w) = (x.dims()[2], x.dims()[3]);
                let hw = h * w;
                let g = self.gamma(hw.saturating_sub(1));
                let cfg = tao_tensor::KernelConfig::reference();
                let per_chan = x
                    .abs()
                    .reshape(&[x.dims()[0] * x.dims()[1], hw])
                    .map_err(BoundError::from)?
                    .sum_axis(1, &cfg)
                    .map_err(BoundError::from)?;
                let t = per_chan.mul_scalar(g / hw as f64);
                t.reshape(out.dims())
                    .map_err(BoundError::from)?
                    .add(&fresh(1.0))
                    .map_err(BoundError::from)?
            }
        };
        Ok(bound)
    }

    /// The softmax template of §3.1, elementwise per lane.
    fn softmax_bound(&self, x: &Tensor<f64>) -> Result<Tensor<f64>> {
        let d = x.dims()[x.rank() - 1];
        let g = self.gamma(d.saturating_sub(1));
        let mut out = Vec::with_capacity(x.len());
        for lane in x.data().chunks(d) {
            let m = lane.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let e: Vec<f64> = lane.iter().map(|&v| (v - m).exp()).collect();
            let s: f64 = e.iter().sum();
            // ε_z ≤ u(|x| + |m|);  ε_e ≤ |e| ε_z + 2u|e|.
            let eps_e: Vec<f64> = lane
                .iter()
                .zip(&e)
                .map(|(&v, &ei)| ei * U32 * (v.abs() + m.abs()) + 2.0 * U32 * ei)
                .collect();
            // ε_S ≤ γ̃_{n-1} Σ|e| + (γ̃+1) Σ ε_e.
            let sum_eps_e: f64 = eps_e.iter().sum();
            let eps_s = g * s + (g + 1.0) * sum_eps_e;
            // ε_y ≤ ε_e/S + |e| ε_S / S² + u|y|.
            for (ei, epse) in e.iter().zip(&eps_e) {
                let y = ei / s;
                out.push(epse / s + ei * eps_s / (s * s) + U32 * y.abs());
            }
        }
        Ok(Tensor::from_vec(out, x.dims())?)
    }

    /// LayerNorm template: mean/var reductions, rsqrt intrinsic, affine.
    fn layer_norm_bound(
        &self,
        x: &Tensor<f64>,
        gamma_p: &Tensor<f64>,
        eps: f64,
    ) -> Result<Tensor<f64>> {
        let d = x.dims()[x.rank() - 1];
        let nd = d as f64;
        let g = self.gamma(d.saturating_sub(1));
        let rel_rsqrt = self.intrinsic_rel(self.rsqrt_ulp());
        let mut out = Vec::with_capacity(x.len());
        for lane in x.data().chunks(d) {
            let abs_sum: f64 = lane.iter().map(|v| v.abs()).sum();
            let mean: f64 = lane.iter().sum::<f64>() / nd;
            let eps_mean = g * abs_sum / nd + U32 * mean.abs();
            let centered: Vec<f64> = lane.iter().map(|&v| v - mean).collect();
            let var: f64 = centered.iter().map(|c| c * c).sum::<f64>() / nd;
            let eps_c: Vec<f64> = centered.iter().map(|&c| eps_mean + U32 * c.abs()).collect();
            let sq_abs_sum: f64 = centered.iter().map(|c| c * c).sum();
            let cross: f64 = centered
                .iter()
                .zip(&eps_c)
                .map(|(&c, &e)| 2.0 * c.abs() * e)
                .sum();
            let eps_var = g * sq_abs_sum / nd + cross / nd + U32 * var;
            let denom = var + eps;
            let inv = 1.0 / denom.sqrt();
            let eps_inv = 0.5 * inv / denom * eps_var + rel_rsqrt * inv;
            for (i, (&c, &ec)) in centered.iter().zip(&eps_c).enumerate() {
                let gm = gamma_p.data()[i].abs();
                let y = c * inv * gamma_p.data()[i];
                out.push((c.abs() * eps_inv + inv * ec) * gm + 3.0 * U32 * y.abs());
            }
        }
        Ok(Tensor::from_vec(out, x.dims())?)
    }

    /// RMSNorm template: mean-square reduction, rsqrt intrinsic, scale.
    fn rms_norm_bound(
        &self,
        x: &Tensor<f64>,
        gamma_p: &Tensor<f64>,
        eps: f64,
    ) -> Result<Tensor<f64>> {
        let d = x.dims()[x.rank() - 1];
        let nd = d as f64;
        let g = self.gamma(d.saturating_sub(1));
        let rel_rsqrt = self.intrinsic_rel(self.rsqrt_ulp());
        let mut out = Vec::with_capacity(x.len());
        for lane in x.data().chunks(d) {
            let sq: Vec<f64> = lane.iter().map(|&v| v * v).collect();
            let ms: f64 = sq.iter().sum::<f64>() / nd;
            // Squares carry one fresh rounding each, then the reduction.
            let eps_ms = g * sq.iter().sum::<f64>() / nd
                + sq.iter().map(|s| U32 * s).sum::<f64>() / nd
                + U32 * ms;
            let denom = ms + eps;
            let inv = 1.0 / denom.sqrt();
            let eps_inv = 0.5 * inv / denom * eps_ms + rel_rsqrt * inv;
            for (i, &v) in lane.iter().enumerate() {
                let gm = gamma_p.data()[i].abs();
                let y = v * inv * gamma_p.data()[i];
                out.push(v.abs() * eps_inv * gm + 2.0 * U32 * y.abs());
            }
        }
        Ok(Tensor::from_vec(out, x.dims())?)
    }

    /// Eval-mode BatchNorm: running stats are exact constants, so only the
    /// rsqrt intrinsic and the affine chain contribute.
    fn batch_norm_bound(
        &self,
        x: &Tensor<f64>,
        gamma_p: &Tensor<f64>,
        mean: &Tensor<f64>,
        var: &Tensor<f64>,
        eps: f64,
    ) -> Result<Tensor<f64>> {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let hw = h * w;
        let rel_rsqrt = self.intrinsic_rel(self.rsqrt_ulp());
        let mut out = Vec::with_capacity(x.len());
        for ni in 0..n {
            for ci in 0..c {
                let inv = 1.0 / (var.data()[ci] + eps).sqrt();
                let eps_inv = rel_rsqrt * inv;
                let gm = gamma_p.data()[ci].abs();
                let m = mean.data()[ci];
                let base = (ni * c + ci) * hw;
                for &v in &x.data()[base..base + hw] {
                    let cen = v - m;
                    let y = cen * inv * gamma_p.data()[ci];
                    out.push(
                        (cen.abs() * eps_inv + inv * U32 * (v.abs() + m.abs())) * gm
                            + 3.0 * U32 * y.abs(),
                    );
                }
            }
        }
        Ok(Tensor::from_vec(out, x.dims())?)
    }

    /// GroupNorm template: LayerNorm statistics per channel group.
    fn group_norm_bound(
        &self,
        x: &Tensor<f64>,
        gamma_p: &Tensor<f64>,
        groups: usize,
        eps: f64,
    ) -> Result<Tensor<f64>> {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let cg = c / groups;
        let glen = cg * h * w;
        let nd = glen as f64;
        let g = self.gamma(glen.saturating_sub(1));
        let rel_rsqrt = self.intrinsic_rel(self.rsqrt_ulp());
        let mut out = vec![0.0f64; x.len()];
        for ni in 0..n {
            for gi in 0..groups {
                let base = (ni * c + gi * cg) * h * w;
                let lane = &x.data()[base..base + glen];
                let abs_sum: f64 = lane.iter().map(|v| v.abs()).sum();
                let mean: f64 = lane.iter().sum::<f64>() / nd;
                let eps_mean = g * abs_sum / nd + U32 * mean.abs();
                let centered: Vec<f64> = lane.iter().map(|&v| v - mean).collect();
                let var: f64 = centered.iter().map(|c2| c2 * c2).sum::<f64>() / nd;
                let eps_var = g * centered.iter().map(|c2| c2 * c2).sum::<f64>() / nd
                    + centered
                        .iter()
                        .map(|&c2| 2.0 * c2.abs() * (eps_mean + U32 * c2.abs()))
                        .sum::<f64>()
                        / nd
                    + U32 * var;
                let denom = var + eps;
                let inv = 1.0 / denom.sqrt();
                let eps_inv = 0.5 * inv / denom * eps_var + rel_rsqrt * inv;
                for i in 0..glen {
                    let ch = gi * cg + i / (h * w);
                    let gm = gamma_p.data()[ch].abs();
                    let cen = centered[i];
                    let eps_c = eps_mean + U32 * cen.abs();
                    let y = cen * inv * gamma_p.data()[ch];
                    out[base + i] = (cen.abs() * eps_inv + inv * eps_c) * gm + 3.0 * U32 * y.abs();
                }
            }
        }
        Ok(Tensor::from_vec(out, x.dims())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::{execute, GraphBuilder};
    use tao_tensor::KernelConfig;

    fn run_one(
        kind: OpKind,
        extra_params: Vec<(&str, Tensor<f32>)>,
        input: Tensor<f32>,
    ) -> (Graph, Execution, Vec<Tensor<f64>>) {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let mut args = vec![x];
        for (name, t) in extra_params {
            args.push(b.parameter(name, t));
        }
        let y = b.op("y", kind, &args);
        let g = b.finish(vec![y]).unwrap();
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        let bounds = BoundEngine::paper_default().co_execute(&g, &exec).unwrap();
        (g, exec, bounds)
    }

    #[test]
    fn structural_ops_zero_bound() {
        let (_, _, b) = run_one(
            OpKind::Relu,
            vec![],
            Tensor::rand_uniform(&[8], -1.0, 1.0, 1),
        );
        assert!(b[1].data().iter().all(|&t| t == 0.0));
    }

    #[test]
    fn add_bound_is_u_out() {
        let (_, exec, b) = run_one(
            OpKind::AddScalar(1.0),
            vec![],
            Tensor::rand_uniform(&[4], 1.0, 2.0, 2),
        );
        for (t, y) in b[1].data().iter().zip(exec.values[1].data()) {
            assert!((t - U32 * (*y as f64).abs()).abs() < 1e-18);
        }
    }

    #[test]
    fn bounds_cover_cross_device_deviation() {
        // The central soundness property: for every operator, the deviation
        // between any two kernel configurations must be within 2·τ_theo
        // (each side deviates at most τ from the exact value).
        use tao_device::Device;
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[64, 64], -1.0, 1.0, 3));
        let m = b.op("m", OpKind::MatMul, &[x, w]);
        let s = b.op("s", OpKind::Softmax, &[m]);
        let g = b.finish(vec![s]).unwrap();
        let input = Tensor::<f32>::rand_uniform(&[8, 64], -1.0, 1.0, 4);

        let reference = execute(
            &g,
            std::slice::from_ref(&input),
            &KernelConfig::reference(),
            None,
        )
        .unwrap();
        let engine = BoundEngine::paper_default();
        let bounds = engine.co_execute(&g, &reference).unwrap();

        for dev in Device::standard_fleet() {
            let other = execute(&g, std::slice::from_ref(&input), dev.config(), None).unwrap();
            for node in [m, s] {
                let tau = &bounds[node.0];
                let a = &reference.values[node.0];
                let bdev = &other.values[node.0];
                for i in 0..a.len() {
                    let dev_err = (a.data()[i] as f64 - bdev.data()[i] as f64).abs();
                    assert!(
                        dev_err <= 2.0 * tau.data()[i] + 1e-12,
                        "{}: node {node} elem {i}: |Δ| {dev_err:e} > 2τ {:e}",
                        dev.name(),
                        2.0 * tau.data()[i]
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_looser_than_probabilistic_for_large_reductions() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[512, 16], -1.0, 1.0, 5));
        let m = b.op("m", OpKind::MatMul, &[x, w]);
        let g = b.finish(vec![m]).unwrap();
        let input = Tensor::<f32>::rand_uniform(&[4, 512], -1.0, 1.0, 6);
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        let det = BoundEngine::deterministic().co_execute(&g, &exec).unwrap();
        let prob = BoundEngine::paper_default().co_execute(&g, &exec).unwrap();
        let mean = |t: &Tensor<f64>| t.data().iter().sum::<f64>() / t.len() as f64;
        assert!(
            mean(&det[m.0]) > 3.0 * mean(&prob[m.0]),
            "det {:e} vs prob {:e}",
            mean(&det[m.0]),
            mean(&prob[m.0])
        );
    }

    #[test]
    fn softmax_bound_positive_and_small() {
        let (_, exec, b) = run_one(
            OpKind::Softmax,
            vec![],
            Tensor::rand_uniform(&[2, 16], -3.0, 3.0, 7),
        );
        let tau = &b[1];
        for (t, y) in tau.data().iter().zip(exec.values[1].data()) {
            assert!(*t > 0.0);
            // Bound should be tiny relative to a probability output.
            assert!(*t < 1e-3 * (1.0 + (*y as f64).abs()), "bound {t}");
        }
    }

    #[test]
    fn layer_norm_and_rms_norm_bounds_cover_devices() {
        use tao_device::Device;
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let gm = b.parameter("g", Tensor::<f32>::rand_uniform(&[32], 0.5, 1.5, 8));
        let be = b.parameter("be", Tensor::<f32>::zeros(&[32]));
        let ln = b.op("ln", OpKind::LayerNorm { eps: 1e-5 }, &[x, gm, be]);
        let rn = b.op("rn", OpKind::RmsNorm { eps: 1e-6 }, &[ln, gm]);
        let g = b.finish(vec![rn]).unwrap();
        let input = Tensor::<f32>::rand_uniform(&[4, 32], -2.0, 2.0, 9);
        let reference = execute(
            &g,
            std::slice::from_ref(&input),
            &KernelConfig::reference(),
            None,
        )
        .unwrap();
        let bounds = BoundEngine::paper_default()
            .co_execute(&g, &reference)
            .unwrap();
        for dev in Device::standard_fleet() {
            let other = execute(&g, std::slice::from_ref(&input), dev.config(), None).unwrap();
            for node in [ln, rn] {
                for i in 0..reference.values[node.0].len() {
                    let d = (reference.values[node.0].data()[i] as f64
                        - other.values[node.0].data()[i] as f64)
                        .abs();
                    // Interior nodes see slightly perturbed inputs across
                    // devices; allow the 2τ envelope plus input drift.
                    assert!(
                        d <= 2.0 * bounds[node.0].data()[i] + 1e-5,
                        "node {node} elem {i}: {d:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_mismatch_detected() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let g = b.finish(vec![x]).unwrap();
        let bogus = Execution {
            values: vec![],
            flops: vec![],
        };
        assert!(BoundEngine::paper_default().co_execute(&g, &bogus).is_err());
    }

    #[test]
    fn conv_and_pool_bounds_nonnegative() {
        let input = Tensor::<f32>::rand_uniform(&[1, 2, 6, 6], -1.0, 1.0, 10);
        let w = Tensor::<f32>::rand_uniform(&[3, 2, 3, 3], -0.5, 0.5, 11);
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let wp = b.parameter("w", w);
        let c = b.op(
            "c",
            OpKind::Conv2d {
                stride: 1,
                padding: 1,
            },
            &[x, wp],
        );
        let p = b.op(
            "p",
            OpKind::AvgPool2d {
                kernel: 2,
                stride: 2,
            },
            &[c],
        );
        let q = b.op("q", OpKind::AdaptiveAvgPool1x1, &[p]);
        let g = b.finish(vec![q]).unwrap();
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        let bounds = BoundEngine::paper_default().co_execute(&g, &exec).unwrap();
        for node in [c, p, q] {
            assert!(bounds[node.0]
                .data()
                .iter()
                .all(|&t| t >= 0.0 && t.is_finite()));
            assert!(bounds[node.0].data().iter().any(|&t| t > 0.0));
        }
    }
}
