//! Phase 3: single-operator adjudication (§5.4).

use std::collections::HashMap;

use tao_bounds::{check_within_bound, BoundEngine, CheckReport};
use tao_calib::{error_profile, ThresholdBundle, DEFAULT_EPS};
use tao_device::Device;
use tao_graph::{eval_node, Execution, Graph, NodeId};
use tao_tensor::Tensor;

use crate::error::ProtocolError;
use crate::Result;

/// Which Phase 3 path the routing policy selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjudicationPath {
    /// The claimed output broke the theoretical cap: cheap sound check.
    Theoretical,
    /// Within the theoretical cap: tighter committee vote.
    Committee,
}

/// Leaf verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafVerdict {
    /// The proposer's leaf output is accepted.
    Accepted,
    /// The proposer is convicted and slashed.
    Fraud,
}

/// Outcome of a committee vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteOutcome {
    /// Per-member votes (`true` = within thresholds).
    pub votes: Vec<bool>,
    /// Majority decision.
    pub verdict: LeafVerdict,
}

/// The disputed leaf with its committed context.
#[derive(Debug)]
pub struct LeafCase<'a> {
    /// The traced model.
    pub graph: &'a Graph,
    /// The localized operator.
    pub leaf: NodeId,
    /// Proposer trace carrying the committed leaf inputs and output.
    pub proposer_trace: &'a Execution,
    /// Graph inputs (committed by `H(x)`).
    pub inputs: &'a [Tensor<f32>],
}

impl<'a> LeafCase<'a> {
    /// Re-executes the leaf operator under a device's kernels, from the
    /// committed inputs.
    ///
    /// # Errors
    ///
    /// Returns an error when evaluation fails.
    pub fn reexecute(&self, device: &Device) -> Result<Tensor<f32>> {
        let node = self.graph.node(self.leaf)?;
        Ok(eval_node(
            self.graph,
            node,
            &self.proposer_trace.values,
            self.inputs,
            device.config(),
        )?)
    }

    /// The proposer's claimed leaf output.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range leaf id.
    pub fn claimed(&self) -> Result<&Tensor<f32>> {
        Ok(self.proposer_trace.value(self.leaf)?)
    }
}

/// The routing policy: recompute a reference and compare against the
/// theoretical cap; any element outside routes to the (decisive)
/// theoretical path, otherwise to the committee.
///
/// # Errors
///
/// Returns an error when re-execution or bound computation fails.
pub fn route(case: &LeafCase<'_>, engine: &BoundEngine) -> Result<AdjudicationPath> {
    let report = theoretical_check(case, engine, 1.0)?;
    Ok(if report.passed {
        AdjudicationPath::Committee
    } else {
        AdjudicationPath::Theoretical
    })
}

/// Path (i): the sound element-wise IEEE-754 bound check. The reference is
/// recomputed under the canonical configuration and `τ_theo` from the
/// committed inputs; `scale` is the diagnostic `α` (1 in production).
///
/// # Errors
///
/// Returns an error when re-execution or bound computation fails.
pub fn theoretical_check(
    case: &LeafCase<'_>,
    engine: &BoundEngine,
    scale: f64,
) -> Result<CheckReport> {
    let reference = case.reexecute(&Device::reference())?;
    let node = case.graph.node(case.leaf)?;
    let tau = engine.node_bound(case.graph, node, case.proposer_trace)?;
    Ok(check_within_bound(case.claimed()?, &reference, &tau, scale))
}

/// Converts a theoretical check into a verdict: violations convict.
pub fn theoretical_verdict(report: &CheckReport) -> LeafVerdict {
    if report.passed {
        LeafVerdict::Accepted
    } else {
        LeafVerdict::Fraud
    }
}

/// Path (ii): committee vote against the committed empirical thresholds.
/// Each member re-executes the leaf on its own device, forms the error
/// percentile profile versus the claimed output, and votes "within" iff
/// the profile stays under the thresholds (structural leaves require exact
/// match). `dishonest[i]` flips member `i`'s vote, for fault-injection
/// tests of the honest-majority assumption.
///
/// # Errors
///
/// Returns an error for an empty or even-sized committee, or when a
/// member's re-execution fails.
pub fn committee_vote(
    case: &LeafCase<'_>,
    thresholds: &ThresholdBundle,
    committee: &[Device],
    dishonest: &[bool],
) -> Result<VoteOutcome> {
    if committee.is_empty() || committee.len().is_multiple_of(2) {
        return Err(ProtocolError::BadCommittee(format!(
            "need an odd, nonzero committee, got {}",
            committee.len()
        )));
    }
    let claimed = case.claimed()?;
    let mut votes = Vec::with_capacity(committee.len());
    for (i, member) in committee.iter().enumerate() {
        let reference = case.reexecute(member)?;
        let honest_vote = if thresholds.for_node(case.leaf).is_some() {
            let prof = error_profile(claimed, &reference, DEFAULT_EPS);
            thresholds
                .exceedance(case.leaf, &prof)
                .unwrap_or(f64::INFINITY)
                <= 1.0
        } else {
            claimed.data() == reference.data()
        };
        let flipped = dishonest.get(i).copied().unwrap_or(false);
        votes.push(honest_vote != flipped);
    }
    let accepts = votes.iter().filter(|&&v| v).count();
    let verdict = if accepts * 2 > votes.len() {
        LeafVerdict::Accepted
    } else {
        LeafVerdict::Fraud
    };
    Ok(VoteOutcome { votes, verdict })
}

/// Samples an odd committee of size `n` from a pool, seeded (the
/// coordinator's randomized sortition).
pub fn sample_committee(pool: &[Device], n: usize, seed: u64) -> Vec<Device> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut n = n.min(pool.len()).max(1);
    if n.is_multiple_of(2) {
        n -= 1; // Round even requests down to odd.
    }
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut picks: Vec<Device> = pool.to_vec();
    picks.shuffle(&mut rng);
    picks.truncate(n);
    picks
}

/// Convenience: full Phase 3 — route, then adjudicate on the chosen path.
///
/// Returns the path taken and the verdict.
///
/// # Errors
///
/// Returns an error when any re-execution fails.
pub fn adjudicate(
    case: &LeafCase<'_>,
    engine: &BoundEngine,
    thresholds: &ThresholdBundle,
    committee: &[Device],
) -> Result<(AdjudicationPath, LeafVerdict)> {
    match route(case, engine)? {
        AdjudicationPath::Theoretical => {
            let report = theoretical_check(case, engine, 1.0)?;
            Ok((AdjudicationPath::Theoretical, theoretical_verdict(&report)))
        }
        AdjudicationPath::Committee => {
            let dishonest = vec![false; committee.len()];
            let outcome = committee_vote(case, thresholds, committee, &dishonest)?;
            Ok((AdjudicationPath::Committee, outcome.verdict))
        }
    }
}

/// Builds a leaf case from a dispute trace (helper for drivers).
pub fn leaf_case<'a>(
    graph: &'a Graph,
    leaf: NodeId,
    proposer_trace: &'a Execution,
    inputs: &'a [Tensor<f32>],
) -> LeafCase<'a> {
    LeafCase {
        graph,
        leaf,
        proposer_trace,
        inputs,
    }
}

/// A `HashMap` alias for callers assembling custom boundaries.
pub type Boundary = HashMap<NodeId, Tensor<f32>>;

#[cfg(test)]
mod tests {
    use super::*;
    use tao_calib::{calibrate, DEFAULT_ALPHA};
    use tao_device::Fleet;
    use tao_graph::{execute, GraphBuilder, OpKind, Perturbations};

    fn model() -> (Graph, ThresholdBundle, Vec<Tensor<f32>>) {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[48, 48], -0.4, 0.4, 3));
        let m = b.op("m", OpKind::MatMul, &[x, w]);
        let s = b.op("s", OpKind::Softmax, &[m]);
        let g = b.finish(vec![s]).unwrap();
        let samples: Vec<Vec<Tensor<f32>>> = (0..6)
            .map(|i| vec![Tensor::<f32>::rand_uniform(&[4, 48], -1.0, 1.0, 60 + i)])
            .collect();
        let bundle = calibrate(&g, &samples, &Fleet::standard())
            .unwrap()
            .into_thresholds(DEFAULT_ALPHA);
        let input = vec![Tensor::<f32>::rand_uniform(&[4, 48], -1.0, 1.0, 99)];
        (g, bundle, input)
    }

    #[test]
    fn honest_leaf_accepted_by_both_paths() {
        let (g, bundle, inputs) = model();
        let trace = execute(&g, &inputs, Device::a100_like().config(), None).unwrap();
        let leaf = NodeId(2); // The matmul.
        let case = leaf_case(&g, leaf, &trace, &inputs);
        let engine = BoundEngine::paper_default();
        assert_eq!(route(&case, &engine).unwrap(), AdjudicationPath::Committee);
        let committee = sample_committee(Fleet::standard().devices(), 3, 1);
        let (_, verdict) = adjudicate(&case, &engine, &bundle, &committee).unwrap();
        assert_eq!(verdict, LeafVerdict::Accepted);
    }

    #[test]
    fn large_perturbation_convicted_theoretically() {
        let (g, bundle, inputs) = model();
        let leaf = NodeId(2);
        let honest = execute(&g, &inputs, Device::a100_like().config(), None).unwrap();
        let shape = honest.values[leaf.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(leaf, Tensor::full(&shape, 0.5));
        let trace = execute(&g, &inputs, Device::a100_like().config(), Some(&p)).unwrap();
        let case = leaf_case(&g, leaf, &trace, &inputs);
        let engine = BoundEngine::paper_default();
        assert_eq!(
            route(&case, &engine).unwrap(),
            AdjudicationPath::Theoretical
        );
        let (path, verdict) = adjudicate(&case, &engine, &bundle, &[]).unwrap();
        assert_eq!(path, AdjudicationPath::Theoretical);
        assert_eq!(verdict, LeafVerdict::Fraud);
    }

    #[test]
    fn sneaky_perturbation_convicted_by_committee() {
        let (g, bundle, inputs) = model();
        let leaf = NodeId(2);
        let honest = execute(&g, &inputs, Device::a100_like().config(), None).unwrap();
        let shape = honest.values[leaf.0].dims().to_vec();
        // Inside the loose theoretical cap for a 48-deep dot product but
        // far above the ~1e-7 empirical thresholds.
        let mut p = Perturbations::new();
        p.insert(leaf, Tensor::full(&shape, 3e-5));
        let trace = execute(&g, &inputs, Device::a100_like().config(), Some(&p)).unwrap();
        let case = leaf_case(&g, leaf, &trace, &inputs);
        let committee = sample_committee(Fleet::standard().devices(), 3, 2);
        let outcome = committee_vote(&case, &bundle, &committee, &[false; 3]).unwrap();
        assert_eq!(outcome.verdict, LeafVerdict::Fraud);
    }

    #[test]
    fn honest_majority_overrides_dishonest_member() {
        let (g, bundle, inputs) = model();
        let leaf = NodeId(2);
        let trace = execute(&g, &inputs, Device::a100_like().config(), None).unwrap();
        let case = leaf_case(&g, leaf, &trace, &inputs);
        let committee = sample_committee(Fleet::standard().devices(), 3, 3);
        // One liar cannot flip an honest-majority acceptance.
        let outcome = committee_vote(&case, &bundle, &committee, &[true, false, false]).unwrap();
        assert_eq!(outcome.verdict, LeafVerdict::Accepted);
        // Two liars can — the honest-majority assumption is load-bearing.
        let outcome2 = committee_vote(&case, &bundle, &committee, &[true, true, false]).unwrap();
        assert_eq!(outcome2.verdict, LeafVerdict::Fraud);
    }

    #[test]
    fn committee_must_be_odd_and_nonempty() {
        let (g, bundle, inputs) = model();
        let trace = execute(&g, &inputs, Device::a100_like().config(), None).unwrap();
        let case = leaf_case(&g, NodeId(2), &trace, &inputs);
        assert!(committee_vote(&case, &bundle, &[], &[]).is_err());
        let even = vec![Device::a100_like(), Device::h100_like()];
        assert!(committee_vote(&case, &bundle, &even, &[false, false]).is_err());
    }

    #[test]
    fn sample_committee_is_seeded_and_odd() {
        let pool = Fleet::standard().devices().to_vec();
        let a = sample_committee(&pool, 3, 7);
        let b = sample_committee(&pool, 3, 7);
        assert_eq!(
            a.iter().map(Device::name).collect::<Vec<_>>(),
            b.iter().map(Device::name).collect::<Vec<_>>()
        );
        assert_eq!(a.len() % 2, 1);
        let c = sample_committee(&pool, 4, 7);
        assert_eq!(c.len() % 2, 1, "even requests are rounded to odd");
    }
}
