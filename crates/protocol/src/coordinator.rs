//! The coordinator: an authenticated state machine with a logical clock,
//! escrowed bonds, challenge windows, per-round timeouts, and settlement.
//!
//! The paper instantiates this layer as Ethereum smart contracts; TAO
//! itself only needs tamper-evident commitments, fair timeouts and bond
//! management, which this in-process coordinator provides with identical
//! semantics and a deterministic gas ledger.

use std::collections::HashMap;

use tao_merkle::{ClaimMeta, Digest, ModelCommitment};

use crate::econ::EconParams;
use crate::error::ProtocolError;
use crate::gas::{self, GasMeter};
use crate::Result;

/// A protocol party.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// The compute provider that posted the claim.
    Proposer,
    /// The disputing verifier.
    Challenger,
}

/// Lifecycle of a claim.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimStatus {
    /// Inside the challenge window.
    Pending,
    /// Window elapsed unchallenged: economically final.
    Finalized,
    /// Under an active dispute.
    Disputed {
        /// The challenging account.
        challenger: String,
    },
    /// Dispute settled.
    Settled {
        /// The prevailing party.
        winner: Party,
    },
}

/// A posted claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Claim id.
    pub id: u64,
    /// Proposer account.
    pub proposer: String,
    /// The commitment `C0`.
    pub commitment: Digest,
    /// Posting tick.
    pub posted_at: u64,
    /// Challenge-window length in ticks.
    pub window: u64,
    /// Current status.
    pub status: ClaimStatus,
}

impl Claim {
    /// Last tick at which a challenge is accepted.
    pub fn deadline(&self) -> u64 {
        self.posted_at + self.window
    }
}

/// The in-process coordinator.
#[derive(Debug, Clone)]
pub struct Coordinator {
    tick: u64,
    accounts: HashMap<String, f64>,
    escrow: HashMap<String, f64>,
    claims: Vec<Claim>,
    models: Vec<ModelCommitment>,
    econ: EconParams,
    slash: f64,
    /// Gas ledger for every coordinator interaction.
    pub gas: GasMeter,
}

impl Coordinator {
    /// Creates a coordinator with the given economics and slash amount.
    ///
    /// # Errors
    ///
    /// Returns an error when `slash` is outside the feasible region of the
    /// economic parameters.
    pub fn new(econ: EconParams, slash: f64) -> Result<Self> {
        if !econ.incentive_compatible(slash) {
            return Err(ProtocolError::BadState(format!(
                "slash {slash} outside feasible region {:?}",
                econ.feasible_slash_region()
            )));
        }
        Ok(Coordinator {
            tick: 0,
            accounts: HashMap::new(),
            escrow: HashMap::new(),
            claims: Vec::new(),
            models: Vec::new(),
            econ,
            slash,
            gas: GasMeter::new(),
        })
    }

    /// Current logical tick (block height).
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Credits an account.
    pub fn fund(&mut self, account: &str, amount: f64) {
        *self.accounts.entry(account.to_string()).or_insert(0.0) += amount;
    }

    /// Free (non-escrowed) balance of an account.
    pub fn balance(&self, account: &str) -> f64 {
        self.accounts.get(account).copied().unwrap_or(0.0)
    }

    /// Escrowed balance of an account.
    pub fn escrowed(&self, account: &str) -> f64 {
        self.escrow.get(account).copied().unwrap_or(0.0)
    }

    /// Registers a model commitment (Phase 0).
    pub fn register_model(&mut self, commitment: ModelCommitment) -> usize {
        self.gas
            .charge("register_model", gas::G_TX + 3 * gas::G_SSTORE_NEW);
        self.models.push(commitment);
        self.models.len() - 1
    }

    /// The §5.5 randomized-audit channel: deterministically decides (from
    /// the claim commitment and a public beacon) whether a pending claim is
    /// audited with probability `φ`. Audits and voluntary challenges are
    /// mutually exclusive per claim; audit costs are borne by user service
    /// fees rather than a challenger deposit.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown claim.
    pub fn audit_selected(&self, id: u64, beacon: u64) -> Result<bool> {
        let claim = self.claim(id)?;
        let mut h = tao_merkle::Sha256::new();
        h.update(&claim.commitment);
        h.update(&beacon.to_le_bytes());
        let digest = h.finalize();
        let draw =
            u64::from_le_bytes(digest[..8].try_into().expect("8 bytes")) as f64 / u64::MAX as f64;
        Ok(draw < self.econ.phi)
    }

    /// Opens a randomized audit against a pending claim. Unlike a
    /// voluntary challenge, no challenger deposit is posted — the audit is
    /// funded from service fees — but the proposer collateral freezes the
    /// same way.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not pending or the window
    /// closed.
    pub fn open_audit(&mut self, id: u64) -> Result<()> {
        let (deadline, status_ok) = {
            let claim = self.claim(id)?;
            (
                claim.deadline(),
                matches!(claim.status, ClaimStatus::Pending),
            )
        };
        if !status_ok {
            return Err(ProtocolError::BadState(format!(
                "claim #{id} is not pending"
            )));
        }
        if self.tick > deadline {
            return Err(ProtocolError::WindowClosed {
                claim: id,
                now: self.tick,
                deadline,
            });
        }
        self.gas.charge("open_audit", gas::open_challenge());
        self.claims[id as usize].status = ClaimStatus::Disputed {
            challenger: "audit-committee".to_string(),
        };
        Ok(())
    }

    /// A registered model commitment.
    pub fn model(&self, idx: usize) -> Option<&ModelCommitment> {
        self.models.get(idx)
    }

    /// Posts a claim commitment (Phase 1), escrowing the proposer deposit.
    ///
    /// # Errors
    ///
    /// Returns an error when the proposer's balance is below `D_p`.
    pub fn submit_claim(
        &mut self,
        proposer: &str,
        commitment: Digest,
        meta: &ClaimMeta,
    ) -> Result<u64> {
        self.lock(proposer, self.econ.d_p)?;
        self.gas.charge("commit_claim", gas::commit_claim());
        let id = self.claims.len() as u64;
        self.claims.push(Claim {
            id,
            proposer: proposer.to_string(),
            commitment,
            posted_at: self.tick,
            window: meta.challenge_window,
            status: ClaimStatus::Pending,
        });
        Ok(id)
    }

    /// A claim by id.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id.
    pub fn claim(&self, id: u64) -> Result<&Claim> {
        self.claims
            .get(id as usize)
            .ok_or(ProtocolError::UnknownClaim(id))
    }

    /// Advances the logical clock, finalizing pending claims whose windows
    /// elapsed. Returns the ids finalized.
    pub fn advance(&mut self, ticks: u64) -> Vec<u64> {
        self.tick += ticks;
        let now = self.tick;
        let mut finalized = Vec::new();
        let mut releases = Vec::new();
        for claim in &mut self.claims {
            if matches!(claim.status, ClaimStatus::Pending) && now > claim.deadline() {
                claim.status = ClaimStatus::Finalized;
                releases.push((claim.proposer.clone(), claim.id));
            }
        }
        for (proposer, id) in releases {
            self.release(&proposer, self.econ.d_p);
            // Pay the task reward on finality.
            self.fund(&proposer, self.econ.r_p);
            finalized.push(id);
        }
        finalized
    }

    /// Opens a challenge against a pending claim, escrowing `D_ch` and
    /// freezing the proposer's collateral.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not pending, the window closed,
    /// or the challenger cannot post the deposit.
    pub fn open_challenge(&mut self, id: u64, challenger: &str) -> Result<()> {
        let (deadline, status_ok) = {
            let claim = self.claim(id)?;
            (
                claim.deadline(),
                matches!(claim.status, ClaimStatus::Pending),
            )
        };
        if !status_ok {
            return Err(ProtocolError::BadState(format!(
                "claim #{id} is not pending"
            )));
        }
        if self.tick > deadline {
            return Err(ProtocolError::WindowClosed {
                claim: id,
                now: self.tick,
                deadline,
            });
        }
        self.lock(challenger, self.econ.d_ch)?;
        self.gas.charge("open_challenge", gas::open_challenge());
        self.claims[id as usize].status = ClaimStatus::Disputed {
            challenger: challenger.to_string(),
        };
        Ok(())
    }

    /// Settles a disputed claim: the loser is slashed by `S_slash` from
    /// escrow, the winner's deposit is released, and the winner (plus the
    /// committee, when used) is rewarded per §5.5.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not disputed.
    pub fn settle(&mut self, id: u64, winner: Party, committee_size: usize) -> Result<()> {
        let (proposer, challenger) = {
            let claim = self.claim(id)?;
            let ClaimStatus::Disputed { challenger } = &claim.status else {
                return Err(ProtocolError::BadState(format!(
                    "claim #{id} is not disputed"
                )));
            };
            (claim.proposer.clone(), challenger.clone())
        };
        self.gas.charge("settlement", gas::settlement());
        match winner {
            Party::Challenger => {
                // Slash the proposer: challenger share + committee share.
                let slashed = self.slash.min(self.escrowed(&proposer));
                self.take_escrow(&proposer, slashed);
                self.release(
                    &proposer,
                    self.escrowed(&proposer).min(self.econ.d_p - slashed),
                );
                self.fund(&challenger, self.econ.alpha_ch * slashed);
                if committee_size > 0 {
                    let cm_total = self.econ.alpha_cm * slashed;
                    self.fund("committee-pool", cm_total);
                    let _ = committee_size;
                }
                self.release(&challenger, self.econ.d_ch);
            }
            Party::Proposer => {
                // Spam deterrence: the challenger forfeits its deposit.
                let forfeited = self.econ.d_ch.min(self.escrowed(&challenger));
                self.take_escrow(&challenger, forfeited);
                self.fund(&proposer, forfeited);
                self.release(&proposer, self.econ.d_p);
                self.fund(&proposer, self.econ.r_p);
                if committee_size > 0 {
                    self.fund(
                        "committee-pool",
                        self.econ.committee_fee * committee_size as f64,
                    );
                }
            }
        }
        self.claims[id as usize].status = ClaimStatus::Settled { winner };
        Ok(())
    }

    /// Rules a timeout violation against `party` in a dispute: the absent
    /// party immediately loses the round and the dispute.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not disputed.
    pub fn timeout(&mut self, id: u64, absent: Party) -> Result<()> {
        let winner = match absent {
            Party::Proposer => Party::Challenger,
            Party::Challenger => Party::Proposer,
        };
        self.settle(id, winner, 0)
    }

    fn lock(&mut self, account: &str, amount: f64) -> Result<()> {
        let available = self.balance(account);
        if available < amount {
            return Err(ProtocolError::InsufficientFunds {
                account: account.to_string(),
                needed: amount,
                available,
            });
        }
        *self.accounts.get_mut(account).expect("checked above") -= amount;
        *self.escrow.entry(account.to_string()).or_insert(0.0) += amount;
        Ok(())
    }

    fn release(&mut self, account: &str, amount: f64) {
        let held = self.escrowed(account);
        let amount = amount.min(held);
        if amount > 0.0 {
            *self.escrow.get_mut(account).expect("held > 0") -= amount;
            self.fund(account, amount);
        }
    }

    fn take_escrow(&mut self, account: &str, amount: f64) {
        let held = self.escrowed(account);
        let amount = amount.min(held);
        if amount > 0.0 {
            *self.escrow.get_mut(account).expect("held > 0") -= amount;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commitment() -> Digest {
        tao_merkle::sha256(b"claim")
    }

    fn meta() -> ClaimMeta {
        ClaimMeta {
            device: "sim-a100".into(),
            kernel: "pairwise".into(),
            dtype: "f32".into(),
            challenge_window: 10,
        }
    }

    fn coordinator() -> Coordinator {
        let econ = EconParams::default_market();
        let (lo, hi) = econ.feasible_slash_region().unwrap();
        Coordinator::new(econ, (lo + hi) / 2.0).unwrap()
    }

    #[test]
    fn happy_path_finalizes_and_pays() {
        let mut c = coordinator();
        c.fund("prop", 1_000.0);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        assert!(matches!(c.claim(id).unwrap().status, ClaimStatus::Pending));
        assert!(c.advance(5).is_empty(), "window still open");
        let finalized = c.advance(6);
        assert_eq!(finalized, vec![id]);
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Finalized
        ));
        // Deposit returned plus reward.
        assert!((c.balance("prop") - (1_000.0 + c.econ_reward())).abs() < 1e-9);
    }

    #[test]
    fn challenge_freezes_and_challenger_win_slashes() {
        let mut c = coordinator();
        c.fund("prop", 1_000.0);
        c.fund("chal", 100.0);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_challenge(id, "chal").unwrap();
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Disputed { .. }
        ));
        // Cannot finalize while disputed.
        assert!(c.advance(100).is_empty());
        c.settle(id, Party::Challenger, 5).unwrap();
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ));
        // Challenger got deposit back plus its slash share.
        assert!(c.balance("chal") > 100.0);
        // Proposer lost the slash.
        assert!(c.balance("prop") < 1_000.0);
        // Committee pool funded.
        assert!(c.balance("committee-pool") > 0.0);
    }

    #[test]
    fn proposer_win_takes_challenger_deposit() {
        let mut c = coordinator();
        c.fund("prop", 1_000.0);
        c.fund("chal", 100.0);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_challenge(id, "chal").unwrap();
        c.settle(id, Party::Proposer, 0).unwrap();
        assert!(c.balance("chal") < 100.0, "spammer must lose its deposit");
        assert!(
            c.balance("prop") > 1_000.0,
            "proposer made whole plus reward"
        );
    }

    #[test]
    fn late_challenge_rejected() {
        let mut c = coordinator();
        c.fund("prop", 1_000.0);
        c.fund("chal", 100.0);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.advance(11);
        assert!(matches!(
            c.open_challenge(id, "chal"),
            Err(ProtocolError::BadState(_)) | Err(ProtocolError::WindowClosed { .. })
        ));
    }

    #[test]
    fn insufficient_deposit_rejected() {
        let mut c = coordinator();
        c.fund("poor", 1.0);
        assert!(matches!(
            c.submit_claim("poor", commitment(), &meta()),
            Err(ProtocolError::InsufficientFunds { .. })
        ));
    }

    #[test]
    fn timeout_loses_dispute() {
        let mut c = coordinator();
        c.fund("prop", 1_000.0);
        c.fund("chal", 100.0);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_challenge(id, "chal").unwrap();
        c.timeout(id, Party::Proposer).unwrap();
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ));
    }

    #[test]
    fn audit_selection_is_deterministic_and_near_phi() {
        let mut c = coordinator();
        c.fund("prop", 100_000.0);
        let mut selected = 0;
        let n = 400;
        for i in 0..n {
            let id = c
                .submit_claim(
                    "prop",
                    tao_merkle::sha256(format!("c{i}").as_bytes()),
                    &meta(),
                )
                .unwrap();
            assert_eq!(
                c.audit_selected(id, 7).unwrap(),
                c.audit_selected(id, 7).unwrap(),
                "deterministic per (claim, beacon)"
            );
            if c.audit_selected(id, 7).unwrap() {
                selected += 1;
            }
            c.advance(100);
        }
        // φ = 0.05: expect roughly 5% selected (generous band).
        let rate = selected as f64 / n as f64;
        assert!((0.01..0.12).contains(&rate), "audit rate {rate}");
    }

    #[test]
    fn audit_freezes_without_challenger_deposit() {
        let mut c = coordinator();
        c.fund("prop", 1_000.0);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_audit(id).unwrap();
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Disputed { .. }
        ));
        // A ruled-clean audit pays the committee from fees, not a deposit.
        c.settle(id, Party::Proposer, 5).unwrap();
        assert!(c.balance("committee-pool") > 0.0);
        // Audits cannot reopen a settled claim.
        assert!(c.open_audit(id).is_err());
    }

    #[test]
    fn infeasible_slash_rejected_at_construction() {
        let econ = EconParams {
            phi: 0.0,
            phi_ch: 0.0,
            ..EconParams::default_market()
        };
        assert!(Coordinator::new(econ, 100.0).is_err());
    }

    #[test]
    fn gas_ledger_accumulates() {
        let mut c = coordinator();
        c.fund("prop", 1_000.0);
        let before = c.gas.total;
        let _ = c.submit_claim("prop", commitment(), &meta()).unwrap();
        assert!(c.gas.total > before);
    }

    impl Coordinator {
        fn econ_reward(&self) -> f64 {
            self.econ.r_p
        }
    }
}
