//! The coordinator: an authenticated state machine with a logical clock,
//! escrowed bonds, challenge windows, per-round timeouts, and settlement.
//!
//! The paper instantiates this layer as Ethereum smart contracts; TAO
//! itself only needs tamper-evident commitments, fair timeouts and bond
//! management, which this in-process coordinator provides with identical
//! semantics and a deterministic gas ledger.
//!
//! # Exact money
//!
//! Every balance, deposit and fee is an exact fixed-point
//! [`Money`]; incentive *analysis* stays in f64 ([`EconParams`]) but the
//! amounts the coordinator moves are derived once at construction into
//! an [`EconAmounts`] and all settlement arithmetic is integer. Settle
//! amounts are computed from per-claim state (`slashed = min(S_slash,
//! deposit)`) rather than from live aggregate escrow, so every money
//! movement is a pure function of the claim — independent of how settle
//! threads interleave — and sharded-parallel execution is **bit-exact**
//! against the serial reference.
//!
//! # Sharded concurrency
//!
//! Since the marketplace's throughput ceiling is the arbiter rather than
//! the kernels, the coordinator is internally **sharded** instead of
//! living behind one big lock:
//!
//! * claim state lives in [`ClaimShards`] — [`CLAIM_SHARDS`] independent
//!   locks keyed by `claim_id & (CLAIM_SHARDS - 1)`, with claim ids from
//!   an atomic counter — so submit/challenge/settle on distinct claims
//!   never contend;
//! * account balances live in the sharded [`Ledger`], whose two-account
//!   transfers take their shard locks in ascending index order;
//! * the logical clock is an atomic counter; the gas meter and the model
//!   registry sit behind their own small locks.
//!
//! The **lock-ordering rule**: a claim-shard lock may be held while
//! acquiring account-shard locks (status checks gate money movement), and
//! account-shard locks are only ever acquired in ascending shard-index
//! order; the supply and gas locks are only taken with no other lock
//! held by the same operation. No operation ever acquires a claim lock
//! while holding an account lock, so the hierarchy is acyclic.
//!
//! # Canonical gas log and epoch commitments
//!
//! Each claim-scoped gas event carries a `(claim, seq)` key whose
//! sequence number is allocated from the claim's own counter **under the
//! claim's shard lock** — the same critical section that performs the
//! state transition — so per-claim event order is protocol causality,
//! not meter-append order. [`Coordinator::seal_epoch`] drains the meter
//! into a canonically sorted, Merkle-committed [`EpochCommitment`]
//! (see [`crate::epoch`]) whose root is identical across worker counts.
//!
//! The contract, enforced differentially by
//! `tests/tests/coordinator_invariants.rs`: any batch of coordinator
//! interactions driven in parallel is **observationally equivalent** to
//! the same batch driven serially through the single-mutex
//! [`reference::SerialCoordinator`] (same statuses, winners, balances,
//! canonical gas log and epoch roots — all compared with `==`), and
//! `Σ balances + Σ escrow == injected()` holds exactly at phase
//! boundaries.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use tao_merkle::{ClaimMeta, Digest, ModelCommitment};
use tao_money::{slash_split, Money};

use crate::econ::{EconAmounts, EconParams, Ledger};
use crate::epoch::{epoch_root, sort_canonical, EpochCommitment};
use crate::error::ProtocolError;
use crate::gas::{self, GasMeter};
use crate::Result;

/// A protocol party.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// The compute provider that posted the claim.
    Proposer,
    /// The disputing verifier.
    Challenger,
}

/// Lifecycle of a claim.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimStatus {
    /// Inside the challenge window.
    Pending,
    /// Window elapsed unchallenged: economically final.
    Finalized,
    /// Under an active dispute.
    Disputed {
        /// The challenging account.
        challenger: String,
    },
    /// Dispute settled.
    Settled {
        /// The prevailing party.
        winner: Party,
    },
}

/// A posted claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Claim id.
    pub id: u64,
    /// Proposer account.
    pub proposer: String,
    /// The commitment `C0`.
    pub commitment: Digest,
    /// Posting tick.
    pub posted_at: u64,
    /// Challenge-window length in ticks.
    pub window: u64,
    /// Proposer deposit escrowed for this claim. Flat `D_p` for
    /// [`Coordinator::submit_claim`]; at least `D_p`, scaled up by the
    /// static FLOP bound, for [`Coordinator::submit_claim_quoted`].
    pub deposit: Money,
    /// Current status.
    pub status: ClaimStatus,
    /// Number of gas events logged against this claim — the claim's
    /// monotone sequence counter, bumped under the claim's shard lock so
    /// the canonical gas log reflects protocol causality.
    pub events: u32,
}

impl Claim {
    /// Last tick at which a challenge is accepted.
    pub fn deadline(&self) -> u64 {
        self.posted_at + self.window
    }

    /// Allocates the next gas-event sequence number for this claim.
    /// Must be called while holding the claim's shard lock.
    fn next_seq(&mut self) -> u32 {
        let seq = self.events;
        self.events += 1;
        seq
    }
}

/// Default number of claim shards. The shard count is runtime
/// configurable via [`ClaimShards::with_shards`] /
/// [`Coordinator::with_shards`] and always rounded up to a power of two
/// so the shard index is a mask of the claim id.
pub const CLAIM_SHARDS: usize = 16;

/// Claim state split over [`CLAIM_SHARDS`] independent locks, with claim
/// ids handed out by an atomic counter. Shard `id & (CLAIM_SHARDS - 1)`
/// owns claim `id`, so operations on distinct claims contend only on a
/// shard collision. Within a shard, claims sit in a `BTreeMap` so scans
/// ([`Coordinator::advance`]) visit them in deterministic id order.
#[derive(Debug)]
pub struct ClaimShards {
    shards: Vec<Mutex<BTreeMap<u64, Claim>>>,
    next_id: AtomicU64,
}

impl Default for ClaimShards {
    fn default() -> Self {
        ClaimShards::new()
    }
}

impl ClaimShards {
    /// Empty shard array with the default shard count ([`CLAIM_SHARDS`]).
    pub fn new() -> Self {
        Self::with_shards(CLAIM_SHARDS)
    }

    /// Empty shard array with `shards` claim shards, rounded up to the
    /// next power of two (minimum 1 — a 1-shard array degenerates to the
    /// serial single-lock layout).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ClaimShards {
            shards: (0..shards).map(|_| Mutex::default()).collect(),
            next_id: AtomicU64::new(0),
        }
    }

    /// The (power-of-two) number of claim shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Allocates the next claim id.
    fn allocate(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The shard owning `id`.
    fn shard(&self, id: u64) -> &Mutex<BTreeMap<u64, Claim>> {
        &self.shards[(id as usize) & (self.shards.len() - 1)]
    }

    /// A snapshot of claim `id`.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id.
    pub fn get(&self, id: u64) -> Result<Claim> {
        self.shard(id)
            .lock()
            .get(&id)
            .cloned()
            .ok_or(ProtocolError::UnknownClaim(id))
    }

    /// How many claim ids have been handed out.
    pub fn len(&self) -> usize {
        self.next_id.load(Ordering::Relaxed) as usize
    }

    /// True when no claim was ever posted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The in-process coordinator, internally sharded (see the module docs for
/// the shard layout and lock-ordering rule). Every method takes `&self`:
/// the coordinator is shared across worker threads directly, without an
/// external lock.
#[derive(Debug)]
pub struct Coordinator {
    tick: AtomicU64,
    ledger: Ledger,
    claims: ClaimShards,
    models: Mutex<Vec<ModelCommitment>>,
    econ: EconParams,
    amounts: EconAmounts,
    slash: Money,
    gas: Mutex<GasMeter>,
    epochs: Mutex<Vec<EpochCommitment>>,
}

impl Coordinator {
    /// Creates a coordinator with the given economics and slash amount.
    ///
    /// # Errors
    ///
    /// Returns an error when `slash` is outside the feasible region of the
    /// economic parameters.
    pub fn new(econ: EconParams, slash: f64) -> Result<Self> {
        Self::with_shards(econ, slash, CLAIM_SHARDS, crate::econ::ACCOUNT_SHARDS)
    }

    /// Creates a coordinator with explicit claim/account shard counts,
    /// each rounded up to the next power of two (minimum 1). A
    /// `(1, 1)`-sharded coordinator is the serial single-lock layout —
    /// observationally equivalent to any other count, only slower under
    /// contention; the invariants suite sweeps 1 and 64 to pin that.
    ///
    /// # Errors
    ///
    /// Returns an error when `slash` is outside the feasible region of the
    /// economic parameters or the parameters yield no exact amounts.
    pub fn with_shards(
        econ: EconParams,
        slash: f64,
        claim_shards: usize,
        account_shards: usize,
    ) -> Result<Self> {
        let (amounts, slash) = check_economics(&econ, slash)?;
        Ok(Coordinator {
            tick: AtomicU64::new(0),
            ledger: Ledger::with_shards(account_shards),
            claims: ClaimShards::with_shards(claim_shards),
            models: Mutex::new(Vec::new()),
            econ,
            amounts,
            slash,
            gas: Mutex::new(GasMeter::new()),
            epochs: Mutex::new(Vec::new()),
        })
    }

    /// The runtime `(claim, account)` shard counts.
    pub fn shard_counts(&self) -> (usize, usize) {
        (self.claims.shard_count(), self.ledger.shard_count())
    }

    /// Current logical tick (block height).
    pub fn now(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// The exact protocol amounts (deposits, reward, fee, split rates).
    pub fn amounts(&self) -> EconAmounts {
        self.amounts
    }

    /// The exact slash amount `S_slash`.
    pub fn slash_amount(&self) -> Money {
        self.slash
    }

    /// The f64 economic parameters the coordinator was built from.
    pub fn econ_params(&self) -> &EconParams {
        &self.econ
    }

    /// Credits an account. Accepts whole credits (`fund("p", 10_000)`)
    /// or an exact [`Money`].
    pub fn fund(&self, account: &str, amount: impl Into<Money>) {
        self.ledger.mint(account, amount.into());
    }

    /// Free (non-escrowed) balance of an account.
    pub fn balance(&self, account: &str) -> Money {
        self.ledger.balance(account)
    }

    /// Escrowed balance of an account.
    pub fn escrowed(&self, account: &str) -> Money {
        self.ledger.escrowed(account)
    }

    /// The sharded account ledger (conservation accounting lives there).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// A snapshot of the gas ledger (events since the last sealed epoch).
    pub fn gas(&self) -> GasMeter {
        self.gas.lock().clone()
    }

    fn charge(&self, action: &str, amount: u64) {
        self.gas.lock().charge(action, amount);
    }

    fn charge_claim(&self, claim: u64, seq: u32, action: &str, gas_cost: u64, amount: Money) {
        self.gas
            .lock()
            .charge_claim(claim, seq, action, gas_cost, amount);
    }

    /// Seals the current epoch: drains every gas event logged since the
    /// previous seal into a canonically ordered, Merkle-committed
    /// [`EpochCommitment`], appends it to the epoch chain and returns
    /// it. The meter's running `total` is preserved. Call from a phase
    /// boundary (no coordinator operation in flight).
    pub fn seal_epoch(&self) -> EpochCommitment {
        let mut entries = {
            let mut meter = self.gas.lock();
            std::mem::take(&mut meter.log)
        };
        sort_canonical(&mut entries);
        let root = epoch_root(&entries);
        let mut epochs = self.epochs.lock();
        let commitment = EpochCommitment {
            index: epochs.len() as u64,
            entries,
            root,
        };
        epochs.push(commitment.clone());
        commitment
    }

    /// Roots of every sealed epoch, in seal order.
    pub fn epoch_roots(&self) -> Vec<Digest> {
        self.epochs.lock().iter().map(|e| e.root).collect()
    }

    /// Every sealed epoch commitment, in seal order.
    pub fn epochs(&self) -> Vec<EpochCommitment> {
        self.epochs.lock().clone()
    }

    /// Registers a model commitment (Phase 0).
    pub fn register_model(&self, commitment: ModelCommitment) -> usize {
        self.charge("register_model", gas::G_TX + 3 * gas::G_SSTORE_NEW);
        let mut models = self.models.lock();
        models.push(commitment);
        models.len() - 1
    }

    /// A registered model commitment.
    pub fn model(&self, idx: usize) -> Option<ModelCommitment> {
        self.models.lock().get(idx).cloned()
    }

    /// The §5.5 randomized-audit channel: deterministically decides (from
    /// the claim commitment and a public beacon) whether a pending claim is
    /// audited with probability `φ`. Audits and voluntary challenges are
    /// mutually exclusive per claim; audit costs are borne by user service
    /// fees rather than a challenger deposit.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown claim.
    pub fn audit_selected(&self, id: u64, beacon: u64) -> Result<bool> {
        let claim = self.claim(id)?;
        let mut h = tao_merkle::Sha256::new();
        h.update(&claim.commitment);
        h.update(&beacon.to_le_bytes());
        let digest = h.finalize();
        let draw =
            u64::from_le_bytes(digest[..8].try_into().expect("8 bytes")) as f64 / u64::MAX as f64;
        Ok(draw < self.econ.phi)
    }

    /// Opens a randomized audit against a pending claim. Unlike a
    /// voluntary challenge, no challenger deposit is posted — the audit is
    /// funded from service fees — but the proposer collateral freezes the
    /// same way.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not pending or the window
    /// closed.
    pub fn open_audit(&self, id: u64) -> Result<()> {
        let now = self.now();
        let seq = {
            let mut shard = self.claims.shard(id).lock();
            let claim = shard.get_mut(&id).ok_or(ProtocolError::UnknownClaim(id))?;
            if !matches!(claim.status, ClaimStatus::Pending) {
                return Err(ProtocolError::BadState(format!(
                    "claim #{id} is not pending"
                )));
            }
            if now > claim.deadline() {
                return Err(ProtocolError::WindowClosed {
                    claim: id,
                    now,
                    deadline: claim.deadline(),
                });
            }
            claim.status = ClaimStatus::Disputed {
                challenger: "audit-committee".to_string(),
            };
            claim.next_seq()
        };
        self.charge_claim(id, seq, "open_audit", gas::open_challenge(), Money::ZERO);
        Ok(())
    }

    /// Posts a claim commitment (Phase 1), escrowing the flat proposer
    /// deposit `D_p` and charging the flat commitment gas. The claim id is
    /// allocated only after the deposit clears, so a rejected submission
    /// leaves no gap in the id sequence.
    ///
    /// # Errors
    ///
    /// Returns an error when the proposer's balance is below `D_p`.
    pub fn submit_claim(&self, proposer: &str, commitment: Digest, meta: &ClaimMeta) -> Result<u64> {
        self.admit(
            proposer,
            commitment,
            meta,
            gas::commit_claim(),
            self.amounts.d_p,
        )
    }

    /// Posts a claim commitment priced by its static analysis: the gas
    /// charged is the report's quote (base commitment cost plus the
    /// FLOP/traffic surcharge) and the escrowed deposit is
    /// `max(D_p, deposit_bound)`, so a claim committing to more work posts
    /// collateral that scales with it. Inadmissible graphs — any
    /// `Deny`-severity lint finding — are rejected before any money moves.
    ///
    /// # Errors
    ///
    /// Returns an error when the report carries `Deny` findings or the
    /// proposer cannot post the quoted deposit.
    pub fn submit_claim_quoted(
        &self,
        proposer: &str,
        commitment: Digest,
        meta: &ClaimMeta,
        report: &tao_analysis::StaticReport,
    ) -> Result<u64> {
        if !report.is_admissible() {
            return Err(ProtocolError::BadState(format!(
                "claim graph fails static analysis: {} deny finding(s)",
                report.deny_count()
            )));
        }
        let deposit = self.amounts.d_p.max(report.deposit_bound);
        self.admit(proposer, commitment, meta, report.gas_quote, deposit)
    }

    fn admit(
        &self,
        proposer: &str,
        commitment: Digest,
        meta: &ClaimMeta,
        gas_cost: u64,
        deposit: Money,
    ) -> Result<u64> {
        self.ledger.reserve(proposer, deposit)?;
        let id = self.claims.allocate();
        self.claims.shard(id).lock().insert(
            id,
            Claim {
                id,
                proposer: proposer.to_string(),
                commitment,
                posted_at: self.now(),
                window: meta.challenge_window,
                deposit,
                status: ClaimStatus::Pending,
                events: 1,
            },
        );
        // seq 0 belongs to the commit by construction; logged after the
        // shard lock is released (gas is a leaf lock).
        self.charge_claim(id, 0, "commit_claim", gas_cost, deposit);
        Ok(id)
    }

    /// A snapshot of claim `id`.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id.
    pub fn claim(&self, id: u64) -> Result<Claim> {
        self.claims.get(id)
    }

    /// Advances the logical clock, finalizing pending claims whose windows
    /// elapsed. Returns the finalized ids in ascending order. Safe to call
    /// concurrently: the tick is bumped atomically and each claim's
    /// Pending → Finalized transition happens under its shard lock, so a
    /// claim finalizes (and its deposit releases, its reward pays) exactly
    /// once no matter how many advances race. Each finalization logs a
    /// zero-gas `finalize` event carrying the reward amount.
    pub fn advance(&self, ticks: u64) -> Vec<u64> {
        let now = self.tick.fetch_add(ticks, Ordering::Relaxed) + ticks;
        let mut finalized = Vec::new();
        for shard in &self.claims.shards {
            let mut shard = shard.lock();
            for claim in shard.values_mut() {
                if matches!(claim.status, ClaimStatus::Pending) && now > claim.deadline() {
                    claim.status = ClaimStatus::Finalized;
                    let seq = claim.next_seq();
                    finalized.push((claim.id, claim.proposer.clone(), claim.deposit, seq));
                }
            }
        }
        finalized.sort_unstable_by_key(|(id, ..)| *id);
        for (id, proposer, deposit, seq) in &finalized {
            self.ledger.release(proposer, *deposit);
            // Pay the task reward on finality.
            self.ledger.mint(proposer, self.amounts.r_p);
            self.charge_claim(*id, *seq, "finalize", 0, self.amounts.r_p);
        }
        finalized.into_iter().map(|(id, ..)| id).collect()
    }

    /// Opens a challenge against a pending claim, escrowing `D_ch` and
    /// freezing the proposer's collateral. The status check and the
    /// deposit reservation happen under the claim's shard lock, so two
    /// challengers racing for one claim cannot both win.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not pending, the window closed,
    /// or the challenger cannot post the deposit.
    pub fn open_challenge(&self, id: u64, challenger: &str) -> Result<()> {
        let now = self.now();
        let seq = {
            let mut shard = self.claims.shard(id).lock();
            let claim = shard.get_mut(&id).ok_or(ProtocolError::UnknownClaim(id))?;
            if !matches!(claim.status, ClaimStatus::Pending) {
                return Err(ProtocolError::BadState(format!(
                    "claim #{id} is not pending"
                )));
            }
            if now > claim.deadline() {
                return Err(ProtocolError::WindowClosed {
                    claim: id,
                    now,
                    deadline: claim.deadline(),
                });
            }
            // Claim-shard → account-shard is the sanctioned lock order.
            self.ledger.reserve(challenger, self.amounts.d_ch)?;
            claim.status = ClaimStatus::Disputed {
                challenger: challenger.to_string(),
            };
            claim.next_seq()
        };
        self.charge_claim(
            id,
            seq,
            "open_challenge",
            gas::open_challenge(),
            self.amounts.d_ch,
        );
        Ok(())
    }

    /// Transfers challenger-of-record on a disputed claim to `adopter`:
    /// the adopter escrows a fresh `D_ch` and the deserting challenger's
    /// deposit is **burned**. This is the watchtower's answer to the
    /// collusion exit move — a colluding challenger that opens a dispute
    /// and then abandons it cannot hand the proposer a free win (the
    /// dispute continues under the adopter) and pays for the desertion.
    /// The status check, the adopter's reservation and the record swap all
    /// happen under the claim's shard lock, so two adopters racing for one
    /// abandoned dispute cannot both win.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not disputed, when `adopter`
    /// already is the challenger of record, or when the adopter cannot
    /// post the deposit.
    pub fn adopt_challenge(&self, id: u64, adopter: &str) -> Result<String> {
        let (deserter, seq) = {
            let mut shard = self.claims.shard(id).lock();
            let claim = shard.get_mut(&id).ok_or(ProtocolError::UnknownClaim(id))?;
            let ClaimStatus::Disputed { challenger } = &claim.status else {
                return Err(ProtocolError::BadState(format!(
                    "claim #{id} is not disputed"
                )));
            };
            if challenger == adopter {
                return Err(ProtocolError::BadState(format!(
                    "claim #{id}: {adopter} already challenges it"
                )));
            }
            let deserter = challenger.clone();
            // Claim-shard → account-shard is the sanctioned lock order.
            self.ledger.reserve(adopter, self.amounts.d_ch)?;
            claim.status = ClaimStatus::Disputed {
                challenger: adopter.to_string(),
            };
            (deserter, claim.next_seq())
        };
        // Burn (not refund) the deserter's deposit: abandoning an open
        // dispute is the collusion exit move and must not be free.
        self.ledger.burn_escrow(&deserter, self.amounts.d_ch);
        self.charge_claim(
            id,
            seq,
            "adopt_challenge",
            gas::open_challenge(),
            self.amounts.d_ch,
        );
        Ok(deserter)
    }

    /// Settles a disputed claim: the loser is slashed by `S_slash` from
    /// escrow, the winner's deposit is released, and the winner (plus the
    /// committee, when used) is rewarded per §5.5. The Disputed → Settled
    /// transition claims exclusive settlement rights under the claim's
    /// shard lock before any money moves, so concurrent settles of
    /// distinct claims — even on overlapping accounts — interleave freely.
    ///
    /// Every amount is a pure function of the claim: the slash is
    /// `min(S_slash, deposit)` and splits per the documented rounding
    /// policy ([`tao_money::slash_split`]), so parallel settlement is
    /// bit-exact against the serial reference regardless of
    /// interleaving.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not disputed.
    pub fn settle(&self, id: u64, winner: Party, committee_size: usize) -> Result<()> {
        let (proposer, challenger, deposit, seq) = {
            let mut shard = self.claims.shard(id).lock();
            let claim = shard.get_mut(&id).ok_or(ProtocolError::UnknownClaim(id))?;
            let ClaimStatus::Disputed { challenger } = &claim.status else {
                return Err(ProtocolError::BadState(format!(
                    "claim #{id} is not disputed"
                )));
            };
            let tuple = (claim.proposer.clone(), challenger.clone(), claim.deposit);
            claim.status = ClaimStatus::Settled { winner };
            (tuple.0, tuple.1, tuple.2, claim.next_seq())
        };
        let moved = match winner {
            Party::Challenger => {
                // Slash the proposer by min(S_slash, deposit) — determined
                // by the claim alone, never by live aggregate escrow. The
                // challenger and committee shares are re-minted from the
                // burn per the split policy; the remainder stays destroyed.
                let slashed = self.slash.min(deposit);
                let burned = self.ledger.burn_escrow(&proposer, slashed);
                debug_assert_eq!(burned, slashed, "claim deposit must back its slash");
                self.ledger.release(&proposer, deposit - slashed);
                let split = slash_split(slashed, self.amounts.alpha_ch, self.amounts.alpha_cm);
                self.ledger.mint(&challenger, split.reward);
                if committee_size > 0 {
                    self.ledger.mint("committee-pool", split.committee);
                }
                self.ledger.release(&challenger, self.amounts.d_ch);
                slashed
            }
            Party::Proposer => {
                // Spam deterrence: the challenger forfeits its deposit to
                // the proposer — an atomic ordered two-account transfer.
                // (Audit challengers posted no deposit; nothing moves.)
                let forfeited =
                    self.ledger
                        .escrow_transfer(&challenger, &proposer, self.amounts.d_ch);
                self.ledger.release(&proposer, deposit);
                self.ledger.mint(&proposer, self.amounts.r_p);
                if committee_size > 0 {
                    self.ledger.mint(
                        "committee-pool",
                        self.amounts.committee_fee * committee_size as u64,
                    );
                }
                forfeited
            }
        };
        self.charge_claim(id, seq, "settlement", gas::settlement(), moved);
        Ok(())
    }

    /// Rules a timeout violation against `party` in a dispute: the absent
    /// party immediately loses the round and the dispute.
    ///
    /// # Errors
    ///
    /// Returns an error when the claim is not disputed.
    pub fn timeout(&self, id: u64, absent: Party) -> Result<()> {
        let winner = match absent {
            Party::Proposer => Party::Challenger,
            Party::Challenger => Party::Proposer,
        };
        self.settle(id, winner, 0)
    }
}

/// Validates the slash against the feasible region and derives the exact
/// amounts; shared by both coordinators.
fn check_economics(econ: &EconParams, slash: f64) -> Result<(EconAmounts, Money)> {
    if !econ.incentive_compatible(slash) {
        return Err(ProtocolError::BadState(format!(
            "slash {slash} outside feasible region {:?}",
            econ.feasible_slash_region()
        )));
    }
    let amounts = econ.amounts().ok_or_else(|| {
        ProtocolError::BadState("economic parameters yield no exact amounts".to_string())
    })?;
    let slash = Money::from_f64(slash).ok_or_else(|| {
        ProtocolError::BadState(format!("slash {slash} is not representable"))
    })?;
    Ok((amounts, slash))
}

pub mod reference {
    //! The single-mutex serial coordinator, kept in-tree permanently as
    //! the differential oracle for the sharded [`Coordinator`](super::Coordinator) — the same
    //! idiom as the scalar kernel oracles in `tao-tensor`. Its semantics
    //! are exactly the pre-sharding (PR 2) arbiter: one struct, `&mut
    //! self` methods, claims in a `Vec`, balances in two maps. The
    //! equivalence proptest drives identical batches through both and
    //! asserts identical statuses, winners, balances, canonical gas logs
    //! and epoch roots — all with `==`, no tolerance.

    use std::collections::HashMap;

    use tao_merkle::{ClaimMeta, Digest};
    use tao_money::{slash_split, Money};

    use super::{check_economics, Claim, ClaimStatus, Party};
    use crate::econ::{EconAmounts, EconParams};
    use crate::epoch::{epoch_root, sort_canonical, EpochCommitment};
    use crate::error::ProtocolError;
    use crate::gas::{self, GasMeter};
    use crate::Result;

    /// The pre-sharding coordinator: fully serial, one logical lock.
    #[derive(Debug, Clone)]
    pub struct SerialCoordinator {
        tick: u64,
        accounts: HashMap<String, Money>,
        escrow: HashMap<String, Money>,
        claims: Vec<Claim>,
        econ: EconParams,
        amounts: EconAmounts,
        slash: Money,
        /// Gas ledger for every coordinator interaction.
        pub gas: GasMeter,
        epochs: Vec<EpochCommitment>,
    }

    impl SerialCoordinator {
        /// Creates a serial coordinator with the given economics.
        ///
        /// # Errors
        ///
        /// Returns an error when `slash` is outside the feasible region.
        pub fn new(econ: EconParams, slash: f64) -> Result<Self> {
            let (amounts, slash) = check_economics(&econ, slash)?;
            Ok(SerialCoordinator {
                tick: 0,
                accounts: HashMap::new(),
                escrow: HashMap::new(),
                claims: Vec::new(),
                econ,
                amounts,
                slash,
                gas: GasMeter::new(),
                epochs: Vec::new(),
            })
        }

        /// Current logical tick.
        pub fn now(&self) -> u64 {
            self.tick
        }

        /// The exact protocol amounts.
        pub fn amounts(&self) -> EconAmounts {
            self.amounts
        }

        /// The f64 economic parameters.
        pub fn econ_params(&self) -> &EconParams {
            &self.econ
        }

        /// Credits an account.
        pub fn fund(&mut self, account: &str, amount: impl Into<Money>) {
            *self
                .accounts
                .entry(account.to_string())
                .or_insert(Money::ZERO) += amount.into();
        }

        /// Free balance of an account.
        pub fn balance(&self, account: &str) -> Money {
            self.accounts.get(account).copied().unwrap_or(Money::ZERO)
        }

        /// Escrowed balance of an account.
        pub fn escrowed(&self, account: &str) -> Money {
            self.escrow.get(account).copied().unwrap_or(Money::ZERO)
        }

        /// Serial mirror of [`super::Coordinator::seal_epoch`].
        pub fn seal_epoch(&mut self) -> EpochCommitment {
            let mut entries = std::mem::take(&mut self.gas.log);
            sort_canonical(&mut entries);
            let root = epoch_root(&entries);
            let commitment = EpochCommitment {
                index: self.epochs.len() as u64,
                entries,
                root,
            };
            self.epochs.push(commitment.clone());
            commitment
        }

        /// Roots of every sealed epoch, in seal order.
        pub fn epoch_roots(&self) -> Vec<Digest> {
            self.epochs.iter().map(|e| e.root).collect()
        }

        /// Posts a claim, escrowing the flat proposer deposit.
        ///
        /// # Errors
        ///
        /// Returns an error when the proposer's balance is below `D_p`.
        pub fn submit_claim(
            &mut self,
            proposer: &str,
            commitment: Digest,
            meta: &ClaimMeta,
        ) -> Result<u64> {
            let d_p = self.amounts.d_p;
            self.admit(proposer, commitment, meta, gas::commit_claim(), d_p)
        }

        /// Serial mirror of [`super::Coordinator::submit_claim_quoted`]:
        /// charges the static report's gas quote and escrows
        /// `max(D_p, deposit_bound)`, rejecting inadmissible graphs.
        ///
        /// # Errors
        ///
        /// Returns an error when the report carries `Deny` findings or the
        /// proposer cannot post the quoted deposit.
        pub fn submit_claim_quoted(
            &mut self,
            proposer: &str,
            commitment: Digest,
            meta: &ClaimMeta,
            report: &tao_analysis::StaticReport,
        ) -> Result<u64> {
            if !report.is_admissible() {
                return Err(ProtocolError::BadState(format!(
                    "claim graph fails static analysis: {} deny finding(s)",
                    report.deny_count()
                )));
            }
            let deposit = self.amounts.d_p.max(report.deposit_bound);
            self.admit(proposer, commitment, meta, report.gas_quote, deposit)
        }

        fn admit(
            &mut self,
            proposer: &str,
            commitment: Digest,
            meta: &ClaimMeta,
            gas_cost: u64,
            deposit: Money,
        ) -> Result<u64> {
            self.lock(proposer, deposit)?;
            let id = self.claims.len() as u64;
            self.claims.push(Claim {
                id,
                proposer: proposer.to_string(),
                commitment,
                posted_at: self.tick,
                window: meta.challenge_window,
                deposit,
                status: ClaimStatus::Pending,
                events: 1,
            });
            self.gas
                .charge_claim(id, 0, "commit_claim", gas_cost, deposit);
            Ok(id)
        }

        /// A claim by id.
        ///
        /// # Errors
        ///
        /// Returns an error for an unknown id.
        pub fn claim(&self, id: u64) -> Result<&Claim> {
            self.claims
                .get(id as usize)
                .ok_or(ProtocolError::UnknownClaim(id))
        }

        /// Advances the clock, finalizing elapsed pending claims.
        pub fn advance(&mut self, ticks: u64) -> Vec<u64> {
            self.tick += ticks;
            let now = self.tick;
            let mut finalized = Vec::new();
            let mut releases = Vec::new();
            for claim in &mut self.claims {
                if matches!(claim.status, ClaimStatus::Pending) && now > claim.deadline() {
                    claim.status = ClaimStatus::Finalized;
                    let seq = claim.events;
                    claim.events += 1;
                    releases.push((claim.proposer.clone(), claim.id, claim.deposit, seq));
                }
            }
            let r_p = self.amounts.r_p;
            for (proposer, id, deposit, seq) in releases {
                self.release(&proposer, deposit);
                self.fund(&proposer, r_p);
                self.gas.charge_claim(id, seq, "finalize", 0, r_p);
                finalized.push(id);
            }
            finalized
        }

        /// Opens a challenge, escrowing `D_ch`.
        ///
        /// # Errors
        ///
        /// Returns an error when the claim is not pending, the window
        /// closed, or the challenger cannot post the deposit.
        pub fn open_challenge(&mut self, id: u64, challenger: &str) -> Result<()> {
            let (deadline, status_ok) = {
                let claim = self.claim(id)?;
                (
                    claim.deadline(),
                    matches!(claim.status, ClaimStatus::Pending),
                )
            };
            if !status_ok {
                return Err(ProtocolError::BadState(format!(
                    "claim #{id} is not pending"
                )));
            }
            if self.tick > deadline {
                return Err(ProtocolError::WindowClosed {
                    claim: id,
                    now: self.tick,
                    deadline,
                });
            }
            let d_ch = self.amounts.d_ch;
            self.lock(challenger, d_ch)?;
            let claim = &mut self.claims[id as usize];
            claim.status = ClaimStatus::Disputed {
                challenger: challenger.to_string(),
            };
            let seq = claim.events;
            claim.events += 1;
            self.gas
                .charge_claim(id, seq, "open_challenge", gas::open_challenge(), d_ch);
            Ok(())
        }

        /// Serial mirror of [`super::Coordinator::adopt_challenge`]: swaps
        /// challenger-of-record, escrows the adopter's `D_ch` and burns
        /// the deserter's deposit.
        ///
        /// # Errors
        ///
        /// Returns an error when the claim is not disputed, the adopter is
        /// already the challenger, or the adopter cannot post the deposit.
        pub fn adopt_challenge(&mut self, id: u64, adopter: &str) -> Result<String> {
            let deserter = {
                let claim = self.claim(id)?;
                let ClaimStatus::Disputed { challenger } = &claim.status else {
                    return Err(ProtocolError::BadState(format!(
                        "claim #{id} is not disputed"
                    )));
                };
                if challenger == adopter {
                    return Err(ProtocolError::BadState(format!(
                        "claim #{id}: {adopter} already challenges it"
                    )));
                }
                challenger.clone()
            };
            let d_ch = self.amounts.d_ch;
            self.lock(adopter, d_ch)?;
            self.take_escrow(&deserter, d_ch);
            let claim = &mut self.claims[id as usize];
            claim.status = ClaimStatus::Disputed {
                challenger: adopter.to_string(),
            };
            let seq = claim.events;
            claim.events += 1;
            self.gas
                .charge_claim(id, seq, "adopt_challenge", gas::open_challenge(), d_ch);
            Ok(deserter)
        }

        /// Settles a disputed claim with the same pure-function-of-claim
        /// amounts as the sharded coordinator.
        ///
        /// # Errors
        ///
        /// Returns an error when the claim is not disputed.
        pub fn settle(&mut self, id: u64, winner: Party, committee_size: usize) -> Result<()> {
            let (proposer, challenger, deposit) = {
                let claim = self.claim(id)?;
                let ClaimStatus::Disputed { challenger } = &claim.status else {
                    return Err(ProtocolError::BadState(format!(
                        "claim #{id} is not disputed"
                    )));
                };
                (claim.proposer.clone(), challenger.clone(), claim.deposit)
            };
            let moved = match winner {
                Party::Challenger => {
                    let slashed = self.slash.min(deposit);
                    self.take_escrow(&proposer, slashed);
                    self.release(&proposer, deposit - slashed);
                    let split =
                        slash_split(slashed, self.amounts.alpha_ch, self.amounts.alpha_cm);
                    self.fund(&challenger, split.reward);
                    if committee_size > 0 {
                        self.fund("committee-pool", split.committee);
                    }
                    let d_ch = self.amounts.d_ch;
                    self.release(&challenger, d_ch);
                    slashed
                }
                Party::Proposer => {
                    let forfeited = self.amounts.d_ch.min(self.escrowed(&challenger));
                    self.take_escrow(&challenger, forfeited);
                    self.fund(&proposer, forfeited);
                    self.release(&proposer, deposit);
                    let r_p = self.amounts.r_p;
                    self.fund(&proposer, r_p);
                    if committee_size > 0 {
                        self.fund(
                            "committee-pool",
                            self.amounts.committee_fee * committee_size as u64,
                        );
                    }
                    forfeited
                }
            };
            let claim = &mut self.claims[id as usize];
            claim.status = ClaimStatus::Settled { winner };
            let seq = claim.events;
            claim.events += 1;
            self.gas
                .charge_claim(id, seq, "settlement", gas::settlement(), moved);
            Ok(())
        }

        fn lock(&mut self, account: &str, amount: Money) -> Result<()> {
            let available = self.balance(account);
            if available < amount {
                return Err(ProtocolError::InsufficientFunds {
                    account: account.to_string(),
                    needed: amount,
                    available,
                });
            }
            *self.accounts.get_mut(account).expect("checked above") -= amount;
            *self
                .escrow
                .entry(account.to_string())
                .or_insert(Money::ZERO) += amount;
            Ok(())
        }

        fn release(&mut self, account: &str, amount: Money) {
            let held = self.escrowed(account);
            let amount = amount.min(held);
            if amount > Money::ZERO {
                *self.escrow.get_mut(account).expect("held > 0") -= amount;
                self.fund(account, amount);
            }
        }

        fn take_escrow(&mut self, account: &str, amount: Money) {
            let held = self.escrowed(account);
            let amount = amount.min(held);
            if amount > Money::ZERO {
                *self.escrow.get_mut(account).expect("held > 0") -= amount;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::canonical_log;

    fn m(credits: i64) -> Money {
        Money::from_credits(credits)
    }

    fn commitment() -> Digest {
        tao_merkle::sha256(b"claim")
    }

    fn meta() -> ClaimMeta {
        ClaimMeta {
            device: "sim-a100".into(),
            kernel: "pairwise".into(),
            dtype: "f32".into(),
            challenge_window: 10,
        }
    }

    fn coordinator() -> Coordinator {
        let econ = EconParams::default_market();
        let (lo, hi) = econ.feasible_slash_region().unwrap();
        Coordinator::new(econ, (lo + hi) / 2.0).unwrap()
    }

    #[test]
    fn happy_path_finalizes_and_pays() {
        let c = coordinator();
        c.fund("prop", 1_000);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        assert!(matches!(c.claim(id).unwrap().status, ClaimStatus::Pending));
        assert!(c.advance(5).is_empty(), "window still open");
        let finalized = c.advance(6);
        assert_eq!(finalized, vec![id]);
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Finalized
        ));
        // Deposit returned plus reward — exactly.
        assert_eq!(c.balance("prop"), m(1_000) + c.amounts().r_p);
    }

    #[test]
    fn challenge_freezes_and_challenger_win_slashes() {
        let c = coordinator();
        c.fund("prop", 1_000);
        c.fund("chal", 100);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_challenge(id, "chal").unwrap();
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Disputed { .. }
        ));
        // Cannot finalize while disputed.
        assert!(c.advance(100).is_empty());
        c.settle(id, Party::Challenger, 5).unwrap();
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ));
        // Challenger got deposit back plus its slash share.
        assert!(c.balance("chal") > m(100));
        // Proposer lost the slash.
        assert!(c.balance("prop") < m(1_000));
        // Committee pool funded.
        assert!(c.balance("committee-pool") > Money::ZERO);
        // The slash split conserved value exactly.
        assert_eq!(c.ledger().total_value(), c.ledger().injected());
    }

    #[test]
    fn proposer_win_takes_challenger_deposit() {
        let c = coordinator();
        c.fund("prop", 1_000);
        c.fund("chal", 100);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_challenge(id, "chal").unwrap();
        c.settle(id, Party::Proposer, 0).unwrap();
        assert!(c.balance("chal") < m(100), "spammer must lose its deposit");
        assert!(
            c.balance("prop") > m(1_000),
            "proposer made whole plus reward"
        );
    }

    #[test]
    fn adoption_burns_deserter_and_continues_dispute() {
        let c = coordinator();
        c.fund("prop", 1_000);
        c.fund("colluder", 100);
        c.fund("watchtower", 100);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_challenge(id, "colluder").unwrap();
        let deserter = c.adopt_challenge(id, "watchtower").unwrap();
        assert_eq!(deserter, "colluder");
        // The deserter's deposit is burned: gone from escrow, not refunded.
        assert_eq!(c.balance("colluder"), m(100) - c.amounts().d_ch);
        assert_eq!(c.escrowed("colluder"), Money::ZERO);
        // The adopter is challenger of record with its own deposit down.
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Disputed { ref challenger } if challenger == "watchtower"
        ));
        assert_eq!(c.escrowed("watchtower"), c.amounts().d_ch);
        // The dispute settles normally for the adopter, and the burn kept
        // the ledger conserved — exactly.
        c.settle(id, Party::Challenger, 3).unwrap();
        assert!(c.balance("watchtower") > m(100));
        assert_eq!(c.ledger().total_value(), c.ledger().injected());
    }

    #[test]
    fn adoption_guards_status_and_identity() {
        let c = coordinator();
        c.fund("prop", 1_000);
        c.fund("chal", 100);
        c.fund("poor", 1);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        // Not disputed yet.
        assert!(c.adopt_challenge(id, "watchtower").is_err());
        c.open_challenge(id, "chal").unwrap();
        // Self-adoption is meaningless.
        assert!(c.adopt_challenge(id, "chal").is_err());
        // Adopter must post the deposit; a failed adoption changes nothing.
        assert!(matches!(
            c.adopt_challenge(id, "poor"),
            Err(ProtocolError::InsufficientFunds { .. })
        ));
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Disputed { ref challenger } if challenger == "chal"
        ));
        assert_eq!(c.escrowed("chal"), c.amounts().d_ch);
    }

    #[test]
    fn serial_adoption_matches_sharded() {
        let econ = EconParams::default_market();
        let (lo, hi) = econ.feasible_slash_region().unwrap();
        let slash = (lo + hi) / 2.0;
        let mut s = reference::SerialCoordinator::new(econ, slash).unwrap();
        let c = coordinator();
        for acct in ["prop", "colluder", "watchtower"] {
            s.fund(acct, 1_000);
            c.fund(acct, 1_000);
        }
        let sid = s.submit_claim("prop", commitment(), &meta()).unwrap();
        let cid = c.submit_claim("prop", commitment(), &meta()).unwrap();
        s.open_challenge(sid, "colluder").unwrap();
        c.open_challenge(cid, "colluder").unwrap();
        assert_eq!(
            s.adopt_challenge(sid, "watchtower").unwrap(),
            c.adopt_challenge(cid, "watchtower").unwrap()
        );
        s.settle(sid, Party::Challenger, 3).unwrap();
        c.settle(cid, Party::Challenger, 3).unwrap();
        for acct in ["prop", "colluder", "watchtower", "committee-pool"] {
            assert_eq!(
                s.balance(acct),
                c.balance(acct),
                "{acct}: serial vs sharded"
            );
        }
        // Canonical gas logs are byte-identical too.
        assert_eq!(canonical_log(&s.gas), canonical_log(&c.gas()));
    }

    #[test]
    fn late_challenge_rejected() {
        let c = coordinator();
        c.fund("prop", 1_000);
        c.fund("chal", 100);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.advance(11);
        assert!(matches!(
            c.open_challenge(id, "chal"),
            Err(ProtocolError::BadState(_)) | Err(ProtocolError::WindowClosed { .. })
        ));
    }

    #[test]
    fn insufficient_deposit_rejected() {
        let c = coordinator();
        c.fund("poor", 1);
        let err = c.submit_claim("poor", commitment(), &meta()).unwrap_err();
        match err {
            ProtocolError::InsufficientFunds {
                account,
                needed,
                available,
            } => {
                assert_eq!(account, "poor");
                assert_eq!(needed, c.amounts().d_p);
                assert_eq!(available, m(1));
            }
            other => panic!("expected InsufficientFunds, got {other:?}"),
        }
        // A rejected submission allocates no claim id.
        assert!(c.claims.is_empty());
    }

    #[test]
    fn timeout_loses_dispute() {
        let c = coordinator();
        c.fund("prop", 1_000);
        c.fund("chal", 100);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_challenge(id, "chal").unwrap();
        c.timeout(id, Party::Proposer).unwrap();
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ));
    }

    #[test]
    fn audit_selection_is_deterministic_and_near_phi() {
        let c = coordinator();
        c.fund("prop", 100_000);
        let mut selected = 0;
        let n = 400;
        for i in 0..n {
            let id = c
                .submit_claim(
                    "prop",
                    tao_merkle::sha256(format!("c{i}").as_bytes()),
                    &meta(),
                )
                .unwrap();
            assert_eq!(
                c.audit_selected(id, 7).unwrap(),
                c.audit_selected(id, 7).unwrap(),
                "deterministic per (claim, beacon)"
            );
            if c.audit_selected(id, 7).unwrap() {
                selected += 1;
            }
            c.advance(100);
        }
        // φ = 0.05: expect roughly 5% selected (generous band).
        let rate = selected as f64 / n as f64;
        assert!((0.01..0.12).contains(&rate), "audit rate {rate}");
    }

    #[test]
    fn audit_freezes_without_challenger_deposit() {
        let c = coordinator();
        c.fund("prop", 1_000);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_audit(id).unwrap();
        assert!(matches!(
            c.claim(id).unwrap().status,
            ClaimStatus::Disputed { .. }
        ));
        // A ruled-clean audit pays the committee from fees, not a deposit.
        c.settle(id, Party::Proposer, 5).unwrap();
        assert!(c.balance("committee-pool") > Money::ZERO);
        // Audits cannot reopen a settled claim.
        assert!(c.open_audit(id).is_err());
    }

    #[test]
    fn infeasible_slash_rejected_at_construction() {
        let econ = EconParams {
            phi: 0.0,
            phi_ch: 0.0,
            ..EconParams::default_market()
        };
        assert!(Coordinator::new(econ, 100.0).is_err());
    }

    #[test]
    fn shard_counts_are_runtime_configurable_and_round_to_powers_of_two() {
        let econ = EconParams::default_market();
        let (lo, hi) = econ.feasible_slash_region().unwrap();
        let slash = (lo + hi) / 2.0;
        assert_eq!(coordinator().shard_counts(), (16, 16), "defaults");
        let c = Coordinator::with_shards(econ, slash, 3, 5).unwrap();
        assert_eq!(c.shard_counts(), (4, 8), "rounded up to powers of two");
        let serial = Coordinator::with_shards(econ, slash, 0, 1).unwrap();
        assert_eq!(serial.shard_counts(), (1, 1), "minimum one shard");
        // The 1-shard layout still runs the full lifecycle.
        serial.fund("prop", 1_000);
        serial.fund("chal", 100);
        let id = serial.submit_claim("prop", commitment(), &meta()).unwrap();
        serial.open_challenge(id, "chal").unwrap();
        serial.settle(id, Party::Challenger, 3).unwrap();
        assert!(matches!(
            serial.claim(id).unwrap().status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ));
        let big = Coordinator::with_shards(econ, slash, 64, 64).unwrap();
        assert_eq!(big.shard_counts(), (64, 64));
    }

    #[test]
    fn gas_ledger_accumulates() {
        let c = coordinator();
        c.fund("prop", 1_000);
        let before = c.gas().total;
        let _ = c.submit_claim("prop", commitment(), &meta()).unwrap();
        assert!(c.gas().total > before);
    }

    #[test]
    fn seal_epoch_drains_log_and_chains_roots() {
        let c = coordinator();
        c.fund("prop", 1_000);
        c.fund("chal", 100);
        let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
        c.open_challenge(id, "chal").unwrap();
        c.settle(id, Party::Challenger, 3).unwrap();
        let total_before = c.gas().total;
        let epoch = c.seal_epoch();
        assert_eq!(epoch.index, 0);
        assert_eq!(epoch.entries.len(), 3, "commit, challenge, settlement");
        assert_ne!(epoch.root, Digest::default());
        // The meter drained into the epoch but kept its running total.
        assert!(c.gas().log.is_empty());
        assert_eq!(c.gas().total, total_before);
        // A second (empty) epoch gets the empty root and the next index.
        let empty = c.seal_epoch();
        assert_eq!(empty.index, 1);
        assert_eq!(empty.root, Digest::default());
        assert_eq!(c.epoch_roots(), vec![epoch.root, empty.root]);
    }

    #[test]
    fn settlement_amounts_are_pure_functions_of_the_claim() {
        // Two coordinators settle the same claim with different unrelated
        // activity in flight; the settled balances must be identical.
        let run = |extra_claims: u64| {
            let c = coordinator();
            c.fund("prop", 100_000);
            c.fund("chal", 10_000);
            let id = c.submit_claim("prop", commitment(), &meta()).unwrap();
            c.open_challenge(id, "chal").unwrap();
            for i in 0..extra_claims {
                let extra = c
                    .submit_claim("prop", tao_merkle::sha256(&i.to_le_bytes()), &meta())
                    .unwrap();
                c.open_challenge(extra, "chal").unwrap();
            }
            c.settle(id, Party::Challenger, 3).unwrap();
            (c.balance("chal"), c.balance("committee-pool"))
        };
        // Proposer aggregate escrow differs (1 vs 9 deposits), but the
        // slash depends only on the settled claim's deposit.
        let (chal_a, pool_a) = run(0);
        let (chal_b, pool_b) = run(8);
        assert_eq!(pool_a, pool_b);
        // chal's own balance differs by the extra deposits it escrowed;
        // normalize by adding them back.
        let d_ch = coordinator().amounts().d_ch;
        assert_eq!(chal_a, chal_b + d_ch * 8);
    }

    fn report_for_tiny_graph() -> tao_analysis::StaticReport {
        let mut b = tao_graph::GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", tao_tensor::Tensor::<f32>::eye(8));
        let y = b.op("y", tao_graph::OpKind::MatMul, &[x, w]);
        let s = b.op("s", tao_graph::OpKind::Softmax, &[y]);
        let g = b.finish(vec![s]).unwrap();
        tao_analysis::analyze(&g, &[vec![4, 8]])
    }

    #[test]
    fn quoted_submission_charges_the_static_quote_and_scales_the_deposit() {
        let c = coordinator();
        c.fund("prop", 1_000);
        let report = report_for_tiny_graph();
        assert!(report.is_admissible());
        let id = c
            .submit_claim_quoted("prop", commitment(), &meta(), &report)
            .unwrap();
        // Gas charged is exactly the quote, which rides on the flat base.
        assert_eq!(c.gas().total, report.gas_quote);
        assert!(report.gas_quote >= gas::commit_claim());
        // The tiny model's FLOP bound is far below D_p: flat deposit.
        let claim = c.claim(id).unwrap();
        assert_eq!(claim.deposit, m(500));
        assert_eq!(c.escrowed("prop"), claim.deposit);
        // Finalization releases the per-claim deposit exactly.
        c.advance(11);
        assert_eq!(c.escrowed("prop"), Money::ZERO);
    }

    #[test]
    fn quoted_submission_rejects_inadmissible_graphs_before_money_moves() {
        let c = coordinator();
        c.fund("prop", 1_000);
        let mut report = report_for_tiny_graph();
        report.lint_findings.push(tao_analysis::LintFinding::deny(
            tao_analysis::LintRule::ShapeMismatch,
            None,
            "planted violation",
        ));
        assert!(matches!(
            c.submit_claim_quoted("prop", commitment(), &meta(), &report),
            Err(ProtocolError::BadState(_))
        ));
        assert_eq!(c.escrowed("prop"), Money::ZERO);
        assert_eq!(c.gas().total, 0);
        assert!(c.claims.is_empty());
    }

    #[test]
    fn serial_quoted_submission_matches_sharded() {
        let econ = EconParams::default_market();
        let (lo, hi) = econ.feasible_slash_region().unwrap();
        let slash = (lo + hi) / 2.0;
        let mut s = reference::SerialCoordinator::new(econ, slash).unwrap();
        let c = coordinator();
        let report = report_for_tiny_graph();
        s.fund("prop", 1_000);
        c.fund("prop", 1_000);
        let sid = s
            .submit_claim_quoted("prop", commitment(), &meta(), &report)
            .unwrap();
        let cid = c
            .submit_claim_quoted("prop", commitment(), &meta(), &report)
            .unwrap();
        assert_eq!(s.claim(sid).unwrap().deposit, c.claim(cid).unwrap().deposit);
        assert_eq!(s.gas.total, c.gas().total);
        s.advance(11);
        c.advance(11);
        assert_eq!(s.balance("prop"), c.balance("prop"));
    }

    #[test]
    fn concurrent_submissions_get_unique_dense_ids() {
        let c = std::sync::Arc::new(coordinator());
        c.fund("prop", 1_000_000);
        let mut ids: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let c = c.clone();
                    scope.spawn(move || {
                        (0..16)
                            .map(|i| {
                                c.submit_claim(
                                    "prop",
                                    tao_merkle::sha256(format!("{t}-{i}").as_bytes()),
                                    &meta(),
                                )
                                .unwrap()
                            })
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        assert_eq!(ids, (0..128).collect::<Vec<u64>>(), "dense unique ids");
        // Every deposit is escrowed exactly once — exactly.
        assert_eq!(c.escrowed("prop"), m(500) * 128);
        assert_eq!(c.ledger().total_value(), c.ledger().injected());
    }

    #[test]
    fn parallel_settles_on_distinct_claims_match_serial() {
        // Drive the same 32-claim batch through the sharded coordinator in
        // parallel and the serial reference oracle; balances, canonical
        // gas logs and epoch roots must be bit-identical.
        let econ = EconParams::default_market();
        let (lo, hi) = econ.feasible_slash_region().unwrap();
        let slash = (lo + hi) / 2.0;
        let serial = {
            let mut s = reference::SerialCoordinator::new(econ, slash).unwrap();
            s.fund("prop", 100_000);
            s.fund("chal", 10_000);
            for i in 0..32u64 {
                let id = s
                    .submit_claim("prop", tao_merkle::sha256(&i.to_le_bytes()), &meta())
                    .unwrap();
                s.open_challenge(id, "chal").unwrap();
                let winner = if i % 3 == 0 {
                    Party::Challenger
                } else {
                    Party::Proposer
                };
                s.settle(id, winner, 3).unwrap();
            }
            s
        };
        let c = std::sync::Arc::new(coordinator());
        c.fund("prop", 100_000);
        c.fund("chal", 10_000);
        let ids: Vec<u64> = (0..32u64)
            .map(|i| {
                let id = c
                    .submit_claim("prop", tao_merkle::sha256(&i.to_le_bytes()), &meta())
                    .unwrap();
                c.open_challenge(id, "chal").unwrap();
                id
            })
            .collect();
        std::thread::scope(|scope| {
            for chunk in ids.chunks(8) {
                let c = c.clone();
                let chunk = chunk.to_vec();
                scope.spawn(move || {
                    for id in chunk {
                        let winner = if id % 3 == 0 {
                            Party::Challenger
                        } else {
                            Party::Proposer
                        };
                        c.settle(id, winner, 3).unwrap();
                    }
                });
            }
        });
        for account in ["prop", "chal", "committee-pool"] {
            assert_eq!(
                serial.balance(account),
                c.balance(account),
                "{account}: serial vs sharded"
            );
        }
        assert_eq!(c.ledger().total_value(), c.ledger().injected());
        // The canonical log is identical even though the sharded meter
        // filled in settle-interleaving order, and so is the epoch root.
        assert_eq!(canonical_log(&serial.gas), canonical_log(&c.gas()));
        let mut s_mut = serial;
        assert_eq!(s_mut.seal_epoch().root, c.seal_epoch().root);
    }
}
