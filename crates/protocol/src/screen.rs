//! The challenger's Phase 2 trigger as a protocol primitive: re-execute a
//! claim on the challenger's device and compare the final-output error
//! percentiles against the committed thresholds (§2.2, Eq. 15).
//!
//! Screening is where the challenger pays its one unavoidable forward
//! pass; the resulting [`Screening`] carries the full execution trace so a
//! subsequent dispute can reuse it via
//! [`ChallengerView::with_screening`](crate::ChallengerView::with_screening)
//! instead of recomputing. [`screen_batch`] amortizes one committed
//! deployment across many claims, fanning the per-claim forward passes out
//! over scoped threads.

use tao_calib::{error_profile, ThresholdBundle, DEFAULT_EPS};
use tao_device::Device;
use tao_graph::{execute, execute_observed, Execution, Graph, NodeId};
use tao_merkle::{StreamingCommitter, TraceCommitment};
use tao_tensor::Tensor;

use crate::error::ProtocolError;
use crate::Result;

/// One claim to screen: the inputs the proposer claims to have served and
/// the output it posted.
#[derive(Debug, Clone, Copy)]
pub struct ClaimCheck<'a> {
    /// The claimed model inputs, in graph input order.
    pub inputs: &'a [Tensor<f32>],
    /// The proposer's posted output at the screened node.
    pub claimed_output: &'a Tensor<f32>,
}

/// The outcome of screening one claim, including the challenger's own
/// execution trace (reusable in a dispute at zero extra forward cost).
///
/// Flagged screenings additionally carry a [`TraceCommitment`] — subtree
/// digests over the trace — so the dispute that follows can clear
/// structural agreements by digest compare and never rehashes the
/// challenger's activations. Unflagged screenings skip the hashing (no
/// dispute will consume it).
#[derive(Debug, Clone)]
pub struct Screening {
    /// The Eq. 15 exceedance of the claimed output versus the challenger's
    /// re-execution (`> 1` means some percentile broke its threshold).
    pub exceedance: f64,
    /// True when the claim should be challenged.
    pub flagged: bool,
    /// The challenger's full execution trace of the claimed inputs.
    pub trace: Execution,
    /// Subtree digests over the trace, present when `flagged`.
    commitment: Option<TraceCommitment>,
}

impl Screening {
    /// The subtree digests over [`Screening::trace`] (present for flagged
    /// screenings).
    pub fn commitment(&self) -> Option<&TraceCommitment> {
        self.commitment.as_ref()
    }

    /// Re-evaluates this screening's claim under an *alternative* threshold
    /// bundle, reusing the already-computed trace (no forward pass). This
    /// is the calibration A/B hook: a campaign screens once against the
    /// committed bundle and can then ask what a variant estimator (e.g. the
    /// smoothed tail vs the raw max envelope) would have decided for the
    /// same claim.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::MissingThreshold`] when `bundle` has no
    /// entry for `output_node`, or a graph error if the trace lacks a value
    /// for the node.
    pub fn exceedance_under(
        &self,
        bundle: &ThresholdBundle,
        output_node: NodeId,
        claimed_output: &Tensor<f32>,
    ) -> Result<f64> {
        let prof = error_profile(claimed_output, self.trace.value(output_node)?, DEFAULT_EPS);
        bundle
            .exceedance(output_node, &prof)
            .ok_or(ProtocolError::MissingThreshold(output_node))
    }
}

/// Screens one claim: re-executes `claim.inputs` on `device` and compares
/// the claimed output against the committed threshold at `output_node`.
///
/// # Errors
///
/// Returns an error when re-execution fails or when `output_node` has no
/// committed threshold ([`ProtocolError::MissingThreshold`]) — a missing
/// threshold is a deployment bug, not fraud.
pub fn screen_claim(
    graph: &Graph,
    output_node: NodeId,
    thresholds: &ThresholdBundle,
    claim: ClaimCheck<'_>,
    device: &Device,
) -> Result<Screening> {
    let trace = execute(graph, claim.inputs, device.config(), None)?;
    let prof = error_profile(claim.claimed_output, trace.value(output_node)?, DEFAULT_EPS);
    let exceedance = thresholds
        .exceedance(output_node, &prof)
        .ok_or(ProtocolError::MissingThreshold(output_node))?;
    let flagged = exceedance > 1.0;
    // A flagged screening feeds a dispute; commit to the trace now (the
    // multi-way hashers make this cheap) so the descent never rehashes it.
    let commitment = flagged.then(|| TraceCommitment::build(&trace.values));
    Ok(Screening {
        exceedance,
        flagged,
        trace,
        commitment,
    })
}

/// [`screen_claim`] with the trace commitment streamed *through* the
/// forward pass: a [`StreamingCommitter`] observes every node value as the
/// executor produces it, so on multi-core hosts the hashing overlaps the
/// remaining compute instead of running as a post-hoc pass over the
/// finished trace (the `screen_throughput` flagged-path surcharge). The
/// commitment is always present — this is the path for a challenger that
/// intends to dispute (e.g. [`crate::ChallengerView::from_screening`]
/// after an adopted abandonment), where the digests are consumed whether
/// or not the exceedance flags.
///
/// Digests are bit-identical to [`TraceCommitment::build`] over the same
/// trace; the `commit_equiv` suite asserts the equivalence.
///
/// # Errors
///
/// Same error conditions as [`screen_claim`].
pub fn screen_claim_committed(
    graph: &Graph,
    output_node: NodeId,
    thresholds: &ThresholdBundle,
    claim: ClaimCheck<'_>,
    device: &Device,
) -> Result<Screening> {
    let mut committer = StreamingCommitter::new(graph.len());
    let trace = execute_observed(graph, claim.inputs, device.config(), None, &mut committer)?;
    let commitment = committer.finish();
    let prof = error_profile(claim.claimed_output, trace.value(output_node)?, DEFAULT_EPS);
    let exceedance = thresholds
        .exceedance(output_node, &prof)
        .ok_or(ProtocolError::MissingThreshold(output_node))?;
    Ok(Screening {
        exceedance,
        flagged: exceedance > 1.0,
        trace,
        commitment: Some(commitment),
    })
}

/// Screens many claims against one committed deployment, running the
/// per-claim forward passes on scoped threads ([`crate::parallel_map`]).
/// Results are returned in claim order.
///
/// # Errors
///
/// Returns the first (by claim index) error any screening produced.
pub fn screen_batch(
    graph: &Graph,
    output_node: NodeId,
    thresholds: &ThresholdBundle,
    claims: &[ClaimCheck<'_>],
    device: &Device,
) -> Result<Vec<Screening>> {
    // Forward passes are compute-bound and each may spawn kernel row-band
    // workers, so stay at the kernel-nesting cap rather than MAX_WORKERS.
    let threads = claims.len().min(crate::par::MAX_PAR_THREADS);
    crate::parallel_map(claims.to_vec(), threads, |claim| {
        screen_claim(graph, output_node, thresholds, claim, device)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_calib::{calibrate, DEFAULT_ALPHA};
    use tao_device::Fleet;
    use tao_graph::{GraphBuilder, OpKind};

    fn setup() -> (Graph, ThresholdBundle, NodeId) {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[16, 16], -0.4, 0.4, 3));
        let m = b.op("mm", OpKind::MatMul, &[x, w]);
        let a = b.op("act", OpKind::Gelu, &[m]);
        let sm = b.op("softmax", OpKind::Softmax, &[a]);
        let g = b.finish(vec![sm]).unwrap();
        let samples: Vec<Vec<Tensor<f32>>> = (0..8)
            .map(|i| vec![Tensor::<f32>::rand_uniform(&[2, 16], -1.0, 1.0, 40 + i)])
            .collect();
        let bundle = calibrate(&g, &samples, &Fleet::standard())
            .unwrap()
            .into_thresholds(DEFAULT_ALPHA);
        (g, bundle, sm)
    }

    #[test]
    fn batch_screening_flags_only_tampered_claims() {
        let (g, bundle, out) = setup();
        let proposer = Device::rtx4090_like();
        let challenger = Device::h100_like();
        let inputs: Vec<Vec<Tensor<f32>>> = (0..4)
            .map(|i| vec![Tensor::<f32>::rand_uniform(&[2, 16], -1.0, 1.0, 90 + i)])
            .collect();
        let mut outputs: Vec<Tensor<f32>> = inputs
            .iter()
            .map(|input| {
                execute(&g, input, proposer.config(), None)
                    .unwrap()
                    .value(out)
                    .unwrap()
                    .clone()
            })
            .collect();
        outputs[2] = outputs[2].add_scalar(0.05); // tamper one claim
        let claims: Vec<ClaimCheck<'_>> = inputs
            .iter()
            .zip(&outputs)
            .map(|(inputs, claimed_output)| ClaimCheck {
                inputs,
                claimed_output,
            })
            .collect();
        let screenings = screen_batch(&g, out, &bundle, &claims, &challenger).unwrap();
        assert_eq!(screenings.len(), 4);
        for (i, s) in screenings.iter().enumerate() {
            assert_eq!(s.flagged, i == 2, "claim {i}: exceedance {}", s.exceedance);
            // The trace is complete and reusable in a dispute.
            assert_eq!(s.trace.values.len(), g.len());
        }
    }

    #[test]
    fn exceedance_under_reuses_trace_for_ab_bundles() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[16, 16], -0.4, 0.4, 3));
        let m = b.op("mm", OpKind::MatMul, &[x, w]);
        let sm = b.op("softmax", OpKind::Softmax, &[m]);
        let g = b.finish(vec![sm]).unwrap();
        let samples: Vec<Vec<Tensor<f32>>> = (0..8)
            .map(|i| vec![Tensor::<f32>::rand_uniform(&[2, 16], -1.0, 1.0, 40 + i)])
            .collect();
        let record = calibrate(&g, &samples, &Fleet::standard()).unwrap();
        let raw = record.clone().into_thresholds(DEFAULT_ALPHA);
        let smoothed = record
            .into_thresholds_with(DEFAULT_ALPHA, tao_calib::TailEstimator::smoothed_default());

        let input = vec![Tensor::<f32>::rand_uniform(&[2, 16], -1.0, 1.0, 91)];
        let claimed = execute(&g, &input, Device::rtx4090_like().config(), None)
            .unwrap()
            .value(sm)
            .unwrap()
            .clone();
        let screening = screen_claim(
            &g,
            sm,
            &raw,
            ClaimCheck {
                inputs: &input,
                claimed_output: &claimed,
            },
            &Device::h100_like(),
        )
        .unwrap();
        // Same bundle reproduces the screening's own exceedance exactly.
        let same = screening.exceedance_under(&raw, sm, &claimed).unwrap();
        assert_eq!(same, screening.exceedance);
        // Smoothed thresholds dominate pointwise, so exceedance shrinks.
        let alt = screening.exceedance_under(&smoothed, sm, &claimed).unwrap();
        assert!(alt <= same, "smoothed exceedance {alt} above raw {same}");
        // A bundle without the node is a deployment error, not fraud.
        assert!(matches!(
            screening.exceedance_under(&raw, NodeId(0), &claimed),
            Err(ProtocolError::MissingThreshold(_))
        ));
    }

    #[test]
    fn committed_screening_matches_plain_and_streams_identical_digests() {
        let (g, bundle, out) = setup();
        let proposer = Device::rtx4090_like();
        let challenger = Device::h100_like();
        let input = vec![Tensor::<f32>::rand_uniform(&[2, 16], -1.0, 1.0, 91)];
        let honest = execute(&g, &input, proposer.config(), None)
            .unwrap()
            .value(out)
            .unwrap()
            .clone();
        for tamper in [false, true] {
            let claimed = if tamper {
                honest.add_scalar(0.05)
            } else {
                honest.clone()
            };
            let claim = ClaimCheck {
                inputs: &input,
                claimed_output: &claimed,
            };
            let plain = screen_claim(&g, out, &bundle, claim, &challenger).unwrap();
            let committed = screen_claim_committed(&g, out, &bundle, claim, &challenger).unwrap();
            assert_eq!(committed.exceedance, plain.exceedance, "tamper={tamper}");
            assert_eq!(committed.flagged, plain.flagged);
            assert_eq!(committed.flagged, tamper);
            // The streamed commitment is always present and bit-identical
            // to the post-hoc oracle over the same trace.
            let oracle = TraceCommitment::build(&committed.trace.values);
            assert_eq!(committed.commitment(), Some(&oracle), "tamper={tamper}");
            if tamper {
                assert_eq!(plain.commitment(), Some(&oracle), "same trace, same digests");
            } else {
                assert!(plain.commitment().is_none(), "plain path skips hashing");
            }
        }
    }

    #[test]
    fn empty_batch_screens_to_nothing() {
        let (g, bundle, out) = setup();
        let screenings = screen_batch(&g, out, &bundle, &[], &Device::h100_like()).unwrap();
        assert!(screenings.is_empty());
    }

    #[test]
    fn missing_threshold_is_an_error_not_fraud() {
        let (g, bundle, _) = setup();
        let device = Device::h100_like();
        let input = vec![Tensor::<f32>::rand_uniform(&[2, 16], -1.0, 1.0, 7)];
        let claimed = Tensor::<f32>::ones(&[2, 16]);
        // Node 0 is the graph input: structural, never calibrated.
        let err = screen_claim(
            &g,
            NodeId(0),
            &bundle,
            ClaimCheck {
                inputs: &input,
                claimed_output: &claimed,
            },
            &device,
        )
        .unwrap_err();
        assert_eq!(err, ProtocolError::MissingThreshold(NodeId(0)));
    }
}
