//! The N-way, Merkle-anchored, threshold-guided dispute game (§5.3).

use std::collections::HashMap;

use tao_calib::{error_profile, ThresholdBundle, DEFAULT_EPS};
use tao_device::Device;
use tao_graph::{execute_subgraph, extract, partition, Execution, Graph, NodeId};
use tao_merkle::{Digest, MerkleTree, TraceCommitment};
use tao_tensor::Tensor;

use crate::error::ProtocolError;
use crate::gas::{self, GasMeter};
use crate::record::{make_record_with, verify_record_anchored, TraceDigestCache};
use crate::screen::Screening;
use crate::Result;

/// Dispute-game configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisputeConfig {
    /// Partition width `N` per round.
    pub n_way: usize,
}

impl Default for DisputeConfig {
    fn default() -> Self {
        DisputeConfig { n_way: 2 }
    }
}

/// Slack factor for the live-in pruning gate of the child-selection scan.
///
/// A child whose committed live-in deviates from the challenger's own
/// trace by more than this multiple of the committed thresholds is almost
/// certainly downstream of the real divergence (honest fresh-input tails
/// at small calibration scale sit just above 1; propagated fraud sits
/// orders of magnitude higher), so its re-execution is deferred. The gate
/// is purely a cost optimization: if no gated candidate confirms, every
/// deferred child is re-executed in an ungated second pass.
const LIVE_IN_SLACK: f64 = 16.0;

/// The Phase 0 commitment artifacts a dispute is anchored to: the Merkle
/// trees the proposer proves records against and the on-coordinator roots
/// the challenger verifies them with.
#[derive(Debug, Clone, Copy)]
pub struct DisputeAnchors<'a> {
    /// Graph-structure Merkle tree `T_g`.
    pub graph_tree: &'a MerkleTree,
    /// Weight Merkle tree `T_w`.
    pub weight_tree: &'a MerkleTree,
    /// Committed graph root `r_g`.
    pub graph_root: &'a Digest,
    /// Committed weight root `r_w`.
    pub weight_root: &'a Digest,
    /// Trace root `r_t` bound into the claim commitment `C0` at prepare
    /// time, when the claim carried one. With `Some`, every revealed
    /// interface digest posted during descent must open against this root
    /// via a Merkle path — a tampered or stale digest cache becomes
    /// attributable fraud ([`DisputeResult::CommitmentBreach`]) instead of
    /// silently steering the round.
    pub trace_root: Option<&'a Digest>,
}

impl<'a> DisputeAnchors<'a> {
    /// Anchors the dispute to the trace root the claim's `C0` binds.
    #[must_use]
    pub fn with_trace_root(mut self, root: &'a Digest) -> Self {
        self.trace_root = Some(root);
        self
    }
}

/// The proposer's side of a dispute: the committed execution trace, plus
/// (optionally) the [`TraceCommitment`] built over it at claim time.
///
/// The per-child interface hashes posted every round are functions of the
/// trace's per-node digests; supplying the commitment lets the descent
/// re-derive them from the cached digests instead of rehashing full
/// activation tensors — [`DisputeOutcome::rehashed_leaves`] is 0 exactly
/// when it was supplied.
#[derive(Debug, Clone, Copy)]
pub struct ProposerView<'a> {
    trace: &'a Execution,
    commitment: Option<&'a TraceCommitment>,
}

impl<'a> ProposerView<'a> {
    /// A proposer trace without cached digests (the dispute memoizes each
    /// node's digest on first use and accounts the rehashing).
    pub fn new(trace: &'a Execution) -> Self {
        ProposerView {
            trace,
            commitment: None,
        }
    }

    /// Attaches the trace commitment built at claim time.
    #[must_use]
    pub fn with_commitment(mut self, commitment: &'a TraceCommitment) -> Self {
        self.commitment = Some(commitment);
        self
    }

    /// The proposer's committed trace.
    pub fn trace(&self) -> &Execution {
        self.trace
    }
}

/// The challenger's side of a dispute: its device, plus (optionally) the
/// execution trace — and the subtree digests over it — it already produced
/// when it screened the claim.
///
/// Screening necessarily runs a full forward pass on the challenger's
/// device; carrying that trace into the dispute lets the game clear
/// agreeing children at zero re-execution cost without paying the pass a
/// second time. When no trace is supplied (e.g. the challenge is driven by
/// a fresh auditor), [`run_dispute`] computes one and reports it in
/// [`DisputeOutcome::challenger_forward_passes`].
#[derive(Debug, Clone, Copy)]
pub struct ChallengerView<'a> {
    device: &'a Device,
    screening: Option<&'a Execution>,
    commitment: Option<&'a TraceCommitment>,
}

impl<'a> ChallengerView<'a> {
    /// A challenger that has not yet executed the model; the dispute will
    /// run (and account) one full forward pass.
    pub fn fresh(device: &'a Device) -> Self {
        ChallengerView {
            device,
            screening: None,
            commitment: None,
        }
    }

    /// A challenger reusing the trace it computed during screening.
    pub fn with_screening(device: &'a Device, trace: &'a Execution) -> Self {
        ChallengerView {
            device,
            screening: Some(trace),
            commitment: None,
        }
    }

    /// A challenger reusing a [`Screening`] wholesale: its trace and, when
    /// the screening was flagged, the subtree digests it carries.
    pub fn from_screening(device: &'a Device, screening: &'a Screening) -> Self {
        ChallengerView {
            device,
            screening: Some(&screening.trace),
            commitment: screening.commitment(),
        }
    }

    /// The challenger's device.
    pub fn device(&self) -> &Device {
        self.device
    }
}

/// Statistics for one dispute round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Round index `k`.
    pub round: usize,
    /// Disputed range at the start of the round.
    pub range: (usize, usize),
    /// Number of children posted.
    pub children: usize,
    /// Index of the selected (most offending) child.
    pub chosen: usize,
    /// Proposer-side work: bytes of records built and posted.
    pub partition_bytes: u64,
    /// Challenger-side work: FLOPs re-executed during selection.
    pub selection_flops: u64,
    /// Merkle proof verifications this round.
    pub merkle_checks: u64,
}

/// Terminal state of the localization game.
#[derive(Debug, Clone, PartialEq)]
pub enum DisputeResult {
    /// Disagreement localized to a single operator.
    Leaf(NodeId),
    /// No child exceeded its thresholds: the challenge does not reproduce
    /// and the challenger forfeits.
    NoOffendingChild {
        /// Round at which the search went cold.
        round: usize,
    },
    /// A revealed digest failed to open against the trace root bound into
    /// `C0` (or a mandatory reveal was missing): the proposer's digest
    /// cache is tampered or stale, and because only the proposer could
    /// have produced `C0`, the breach is attributed to it — the proposer
    /// loses without further descent.
    CommitmentBreach {
        /// Round at which the breach surfaced.
        round: usize,
        /// First node whose reveal was rejected.
        node: NodeId,
    },
}

/// Full outcome of Phase 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DisputeOutcome {
    /// Terminal state.
    pub result: DisputeResult,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// Total challenger FLOPs (the paper's DCR numerator).
    pub challenger_flops: u64,
    /// Total Merkle proof verifications.
    pub merkle_checks: u64,
    /// Revealed interface digests verified against the trace root bound
    /// into `C0` (0 when the dispute ran unanchored). When positive,
    /// `rehashed_leaves == 0` is a *verified* property, not a convention.
    pub reveal_checks: u64,
    /// Full challenger forward passes executed *inside* the dispute: 0 when
    /// the screening trace was reused via
    /// [`ChallengerView::with_screening`], 1 when the game had to recompute
    /// it for a [`ChallengerView::fresh`] challenger.
    pub challenger_forward_passes: u64,
    /// Activation tensors rehashed *inside* the dispute while deriving the
    /// per-round child interface hashes: 0 when the proposer supplied its
    /// [`TraceCommitment`] (the PR 2 trace-reuse contract extended to
    /// hashing), otherwise one per distinct frontier node (memoized across
    /// rounds).
    pub rehashed_leaves: u64,
    /// Coordinator gas consumed by the dispute interaction.
    pub gas: GasMeter,
}

impl DisputeOutcome {
    /// `DCR / forward FLOPs` (the paper's Cost Ratio).
    pub fn cost_ratio(&self, forward_flops: u64) -> f64 {
        self.challenger_flops as f64 / forward_flops.max(1) as f64
    }
}

/// Runs the dispute localization game.
///
/// The proposer's trace supplies the committed per-operator outputs; the
/// challenger re-executes each candidate child *from the proposer's
/// committed live-in values* on its own device and selects the **most
/// offending** child — the one whose live-out error percentiles exceed the
/// committed thresholds by the largest ratio (Eq. 15). Selecting the
/// maximum rather than the first offender keeps the descent pointed at the
/// real divergence when an honest child's fresh-input tail marginally
/// exceeds its max-envelope tau at small calibration scale. Structural
/// operators (absent from the bundle) must reproduce exactly. The game
/// ends at a single operator or when no child offends.
///
/// The challenger already re-executed the whole model when it screened the
/// claim, so its screening trace is reused when supplied via
/// [`ChallengerView::with_screening`]: children whose proposer live-outs
/// agree with the challenger's own trace are cleared at zero re-execution
/// cost, and only suspect children are re-executed from the proposer's
/// committed boundaries. This keeps the DCR (total challenger FLOPs)
/// around one forward pass, matching Table 3.
///
/// # Errors
///
/// Returns an error if record construction/verification fails or a
/// re-execution hits a kernel error.
pub fn run_dispute(
    graph: &Graph,
    anchors: DisputeAnchors<'_>,
    proposer: ProposerView<'_>,
    inputs: &[Tensor<f32>],
    challenger: ChallengerView<'_>,
    thresholds: &ThresholdBundle,
    cfg: DisputeConfig,
) -> Result<DisputeOutcome> {
    let proposer_trace = proposer.trace;
    // Interface hashes derive from this cache: zero tensor rehashing when
    // the proposer's TraceCommitment was supplied, memoized otherwise. A
    // commitment of the wrong arity cannot bind this trace — ignore it
    // (fall back to rehashing) rather than derive hashes from the wrong
    // digests. When the anchors carry the C0-bound trace root, dropping
    // the commitment is not an escape hatch: records then post no reveals
    // and the anchored verification below convicts the proposer of a
    // commitment breach.
    let proposer_commitment = proposer
        .commitment
        .filter(|c| c.len() == proposer_trace.values.len());
    let mut digest_cache = TraceDigestCache::new(proposer_commitment);
    let mut gas = GasMeter::new();
    gas.charge("open_challenge", gas::open_challenge());
    // The challenger's own full-model trace: reused from screening when
    // available (the Phase 2 trigger already paid for that forward pass,
    // so it is not part of the DCR), recomputed only for a fresh view.
    let mut challenger_forward_passes = 0u64;
    let recomputed;
    let own_trace: &Execution = match challenger.screening {
        Some(trace) => trace,
        None => {
            challenger_forward_passes += 1;
            recomputed = tao_graph::execute(graph, inputs, challenger.device.config(), None)?;
            &recomputed
        }
    };

    let mut rounds = Vec::new();
    let mut total_flops = 0u64;
    let mut total_checks = 0u64;
    let mut total_reveals = 0u64;
    let (mut start, mut end) = (0usize, graph.len());
    let mut round = 0usize;

    while end - start > 1 {
        let slices = partition(start, end, cfg.n_way);
        // Proposer: build and post one record per child.
        let mut records = Vec::with_capacity(slices.len());
        let mut partition_bytes = 0u64;
        for &(s, e) in &slices {
            let sub = extract(graph, s, e)?;
            let rec = make_record_with(
                graph,
                anchors.graph_tree,
                anchors.weight_tree,
                &sub,
                proposer_trace,
                &mut digest_cache,
            )?;
            partition_bytes += rec.byte_size() as u64;
            records.push(rec);
        }
        gas.charge("partition_post", gas::partition_post(records.len()));
        gas.charge("round_bonds", gas::round_bonds());

        // Challenger: verify records, then select the *most offending*
        // candidate child (max confirmed exceedance, Eq. 15) rather than
        // the first offending one. With max-envelope thresholds at small
        // calibration scale an honest child's fresh-input tail can
        // marginally exceed its own tau (exceedance just above 1); picking
        // the maximum keeps the descent pointed at the real divergence,
        // whose exceedance sits orders of magnitude higher.
        let mut merkle_checks = 0u64;
        let mut breach: Option<NodeId> = None;
        for rec in &records {
            match verify_record_anchored(
                graph,
                anchors.graph_root,
                anchors.weight_root,
                anchors.trace_root,
                rec,
            ) {
                Ok((checks, reveals)) => {
                    merkle_checks += checks;
                    total_reveals += reveals;
                }
                Err(ProtocolError::RevealMismatch { node, .. }) => {
                    // Attributable: the reveal disagrees with the root the
                    // proposer itself bound into C0. Stop descending — the
                    // records are garbage by construction.
                    breach = Some(node);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        total_checks += merkle_checks;
        if let Some(node) = breach {
            rounds.push(RoundStats {
                round,
                range: (start, end),
                children: records.len(),
                chosen: usize::MAX,
                partition_bytes,
                selection_flops: 0,
                merkle_checks,
            });
            gas.charge("settlement", gas::settlement());
            return Ok(DisputeOutcome {
                result: DisputeResult::CommitmentBreach { round, node },
                rounds,
                challenger_flops: total_flops,
                merkle_checks: total_checks,
                reveal_checks: total_reveals,
                challenger_forward_passes,
                rehashed_leaves: digest_cache.rehashed_leaves(),
                gas,
            });
        }
        // Cheap screen against the challenger's own screening trace:
        // exceedance of a committed node value vs the challenger's own
        // (structural nodes are bit-strict). Memoized per node for the
        // round — the same node appears as one child's live-out, the next
        // child's live-in, and again in the ungated second pass, and each
        // profile is a whole-tensor scan.
        let mut screen_cache: HashMap<NodeId, f64> = HashMap::new();
        let screen_exc = |cache: &mut HashMap<NodeId, f64>, id: NodeId| -> Result<f64> {
            if let Some(&exc) = cache.get(&id) {
                return Ok(exc);
            }
            let claimed = proposer_trace.value(id)?;
            let own = own_trace.value(id)?;
            let exc = if thresholds.for_node(id).is_some() {
                let prof = error_profile(claimed, own, DEFAULT_EPS);
                thresholds
                    .exceedance(id, &prof)
                    .expect("threshold entry checked above")
            } else {
                // Structural nodes must match bit-for-bit; with both
                // sides' subtree digests cached, agreement is a 32-byte
                // compare instead of a whole-tensor scan (equivalent by
                // collision resistance — both commitments bind canonical
                // serializations).
                let challenger_commitment = challenger
                    .commitment
                    .filter(|c| c.len() == own_trace.values.len());
                let agree = match (
                    proposer_commitment.and_then(|c| c.digest(id.0)),
                    challenger_commitment.and_then(|c| c.digest(id.0)),
                ) {
                    (Some(p), Some(c)) => p == c,
                    _ => claimed.data() == own.data(),
                };
                if agree {
                    0.0
                } else {
                    f64::INFINITY
                }
            };
            cache.insert(id, exc);
            Ok(exc)
        };
        let mut selection_flops = 0u64;
        let mut examined = vec![false; records.len()];
        // (child index, confirmed exceedance) of every confirmed offender.
        let mut confirmed: Vec<(usize, f64)> = Vec::new();
        for pass in 0..2 {
            for (ci, rec) in records.iter().enumerate() {
                if examined[ci] {
                    continue;
                }
                let mut suspect = false;
                for &id in &rec.sub.live_out {
                    if screen_exc(&mut screen_cache, id)? > 1.0 {
                        suspect = true;
                        break;
                    }
                }
                if !suspect {
                    continue;
                }
                if pass == 0 {
                    // Pruning heuristic, zero re-execution cost: the
                    // disagreement *originates* in a child whose committed
                    // live-in still roughly agrees with the challenger's
                    // trace. Children downstream of a large divergence
                    // inherit it in their live-in and are deferred, which
                    // keeps the DCR near one forward pass. The margin is
                    // loose (LIVE_IN_SLACK) because honest fresh-input
                    // tails can marginally exceed tau at small calibration
                    // scale; the ungated second pass below makes the gate a
                    // cost optimization, never a soundness assumption.
                    let mut gated = false;
                    for &id in &rec.sub.live_in {
                        if screen_exc(&mut screen_cache, id)? > LIVE_IN_SLACK {
                            gated = true;
                            break;
                        }
                    }
                    if gated {
                        continue;
                    }
                }
                examined[ci] = true;
                // Confirm by re-executing the candidate child from the
                // proposer's committed live-in values (the agreed inputs of
                // Eq. 15); only this costs fresh FLOPs.
                let mut boundary = HashMap::new();
                for &id in &rec.sub.live_in {
                    boundary.insert(id, proposer_trace.value(id)?.clone());
                }
                let local = execute_subgraph(
                    graph,
                    &rec.sub,
                    &boundary,
                    inputs,
                    challenger.device.config(),
                )?;
                // Account re-execution FLOPs from the proposer trace's
                // ledger (same shapes, same operator set).
                selection_flops += (rec.sub.start..rec.sub.end)
                    .map(|i| proposer_trace.flops[i])
                    .sum::<u64>();
                let mut child_exceedance = 0.0f64;
                for &id in &rec.sub.live_out {
                    let claimed = proposer_trace.value(id)?;
                    let recomputed = &local[&id];
                    let exc = if thresholds.for_node(id).is_some() {
                        let prof = error_profile(claimed, recomputed, DEFAULT_EPS);
                        thresholds.exceedance(id, &prof).unwrap_or(f64::INFINITY)
                    } else if claimed.data() != recomputed.data() {
                        // Structural live-out must match bit-for-bit.
                        f64::INFINITY
                    } else {
                        0.0
                    };
                    child_exceedance = child_exceedance.max(exc);
                }
                if child_exceedance > 1.0 {
                    confirmed.push((ci, child_exceedance));
                }
            }
            if !confirmed.is_empty() {
                // The origin was confirmed among the gated candidates; the
                // deferred (clearly-downstream) children stay unexecuted.
                break;
            }
        }
        // Most-offending-child selection: the largest confirmed exceedance
        // wins; ties (e.g. two structural mismatches, where the later one
        // is propagation) resolve to the earliest child in topological
        // order.
        let chosen: Option<usize> = confirmed
            .iter()
            .fold(None::<(usize, f64)>, |best, &(ci, exc)| match best {
                Some((_, be)) if exc <= be => best,
                _ => Some((ci, exc)),
            })
            .map(|(ci, _)| ci);
        gas.charge("selection_post", gas::selection_post());
        total_flops += selection_flops;

        let Some(ci) = chosen else {
            rounds.push(RoundStats {
                round,
                range: (start, end),
                children: records.len(),
                chosen: usize::MAX,
                partition_bytes,
                selection_flops,
                merkle_checks,
            });
            gas.charge("settlement", gas::settlement());
            return Ok(DisputeOutcome {
                result: DisputeResult::NoOffendingChild { round },
                rounds,
                challenger_flops: total_flops,
                merkle_checks: total_checks,
                reveal_checks: total_reveals,
                challenger_forward_passes,
                rehashed_leaves: digest_cache.rehashed_leaves(),
                gas,
            });
        };
        rounds.push(RoundStats {
            round,
            range: (start, end),
            children: records.len(),
            chosen: ci,
            partition_bytes,
            selection_flops,
            merkle_checks,
        });
        (start, end) = slices[ci];
        round += 1;
    }

    gas.charge(
        "leaf_adjudication",
        gas::leaf_adjudication(3, proof_depth(graph.len())),
    );
    gas.charge("settlement", gas::settlement());
    Ok(DisputeOutcome {
        result: DisputeResult::Leaf(NodeId(start)),
        rounds,
        challenger_flops: total_flops,
        merkle_checks: total_checks,
        reveal_checks: total_reveals,
        challenger_forward_passes,
        rehashed_leaves: digest_cache.rehashed_leaves(),
        gas,
    })
}

fn proof_depth(n: usize) -> usize {
    (usize::BITS - n.next_power_of_two().trailing_zeros() as usize as u32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_calib::{calibrate, DEFAULT_ALPHA};
    use tao_device::Fleet;
    use tao_graph::{execute, GraphBuilder, OpKind, Perturbations};
    use tao_merkle::{graph_tree as build_gt, weight_tree as build_wt};

    fn chain_model(depth: usize) -> Graph {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let mut cur = x;
        for i in 0..depth {
            let w = b.parameter(
                format!("w{i}"),
                Tensor::<f32>::rand_uniform(&[32, 32], -0.3, 0.3, i as u64),
            );
            let m = b.op(format!("mm{i}"), OpKind::MatMul, &[cur, w]);
            cur = b.op(format!("act{i}"), OpKind::Gelu, &[m]);
        }
        let sm = b.op("softmax", OpKind::Softmax, &[cur]);
        b.finish(vec![sm]).unwrap()
    }

    fn setup(depth: usize) -> (Graph, ThresholdBundle, Vec<Tensor<f32>>) {
        let g = chain_model(depth);
        let samples: Vec<Vec<Tensor<f32>>> = (0..6)
            .map(|i| vec![Tensor::<f32>::rand_uniform(&[4, 32], -1.0, 1.0, 50 + i)])
            .collect();
        let record = calibrate(&g, &samples, &Fleet::standard()).unwrap();
        let bundle = record.into_thresholds(DEFAULT_ALPHA);
        let input = vec![Tensor::<f32>::rand_uniform(&[4, 32], -1.0, 1.0, 77)];
        (g, bundle, input)
    }

    fn dispute_against(
        g: &Graph,
        bundle: &ThresholdBundle,
        inputs: &[Tensor<f32>],
        perturb: Option<&Perturbations>,
        n_way: usize,
    ) -> DisputeOutcome {
        let proposer_dev = Device::rtx4090_like();
        let challenger_dev = Device::h100_like();
        let trace = execute(g, inputs, proposer_dev.config(), perturb).unwrap();
        let gt = build_gt(g);
        let wt = build_wt(g);
        run_dispute(
            g,
            DisputeAnchors {
                graph_tree: &gt,
                weight_tree: &wt,
                graph_root: &gt.root(),
                weight_root: &wt.root(),
                trace_root: None,
            },
            ProposerView::new(&trace),
            inputs,
            ChallengerView::fresh(&challenger_dev),
            bundle,
            DisputeConfig { n_way },
        )
        .unwrap()
    }

    #[test]
    fn dispute_localizes_injected_perturbation() {
        let (g, bundle, inputs) = setup(4);
        // Perturb a mid-graph GELU output far beyond any tolerance.
        let target = g
            .nodes()
            .iter()
            .find(|n| n.name == "act2")
            .map(|n| n.id)
            .unwrap();
        let ref_exec = execute(&g, &inputs, Device::rtx4090_like().config(), None).unwrap();
        let shape = ref_exec.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.05));
        let outcome = dispute_against(&g, &bundle, &inputs, Some(&p), 2);
        assert_eq!(outcome.result, DisputeResult::Leaf(target));
        assert!(!outcome.rounds.is_empty());
        assert!(outcome.merkle_checks > 0);
        assert!(outcome.challenger_flops > 0);
    }

    #[test]
    fn screening_trace_reuse_skips_the_forward_pass() {
        let (g, bundle, inputs) = setup(4);
        let target = g.nodes().iter().find(|n| n.name == "act1").unwrap().id;
        let ref_exec = execute(&g, &inputs, Device::rtx4090_like().config(), None).unwrap();
        let shape = ref_exec.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.05));
        let trace = execute(&g, &inputs, Device::rtx4090_like().config(), Some(&p)).unwrap();
        let challenger_dev = Device::h100_like();
        let screening = execute(&g, &inputs, challenger_dev.config(), None).unwrap();
        let gt = build_gt(&g);
        let wt = build_wt(&g);
        let anchors = DisputeAnchors {
            graph_tree: &gt,
            weight_tree: &wt,
            graph_root: &gt.root(),
            weight_root: &wt.root(),
            trace_root: None,
        };
        let reused = run_dispute(
            &g,
            anchors,
            ProposerView::new(&trace),
            &inputs,
            ChallengerView::with_screening(&challenger_dev, &screening),
            &bundle,
            DisputeConfig { n_way: 2 },
        )
        .unwrap();
        assert_eq!(reused.challenger_forward_passes, 0, "trace must be reused");
        assert!(
            reused.rehashed_leaves > 0,
            "without a trace commitment the frontier hashes are recomputed"
        );
        // Supplying the proposer's trace commitment removes every leaf
        // rehash from the descent — and changes nothing else.
        let commitment = tao_merkle::TraceCommitment::build(&trace.values);
        let committed = run_dispute(
            &g,
            anchors,
            ProposerView::new(&trace).with_commitment(&commitment),
            &inputs,
            ChallengerView::with_screening(&challenger_dev, &screening),
            &bundle,
            DisputeConfig { n_way: 2 },
        )
        .unwrap();
        assert_eq!(committed.rehashed_leaves, 0, "cached digests must be reused");
        assert_eq!(committed.result, reused.result);
        assert_eq!(committed.challenger_flops, reused.challenger_flops);
        assert_eq!(committed.reveal_checks, 0, "unanchored: nothing to verify");
        // Anchoring the dispute to the C0-bound trace root turns the
        // zero-rehash convention into a verified property: every revealed
        // digest opens against the root, and nothing else changes.
        let root = commitment.root();
        let anchored = run_dispute(
            &g,
            anchors.with_trace_root(&root),
            ProposerView::new(&trace).with_commitment(&commitment),
            &inputs,
            ChallengerView::with_screening(&challenger_dev, &screening),
            &bundle,
            DisputeConfig { n_way: 2 },
        )
        .unwrap();
        assert_eq!(anchored.result, reused.result);
        assert_eq!(anchored.rehashed_leaves, 0);
        assert!(anchored.reveal_checks > 0, "reveals must be verified");
        assert_eq!(anchored.challenger_flops, reused.challenger_flops);
        let fresh = run_dispute(
            &g,
            anchors,
            ProposerView::new(&trace),
            &inputs,
            ChallengerView::fresh(&challenger_dev),
            &bundle,
            DisputeConfig { n_way: 2 },
        )
        .unwrap();
        assert_eq!(fresh.challenger_forward_passes, 1);
        // The screening trace is exactly what a fresh challenger would
        // recompute, so the localization is identical.
        assert_eq!(reused.result, fresh.result);
        assert_eq!(reused.result, DisputeResult::Leaf(target));
        assert_eq!(reused.challenger_flops, fresh.challenger_flops);
    }

    #[test]
    fn honest_trace_yields_no_offense() {
        let (g, bundle, inputs) = setup(3);
        let outcome = dispute_against(&g, &bundle, &inputs, None, 2);
        assert!(
            matches!(outcome.result, DisputeResult::NoOffendingChild { .. }),
            "honest proposer must not be localized: {:?}",
            outcome.result
        );
    }

    #[test]
    fn rounds_scale_logarithmically_with_n() {
        let (g, bundle, inputs) = setup(6);
        let target = g
            .nodes()
            .iter()
            .find(|n| n.name == "act3")
            .map(|n| n.id)
            .unwrap();
        let ref_exec = execute(&g, &inputs, Device::rtx4090_like().config(), None).unwrap();
        let shape = ref_exec.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.05));
        let r2 = dispute_against(&g, &bundle, &inputs, Some(&p), 2)
            .rounds
            .len();
        let r8 = dispute_against(&g, &bundle, &inputs, Some(&p), 8)
            .rounds
            .len();
        assert!(
            r8 < r2,
            "N=8 ({r8} rounds) must need fewer rounds than N=2 ({r2})"
        );
        // Both reach the same leaf.
        assert_eq!(
            dispute_against(&g, &bundle, &inputs, Some(&p), 8).result,
            DisputeResult::Leaf(target)
        );
    }

    #[test]
    fn gas_in_paper_band_for_deep_models() {
        let (g, bundle, inputs) = setup(8);
        let mid = g.compute_nodes()[g.compute_nodes().len() / 2];
        let ref_exec = execute(&g, &inputs, Device::rtx4090_like().config(), None).unwrap();
        let shape = ref_exec.values[mid.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(mid, Tensor::full(&shape, 0.05));
        let outcome = dispute_against(&g, &bundle, &inputs, Some(&p), 2);
        let kgas = outcome.gas.kgas();
        assert!((300.0..3_000.0).contains(&kgas), "kgas {kgas}");
    }

    #[test]
    fn cost_ratio_order_of_forward_pass() {
        let (g, bundle, inputs) = setup(5);
        let target = g.nodes().iter().find(|n| n.name == "act2").unwrap().id;
        let ref_exec = execute(&g, &inputs, Device::rtx4090_like().config(), None).unwrap();
        let shape = ref_exec.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.05));
        let outcome = dispute_against(&g, &bundle, &inputs, Some(&p), 2);
        let ratio = outcome.cost_ratio(ref_exec.total_flops());
        assert!(
            (0.2..2.0).contains(&ratio),
            "cost ratio {ratio} out of the paper's ~0.39–1.24 regime"
        );
    }
}
