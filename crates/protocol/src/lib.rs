//! # tao-protocol
//!
//! The TAO optimistic verification protocol (§2, §5): an authenticated
//! coordinator with logical-clock challenge windows and escrowed bonds, the
//! N-way Merkle-anchored threshold-guided dispute game that localizes a
//! disagreement to a single operator in `O(log_N |V|)` rounds, Phase 3
//! single-operator adjudication (sound theoretical-bound check or
//! honest-majority committee vote), the §5.5 economic mechanism, and an
//! EVM-calibrated gas model reproducing the paper's ~2 Mgas dispute
//! footprints.

pub mod adjudicate;
pub mod coordinator;
pub mod dispute;
pub mod econ;
pub mod epoch;
pub mod error;
pub mod gas;
pub mod par;
pub mod record;
pub mod screen;
pub mod temporal;
pub mod tiebreak;

pub use adjudicate::{
    adjudicate, committee_vote, leaf_case, route, sample_committee, theoretical_check,
    theoretical_verdict, AdjudicationPath, LeafCase, LeafVerdict, VoteOutcome,
};
pub use coordinator::{
    reference::SerialCoordinator, Claim, ClaimShards, ClaimStatus, Coordinator, Party,
    CLAIM_SHARDS,
};
pub use dispute::{
    run_dispute, ChallengerView, DisputeAnchors, DisputeConfig, DisputeOutcome, DisputeResult,
    ProposerView, RoundStats,
};
pub use econ::{EconAmounts, EconParams, Ledger, ACCOUNT_SHARDS};
pub use epoch::{canonical_log, encode_event, encode_log, epoch_root, log_csv, EpochCommitment};
pub use error::ProtocolError;
pub use gas::{GasEvent, GasMeter};
pub use tao_money::{Money, Ppm};
pub use par::{parallel_map, MAX_PAR_THREADS, MAX_WORKERS};
pub use record::{
    make_record, make_record_with, verify_record, verify_record_anchored, SubgraphRecord,
    TraceDigestCache,
};
pub use screen::{screen_batch, screen_claim, screen_claim_committed, ClaimCheck, Screening};
pub use temporal::{earliest_offense, states_agree, TemporalCommitment, TemporalVerdict};
pub use tiebreak::{tie_seed, TieBreakRule};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, ProtocolError>;
