//! Order-preserving scoped-thread fan-out, shared by batch screening and
//! the `tao` session scheduler.

/// The tensor-kernel thread cap, re-exported for callers that fan out
/// compute-heavy work: protocol-level workers that each trigger kernel
/// row-band workers should stay at or below this so nested parallelism is
/// bounded by the square of one shared constant (batch screening sizes
/// itself this way).
pub const MAX_PAR_THREADS: usize = tao_tensor::kernel::MAX_KERNEL_THREADS;

/// Hard upper bound on a worker pool. Coordinator interactions are
/// lock-shard-bound rather than compute-bound, so pools may usefully
/// exceed [`MAX_PAR_THREADS`]; this bound only keeps a mistyped request
/// from spawning thousands of threads.
pub const MAX_WORKERS: usize = 64;

/// Applies `f` to every item on scoped worker threads, returning results
/// in item order. `threads` is clamped to `[1, MAX_WORKERS]`; an
/// empty input returns an empty vector without spawning.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, MAX_WORKERS);
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, result) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    *result = Some(f(slot.take().expect("slot filled once")));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_handles_edges() {
        assert!(parallel_map(Vec::<i32>::new(), 4, |x| x).is_empty());
        assert_eq!(parallel_map(vec![7], 4, |x: i32| x + 1), vec![8]);
        let doubled = parallel_map((0..37).collect(), 4, |x: i32| x * 2);
        assert_eq!(doubled, (0..37).map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate thread counts clamp instead of panicking.
        assert_eq!(parallel_map(vec![1, 2, 3], 0, |x: i32| x), vec![1, 2, 3]);
    }
}
