//! Deterministic gas metering with EVM-calibrated constants.
//!
//! The paper instantiates the coordinator as Ethereum (Holesky) contracts
//! and reports dispute footprints of ≈2 Mgas at `N = 2`. This module
//! reproduces that cost model deterministically: every coordinator action
//! is priced from the standard EVM schedule (tx base cost, storage writes,
//! calldata bytes, hashing words), so dispute-game footprints land in the
//! paper's regime and scale the same way with round count and `N`.

/// Base cost of any transaction.
pub const G_TX: u64 = 21_000;
/// Storage write to a fresh slot (`SSTORE` zero → nonzero).
pub const G_SSTORE_NEW: u64 = 22_100;
/// Storage update to an existing slot.
pub const G_SSTORE_UPDATE: u64 = 5_000;
/// Per nonzero calldata byte.
pub const G_CALLDATA_BYTE: u64 = 16;
/// Per 32-byte word hashed on-chain.
pub const G_HASH_WORD: u64 = 60;

/// Size of one posted child commitment: indices, live-in/out hashes, and a
/// compact inclusion-proof segment (bytes of calldata).
pub const CHILD_RECORD_BYTES: u64 = 900;

use tao_money::Money;

/// One metered protocol action: what happened, to which claim, in what
/// per-claim order, for how much gas, and how much money it moved.
///
/// `(claim, seq)` is the canonical sort key: `seq` is allocated from the
/// claim's own monotone counter **under the claim's shard lock**, so the
/// canonical order of a claim's events is fixed by protocol causality no
/// matter how settle threads interleave their meter appends. Events with
/// `claim: None` belong to the coordinator lane (model registration,
/// dispute-game metering) and keep a meter-local sequence; the
/// coordinator only emits them from serial phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GasEvent {
    /// The claim this event belongs to; `None` for coordinator-lane
    /// actions not tied to any claim.
    pub claim: Option<u64>,
    /// Monotone per-claim (or per-lane) sequence number.
    pub seq: u32,
    /// Action mnemonic (`"commit_claim"`, `"settle"`, …).
    pub action: String,
    /// Gas consumed.
    pub gas: u64,
    /// The characteristic money amount of the action (deposit reserved,
    /// amount slashed, reward minted, …); [`Money::ZERO`] for pure-gas
    /// actions.
    pub amount: Money,
}

/// A metered ledger of gas spent, by action.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GasMeter {
    /// Total gas consumed.
    pub total: u64,
    /// Itemized event log in meter-append order. Append order is *not*
    /// deterministic under parallel settlement — canonicalize with
    /// [`crate::epoch::canonical_log`] before comparing or committing.
    pub log: Vec<GasEvent>,
    /// Next coordinator-lane sequence number (events with `claim: None`).
    lane_seq: u32,
}

impl GasMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a coordinator-lane action (no claim, no money moved).
    pub fn charge(&mut self, action: impl Into<String>, gas: u64) {
        let seq = self.lane_seq;
        self.lane_seq += 1;
        self.total += gas;
        self.log.push(GasEvent {
            claim: None,
            seq,
            action: action.into(),
            gas,
            amount: Money::ZERO,
        });
    }

    /// Records a claim-scoped action. `seq` must come from the claim's
    /// own monotone counter (allocated under the claim's shard lock);
    /// the meter itself imposes no ordering.
    pub fn charge_claim(
        &mut self,
        claim: u64,
        seq: u32,
        action: impl Into<String>,
        gas: u64,
        amount: Money,
    ) {
        self.total += gas;
        self.log.push(GasEvent {
            claim: Some(claim),
            seq,
            action: action.into(),
            gas,
            amount,
        });
    }

    /// Gas in thousands (the paper reports kgas).
    pub fn kgas(&self) -> f64 {
        self.total as f64 / 1_000.0
    }
}

/// Gas for the proposer's result commitment (Phase 1).
pub fn commit_claim() -> u64 {
    // One fresh slot for C0 plus ~160 bytes of calldata.
    G_TX + G_SSTORE_NEW + 160 * G_CALLDATA_BYTE
}

/// Gas for opening a challenge: freeze collateral, initialize game state.
pub fn open_challenge() -> u64 {
    G_TX + 3 * G_SSTORE_NEW + 128 * G_CALLDATA_BYTE
}

/// Gas for the proposer's per-round partition post with `n` children.
pub fn partition_post(n: usize) -> u64 {
    G_TX + G_SSTORE_NEW + n as u64 * CHILD_RECORD_BYTES * G_CALLDATA_BYTE
}

/// Gas for the challenger's per-round selection post.
pub fn selection_post() -> u64 {
    G_TX + 2 * G_SSTORE_UPDATE + 64 * G_CALLDATA_BYTE
}

/// Gas for the per-round bond escrow updates of both parties.
pub fn round_bonds() -> u64 {
    2 * G_SSTORE_NEW
}

/// Gas for leaf adjudication: on-chain verification of `proofs` Merkle
/// inclusion proofs of the given depth, plus the verdict write.
pub fn leaf_adjudication(proofs: usize, depth: usize) -> u64 {
    let hash_gas = (proofs * depth) as u64 * G_HASH_WORD * 2;
    G_TX + G_SSTORE_NEW + hash_gas + 4_096 * G_CALLDATA_BYTE
}

/// Gas for one committee vote transaction.
pub fn committee_vote() -> u64 {
    G_TX + G_SSTORE_UPDATE + 64 * G_CALLDATA_BYTE
}

/// Gas for the final settlement (slash / release / reward transfers).
pub fn settlement() -> u64 {
    G_TX + 4 * G_SSTORE_UPDATE + 64 * G_CALLDATA_BYTE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_logs() {
        let mut m = GasMeter::new();
        m.charge("a", 100);
        m.charge("b", 50);
        assert_eq!(m.total, 150);
        assert_eq!(m.log.len(), 2);
        assert!((m.kgas() - 0.15).abs() < 1e-12);
        // Lane events get their own monotone sequence.
        assert_eq!(m.log[0].seq, 0);
        assert_eq!(m.log[1].seq, 1);
        assert_eq!(m.log[1].claim, None);
    }

    #[test]
    fn claim_events_carry_their_key_and_amount() {
        let mut m = GasMeter::new();
        m.charge_claim(7, 0, "commit_claim", 100, Money::from_credits(500));
        m.charge_claim(7, 1, "settle", 50, Money::from_credits(120));
        assert_eq!(m.total, 150);
        assert_eq!(m.log[0].claim, Some(7));
        assert_eq!(m.log[1].seq, 1);
        assert_eq!(m.log[1].amount, Money::from_credits(120));
    }

    #[test]
    fn partition_scales_with_n() {
        assert!(partition_post(8) > partition_post(2));
        let delta = partition_post(3) - partition_post(2);
        assert_eq!(delta, CHILD_RECORD_BYTES * G_CALLDATA_BYTE);
    }

    #[test]
    fn dispute_footprint_in_paper_regime() {
        // An 11–13 round N=2 dispute must land in the ~1.8–2.3 Mgas band
        // the paper reports for its four models.
        for rounds in [11u64, 12, 13] {
            let per_round = partition_post(2) + selection_post() + round_bonds();
            let total =
                open_challenge() + rounds * per_round + leaf_adjudication(3, 12) + settlement();
            let kgas = total as f64 / 1000.0;
            assert!(
                (1_700.0..2_400.0).contains(&kgas),
                "rounds {rounds}: {kgas} kgas"
            );
        }
    }

    #[test]
    fn leaf_adjudication_scales_with_proof_depth() {
        assert!(leaf_adjudication(3, 20) > leaf_adjudication(3, 10));
    }
}
