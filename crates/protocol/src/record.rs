//! Subgraph records: the per-child commitments posted during dispute
//! rounds, with Merkle provenance proofs (§5.2).
//!
//! Interface hashes (`h_In`/`h_Out`) are derived through a
//! [`TraceDigestCache`]: when the trace carries a
//! [`TraceCommitment`] (per-node tensor digests computed once, at
//! screening/claim time), every round's child commitments re-derive from
//! the cached digests and **zero** activation tensors are rehashed inside
//! the dispute. Without one, the cache memoizes each node's digest across
//! rounds and reports how many leaf hashes it had to compute
//! ([`TraceDigestCache::rehashed_leaves`], surfaced as
//! `DisputeOutcome::rehashed_leaves`).

use std::collections::HashMap;

use tao_graph::{Execution, Graph, NodeId, Subgraph};
use tao_merkle::{
    tensor_hash, verify_graph_leaf, verify_inclusion, verify_weight_leaf, Digest, InclusionProof,
    MerkleTree, Sha256, TraceCommitment,
};

use crate::error::ProtocolError;
use crate::Result;

/// Per-node tensor digests of one execution trace, backed by a
/// [`TraceCommitment`] when one was supplied and a lazy memo otherwise.
#[derive(Debug)]
pub struct TraceDigestCache<'a> {
    committed: Option<&'a TraceCommitment>,
    lazy: HashMap<usize, Digest>,
    rehashed: u64,
}

impl<'a> TraceDigestCache<'a> {
    /// A cache over `committed` digests (zero rehashing when `Some`).
    pub fn new(committed: Option<&'a TraceCommitment>) -> Self {
        TraceDigestCache {
            committed,
            lazy: HashMap::new(),
            rehashed: 0,
        }
    }

    /// The digest of node `id`'s value in `trace`, from the commitment
    /// when available, the memo otherwise, hashing the tensor only on a
    /// first miss.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range node id.
    pub fn digest(&mut self, trace: &Execution, id: NodeId) -> Result<Digest> {
        if let Some(c) = self.committed {
            if let Some(d) = c.digest(id.0) {
                return Ok(*d);
            }
        }
        if let Some(d) = self.lazy.get(&id.0) {
            return Ok(*d);
        }
        let d = tensor_hash(trace.value(id)?);
        self.rehashed += 1;
        self.lazy.insert(id.0, d);
        Ok(d)
    }

    /// Hash of the ordered value list `H(Σ H(canon(z)))` — identical to
    /// [`tao_merkle::tensor_list_hash`] over the same tensors, but built
    /// from the cached digests.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range node id.
    pub fn list_hash(&mut self, trace: &Execution, ids: &[NodeId]) -> Result<Digest> {
        let mut h = Sha256::new();
        for &id in ids {
            h.update(&self.digest(trace, id)?);
        }
        Ok(h.finalize())
    }

    /// How many tensor leaf hashes this cache computed (0 when every
    /// lookup was served by the supplied [`TraceCommitment`]).
    pub fn rehashed_leaves(&self) -> u64 {
        self.rehashed
    }

    /// The backing commitment, when one was supplied.
    pub fn committed(&self) -> Option<&'a TraceCommitment> {
        self.committed
    }

    /// Inclusion proof for node `id`'s digest into the backing
    /// commitment's trace tree (`None` without a commitment or out of
    /// range). This is what lets a record's interface digests be *opened*
    /// against the trace root bound into `C0`.
    pub fn prove(&self, id: NodeId) -> Option<InclusionProof> {
        self.committed.and_then(|c| c.tree().prove(id.0))
    }
}

/// A posted subgraph record: slice indices, interface hashes, and
/// inclusion proofs binding the slice to the committed graph and weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SubgraphRecord {
    /// The slice with its frontiers.
    pub sub: Subgraph,
    /// `h_In`: hash of the live-in tensor list (proposer's values).
    pub live_in_hash: Digest,
    /// `h_Out`: hash of the live-out tensor list (proposer's values).
    pub live_out_hash: Digest,
    /// Inclusion proofs into the graph tree for every node in the slice.
    pub op_proofs: Vec<(usize, InclusionProof)>,
    /// Inclusion proofs into the weight tree for referenced parameters,
    /// keyed by `(name, leaf index)`.
    pub param_proofs: Vec<(String, InclusionProof)>,
    /// Revealed interface digests `(node id, digest, proof)` opening each
    /// live-in/live-out node's digest against the trace root bound into
    /// `C0`. Empty when the proposer's trace carries no commitment (then
    /// an anchored verification must fail — the reveals are mandatory
    /// whenever a trace root was committed).
    pub trace_reveals: Vec<(usize, Digest, InclusionProof)>,
}

impl SubgraphRecord {
    /// Approximate posted size in bytes (for gas calldata accounting).
    pub fn byte_size(&self) -> usize {
        let proofs: usize = self
            .op_proofs
            .iter()
            .map(|(_, p)| 8 + p.siblings.len() * 33)
            .chain(
                self.param_proofs
                    .iter()
                    .map(|(n, p)| n.len() + 8 + p.siblings.len() * 33),
            )
            .chain(
                self.trace_reveals
                    .iter()
                    .map(|(_, _, p)| 8 + 32 + 8 + p.siblings.len() * 33),
            )
            .sum();
        16 + 64 + proofs
    }
}

/// Builds a record for a slice from the proposer's trace (proposer side),
/// rehashing both interface tensor lists from scratch. Convenience wrapper
/// over [`make_record_with`] with a fresh digest cache.
///
/// # Errors
///
/// Returns an error when a proof index is out of range.
pub fn make_record(
    graph: &Graph,
    graph_tree: &MerkleTree,
    weight_tree: &MerkleTree,
    sub: &Subgraph,
    trace: &Execution,
) -> Result<SubgraphRecord> {
    let mut cache = TraceDigestCache::new(None);
    make_record_with(graph, graph_tree, weight_tree, sub, trace, &mut cache)
}

/// Builds a record for a slice, deriving the interface hashes from the
/// digest cache (zero tensor rehashing when the cache is backed by a
/// [`TraceCommitment`]).
///
/// # Errors
///
/// Returns an error when a proof index is out of range.
pub fn make_record_with(
    graph: &Graph,
    graph_tree: &MerkleTree,
    weight_tree: &MerkleTree,
    sub: &Subgraph,
    trace: &Execution,
    cache: &mut TraceDigestCache<'_>,
) -> Result<SubgraphRecord> {
    let live_in_hash = cache.list_hash(trace, &sub.live_in)?;
    let live_out_hash = cache.list_hash(trace, &sub.live_out)?;
    // With a committed trace, reveal each interface digest with its
    // opening into the trace tree so the challenger can check every
    // revealed digest against the root bound into `C0`.
    let mut trace_reveals = Vec::new();
    if cache.committed().is_some() {
        let mut seen = std::collections::HashSet::new();
        for &id in sub.live_in.iter().chain(&sub.live_out) {
            if !seen.insert(id.0) {
                continue;
            }
            if let Some(proof) = cache.prove(id) {
                trace_reveals.push((id.0, cache.digest(trace, id)?, proof));
            }
        }
    }
    let mut op_proofs = Vec::with_capacity(sub.len());
    for idx in sub.start..sub.end {
        let proof = graph_tree
            .prove(idx)
            .ok_or_else(|| ProtocolError::BadRecord(format!("no graph leaf {idx}")))?;
        op_proofs.push((idx, proof));
    }
    let mut param_proofs = Vec::new();
    for name in &sub.param_refs {
        let leaf_index = graph
            .params()
            .keys()
            .position(|k| k == name)
            .ok_or_else(|| ProtocolError::BadRecord(format!("unknown parameter {name:?}")))?;
        let proof = weight_tree
            .prove(leaf_index)
            .ok_or_else(|| ProtocolError::BadRecord(format!("no weight leaf {leaf_index}")))?;
        param_proofs.push((name.clone(), proof));
    }
    Ok(SubgraphRecord {
        sub: sub.clone(),
        live_in_hash,
        live_out_hash,
        op_proofs,
        param_proofs,
        trace_reveals,
    })
}

/// Verifies a record against the committed roots (challenger side).
///
/// Returns the number of Merkle proof verifications performed (the
/// paper's "Merkle checks" metric).
///
/// # Errors
///
/// Returns [`ProtocolError::BadRecord`] on any failed proof.
pub fn verify_record(
    graph: &Graph,
    graph_root: &Digest,
    weight_root: &Digest,
    record: &SubgraphRecord,
) -> Result<u64> {
    verify_record_anchored(graph, graph_root, weight_root, None, record).map(|(checks, _)| checks)
}

/// [`verify_record`] with the reveal-verification rule: when `trace_root`
/// is the root bound into `C0`, **every** live-in and live-out node must
/// carry a revealed digest that opens against it via a Merkle path, and
/// the record's interface hashes must re-derive from exactly those
/// revealed digests. A tampered or stale digest cache therefore cannot
/// steer the round — it fails here, attributably.
///
/// Returns `(merkle_checks, reveal_checks)`.
///
/// # Errors
///
/// Returns [`ProtocolError::BadRecord`] on any failed provenance proof and
/// [`ProtocolError::RevealMismatch`] (naming the first offending node) on
/// a missing, mis-indexed, or non-opening reveal, or interface hashes that
/// do not re-derive from the revealed digests.
pub fn verify_record_anchored(
    graph: &Graph,
    graph_root: &Digest,
    weight_root: &Digest,
    trace_root: Option<&Digest>,
    record: &SubgraphRecord,
) -> Result<(u64, u64)> {
    let mut checks = 0u64;
    for (idx, proof) in &record.op_proofs {
        let node = graph.node(tao_graph::NodeId(*idx))?;
        checks += 1;
        if !verify_graph_leaf(graph_root, node, proof) {
            return Err(ProtocolError::BadRecord(format!(
                "graph proof for node {idx} invalid"
            )));
        }
    }
    for (name, proof) in &record.param_proofs {
        let tensor = graph.param(name)?;
        checks += 1;
        if !verify_weight_leaf(weight_root, name, tensor, proof) {
            return Err(ProtocolError::BadRecord(format!(
                "weight proof for {name:?} invalid"
            )));
        }
    }
    let mut reveal_checks = 0u64;
    if let Some(root) = trace_root {
        let revealed: HashMap<usize, (&Digest, &InclusionProof)> = record
            .trace_reveals
            .iter()
            .map(|(id, d, p)| (*id, (d, p)))
            .collect();
        for (ids, want, side) in [
            (&record.sub.live_in, &record.live_in_hash, "live-in"),
            (&record.sub.live_out, &record.live_out_hash, "live-out"),
        ] {
            let mut h = Sha256::new();
            for &id in ids.iter() {
                let (digest, proof) = revealed.get(&id.0).ok_or_else(|| {
                    ProtocolError::RevealMismatch {
                        node: id,
                        detail: format!("{side} digest never revealed"),
                    }
                })?;
                reveal_checks += 1;
                if proof.index != id.0 || !verify_inclusion(root, &digest[..], proof) {
                    return Err(ProtocolError::RevealMismatch {
                        node: id,
                        detail: format!("{side} reveal does not open against the committed root"),
                    });
                }
                h.update(&digest[..]);
            }
            if h.finalize() != *want {
                return Err(ProtocolError::RevealMismatch {
                    node: *ids.first().unwrap_or(&NodeId(record.sub.start)),
                    detail: format!("{side} hash does not re-derive from the revealed digests"),
                });
            }
        }
    }
    Ok((checks, reveal_checks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::{execute, extract, GraphBuilder, OpKind};
    use tao_merkle::{graph_tree as build_gt, weight_tree as build_wt};
    use tao_tensor::{KernelConfig, Tensor};

    fn setup() -> (Graph, Execution, MerkleTree, MerkleTree) {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[4, 4], -1.0, 1.0, 1));
        let m = b.op("m", OpKind::MatMul, &[x, w]);
        let r = b.op("r", OpKind::Relu, &[m]);
        let s = b.op("s", OpKind::Softmax, &[r]);
        let g = b.finish(vec![s]).unwrap();
        let input = Tensor::<f32>::rand_uniform(&[2, 4], -1.0, 1.0, 2);
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        let gt = build_gt(&g);
        let wt = build_wt(&g);
        (g, exec, gt, wt)
    }

    #[test]
    fn record_roundtrip_verifies() {
        let (g, exec, gt, wt) = setup();
        let sub = extract(&g, 2, 4).unwrap();
        let rec = make_record(&g, &gt, &wt, &sub, &exec).unwrap();
        let checks = verify_record(&g, &gt.root(), &wt.root(), &rec).unwrap();
        assert_eq!(
            checks as usize,
            rec.op_proofs.len() + rec.param_proofs.len()
        );
        assert!(rec.byte_size() > 80);
    }

    #[test]
    fn record_with_param_refs() {
        let (g, exec, gt, wt) = setup();
        // Slice containing only the matmul references parameter "w".
        let sub = extract(&g, 2, 3).unwrap();
        let rec = make_record(&g, &gt, &wt, &sub, &exec).unwrap();
        assert_eq!(rec.param_proofs.len(), 1);
        assert!(verify_record(&g, &gt.root(), &wt.root(), &rec).is_ok());
    }

    #[test]
    fn tampered_root_rejected() {
        let (g, exec, gt, wt) = setup();
        let sub = extract(&g, 2, 4).unwrap();
        let rec = make_record(&g, &gt, &wt, &sub, &exec).unwrap();
        let mut bad_root = gt.root();
        bad_root[0] ^= 0xff;
        assert!(verify_record(&g, &bad_root, &wt.root(), &rec).is_err());
    }

    #[test]
    fn tampered_proof_rejected() {
        let (g, exec, gt, wt) = setup();
        let sub = extract(&g, 2, 4).unwrap();
        let mut rec = make_record(&g, &gt, &wt, &sub, &exec).unwrap();
        rec.op_proofs[0].0 = 0; // Claim the slice starts at a different op.
        assert!(verify_record(&g, &gt.root(), &wt.root(), &rec).is_err());
    }

    #[test]
    fn cached_records_equal_uncached_and_count_rehashes() {
        let (g, exec, gt, wt) = setup();
        let sub = extract(&g, 2, 4).unwrap();
        let plain = make_record(&g, &gt, &wt, &sub, &exec).unwrap();
        assert!(plain.trace_reveals.is_empty(), "no commitment, no reveals");

        // Committed digests: identical hashes plus interface reveals,
        // zero rehashed leaves, and the reveals open against the root.
        let commitment = tao_merkle::TraceCommitment::build(&exec.values);
        let mut cache = TraceDigestCache::new(Some(&commitment));
        let cached = make_record_with(&g, &gt, &wt, &sub, &exec, &mut cache).unwrap();
        assert_eq!(cached.live_in_hash, plain.live_in_hash);
        assert_eq!(cached.live_out_hash, plain.live_out_hash);
        assert_eq!(cached.op_proofs, plain.op_proofs);
        assert_eq!(cached.param_proofs, plain.param_proofs);
        assert_eq!(
            cached.trace_reveals.len(),
            sub.live_in.len() + sub.live_out.len()
        );
        assert!(cached.byte_size() > plain.byte_size());
        assert_eq!(cache.rehashed_leaves(), 0);
        let root = commitment.root();
        let (_, reveal_checks) =
            verify_record_anchored(&g, &gt.root(), &wt.root(), Some(&root), &cached).unwrap();
        assert_eq!(reveal_checks as usize, cached.trace_reveals.len());
        // The plain record carries no reveals, so anchored verification
        // must reject it: reveals are mandatory once a root is committed.
        assert!(matches!(
            verify_record_anchored(&g, &gt.root(), &wt.root(), Some(&root), &plain),
            Err(ProtocolError::RevealMismatch { .. })
        ));
        // A tampered revealed digest fails to open against the root.
        let mut tampered = cached.clone();
        tampered.trace_reveals[0].1[0] ^= 0x01;
        assert!(matches!(
            verify_record_anchored(&g, &gt.root(), &wt.root(), Some(&root), &tampered),
            Err(ProtocolError::RevealMismatch { .. })
        ));

        // Lazy cache: same record, rehashes each node once then memoizes.
        let mut lazy = TraceDigestCache::new(None);
        let first = make_record_with(&g, &gt, &wt, &sub, &exec, &mut lazy).unwrap();
        assert_eq!(first, plain);
        let after_first = lazy.rehashed_leaves();
        assert!(after_first > 0);
        let second = make_record_with(&g, &gt, &wt, &sub, &exec, &mut lazy).unwrap();
        assert_eq!(second, plain);
        assert_eq!(lazy.rehashed_leaves(), after_first, "memoized across rounds");
    }

    #[test]
    fn interface_hashes_bind_values() {
        let (g, exec, gt, wt) = setup();
        let sub = extract(&g, 3, 4).unwrap();
        let rec = make_record(&g, &gt, &wt, &sub, &exec).unwrap();
        // A perturbed trace yields a different live-out hash.
        let mut perturbed = exec.clone();
        perturbed.values[3].data_mut()[0] += 0.1;
        let rec2 = make_record(&g, &gt, &wt, &sub, &perturbed).unwrap();
        assert_ne!(rec.live_out_hash, rec2.live_out_hash);
        assert_eq!(rec.live_in_hash, rec2.live_in_hash);
    }
}
