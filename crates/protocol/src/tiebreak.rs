//! Deterministic, pre-committed tie-break rules for discrete decisions
//! (§7): when competing candidates' logits fall within the accepted
//! tolerance, honest executors must still converge on the *same* token or
//! class, otherwise continuous numerical drift becomes discrete step-level
//! divergence in multi-step generation.

use tao_merkle::{Digest, Sha256};

/// A committed tie-break rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TieBreakRule {
    /// Among candidates within `margin` of the maximum logit, pick the
    /// lowest index (lexicographic).
    Lexicographic {
        /// Committed tolerance margin.
        margin: f64,
    },
    /// Among candidates within `margin`, pick by a hash seeded from
    /// committed public data (input hash, step index) — verifiable and
    /// deterministic, but not index-biased.
    HashSeeded {
        /// Committed tolerance margin.
        margin: f64,
    },
}

impl TieBreakRule {
    /// Resolves the argmax under the rule. `seed` is derived from
    /// committed public data (ignored by the lexicographic rule).
    pub fn select(&self, logits: &[f32], seed: &Digest) -> Option<usize> {
        if logits.is_empty() {
            return None;
        }
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let (margin, hashed) = match *self {
            TieBreakRule::Lexicographic { margin } => (margin, false),
            TieBreakRule::HashSeeded { margin } => (margin, true),
        };
        let near: Vec<usize> = logits
            .iter()
            .enumerate()
            .filter(|(_, &z)| (max as f64 - z as f64) <= margin)
            .map(|(i, _)| i)
            .collect();
        if near.len() == 1 || !hashed {
            return near.first().copied();
        }
        // Verifiable hash-seeded pick among the near-ties.
        let mut h = Sha256::new();
        h.update(seed);
        for &i in &near {
            h.update(&(i as u64).to_le_bytes());
        }
        let digest = h.finalize();
        let pick =
            u64::from_le_bytes(digest[..8].try_into().expect("8 bytes")) as usize % near.len();
        Some(near[pick])
    }
}

/// Seed for the hash rule from committed public data.
pub fn tie_seed(input_hash: &Digest, step: u64) -> Digest {
    let mut h = Sha256::new();
    h.update(input_hash);
    h.update(&step.to_le_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_merkle::sha256;

    #[test]
    fn clear_winner_unaffected() {
        let logits = [0.1f32, 5.0, 0.2];
        let seed = sha256(b"x");
        for rule in [
            TieBreakRule::Lexicographic { margin: 1e-4 },
            TieBreakRule::HashSeeded { margin: 1e-4 },
        ] {
            assert_eq!(rule.select(&logits, &seed), Some(1));
        }
    }

    #[test]
    fn lexicographic_picks_lowest_index_among_ties() {
        let logits = [1.0f32, 1.0 + 1e-6, 0.0];
        let rule = TieBreakRule::Lexicographic { margin: 1e-4 };
        assert_eq!(rule.select(&logits, &sha256(b"s")), Some(0));
    }

    #[test]
    fn hash_seeded_is_deterministic_and_seed_sensitive() {
        let logits = [1.0f32, 1.0, 1.0, -5.0];
        let rule = TieBreakRule::HashSeeded { margin: 1e-3 };
        let s1 = tie_seed(&sha256(b"input"), 3);
        let s2 = tie_seed(&sha256(b"input"), 4);
        let a = rule.select(&logits, &s1).unwrap();
        let b = rule.select(&logits, &s1).unwrap();
        assert_eq!(a, b, "same committed data, same pick");
        assert!(a < 3, "picks among the near-ties only");
        // Different steps may pick differently (not guaranteed, but the
        // seeds must differ).
        assert_ne!(s1, s2);
    }

    #[test]
    fn converges_across_tolerance_level_drift() {
        // Two honest executions whose logits differ within tolerance must
        // select the same token.
        let a = [0.5f32, 0.999_999, 1.0];
        let b = [0.5f32, 1.0, 0.999_999]; // Cross-device drift swaps the top-2.
        let rule = TieBreakRule::Lexicographic { margin: 1e-3 };
        let seed = sha256(b"ctx");
        assert_eq!(rule.select(&a, &seed), rule.select(&b, &seed));
    }

    #[test]
    fn empty_logits() {
        let rule = TieBreakRule::Lexicographic { margin: 1e-3 };
        assert_eq!(rule.select(&[], &sha256(b"s")), None);
    }
}
