//! Multi-step workloads (§7): temporal commitments over step states with
//! prefix finality, and time-first bisection to the earliest offending
//! step.
//!
//! Decoding, diffusion sampling and training all produce a sequence of
//! step states (per-token logits, latents, checkpoints). TAO layers time
//! over the operator dispute game: commit to a temporal Merkle chain of
//! step states, bisect *across time* to the earliest offending step, then
//! dispute *within* that step's operator DAG as usual. Steps before the
//! earliest offense finalize even while later steps remain contested.

use tao_merkle::{tensor_hash, Digest, InclusionProof, MerkleTree};
use tao_tensor::Tensor;

/// A committed trajectory of step states.
#[derive(Debug, Clone)]
pub struct TemporalCommitment {
    tree: MerkleTree,
    hashes: Vec<Digest>,
}

impl TemporalCommitment {
    /// Commits a trajectory of step-state tensors.
    pub fn new(states: &[Tensor<f32>]) -> Self {
        let hashes: Vec<Digest> = states.iter().map(tensor_hash).collect();
        let leaves: Vec<Vec<u8>> = hashes.iter().map(|h| h.to_vec()).collect();
        TemporalCommitment {
            tree: MerkleTree::from_leaves(&leaves),
            hashes,
        }
    }

    /// The trajectory root committed on the coordinator.
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// Number of committed steps.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True for an empty trajectory.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Inclusion proof for one step state.
    pub fn prove_step(&self, step: usize) -> Option<InclusionProof> {
        self.tree.prove(step)
    }

    /// Verifies a revealed step state against the root.
    pub fn verify_step(root: &Digest, state: &Tensor<f32>, proof: &InclusionProof) -> bool {
        tao_merkle::verify_inclusion(root, tensor_hash(state).as_ref(), proof)
    }
}

/// Verdict of the time-first search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalVerdict {
    /// Every step agreed within tolerance: the whole trajectory finalizes.
    AllAgree,
    /// Steps `0..step` finalize (prefix finality); `step` goes to the
    /// operator-level dispute game.
    OffenseAt {
        /// Earliest offending step index.
        step: usize,
        /// Probe comparisons performed by the bisection.
        probes: usize,
    },
}

/// Finds the earliest step whose states disagree beyond `within`, via
/// binary search over the *agreement prefix* — `O(log n)` probes instead
/// of a linear scan, matching the dispute game's round complexity.
///
/// `agree(i)` must be monotone (once a step disagrees, the challenger
/// would keep disputing from there): it returns true when the proposer and
/// challenger states for step `i` agree within tolerance. The search
/// relies on the standard optimistic-rollup invariant that disagreement,
/// once it appears, persists (the challenger recomputes later steps from
/// the earliest disputed state).
pub fn earliest_offense(n_steps: usize, mut agree: impl FnMut(usize) -> bool) -> TemporalVerdict {
    if n_steps == 0 {
        return TemporalVerdict::AllAgree;
    }
    let mut probes = 0;
    // Invariant: all steps < lo agree; some step in [lo, hi) may offend.
    let (mut lo, mut hi) = (0usize, n_steps);
    // First confirm there is any offense at all.
    probes += 1;
    if agree(n_steps - 1) {
        return TemporalVerdict::AllAgree;
    }
    while lo < hi - 1 {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if agree(mid - 1) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // `lo` is the earliest step whose state disagrees; probe the edge as
    // the evidence the challenger would post. Under the monotone-agreement
    // contract the edge must agree, so the probe cannot change the answer.
    probes += 1;
    if lo > 0 {
        debug_assert!(agree(lo - 1), "agreement predicate is not monotone");
    }
    TemporalVerdict::OffenseAt { step: lo, probes }
}

/// Convenience: element-wise max-abs agreement predicate for tensor
/// trajectories.
pub fn states_agree(a: &Tensor<f32>, b: &Tensor<f32>, tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.data()
        .iter()
        .zip(b.data())
        .all(|(&x, &y)| ((x as f64) - (y as f64)).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory(n: usize) -> Vec<Tensor<f32>> {
        (0..n)
            .map(|i| Tensor::<f32>::randn(&[4, 4], i as u64).mul_scalar(0.1))
            .collect()
    }

    #[test]
    fn commitment_roundtrip() {
        let traj = trajectory(7);
        let c = TemporalCommitment::new(&traj);
        assert_eq!(c.len(), 7);
        for (i, state) in traj.iter().enumerate() {
            let p = c.prove_step(i).unwrap();
            assert!(TemporalCommitment::verify_step(&c.root(), state, &p));
        }
        // Wrong state fails.
        let p0 = c.prove_step(0).unwrap();
        assert!(!TemporalCommitment::verify_step(&c.root(), &traj[1], &p0));
    }

    #[test]
    fn tampered_step_changes_root() {
        let traj = trajectory(5);
        let c1 = TemporalCommitment::new(&traj);
        let mut tampered = traj.clone();
        tampered[3].data_mut()[0] += 1e-3;
        let c2 = TemporalCommitment::new(&tampered);
        assert_ne!(c1.root(), c2.root());
    }

    #[test]
    fn bisection_finds_earliest_offense() {
        // Disagreement starts at step 6 of 20 and persists.
        for offense in [0usize, 1, 6, 19] {
            let verdict = earliest_offense(20, |i| i < offense);
            assert_eq!(
                verdict,
                match verdict {
                    TemporalVerdict::OffenseAt { probes, .. } => TemporalVerdict::OffenseAt {
                        step: offense,
                        probes
                    },
                    v => v,
                },
                "offense at {offense}"
            );
            if let TemporalVerdict::OffenseAt { probes, .. } = verdict {
                assert!(probes <= 7, "expected O(log 20) probes, got {probes}");
            } else {
                panic!("expected offense at {offense}");
            }
        }
    }

    #[test]
    fn all_agree_short_circuits() {
        let verdict = earliest_offense(100, |_| true);
        assert_eq!(verdict, TemporalVerdict::AllAgree);
        assert_eq!(earliest_offense(0, |_| false), TemporalVerdict::AllAgree);
    }

    #[test]
    fn prefix_finality_semantics() {
        let proposer = trajectory(8);
        let mut challenger = proposer.clone();
        // Challenger disagrees from step 5 on.
        for s in challenger.iter_mut().skip(5) {
            *s = s.add_scalar(0.01);
        }
        let verdict = earliest_offense(8, |i| states_agree(&proposer[i], &challenger[i], 1e-6));
        let TemporalVerdict::OffenseAt { step, .. } = verdict else {
            panic!("expected offense");
        };
        assert_eq!(step, 5);
        // Steps before 5 are final: identical states.
        for i in 0..5 {
            assert!(states_agree(&proposer[i], &challenger[i], 0.0));
        }
    }

    #[test]
    fn states_agree_checks_shape_and_tol() {
        let a = Tensor::<f32>::ones(&[2]);
        let b = Tensor::<f32>::ones(&[3]);
        assert!(!states_agree(&a, &b, 1.0));
        let c = Tensor::<f32>::from_vec(vec![1.0, 1.0 + 1e-4], &[2]).unwrap();
        assert!(states_agree(&a, &c, 1e-3));
        assert!(!states_agree(&a, &c, 1e-6));
    }
}
