//! Economic soundness and incentives (§5.5, Eq. 16–25), and the sharded
//! account [`Ledger`] that moves the money.
//!
//! Incentive analysis ([`EconParams`]) stays in f64 — the paper's
//! utility formulas are real-valued and never touch the ledger. The
//! *amounts* the protocol actually moves are derived once, exactly, into
//! an [`EconAmounts`] ([`Money`] deposits/fees plus [`Ppm`] split rates)
//! and all ledger arithmetic from that point on is exact i128
//! fixed-point: see the `tao-money` crate docs for the scale and the
//! rounding policy.
//!
//! The ledger shards accounts over [`ACCOUNT_SHARDS`] independent locks so
//! bond operations on unrelated accounts never contend. Operations that
//! touch two accounts ([`Ledger::transfer`], [`Ledger::escrow_transfer`])
//! acquire both shard locks in **ascending shard-index order** (one lock
//! when the accounts collide on a shard), which makes the lock order a
//! total order and rules out deadlock by construction. Single-account
//! operations hold exactly one shard lock. The supply counter is only ever
//! locked on its own, after every account lock has been released.

use std::collections::HashMap;

use parking_lot::Mutex;
use tao_money::{Money, Ppm};

use crate::error::ProtocolError;

/// Parameters of the fee-and-deposit mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconParams {
    /// Randomized-audit probability `φ`.
    pub phi: f64,
    /// Voluntary-challenge probability `φ_ch`.
    pub phi_ch: f64,
    /// False-negative rate `ε₁` (fraud missed inside tolerances).
    pub eps1: f64,
    /// False-positive rate `ε₂` (honest work wrongly flagged).
    pub eps2: f64,
    /// Honest execution cost `C_p`.
    pub c_p: f64,
    /// Cheap-cheating cost `C'_p` (e.g. smaller model).
    pub c_p_cheap: f64,
    /// Targeted-cheating cost `C''_p` (adversarial perturbation search).
    pub c_p_targeted: f64,
    /// Task reward `R_p`.
    pub r_p: f64,
    /// Challenger verification cost `C_ch`.
    pub c_ch: f64,
    /// Committee member cost `C_a`.
    pub c_a: f64,
    /// Challenger share of the slash `α_ch`.
    pub alpha_ch: f64,
    /// Committee share of the slash `α_cm`.
    pub alpha_cm: f64,
    /// Committee size `n`.
    pub n_committee: usize,
    /// Committee fee `F_i` paid when the claim is ruled clean.
    pub committee_fee: f64,
    /// Proposer deposit `D_p`.
    pub d_p: f64,
    /// Challenger deposit `D_ch`.
    pub d_ch: f64,
}

impl EconParams {
    /// A plausible default parameterization used by the examples and the
    /// feasibility bench.
    pub fn default_market() -> Self {
        EconParams {
            phi: 0.05,
            phi_ch: 0.10,
            eps1: 0.0,
            eps2: 0.0,
            c_p: 10.0,
            c_p_cheap: 2.0,
            c_p_targeted: 10_000.0,
            r_p: 15.0,
            c_ch: 12.0,
            c_a: 1.0,
            alpha_ch: 0.5,
            alpha_cm: 0.3,
            n_committee: 5,
            committee_fee: 2.0,
            d_p: 500.0,
            d_ch: 50.0,
        }
    }

    /// Detection probability `d(φ, φ_ch, ε₁) = (φ + φ_ch)(1 − ε₁)`
    /// (Eq. 16).
    pub fn detection_prob(&self) -> f64 {
        (self.phi + self.phi_ch) * (1.0 - self.eps1)
    }

    /// Proposer payoff for honest execution (Eq. 17).
    pub fn u_proposer_honest(&self, s_slash: f64) -> f64 {
        self.r_p - self.c_p - self.eps2 * s_slash
    }

    /// Proposer payoff for cheap cheating (Eq. 18).
    pub fn u_proposer_cheap(&self, s_slash: f64) -> f64 {
        self.r_p - self.c_p_cheap - self.detection_prob() * s_slash
    }

    /// Proposer payoff for targeted cheating (Eq. 19); empirically
    /// `C''_p ≫ R_p`, so this is ≤ 0 in practice.
    pub fn u_proposer_targeted(&self) -> f64 {
        self.r_p - self.c_p_targeted
    }

    /// Voluntary challenger payoff against a guilty proposer (Eq. 21).
    pub fn u_challenger_guilty(&self, s_slash: f64) -> f64 {
        (1.0 - self.eps1) * self.alpha_ch * s_slash - self.c_ch
    }

    /// Voluntary challenger payoff against a clean proposer (Eq. 22).
    pub fn u_challenger_clean(&self) -> f64 {
        -self.c_ch - (1.0 - self.eps2) * self.d_ch
    }

    /// Committee member payoff when guilt is found (Eq. 24).
    pub fn u_committee_guilty(&self, s_slash: f64) -> f64 {
        self.alpha_cm * s_slash / self.n_committee as f64 - self.c_a
    }

    /// Committee member payoff when the claim is ruled clean (Eq. 25).
    pub fn u_committee_clean(&self) -> f64 {
        self.committee_fee - self.c_a
    }

    /// Lower bound `L₁` making honesty dominate cheap cheating (Eq. 20);
    /// `None` when `d(·) ≤ ε₂` (no slash can deter).
    pub fn l1(&self) -> Option<f64> {
        let d = self.detection_prob();
        if d <= self.eps2 {
            return None;
        }
        Some((self.c_p - self.c_p_cheap) / (d - self.eps2))
    }

    /// Lower bound `L₂` making honest challenges profitable (Eq. 23).
    pub fn l2(&self) -> Option<f64> {
        let denom = self.alpha_ch * (1.0 - self.eps1);
        if denom <= 0.0 {
            return None;
        }
        Some(self.c_ch / denom)
    }

    /// Lower bound `L₃` making committee participation sustainable.
    pub fn l3(&self) -> Option<f64> {
        if self.alpha_cm <= 0.0 {
            return None;
        }
        Some(self.n_committee as f64 * self.c_a / self.alpha_cm)
    }

    /// The feasible slash region `(L, D_p]` with `L = max{L₁, L₂, L₃}`;
    /// `None` when empty.
    pub fn feasible_slash_region(&self) -> Option<(f64, f64)> {
        let l = self.l1()?.max(self.l2()?).max(self.l3()?);
        if l < self.d_p {
            Some((l, self.d_p))
        } else {
            None
        }
    }

    /// True when `s_slash` satisfies every incentive constraint.
    pub fn incentive_compatible(&self, s_slash: f64) -> bool {
        match self.feasible_slash_region() {
            Some((lo, hi)) => s_slash > lo && s_slash <= hi,
            None => false,
        }
    }

    /// The exact ledger amounts these parameters imply: the one
    /// sanctioned f64 → [`Money`] conversion, performed once per
    /// coordinator at construction. `None` when any amount is
    /// non-finite, negative, or out of range, or when the split shares
    /// exceed 100%.
    pub fn amounts(&self) -> Option<EconAmounts> {
        let d_p = Money::from_f64(self.d_p)?;
        let d_ch = Money::from_f64(self.d_ch)?;
        let r_p = Money::from_f64(self.r_p)?;
        let committee_fee = Money::from_f64(self.committee_fee)?;
        if d_p < Money::ZERO || d_ch < Money::ZERO || r_p < Money::ZERO
            || committee_fee < Money::ZERO
        {
            return None;
        }
        let alpha_ch = Ppm::from_fraction(self.alpha_ch)?;
        let alpha_cm = Ppm::from_fraction(self.alpha_cm)?;
        if alpha_ch.0 as u64 + alpha_cm.0 as u64 > 1_000_000 {
            return None;
        }
        Some(EconAmounts {
            d_p,
            d_ch,
            r_p,
            committee_fee,
            alpha_ch,
            alpha_cm,
        })
    }
}

/// The exact fixed-point amounts the coordinator moves: every ledger
/// operation draws from these, never from the f64 [`EconParams`].
/// Derived once by [`EconParams::amounts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EconAmounts {
    /// Proposer deposit `D_p`.
    pub d_p: Money,
    /// Challenger deposit `D_ch`.
    pub d_ch: Money,
    /// Task reward `R_p`.
    pub r_p: Money,
    /// Per-member committee fee `F_i`.
    pub committee_fee: Money,
    /// Challenger share of the slash `α_ch`.
    pub alpha_ch: Ppm,
    /// Committee share of the slash `α_cm`.
    pub alpha_cm: Ppm,
}

/// Default number of account shards. The shard count is runtime
/// configurable via [`Ledger::with_shards`] and always rounded up to a
/// power of two so the shard index is a mask of the account-name hash.
pub const ACCOUNT_SHARDS: usize = 16;

/// One account's funds: the free balance and the escrowed bonds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Account {
    balance: Money,
    escrow: Money,
}

/// A sharded account ledger: balances and escrow split over
/// [`ACCOUNT_SHARDS`] locks keyed by a deterministic hash of the account
/// name, so operations on accounts in distinct shards run fully in
/// parallel.
///
/// Every operation conserves `Σ balances + Σ escrow` against the running
/// [`injected`](Ledger::injected) supply counter: mints add to it, burns
/// subtract from it, and transfers/reservations/releases leave it
/// untouched. Because balances are exact integers, at any quiescent
/// point (no operation in flight) [`total_value`](Ledger::total_value)
/// equals `injected()` **exactly** — the conservation invariant the
/// concurrency tests assert with `==` after every phase.
#[derive(Debug)]
pub struct Ledger {
    shards: Vec<Mutex<HashMap<String, Account>>>,
    /// Net value injected from outside (mints minus burns).
    supply: Mutex<Money>,
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new()
    }
}

impl Ledger {
    /// An empty ledger with the default shard count
    /// ([`ACCOUNT_SHARDS`]).
    pub fn new() -> Self {
        Self::with_shards(ACCOUNT_SHARDS)
    }

    /// An empty ledger with `shards` account shards, rounded up to the
    /// next power of two (minimum 1 — a 1-shard ledger is the serial
    /// special case, useful as a differential baseline).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        Ledger {
            shards: (0..shards).map(|_| Mutex::default()).collect(),
            supply: Mutex::new(Money::ZERO),
        }
    }

    /// The (power-of-two) number of account shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard index of an account (FNV-1a of the name,
    /// masked). Deterministic so shard placement — and therefore which
    /// operations can contend — is stable across runs and machines.
    pub fn shard_of(&self, account: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in account.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) & (self.shards.len() - 1)
    }

    /// Credits an account with freshly injected value (external funding or
    /// a protocol reward).
    pub fn mint(&self, account: &str, amount: Money) {
        if amount.is_zero() {
            return;
        }
        self.shards[self.shard_of(account)]
            .lock()
            .entry(account.to_string())
            .or_default()
            .balance += amount;
        *self.supply.lock() += amount;
    }

    /// Free (non-escrowed) balance of an account.
    pub fn balance(&self, account: &str) -> Money {
        self.shards[self.shard_of(account)]
            .lock()
            .get(account)
            .map_or(Money::ZERO, |a| a.balance)
    }

    /// Escrowed balance of an account.
    pub fn escrowed(&self, account: &str) -> Money {
        self.shards[self.shard_of(account)]
            .lock()
            .get(account)
            .map_or(Money::ZERO, |a| a.escrow)
    }

    /// Reserves a deposit: moves `amount` from the free balance into
    /// escrow, atomically under the account's shard lock.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InsufficientFunds`] naming the account, the
    /// requested amount and the available balance when the balance is
    /// below `amount`; nothing moves in that case.
    pub fn reserve(&self, account: &str, amount: Money) -> Result<(), ProtocolError> {
        let mut shard = self.shards[self.shard_of(account)].lock();
        let acct = shard.entry(account.to_string()).or_default();
        if acct.balance < amount {
            return Err(ProtocolError::InsufficientFunds {
                account: account.to_string(),
                needed: amount,
                available: acct.balance,
            });
        }
        acct.balance -= amount;
        acct.escrow += amount;
        Ok(())
    }

    /// Releases up to `amount` from escrow back to the free balance;
    /// returns how much actually moved (clamped to the escrowed funds).
    pub fn release(&self, account: &str, amount: Money) -> Money {
        let mut shard = self.shards[self.shard_of(account)].lock();
        let acct = shard.entry(account.to_string()).or_default();
        let moved = amount.min(acct.escrow).max(Money::ZERO);
        acct.escrow -= moved;
        acct.balance += moved;
        moved
    }

    /// Destroys up to `amount` of escrowed funds (a slash burn); returns
    /// how much was actually burned.
    pub fn burn_escrow(&self, account: &str, amount: Money) -> Money {
        let burned = {
            let mut shard = self.shards[self.shard_of(account)].lock();
            let acct = shard.entry(account.to_string()).or_default();
            let burned = amount.min(acct.escrow).max(Money::ZERO);
            acct.escrow -= burned;
            burned
        };
        if !burned.is_zero() {
            *self.supply.lock() -= burned;
        }
        burned
    }

    /// Atomic two-account transfer of free balance. Both shard locks are
    /// taken in ascending shard-index order (a single lock when the
    /// accounts share a shard), so concurrent reverse transfers cannot
    /// deadlock.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InsufficientFunds`] when `from`'s balance is
    /// below `amount`; nothing moves in that case.
    pub fn transfer(&self, from: &str, to: &str, amount: Money) -> Result<(), ProtocolError> {
        if from == to {
            let balance = self.balance(from);
            return if balance < amount {
                Err(ProtocolError::InsufficientFunds {
                    account: from.to_string(),
                    needed: amount,
                    available: balance,
                })
            } else {
                Ok(())
            };
        }
        self.with_pair(from, to, |a, b| {
            if a.balance < amount {
                return Err(ProtocolError::InsufficientFunds {
                    account: from.to_string(),
                    needed: amount,
                    available: a.balance,
                });
            }
            a.balance -= amount;
            b.balance += amount;
            Ok(())
        })
    }

    /// Atomically moves up to `amount` from `from`'s **escrow** into
    /// `to`'s free balance (a forfeiture or slash share), with the same
    /// ascending lock order as [`transfer`](Self::transfer). Returns how
    /// much moved.
    pub fn escrow_transfer(&self, from: &str, to: &str, amount: Money) -> Money {
        if from == to {
            return self.release(from, amount);
        }
        self.with_pair(from, to, |a, b| {
            let moved = amount.min(a.escrow).max(Money::ZERO);
            a.escrow -= moved;
            b.balance += moved;
            moved
        })
    }

    /// Runs `f` with both accounts' entries under their shard locks,
    /// acquired in ascending shard-index order. `from` and `to` must be
    /// distinct account names.
    fn with_pair<R>(&self, from: &str, to: &str, f: impl FnOnce(&mut Account, &mut Account) -> R) -> R {
        debug_assert_ne!(from, to, "with_pair requires distinct accounts");
        let (ia, ib) = (self.shard_of(from), self.shard_of(to));
        if ia == ib {
            let mut shard = self.shards[ia].lock();
            shard.entry(from.to_string()).or_default();
            shard.entry(to.to_string()).or_default();
            // Two live &mut entries into one map are impossible; operate on
            // local copies and write both back under the same lock.
            let mut a = shard[from];
            let mut b = shard[to];
            let out = f(&mut a, &mut b);
            shard.insert(from.to_string(), a);
            shard.insert(to.to_string(), b);
            out
        } else {
            let (lo, hi) = (ia.min(ib), ia.max(ib));
            let g_lo = self.shards[lo].lock();
            let g_hi = self.shards[hi].lock();
            let (mut g_from, mut g_to) = if ia == lo { (g_lo, g_hi) } else { (g_hi, g_lo) };
            let a = g_from.entry(from.to_string()).or_default();
            // The guards borrow disjoint maps, so both entries are live.
            let b = g_to.entry(to.to_string()).or_default();
            f(a, b)
        }
    }

    /// Net value injected from outside (mints minus burns).
    pub fn injected(&self) -> Money {
        *self.supply.lock()
    }

    /// `Σ balances + Σ escrow` over every account. Integer addition is
    /// associative, so no summation order is imposed. Only meaningful at
    /// quiescent points: the shard locks are taken one at a time, not
    /// all at once.
    pub fn total_value(&self) -> Money {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .values()
                    .map(|a| a.balance + a.escrow)
                    .sum::<Money>()
            })
            .sum()
    }

    /// Every account name the ledger has seen, sorted.
    pub fn accounts(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }
}

impl Clone for Ledger {
    fn clone(&self) -> Self {
        Ledger {
            shards: self.shards.iter().map(|s| Mutex::new(s.lock().clone())).collect(),
            supply: Mutex::new(*self.supply.lock()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(credits: i64) -> Money {
        Money::from_credits(credits)
    }

    #[test]
    fn detection_prob_formula() {
        let p = EconParams::default_market();
        assert!((p.detection_prob() - 0.15).abs() < 1e-12);
        let lossy = EconParams { eps1: 0.5, ..p };
        assert!((lossy.detection_prob() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn default_market_has_nonempty_region() {
        let p = EconParams::default_market();
        let (lo, hi) = p.feasible_slash_region().expect("region exists");
        assert!(lo < hi);
        // Any slash inside satisfies all three constraints.
        let s = (lo + hi) / 2.0;
        assert!(p.incentive_compatible(s));
        assert!(p.u_proposer_honest(s) > p.u_proposer_cheap(s));
        assert!(p.u_challenger_guilty(s) > 0.0);
        assert!(p.u_challenger_clean() < 0.0, "spam must not pay");
        assert!(p.u_committee_guilty(s) > 0.0);
        assert!(p.u_committee_clean() > 0.0);
    }

    #[test]
    fn targeted_cheating_unprofitable() {
        let p = EconParams::default_market();
        assert!(p.u_proposer_targeted() < 0.0);
    }

    #[test]
    fn region_empty_when_detection_too_weak() {
        let p = EconParams {
            phi: 0.0,
            phi_ch: 0.0,
            ..EconParams::default_market()
        };
        assert!(p.l1().is_none());
        assert!(p.feasible_slash_region().is_none());
        assert!(!p.incentive_compatible(100.0));
    }

    #[test]
    fn region_empty_when_deposit_too_small() {
        let p = EconParams {
            d_p: 1.0,
            ..EconParams::default_market()
        };
        assert!(p.feasible_slash_region().is_none());
    }

    #[test]
    fn l_bounds_move_with_parameters() {
        let p = EconParams::default_market();
        let tighter = EconParams { c_ch: 24.0, ..p };
        assert!(tighter.l2().unwrap() > p.l2().unwrap());
        let bigger_committee = EconParams {
            n_committee: 10,
            ..p
        };
        assert!(bigger_committee.l3().unwrap() > p.l3().unwrap());
    }

    #[test]
    fn slash_below_region_fails_constraints() {
        let p = EconParams::default_market();
        let (lo, _) = p.feasible_slash_region().unwrap();
        assert!(!p.incentive_compatible(lo * 0.5));
    }

    #[test]
    fn amounts_derive_exactly_from_default_market() {
        let a = EconParams::default_market().amounts().expect("finite params");
        assert_eq!(a.d_p, m(500));
        assert_eq!(a.d_ch, m(50));
        assert_eq!(a.r_p, m(15));
        assert_eq!(a.committee_fee, m(2));
        assert_eq!(a.alpha_ch, Ppm(500_000));
        assert_eq!(a.alpha_cm, Ppm(300_000));
    }

    #[test]
    fn amounts_reject_bad_parameterizations() {
        let p = EconParams::default_market();
        assert!(EconParams { d_p: f64::NAN, ..p }.amounts().is_none());
        assert!(EconParams { d_ch: -1.0, ..p }.amounts().is_none());
        // Shares summing past 100% would make the burn negative.
        assert!(EconParams { alpha_ch: 0.7, alpha_cm: 0.4, ..p }.amounts().is_none());
    }

    #[test]
    fn ledger_roundtrip_conserves_value() {
        let l = Ledger::new();
        l.mint("a", m(100));
        l.mint("b", m(50));
        assert_eq!(l.balance("a"), m(100));
        l.reserve("a", m(30)).unwrap();
        assert_eq!(l.balance("a"), m(70));
        assert_eq!(l.escrowed("a"), m(30));
        // Satellite 1: the failure is a typed error naming the account,
        // the requirement, and the shortfall — not a bare f64.
        match l.reserve("b", m(51)).unwrap_err() {
            ProtocolError::InsufficientFunds { account, needed, available } => {
                assert_eq!(account, "b");
                assert_eq!(needed, m(51));
                assert_eq!(available, m(50));
            }
            other => panic!("expected InsufficientFunds, got {other:?}"),
        }
        assert_eq!(l.release("a", m(10)), m(10));
        assert_eq!(l.release("a", m(1_000)), m(20), "release clamps to escrow");
        assert_eq!(l.total_value(), l.injected());
        assert_eq!(l.injected(), m(150));
    }

    #[test]
    fn ledger_burn_reduces_supply() {
        let l = Ledger::new();
        l.mint("a", m(100));
        l.reserve("a", m(60)).unwrap();
        assert_eq!(l.burn_escrow("a", m(45)), m(45));
        assert_eq!(l.burn_escrow("a", m(45)), m(15), "burn clamps to escrow");
        assert_eq!(l.injected(), m(40));
        assert_eq!(l.total_value(), l.injected());
    }

    #[test]
    fn ledger_transfers_are_atomic_and_conserving() {
        let l = Ledger::new();
        l.mint("a", m(100));
        l.mint("b", m(10));
        l.transfer("a", "b", m(25)).unwrap();
        assert_eq!(l.balance("a"), m(75));
        assert_eq!(l.balance("b"), m(35));
        match l.transfer("a", "b", m(80)).unwrap_err() {
            ProtocolError::InsufficientFunds { account, needed, available } => {
                assert_eq!(account, "a");
                assert_eq!(needed, m(80));
                assert_eq!(available, m(75));
            }
            other => panic!("expected InsufficientFunds, got {other:?}"),
        }
        l.reserve("a", m(50)).unwrap();
        assert_eq!(l.escrow_transfer("a", "b", m(30)), m(30));
        assert_eq!(l.escrow_transfer("a", "b", m(30)), m(20), "clamped");
        assert_eq!(l.escrowed("a"), Money::ZERO);
        assert_eq!(l.balance("b"), m(85));
        // Self-transfers are no-ops on the balance.
        l.transfer("a", "a", m(5)).unwrap();
        assert_eq!(l.balance("a"), m(25));
        assert_eq!(l.total_value(), l.injected());
    }

    #[test]
    fn ledger_same_shard_pair_uses_one_lock() {
        // Find two distinct names that collide on a shard, then transfer
        // between them: the single-lock path must still move the money.
        let l = Ledger::new();
        let a = "acct-0".to_string();
        let mut b = None;
        for i in 1..10_000 {
            let cand = format!("acct-{i}");
            if l.shard_of(&cand) == l.shard_of(&a) {
                b = Some(cand);
                break;
            }
        }
        let b = b.expect("a colliding account exists");
        l.mint(&a, m(10));
        l.transfer(&a, &b, m(4)).unwrap();
        assert_eq!(l.balance(&a), m(6));
        assert_eq!(l.balance(&b), m(4));
    }

    #[test]
    fn ledger_reverse_transfers_from_threads_never_deadlock_or_lose_updates() {
        // The two-lock-ordering trap: threads transferring around a cycle
        // in both directions. Every iteration is net-zero, so any lost
        // update or deadlock shows up as a balance mismatch or a hang.
        let l = std::sync::Arc::new(Ledger::new());
        for acct in ["x", "y", "z"] {
            l.mint(acct, m(1_000));
        }
        std::thread::scope(|scope| {
            for t in 0..8 {
                let l = l.clone();
                scope.spawn(move || {
                    for _ in 0..500 {
                        if t % 2 == 0 {
                            l.transfer("x", "y", m(1)).unwrap();
                            l.transfer("y", "z", m(1)).unwrap();
                            l.transfer("z", "x", m(1)).unwrap();
                        } else {
                            l.transfer("z", "y", m(1)).unwrap();
                            l.transfer("y", "x", m(1)).unwrap();
                            l.transfer("x", "z", m(1)).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(l.balance("x"), m(1_000));
        assert_eq!(l.balance("y"), m(1_000));
        assert_eq!(l.balance("z"), m(1_000));
        assert_eq!(l.injected(), m(3_000));
    }
}
