//! Economic soundness and incentives (§5.5, Eq. 16–25).

/// Parameters of the fee-and-deposit mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconParams {
    /// Randomized-audit probability `φ`.
    pub phi: f64,
    /// Voluntary-challenge probability `φ_ch`.
    pub phi_ch: f64,
    /// False-negative rate `ε₁` (fraud missed inside tolerances).
    pub eps1: f64,
    /// False-positive rate `ε₂` (honest work wrongly flagged).
    pub eps2: f64,
    /// Honest execution cost `C_p`.
    pub c_p: f64,
    /// Cheap-cheating cost `C'_p` (e.g. smaller model).
    pub c_p_cheap: f64,
    /// Targeted-cheating cost `C''_p` (adversarial perturbation search).
    pub c_p_targeted: f64,
    /// Task reward `R_p`.
    pub r_p: f64,
    /// Challenger verification cost `C_ch`.
    pub c_ch: f64,
    /// Committee member cost `C_a`.
    pub c_a: f64,
    /// Challenger share of the slash `α_ch`.
    pub alpha_ch: f64,
    /// Committee share of the slash `α_cm`.
    pub alpha_cm: f64,
    /// Committee size `n`.
    pub n_committee: usize,
    /// Committee fee `F_i` paid when the claim is ruled clean.
    pub committee_fee: f64,
    /// Proposer deposit `D_p`.
    pub d_p: f64,
    /// Challenger deposit `D_ch`.
    pub d_ch: f64,
}

impl EconParams {
    /// A plausible default parameterization used by the examples and the
    /// feasibility bench.
    pub fn default_market() -> Self {
        EconParams {
            phi: 0.05,
            phi_ch: 0.10,
            eps1: 0.0,
            eps2: 0.0,
            c_p: 10.0,
            c_p_cheap: 2.0,
            c_p_targeted: 10_000.0,
            r_p: 15.0,
            c_ch: 12.0,
            c_a: 1.0,
            alpha_ch: 0.5,
            alpha_cm: 0.3,
            n_committee: 5,
            committee_fee: 2.0,
            d_p: 500.0,
            d_ch: 50.0,
        }
    }

    /// Detection probability `d(φ, φ_ch, ε₁) = (φ + φ_ch)(1 − ε₁)`
    /// (Eq. 16).
    pub fn detection_prob(&self) -> f64 {
        (self.phi + self.phi_ch) * (1.0 - self.eps1)
    }

    /// Proposer payoff for honest execution (Eq. 17).
    pub fn u_proposer_honest(&self, s_slash: f64) -> f64 {
        self.r_p - self.c_p - self.eps2 * s_slash
    }

    /// Proposer payoff for cheap cheating (Eq. 18).
    pub fn u_proposer_cheap(&self, s_slash: f64) -> f64 {
        self.r_p - self.c_p_cheap - self.detection_prob() * s_slash
    }

    /// Proposer payoff for targeted cheating (Eq. 19); empirically
    /// `C''_p ≫ R_p`, so this is ≤ 0 in practice.
    pub fn u_proposer_targeted(&self) -> f64 {
        self.r_p - self.c_p_targeted
    }

    /// Voluntary challenger payoff against a guilty proposer (Eq. 21).
    pub fn u_challenger_guilty(&self, s_slash: f64) -> f64 {
        (1.0 - self.eps1) * self.alpha_ch * s_slash - self.c_ch
    }

    /// Voluntary challenger payoff against a clean proposer (Eq. 22).
    pub fn u_challenger_clean(&self) -> f64 {
        -self.c_ch - (1.0 - self.eps2) * self.d_ch
    }

    /// Committee member payoff when guilt is found (Eq. 24).
    pub fn u_committee_guilty(&self, s_slash: f64) -> f64 {
        self.alpha_cm * s_slash / self.n_committee as f64 - self.c_a
    }

    /// Committee member payoff when the claim is ruled clean (Eq. 25).
    pub fn u_committee_clean(&self) -> f64 {
        self.committee_fee - self.c_a
    }

    /// Lower bound `L₁` making honesty dominate cheap cheating (Eq. 20);
    /// `None` when `d(·) ≤ ε₂` (no slash can deter).
    pub fn l1(&self) -> Option<f64> {
        let d = self.detection_prob();
        if d <= self.eps2 {
            return None;
        }
        Some((self.c_p - self.c_p_cheap) / (d - self.eps2))
    }

    /// Lower bound `L₂` making honest challenges profitable (Eq. 23).
    pub fn l2(&self) -> Option<f64> {
        let denom = self.alpha_ch * (1.0 - self.eps1);
        if denom <= 0.0 {
            return None;
        }
        Some(self.c_ch / denom)
    }

    /// Lower bound `L₃` making committee participation sustainable.
    pub fn l3(&self) -> Option<f64> {
        if self.alpha_cm <= 0.0 {
            return None;
        }
        Some(self.n_committee as f64 * self.c_a / self.alpha_cm)
    }

    /// The feasible slash region `(L, D_p]` with `L = max{L₁, L₂, L₃}`;
    /// `None` when empty.
    pub fn feasible_slash_region(&self) -> Option<(f64, f64)> {
        let l = self.l1()?.max(self.l2()?).max(self.l3()?);
        if l < self.d_p {
            Some((l, self.d_p))
        } else {
            None
        }
    }

    /// True when `s_slash` satisfies every incentive constraint.
    pub fn incentive_compatible(&self, s_slash: f64) -> bool {
        match self.feasible_slash_region() {
            Some((lo, hi)) => s_slash > lo && s_slash <= hi,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_prob_formula() {
        let p = EconParams::default_market();
        assert!((p.detection_prob() - 0.15).abs() < 1e-12);
        let lossy = EconParams { eps1: 0.5, ..p };
        assert!((lossy.detection_prob() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn default_market_has_nonempty_region() {
        let p = EconParams::default_market();
        let (lo, hi) = p.feasible_slash_region().expect("region exists");
        assert!(lo < hi);
        // Any slash inside satisfies all three constraints.
        let s = (lo + hi) / 2.0;
        assert!(p.incentive_compatible(s));
        assert!(p.u_proposer_honest(s) > p.u_proposer_cheap(s));
        assert!(p.u_challenger_guilty(s) > 0.0);
        assert!(p.u_challenger_clean() < 0.0, "spam must not pay");
        assert!(p.u_committee_guilty(s) > 0.0);
        assert!(p.u_committee_clean() > 0.0);
    }

    #[test]
    fn targeted_cheating_unprofitable() {
        let p = EconParams::default_market();
        assert!(p.u_proposer_targeted() < 0.0);
    }

    #[test]
    fn region_empty_when_detection_too_weak() {
        let p = EconParams {
            phi: 0.0,
            phi_ch: 0.0,
            ..EconParams::default_market()
        };
        assert!(p.l1().is_none());
        assert!(p.feasible_slash_region().is_none());
        assert!(!p.incentive_compatible(100.0));
    }

    #[test]
    fn region_empty_when_deposit_too_small() {
        let p = EconParams {
            d_p: 1.0,
            ..EconParams::default_market()
        };
        assert!(p.feasible_slash_region().is_none());
    }

    #[test]
    fn l_bounds_move_with_parameters() {
        let p = EconParams::default_market();
        let tighter = EconParams { c_ch: 24.0, ..p };
        assert!(tighter.l2().unwrap() > p.l2().unwrap());
        let bigger_committee = EconParams {
            n_committee: 10,
            ..p
        };
        assert!(bigger_committee.l3().unwrap() > p.l3().unwrap());
    }

    #[test]
    fn slash_below_region_fails_constraints() {
        let p = EconParams::default_market();
        let (lo, _) = p.feasible_slash_region().unwrap();
        assert!(!p.incentive_compatible(lo * 0.5));
    }
}
