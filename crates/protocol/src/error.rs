//! Error types for the protocol crate.

use core::fmt;

use tao_money::Money;

/// Errors from the coordinator, dispute game, and adjudication.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// Referenced claim does not exist.
    UnknownClaim(u64),
    /// Action invalid in the claim's current state.
    BadState(String),
    /// Account balance insufficient for the required deposit; amounts
    /// are exact [`Money`].
    InsufficientFunds {
        /// Account name.
        account: String,
        /// Required amount.
        needed: Money,
        /// Available amount.
        available: Money,
    },
    /// Challenge arrived after the window closed.
    WindowClosed {
        /// Claim id.
        claim: u64,
        /// Current tick.
        now: u64,
        /// Window end tick.
        deadline: u64,
    },
    /// A Merkle record failed verification.
    BadRecord(String),
    /// Underlying graph failure.
    Graph(String),
    /// Underlying bound-engine failure.
    Bound(String),
    /// Committee configuration invalid (e.g. even size or empty).
    BadCommittee(String),
    /// A revealed trace digest failed to open against the trace root
    /// bound into the claim commitment `C0` (missing, mis-indexed, or
    /// non-verifying Merkle opening, or interface hashes that do not
    /// re-derive from the reveals). Unlike [`ProtocolError::BadRecord`],
    /// this is *attributable* fraud evidence against the proposer: only
    /// the party that computed `C0` could have produced the commitment
    /// the reveal disagrees with.
    RevealMismatch {
        /// First node whose reveal failed.
        node: tao_graph::NodeId,
        /// What went wrong with the reveal.
        detail: String,
    },
    /// No committed threshold exists for an operator that requires one.
    ///
    /// Screening and dispute selection compare error profiles against the
    /// committed per-operator thresholds; asking for a node the bundle
    /// never calibrated is a structural bug in the deployment (or a claim
    /// over the wrong graph), not evidence of fraud, so it surfaces as an
    /// error instead of an infinite exceedance.
    MissingThreshold(tao_graph::NodeId),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownClaim(id) => write!(f, "unknown claim #{id}"),
            ProtocolError::BadState(m) => write!(f, "invalid state transition: {m}"),
            ProtocolError::InsufficientFunds {
                account,
                needed,
                available,
            } => {
                write!(f, "{account}: needs {needed}, has {available}")
            }
            ProtocolError::WindowClosed {
                claim,
                now,
                deadline,
            } => {
                write!(
                    f,
                    "claim #{claim}: challenge at tick {now} after deadline {deadline}"
                )
            }
            ProtocolError::BadRecord(m) => write!(f, "record verification failed: {m}"),
            ProtocolError::RevealMismatch { node, detail } => {
                write!(f, "reveal for node {node} rejected: {detail}")
            }
            ProtocolError::Graph(m) => write!(f, "graph error: {m}"),
            ProtocolError::Bound(m) => write!(f, "bound error: {m}"),
            ProtocolError::BadCommittee(m) => write!(f, "bad committee: {m}"),
            ProtocolError::MissingThreshold(node) => {
                write!(f, "no committed threshold for operator {node}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<tao_graph::GraphError> for ProtocolError {
    fn from(e: tao_graph::GraphError) -> Self {
        ProtocolError::Graph(e.to_string())
    }
}

impl From<tao_bounds::BoundError> for ProtocolError {
    fn from(e: tao_bounds::BoundError) -> Self {
        ProtocolError::Bound(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProtocolError::UnknownClaim(7).to_string().contains("#7"));
        let e = ProtocolError::WindowClosed {
            claim: 1,
            now: 20,
            deadline: 10,
        };
        assert!(e.to_string().contains("deadline 10"));
    }
}
