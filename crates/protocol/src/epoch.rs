//! Canonical settlement/gas-log encoding and per-epoch Merkle
//! commitments.
//!
//! The gas meter's `log` vector fills in meter-append order, which under
//! parallel settlement depends on thread interleaving. What *is*
//! deterministic is the `(claim, seq)` key on every event: `seq` comes
//! from the claim's own counter, allocated under the claim's shard lock,
//! so a claim's events are totally ordered by protocol causality.
//! [`canonical_log`] therefore stable-sorts by claim id then sequence
//! (coordinator-lane events — `claim: None` — sort first and keep their
//! lane order, which is deterministic because the coordinator only emits
//! them from serial phases), yielding a byte-identical log for any
//! interleaving of the same batch.
//!
//! [`epoch_root`] Merkle-commits the canonical log over a fixed
//! little-endian binary encoding ([`encode_event`]):
//!
//! ```text
//! leaf := has_claim: u8 | claim: u64 LE | seq: u32 LE
//!       | gas: u64 LE | amount: i128 LE (micro-credits)
//!       | action_len: u32 LE | action bytes
//! ```
//!
//! The root is the same [`tao_merkle::MerkleTree`] commitment scheme the
//! rest of the protocol uses (prefixed leaf/node hashing), so an epoch's
//! economic history is auditable exactly like a trace: identical across
//! worker counts, reproducible from the CSV export, and committable
//! on-chain as 32 bytes.

use tao_merkle::{Digest, MerkleTree};
use tao_money::Money;

use crate::gas::{GasEvent, GasMeter};

/// The committed record of one marketplace epoch: the canonical event
/// log and its Merkle root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochCommitment {
    /// Epoch index (0-based, in seal order).
    pub index: u64,
    /// Canonically ordered events (see [`canonical_log`]).
    pub entries: Vec<GasEvent>,
    /// Merkle root over [`encode_event`]-encoded entries; the all-zero
    /// digest for an empty epoch.
    pub root: Digest,
}

impl EpochCommitment {
    /// Net money amount over the epoch's entries (sum of event amounts).
    pub fn total_amount(&self) -> Money {
        self.entries.iter().map(|e| e.amount).sum()
    }

    /// Total gas over the epoch's entries.
    pub fn total_gas(&self) -> u64 {
        self.entries.iter().map(|e| e.gas).sum()
    }
}

/// Returns the meter's events in canonical order: coordinator-lane
/// events first (in lane order), then claim events sorted by
/// `(claim id, seq)`. The sort is stable and the key is unique per
/// event, so the result is independent of meter-append interleaving.
pub fn canonical_log(meter: &GasMeter) -> Vec<GasEvent> {
    let mut events = meter.log.clone();
    sort_canonical(&mut events);
    events
}

/// Sorts a drained event list into canonical order in place.
pub fn sort_canonical(events: &mut [GasEvent]) {
    events.sort_by(|a, b| match (a.claim, b.claim) {
        (None, None) => a.seq.cmp(&b.seq),
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(ca), Some(cb)) => ca.cmp(&cb).then(a.seq.cmp(&b.seq)),
    });
}

/// Fixed little-endian binary encoding of one event (the Merkle leaf
/// preimage). Unambiguous: fixed-width fields plus a length-prefixed
/// action string.
pub fn encode_event(e: &GasEvent) -> Vec<u8> {
    let action = e.action.as_bytes();
    let mut out = Vec::with_capacity(1 + 8 + 4 + 8 + 16 + 4 + action.len());
    out.push(e.claim.is_some() as u8);
    out.extend_from_slice(&e.claim.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&e.seq.to_le_bytes());
    out.extend_from_slice(&e.gas.to_le_bytes());
    out.extend_from_slice(&e.amount.units().to_le_bytes());
    out.extend_from_slice(&(action.len() as u32).to_le_bytes());
    out.extend_from_slice(action);
    out
}

/// Concatenated [`encode_event`] bytes of a canonical log — the "log
/// bytes" the determinism tests compare across worker counts.
pub fn encode_log(events: &[GasEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in events {
        out.extend_from_slice(&encode_event(e));
    }
    out
}

/// Merkle root over the canonically ordered events; the all-zero digest
/// when the log is empty.
pub fn epoch_root(events: &[GasEvent]) -> Digest {
    if events.is_empty() {
        return Digest::default();
    }
    let leaves: Vec<Vec<u8>> = events.iter().map(encode_event).collect();
    MerkleTree::from_leaves(&leaves).root()
}

/// Renders a canonical log as CSV (`epoch,claim,seq,action,gas,amount`),
/// the artifact format CI uploads. `claim` is empty for lane events;
/// `amount` is exact decimal credits.
pub fn log_csv(epoch: u64, events: &[GasEvent]) -> String {
    let mut out = String::from("epoch,claim,seq,action,gas,amount\n");
    for e in events {
        let claim = e.claim.map(|c| c.to_string()).unwrap_or_default();
        out.push_str(&format!(
            "{epoch},{claim},{},{},{},{}\n",
            e.seq, e.action, e.gas, e.amount
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(claim: Option<u64>, seq: u32, action: &str, gas: u64, credits: i64) -> GasEvent {
        GasEvent {
            claim,
            seq,
            action: action.to_string(),
            gas,
            amount: Money::from_credits(credits),
        }
    }

    #[test]
    fn canonical_order_is_interleaving_independent() {
        // Two meter fills of the same events in different append orders.
        let mut a = GasMeter::new();
        a.charge("register_model", 10);
        a.charge_claim(2, 0, "commit_claim", 5, Money::from_credits(500));
        a.charge_claim(1, 1, "settle", 7, Money::from_credits(120));
        a.charge_claim(1, 0, "commit_claim", 5, Money::from_credits(500));

        let mut b = GasMeter::new();
        b.charge_claim(1, 0, "commit_claim", 5, Money::from_credits(500));
        b.charge_claim(1, 1, "settle", 7, Money::from_credits(120));
        b.charge("register_model", 10);
        b.charge_claim(2, 0, "commit_claim", 5, Money::from_credits(500));

        let ca = canonical_log(&a);
        let cb = canonical_log(&b);
        assert_eq!(ca, cb);
        assert_eq!(encode_log(&ca), encode_log(&cb));
        assert_eq!(epoch_root(&ca), epoch_root(&cb));
        // Lane events lead, then (claim, seq) ascending.
        assert_eq!(ca[0].claim, None);
        assert_eq!((ca[1].claim, ca[1].seq), (Some(1), 0));
        assert_eq!((ca[2].claim, ca[2].seq), (Some(1), 1));
        assert_eq!((ca[3].claim, ca[3].seq), (Some(2), 0));
    }

    #[test]
    fn encoding_is_injective_on_distinct_events() {
        let e1 = ev(Some(1), 0, "settle", 7, 120);
        let e2 = ev(Some(1), 1, "settle", 7, 120);
        let e3 = ev(None, 0, "settle", 7, 120);
        let e4 = ev(Some(1), 0, "settle", 7, 121);
        let encs: Vec<Vec<u8>> = [&e1, &e2, &e3, &e4].iter().map(|e| encode_event(e)).collect();
        for i in 0..encs.len() {
            for j in (i + 1)..encs.len() {
                assert_ne!(encs[i], encs[j], "events {i} and {j} collide");
            }
        }
    }

    #[test]
    fn root_changes_with_any_field() {
        let base = vec![ev(Some(1), 0, "settle", 7, 120)];
        let gas = vec![ev(Some(1), 0, "settle", 8, 120)];
        let amt = vec![ev(Some(1), 0, "settle", 7, 121)];
        assert_ne!(epoch_root(&base), epoch_root(&gas));
        assert_ne!(epoch_root(&base), epoch_root(&amt));
        assert_eq!(epoch_root(&[]), Digest::default());
    }

    #[test]
    fn csv_has_header_and_exact_amounts() {
        let events = vec![
            ev(None, 0, "register_model", 10, 0),
            ev(Some(3), 0, "commit_claim", 5, 500),
        ];
        let csv = log_csv(2, &events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "epoch,claim,seq,action,gas,amount");
        assert_eq!(lines[1], "2,,0,register_model,10,0");
        assert_eq!(lines[2], "2,3,0,commit_claim,5,500");
    }
}
