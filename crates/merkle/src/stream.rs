//! Streamed trace commitments: hash node values *during* the forward pass
//! instead of in a post-hoc pass over the finished trace.
//!
//! [`StreamingCommitter`] implements [`tao_graph::ValueObserver`], so
//! either executor ([`tao_graph::execute_observed`] for traced runs,
//! [`tao_graph::forward_observed`] for pooled inference) feeds it each
//! node's final value exactly once. On multi-core hosts the hashing runs
//! on a dedicated worker thread — an `Arc`-cheap tensor clone crosses an
//! mpsc channel and the canonical encoding + SHA-256 overlap the remaining
//! compute, which is what collapses the flagged-path screening surcharge.
//! On a single core (or by request) the committer hashes inline at the
//! observation point, which still skips the second traversal of the trace.
//!
//! Both modes finish by assembling the identical
//! [`TraceCommitment`] via [`TraceCommitment::from_digests`]; the digests
//! are **bit-identical** to the post-hoc [`TraceCommitment::build`]
//! oracle by contract, asserted across backends and modes by the
//! `commit_equiv` differential suite.
//!
//! [`TokenChain`] extends the same machinery to autoregressive decoding:
//! each decode step appends one leaf binding `(step, token, step trace
//! root)` to a domain-separated rolling chain, so a session `n + 1` tokens
//! long extends the `n`-token commitment with two compression calls and
//! zero prefix rehashing — long sessions stay disputable at token
//! granularity.

use std::sync::mpsc;
use std::thread::JoinHandle;

use tao_graph::{NodeId, ValueObserver};
use tao_tensor::Tensor;

use crate::canon::canon_tensor_sink;
use crate::commit::TraceCommitment;
use crate::multiway::{Backend, FastSha256};
use crate::sha256::{Digest, Sha256};

/// Work shipped to the background hashing thread.
enum Job {
    /// Hash a (cloned) live value; the caller keeps the original.
    Hash(usize, Tensor<f32>),
    /// Hash an *owned* retired value and send its buffer back on the
    /// return channel once digested, so the caller can recycle it.
    HashAndReturn(usize, Tensor<f32>),
}

enum Mode {
    Inline {
        backend: Backend,
    },
    Background {
        tx: Option<mpsc::Sender<Job>>,
        handle: Option<JoinHandle<Vec<(usize, Digest)>>>,
        /// Buffers coming back from `Job::HashAndReturn` (one message per
        /// job; `None` when the tensor's storage was still shared).
        buf_rx: mpsc::Receiver<Option<Vec<f32>>>,
        /// Outstanding `HashAndReturn` jobs not yet drained (kept ≤ 1 so
        /// the pool state after each retirement is deterministic).
        in_flight: usize,
    },
}

/// Streams per-node digests out of a running forward pass and assembles
/// the [`TraceCommitment`] at the end; see the module docs for the
/// threading model.
pub struct StreamingCommitter {
    slots: Vec<Option<Digest>>,
    mode: Mode,
}

impl StreamingCommitter {
    /// A committer for a graph of `len` nodes, choosing the overlapped
    /// background worker when the host has more than one core and inline
    /// hashing otherwise.
    pub fn new(len: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 2 && len > 0 {
            Self::background(len)
        } else {
            Self::inline(len)
        }
    }

    /// A committer that hashes inline at each observation point (no worker
    /// thread). Deterministic-mode pin for tests; also what [`new`]
    /// picks on single-core hosts.
    ///
    /// [`new`]: StreamingCommitter::new
    pub fn inline(len: usize) -> Self {
        StreamingCommitter {
            slots: vec![None; len],
            mode: Mode::Inline {
                backend: Backend::auto(),
            },
        }
    }

    /// A committer that ships values to a dedicated hashing thread; a live
    /// observation is an `Arc` refcount bump plus a channel send, while a
    /// *retired* observation (pooled executor) hands the worker the owned
    /// tensor and gets the buffer back for the pool after digesting — so
    /// background hashing no longer defeats buffer recycling.
    pub fn background(len: usize) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let (buf_tx, buf_rx) = mpsc::channel::<Option<Vec<f32>>>();
        let handle = std::thread::spawn(move || {
            let backend = Backend::auto();
            let mut out = Vec::new();
            while let Ok(job) = rx.recv() {
                match job {
                    Job::Hash(id, t) => out.push((id, hash_value(backend, &t))),
                    Job::HashAndReturn(id, t) => {
                        out.push((id, hash_value(backend, &t)));
                        // Send even a `None` so the drain accounting stays
                        // one message per job; ignore a hung-up receiver
                        // (finish() may have dropped it).
                        let _ = buf_tx.send(t.into_unique_data());
                    }
                }
            }
            out
        });
        StreamingCommitter {
            slots: vec![None; len],
            mode: Mode::Background {
                tx: Some(tx),
                handle: Some(handle),
                buf_rx,
                in_flight: 0,
            },
        }
    }

    /// Blocks until every outstanding retired buffer has come back from
    /// the background worker and returns it to `pool` (no-op in inline
    /// mode, where buffers are pooled at the observation point). Call this
    /// between the end of a pooled forward pass and [`finish`]: the last
    /// retirement's buffer is still with the worker when the pass ends,
    /// and draining it keeps the pool's contents identical to an
    /// unobserved run instead of dropping one buffer per pass.
    ///
    /// [`finish`]: StreamingCommitter::finish
    pub fn drain_returns(&mut self, pool: &mut tao_graph::BufferPool) {
        if let Mode::Background {
            buf_rx, in_flight, ..
        } = &mut self.mode
        {
            while *in_flight > 0 {
                if let Ok(Some(buf)) = buf_rx.recv() {
                    pool.give(buf);
                }
                *in_flight -= 1;
            }
        }
    }

    /// Number of nodes this committer expects to observe.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the committer expects no observations.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Joins any in-flight hashing and assembles the commitment.
    ///
    /// # Panics
    ///
    /// Panics if any node was never observed (or observed out of range) —
    /// both executors guarantee the exactly-once contract, so a miss is a
    /// caller bug, not a runtime condition.
    pub fn finish(mut self) -> TraceCommitment {
        if let Mode::Background { tx, handle, .. } = &mut self.mode {
            drop(tx.take());
            let hashed = handle
                .take()
                .expect("finish called once")
                .join()
                .expect("hash worker panicked");
            for (id, digest) in hashed {
                self.slots[id] = Some(digest);
            }
        }
        let digests: Vec<Digest> = self
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, d)| d.unwrap_or_else(|| panic!("node {i} never observed")))
            .collect();
        TraceCommitment::from_digests(digests)
    }
}

impl ValueObserver for StreamingCommitter {
    fn observe(&mut self, id: NodeId, value: &Tensor<f32>) {
        match &mut self.mode {
            Mode::Inline { backend } => {
                self.slots[id.0] = Some(hash_value(*backend, value));
            }
            Mode::Background { tx, .. } => {
                // The worker outlives every send (tx drops in finish), so
                // this cannot fail while the committer is alive.
                tx.as_ref()
                    .expect("observe after finish")
                    .send(Job::Hash(id.0, value.clone()))
                    .expect("hash worker exited early");
                self.slots[id.0] = Some([0u8; 32]); // placeholder: marks "observed"
            }
        }
    }

    fn observe_retired(&mut self, id: NodeId, value: Tensor<f32>, pool: &mut tao_graph::BufferPool) {
        match &mut self.mode {
            Mode::Inline { backend } => {
                self.slots[id.0] = Some(hash_value(*backend, &value));
                if let Some(buf) = value.into_unique_data() {
                    pool.give(buf);
                }
            }
            Mode::Background {
                tx,
                buf_rx,
                in_flight,
                ..
            } => {
                // Drain the previous retirement's buffer back into the
                // pool before shipping the next one. Keeping at most one
                // HashAndReturn outstanding makes the pool contents after
                // every retirement deterministic (tests pin `pool_hits`),
                // while the hash still overlaps the compute between two
                // consecutive retirements.
                while *in_flight > 0 {
                    if let Ok(Some(buf)) = buf_rx.recv() {
                        pool.give(buf);
                    }
                    *in_flight -= 1;
                }
                tx.as_ref()
                    .expect("observe after finish")
                    .send(Job::HashAndReturn(id.0, value))
                    .expect("hash worker exited early");
                *in_flight += 1;
                self.slots[id.0] = Some([0u8; 32]); // placeholder: marks "observed"
            }
        }
    }
}

/// One node digest: the canonical tensor encoding streamed into the
/// fastest supported hasher — bit-identical to [`crate::tensor_hash`].
fn hash_value(backend: Backend, t: &Tensor<f32>) -> Digest {
    let mut h = FastSha256::with_backend(backend);
    canon_tensor_sink(t, &mut h);
    h.finalize()
}

/// Domain tags for the decode-time token chain.
const CHAIN_LEAF_DOMAIN: &[u8] = b"tao.v1.decode.leaf";
const CHAIN_NODE_DOMAIN: &[u8] = b"tao.v1.decode.chain";
const CHAIN_GENESIS_DOMAIN: &[u8] = b"tao.v1.decode.genesis";

/// A prefix-stable rolling commitment over an autoregressive decode: leaf
/// `t` binds `(t, token_t, r_t)` where `r_t` is the trace root of step
/// `t`'s forward pass, and the chain root after `t` steps binds the whole
/// prefix. Appending a token costs exactly two hashes — the prefix is
/// never recommitted — so `roots()[..n]` of an `n+1`-token chain equals
/// the `n`-token chain bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenChain {
    leaves: Vec<Digest>,
    roots: Vec<Digest>,
}

impl Default for TokenChain {
    fn default() -> Self {
        Self::new()
    }
}

impl TokenChain {
    /// An empty chain.
    pub fn new() -> Self {
        TokenChain {
            leaves: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// The chain root before any append (domain-separated genesis value).
    pub fn genesis() -> Digest {
        crate::sha256::sha256(CHAIN_GENESIS_DOMAIN)
    }

    /// Appends one decode step and returns the new chain root. `step_root`
    /// is the [`TraceCommitment`] root of the step's forward pass.
    pub fn append(&mut self, token: u64, step_root: &Digest) -> Digest {
        let t = self.leaves.len() as u64;
        let mut h = Sha256::new();
        h.update(CHAIN_LEAF_DOMAIN);
        h.update(&t.to_le_bytes());
        h.update(&token.to_le_bytes());
        h.update(step_root);
        let leaf = h.finalize();
        let mut h = Sha256::new();
        h.update(CHAIN_NODE_DOMAIN);
        h.update(&t.to_le_bytes());
        h.update(&self.root());
        h.update(&leaf);
        let root = h.finalize();
        self.leaves.push(leaf);
        self.roots.push(root);
        root
    }

    /// Rebuilds a chain from scratch over `(token, step_root)` pairs — the
    /// post-hoc differential oracle for the incremental [`append`] path.
    ///
    /// [`append`]: TokenChain::append
    pub fn from_steps(steps: &[(u64, Digest)]) -> Self {
        let mut chain = TokenChain::new();
        for (token, root) in steps {
            chain.append(*token, root);
        }
        chain
    }

    /// The current chain root ([`TokenChain::genesis`] when empty).
    pub fn root(&self) -> Digest {
        self.roots.last().copied().unwrap_or_else(Self::genesis)
    }

    /// The chain root after step `t` (prefix commitment).
    pub fn root_at(&self, t: usize) -> Option<&Digest> {
        self.roots.get(t)
    }

    /// All per-step leaves, in step order.
    pub fn leaves(&self) -> &[Digest] {
        &self.leaves
    }

    /// All per-step chain roots, in step order.
    pub fn roots(&self) -> &[Digest] {
        &self.roots
    }

    /// Number of appended steps.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True when no steps were appended.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::{execute, execute_observed, forward_observed, BufferPool, GraphBuilder, OpKind};
    use tao_tensor::KernelConfig;

    fn mlp() -> (tao_graph::Graph, Vec<Tensor<f32>>) {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w1 = b.parameter("w1", Tensor::<f32>::rand_uniform(&[8, 8], -0.5, 0.5, 1));
        let h = b.op("mm1", OpKind::MatMul, &[x, w1]);
        let r = b.op("relu", OpKind::Relu, &[h]);
        let w2 = b.parameter("w2", Tensor::<f32>::rand_uniform(&[8, 8], -0.5, 0.5, 2));
        let m = b.op("mm2", OpKind::MatMul, &[r, w2]);
        let a = b.op("res", OpKind::Add, &[m, x]);
        let g = b.finish(vec![a]).unwrap();
        let inputs = vec![Tensor::<f32>::rand_uniform(&[4, 8], -1.0, 1.0, 9)];
        (g, inputs)
    }

    #[test]
    fn streamed_commitment_equals_post_hoc_oracle_in_both_modes() {
        let (g, inputs) = mlp();
        let cfg = KernelConfig::reference();
        let trace = execute(&g, &inputs, &cfg, None).unwrap();
        let oracle = TraceCommitment::build(&trace.values);
        for background in [false, true] {
            let mut c = if background {
                StreamingCommitter::background(g.len())
            } else {
                StreamingCommitter::inline(g.len())
            };
            let streamed_trace = execute_observed(&g, &inputs, &cfg, None, &mut c).unwrap();
            assert_eq!(c.finish(), oracle, "traced, background={background}");
            assert_eq!(streamed_trace.values.len(), trace.values.len());

            let mut c = if background {
                StreamingCommitter::background(g.len())
            } else {
                StreamingCommitter::inline(g.len())
            };
            let mut pool = BufferPool::new();
            let outputs = forward_observed(&g, &inputs, &cfg, &mut pool, &mut c).unwrap();
            assert_eq!(c.finish(), oracle, "pooled, background={background}");
            assert_eq!(outputs[0].data(), trace.outputs(&g)[0].data());
        }
    }

    #[test]
    fn token_chain_is_prefix_stable_and_matches_oracle() {
        let steps: Vec<(u64, Digest)> = (0..7u64)
            .map(|t| (t * 13 + 1, crate::sha256::sha256(&t.to_le_bytes())))
            .collect();
        let full = TokenChain::from_steps(&steps);
        let mut incremental = TokenChain::new();
        assert_eq!(incremental.root(), TokenChain::genesis());
        for (n, (token, root)) in steps.iter().enumerate() {
            incremental.append(*token, root);
            // The n-step prefix of the full chain is the n-step chain.
            assert_eq!(full.roots()[..=n], incremental.roots()[..], "step {n}");
        }
        assert_eq!(incremental, full);
        // Every field is bound.
        let mut other = TokenChain::from_steps(&steps[..6]);
        other.append(steps[6].0 + 1, &steps[6].1);
        assert_ne!(other.root(), full.root());
    }
}
