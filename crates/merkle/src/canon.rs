//! Canonical byte serialization for hashing.
//!
//! `canon(·)` must be injective over the committed domain: two different
//! tensors (or operator signatures) must never serialize to the same
//! bytes. Every variable-length field is therefore length-prefixed.

use tao_graph::Node;
use tao_tensor::{Element, Tensor};

/// Appends a length-prefixed byte string.
fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Canonical serialization of a tensor: dtype tag, shape, row-major
/// strides, then raw little-endian element bytes.
pub fn canon_tensor<T: Element>(t: &Tensor<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(t.len() * 4 + 64);
    put_str(&mut out, T::DTYPE);
    out.extend_from_slice(&(t.rank() as u64).to_le_bytes());
    for &d in t.dims() {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for s in t.shape().strides() {
        out.extend_from_slice(&(s as u64).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes_vec());
    }
    out
}

/// Canonical serialization of a named parameter (`name` then tensor).
pub fn canon_param<T: Element>(name: &str, t: &Tensor<T>) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, name);
    put_bytes(&mut out, &canon_tensor(t));
    out
}

/// Canonical operator signature `σ(n)`: name, kind mnemonic, attribute
/// encoding, and input edges (topology is implied by the argument ids).
pub fn canon_signature(node: &Node) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(node.id.0 as u64).to_le_bytes());
    put_str(&mut out, &node.name);
    put_str(&mut out, node.kind.mnemonic());
    // Attribute encoding: the serde debug of the kind is stable within this
    // crate graph and covers every attribute (eps, stride, axes, ...).
    put_str(&mut out, &format!("{:?}", node.kind));
    out.extend_from_slice(&(node.inputs.len() as u64).to_le_bytes());
    for input in &node.inputs {
        out.extend_from_slice(&(input.0 as u64).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::{NodeId, OpKind};

    #[test]
    fn tensor_canon_distinguishes_shape() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_ne!(canon_tensor(&a), canon_tensor(&b));
    }

    #[test]
    fn tensor_canon_distinguishes_dtype() {
        let a = Tensor::<f32>::ones(&[2]);
        let b = Tensor::<f64>::ones(&[2]);
        assert_ne!(canon_tensor(&a), canon_tensor(&b));
    }

    #[test]
    fn tensor_canon_distinguishes_last_bit() {
        let a = Tensor::<f32>::from_vec(vec![1.0], &[1]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![1.0 + f32::EPSILON], &[1]).unwrap();
        assert_ne!(canon_tensor(&a), canon_tensor(&b));
    }

    #[test]
    fn param_canon_includes_name() {
        let t = Tensor::<f32>::ones(&[1]);
        assert_ne!(canon_param("a", &t), canon_param("b", &t));
    }

    #[test]
    fn signature_covers_attributes_and_edges() {
        let base = Node {
            id: NodeId(3),
            name: "conv".into(),
            kind: OpKind::Conv2d {
                stride: 1,
                padding: 0,
            },
            inputs: vec![NodeId(0), NodeId(1)],
        };
        let mut stride2 = base.clone();
        stride2.kind = OpKind::Conv2d {
            stride: 2,
            padding: 0,
        };
        assert_ne!(canon_signature(&base), canon_signature(&stride2));
        let mut rewired = base.clone();
        rewired.inputs = vec![NodeId(0), NodeId(2)];
        assert_ne!(canon_signature(&base), canon_signature(&rewired));
        let mut renamed = base.clone();
        renamed.name = "conv2".into();
        assert_ne!(canon_signature(&base), canon_signature(&renamed));
    }

    #[test]
    fn length_prefixing_prevents_concat_ambiguity() {
        // ("ab", "c") vs ("a", "bc") must differ.
        let mut x = Vec::new();
        put_str(&mut x, "ab");
        put_str(&mut x, "c");
        let mut y = Vec::new();
        put_str(&mut y, "a");
        put_str(&mut y, "bc");
        assert_ne!(x, y);
    }
}
