//! Canonical byte serialization for hashing.
//!
//! `canon(·)` must be injective over the committed domain: two different
//! tensors (or operator signatures) must never serialize to the same
//! bytes. Every variable-length field is therefore length-prefixed.
//!
//! Encoders come in two forms with identical output: the materializing
//! `canon_*` functions (seed behavior, and the differential oracles) and
//! the streaming `canon_*_sink` versions, which feed the same byte
//! sequence directly into a [`CanonSink`] — typically a hasher — so the
//! commitment hot path never allocates a per-leaf buffer.

use tao_graph::Node;
use tao_tensor::{Element, Tensor};

/// A byte sink for the streaming canonical encoders: an accumulating
/// `Vec<u8>` (materializing path) or an incremental hasher (the
/// zero-allocation commitment path).
pub trait CanonSink {
    /// Absorbs the next bytes of the canonical encoding.
    fn put(&mut self, bytes: &[u8]);
}

impl CanonSink for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

impl CanonSink for crate::sha256::Sha256 {
    fn put(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }
}

impl CanonSink for crate::multiway::FastSha256 {
    fn put(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }
}

/// Appends a length-prefixed byte string.
fn put_bytes(out: &mut impl CanonSink, bytes: &[u8]) {
    out.put(&(bytes.len() as u64).to_le_bytes());
    out.put(bytes);
}

/// Appends a length-prefixed UTF-8 string.
fn put_str(out: &mut impl CanonSink, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Streams the canonical little-endian element bytes of `data` into the
/// sink. On little-endian targets the in-memory representation of the
/// sealed float element types *is* the canonical encoding, so the whole
/// slice is fed as one borrow with no conversion buffer.
pub(crate) fn put_element_bytes<T: Element>(sink: &mut impl CanonSink, data: &[T]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `Element` is sealed to `f32`/`f64`, plain-old-data types
        // whose little-endian memory layout equals their canonical
        // `to_le_bytes` encoding on this target.
        let bytes = unsafe {
            core::slice::from_raw_parts(data.as_ptr().cast::<u8>(), core::mem::size_of_val(data))
        };
        sink.put(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for &v in data {
        sink.put(&v.to_le_bytes_vec());
    }
}

/// Byte length of [`canon_tensor`]'s encoding without materializing it.
pub fn canon_tensor_len<T: Element>(t: &Tensor<T>) -> usize {
    8 + T::DTYPE.len() + 8 + 16 * t.rank() + core::mem::size_of::<T>() * t.len()
}

/// Streams the canonical header (everything before the element bytes):
/// dtype tag, rank, shape, row-major strides. Identical for equal-shaped
/// tensors of one element type, which is what lets the trace committer
/// hash a shape group through the multi-lane compressor.
pub(crate) fn canon_header_sink<T: Element>(t: &Tensor<T>, sink: &mut impl CanonSink) {
    put_str(sink, T::DTYPE);
    sink.put(&(t.rank() as u64).to_le_bytes());
    for &d in t.dims() {
        sink.put(&(d as u64).to_le_bytes());
    }
    for s in t.shape().strides() {
        sink.put(&(s as u64).to_le_bytes());
    }
}

/// Streams [`canon_tensor`]'s exact byte sequence into `sink` without
/// allocating: dtype tag, shape, row-major strides, then raw little-endian
/// element bytes.
pub fn canon_tensor_sink<T: Element>(t: &Tensor<T>, sink: &mut impl CanonSink) {
    canon_header_sink(t, sink);
    put_element_bytes(sink, t.data());
}

/// Canonical serialization of a tensor: dtype tag, shape, row-major
/// strides, then raw little-endian element bytes.
pub fn canon_tensor<T: Element>(t: &Tensor<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(canon_tensor_len(t));
    canon_tensor_sink(t, &mut out);
    out
}

/// Streams [`canon_param`]'s exact byte sequence into `sink` without
/// materializing the tensor encoding (`name`, then the length-prefixed
/// tensor bytes).
pub fn canon_param_sink<T: Element>(name: &str, t: &Tensor<T>, sink: &mut impl CanonSink) {
    put_str(sink, name);
    sink.put(&(canon_tensor_len(t) as u64).to_le_bytes());
    canon_tensor_sink(t, sink);
}

/// Canonical serialization of a named parameter (`name` then tensor).
pub fn canon_param<T: Element>(name: &str, t: &Tensor<T>) -> Vec<u8> {
    let mut out = Vec::new();
    canon_param_sink(name, t, &mut out);
    out
}

/// Canonical operator signature `σ(n)`: name, kind mnemonic, attribute
/// encoding, and input edges (topology is implied by the argument ids).
pub fn canon_signature(node: &Node) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(node.id.0 as u64).to_le_bytes());
    put_str(&mut out, &node.name);
    put_str(&mut out, node.kind.mnemonic());
    // Attribute encoding: the serde debug of the kind is stable within this
    // crate graph and covers every attribute (eps, stride, axes, ...).
    put_str(&mut out, &format!("{:?}", node.kind));
    out.extend_from_slice(&(node.inputs.len() as u64).to_le_bytes());
    for input in &node.inputs {
        out.extend_from_slice(&(input.0 as u64).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::{NodeId, OpKind};

    #[test]
    fn tensor_canon_distinguishes_shape() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_ne!(canon_tensor(&a), canon_tensor(&b));
    }

    #[test]
    fn tensor_canon_distinguishes_dtype() {
        let a = Tensor::<f32>::ones(&[2]);
        let b = Tensor::<f64>::ones(&[2]);
        assert_ne!(canon_tensor(&a), canon_tensor(&b));
    }

    #[test]
    fn tensor_canon_distinguishes_last_bit() {
        let a = Tensor::<f32>::from_vec(vec![1.0], &[1]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![1.0 + f32::EPSILON], &[1]).unwrap();
        assert_ne!(canon_tensor(&a), canon_tensor(&b));
    }

    #[test]
    fn param_canon_includes_name() {
        let t = Tensor::<f32>::ones(&[1]);
        assert_ne!(canon_param("a", &t), canon_param("b", &t));
    }

    #[test]
    fn signature_covers_attributes_and_edges() {
        let base = Node {
            id: NodeId(3),
            name: "conv".into(),
            kind: OpKind::Conv2d {
                stride: 1,
                padding: 0,
            },
            inputs: vec![NodeId(0), NodeId(1)],
        };
        let mut stride2 = base.clone();
        stride2.kind = OpKind::Conv2d {
            stride: 2,
            padding: 0,
        };
        assert_ne!(canon_signature(&base), canon_signature(&stride2));
        let mut rewired = base.clone();
        rewired.inputs = vec![NodeId(0), NodeId(2)];
        assert_ne!(canon_signature(&base), canon_signature(&rewired));
        let mut renamed = base.clone();
        renamed.name = "conv2".into();
        assert_ne!(canon_signature(&base), canon_signature(&renamed));
    }

    #[test]
    fn length_prefixing_prevents_concat_ambiguity() {
        // ("ab", "c") vs ("a", "bc") must differ.
        let mut x = Vec::new();
        put_str(&mut x, "ab");
        put_str(&mut x, "c");
        let mut y = Vec::new();
        put_str(&mut y, "a");
        put_str(&mut y, "bc");
        assert_ne!(x, y);
    }
}
