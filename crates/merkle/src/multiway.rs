//! Multi-way SHA-256: runtime-dispatched fast compressors for the
//! commitment hot path.
//!
//! The scalar [`Sha256`](crate::Sha256) stays in-tree as the permanent
//! differential oracle; everything here must be **bit-identical** to it
//! (enforced by this module's tests and `tests/tests/commit_equiv.rs`).
//! Three mechanically different ways to go faster, selected at runtime by
//! [`Backend`]:
//!
//! * **SHA-NI** (`x86_64`, runtime-detected): one message at a time, but
//!   the `sha256rnds2`/`sha256msg1`/`sha256msg2` instructions compress a
//!   block in a few dozen cycles — the fastest single-stream path, used by
//!   [`FastSha256`] for bulk input.
//! * **AVX2 8-lane** (`x86_64`, runtime-detected): eight *independent*
//!   messages compressed per call, one message per 32-bit SIMD lane. All
//!   lanes run the identical FIPS 180-4 round function, so each lane's
//!   digest equals the scalar result exactly.
//! * **Portable lane-interleaved** (always available): the same
//!   eight-/four-lane structure written in plain `u32` arithmetic with the
//!   lane loop innermost, which the compiler can auto-vectorize on any
//!   target.
//!
//! Multi-message batching ([`sha256_batch_with`], [`MultiSha256`]) requires
//! equal-length lanes — every lane must consume the same block schedule and
//! padding layout. [`sha256_batch_with`] therefore groups its inputs by
//! length and falls back to single-stream hashing for ragged remainders,
//! which keeps its result equal to `msgs.map(sha256)` for *any* input mix.

use crate::sha256::{compress_scalar, sha256, Digest, H0, K};

/// How many compressor backends exist (sizing for [`Backend::available`]).
const BACKEND_COUNT: usize = 5;

/// A SHA-256 compressor implementation, selected at runtime.
///
/// Every backend produces digests bit-identical to the scalar oracle; they
/// differ only in throughput. Unsupported hardware backends silently fall
/// back to the portable path when invoked, so forcing a backend is always
/// *correct* — [`Backend::is_supported`] tells you whether it is also
/// *fast*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The seed scalar compressor (the oracle path).
    Scalar,
    /// Portable 4-lane interleaved compressor.
    Wide4,
    /// Portable 8-lane interleaved compressor.
    Wide8,
    /// AVX2 8-lane SIMD compressor (`x86_64` with `avx2`).
    Avx2,
    /// Intel SHA extensions single-stream compressor (`x86_64` with `sha`).
    ShaNi,
}

impl Backend {
    /// The fastest supported backend on this host: SHA-NI, then AVX2, then
    /// the portable 8-lane path.
    pub fn auto() -> Backend {
        static AUTO: std::sync::OnceLock<Backend> = std::sync::OnceLock::new();
        *AUTO.get_or_init(|| {
            if Backend::ShaNi.is_supported() {
                Backend::ShaNi
            } else if Backend::Avx2.is_supported() {
                Backend::Avx2
            } else {
                Backend::Wide8
            }
        })
    }

    /// True when this backend's specialized code path can run on this host
    /// (portable backends are always supported).
    pub fn is_supported(&self) -> bool {
        match self {
            Backend::Scalar | Backend::Wide4 | Backend::Wide8 => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Backend::ShaNi => {
                std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("sse2")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1")
            }
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 | Backend::ShaNi => false,
        }
    }

    /// All backends supported on this host (used by the differential tests
    /// and the microbenchmarks to sweep every compiled path).
    pub fn available() -> Vec<Backend> {
        let mut v = Vec::with_capacity(BACKEND_COUNT);
        for b in [
            Backend::Scalar,
            Backend::Wide4,
            Backend::Wide8,
            Backend::Avx2,
            Backend::ShaNi,
        ] {
            if b.is_supported() {
                v.push(b);
            }
        }
        v
    }

    /// How many independent messages one compressor call advances.
    pub fn lanes(&self) -> usize {
        match self {
            Backend::Scalar | Backend::ShaNi => 1,
            Backend::Wide4 => 4,
            Backend::Wide8 | Backend::Avx2 => 8,
        }
    }

    /// Short display name (bench tables, CSV ids).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Wide4 => "wide4",
            Backend::Wide8 => "wide8",
            Backend::Avx2 => "avx2x8",
            Backend::ShaNi => "sha-ni",
        }
    }
}

/// Compresses `data` (length a multiple of 64) into `state` on the fastest
/// single-stream path the backend offers. Multi-lane backends have no
/// single-stream advantage and use the scalar rounds.
pub(crate) fn compress_blocks(backend: Backend, state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0);
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::ShaNi && backend.is_supported() {
        // SAFETY: feature support checked at runtime just above.
        unsafe { ni::compress_blocks(state, data) };
        return;
    }
    let _ = backend;
    for block in data.chunks_exact(64) {
        compress_scalar(state, block.try_into().expect("64-byte chunk"));
    }
}

/// Compresses one 64-byte block per lane. All lanes advance together, so
/// callers must keep lanes in lockstep (equal message lengths).
fn compress_lanes<const N: usize>(backend: Backend, states: &mut [[u32; 8]; N], blocks: [&[u8]; N]) {
    for b in blocks {
        debug_assert_eq!(b.len(), 64);
    }
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 && N == 8 && backend.is_supported() {
        let states8: &mut [[u32; 8]; 8] = (&mut states[..]).try_into().expect("N == 8");
        let blocks8: &[&[u8]; 8] = (&blocks[..]).try_into().expect("N == 8");
        // SAFETY: AVX2 support checked at runtime just above.
        unsafe { avx2::compress8(states8, blocks8) };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::ShaNi && backend.is_supported() {
        for (state, block) in states.iter_mut().zip(blocks) {
            // SAFETY: feature support checked at runtime just above.
            unsafe { ni::compress_blocks(state, block) };
        }
        return;
    }
    match backend {
        Backend::Scalar => {
            for (state, block) in states.iter_mut().zip(blocks) {
                compress_scalar(state, block.try_into().expect("64-byte block"));
            }
        }
        _ => compress_wide::<N>(states, blocks),
    }
}

/// Portable lane-interleaved compression of `N` independent blocks: the
/// scalar round function with every variable widened to a `[u32; N]` lane
/// array and the lane loop innermost (auto-vectorizer-friendly).
// The schedule reads several rows of `w` at fixed offsets per lane; an
// iterator over one row cannot express that.
#[allow(clippy::needless_range_loop)]
fn compress_wide<const N: usize>(states: &mut [[u32; 8]; N], blocks: [&[u8]; N]) {
    let mut w = [[0u32; N]; 64];
    for (t, wt) in w.iter_mut().enumerate().take(16) {
        for (j, lane) in wt.iter_mut().enumerate() {
            let b = blocks[j];
            *lane = u32::from_be_bytes([b[4 * t], b[4 * t + 1], b[4 * t + 2], b[4 * t + 3]]);
        }
    }
    for t in 16..64 {
        for j in 0..N {
            let x = w[t - 15][j];
            let y = w[t - 2][j];
            let s0 = x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3);
            let s1 = y.rotate_right(17) ^ y.rotate_right(19) ^ (y >> 10);
            w[t][j] = w[t - 16][j]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7][j])
                .wrapping_add(s1);
        }
    }
    let mut v = [[0u32; N]; 8];
    for (r, vr) in v.iter_mut().enumerate() {
        for (j, lane) in vr.iter_mut().enumerate() {
            *lane = states[j][r];
        }
    }
    for i in 0..64 {
        let [a, b, c, d, e, f, g, h] = v;
        let mut na = [0u32; N];
        let mut ne = [0u32; N];
        for j in 0..N {
            let s1 = e[j].rotate_right(6) ^ e[j].rotate_right(11) ^ e[j].rotate_right(25);
            let ch = (e[j] & f[j]) ^ ((!e[j]) & g[j]);
            let t1 = h[j]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i][j]);
            let s0 = a[j].rotate_right(2) ^ a[j].rotate_right(13) ^ a[j].rotate_right(22);
            let maj = (a[j] & b[j]) ^ (a[j] & c[j]) ^ (b[j] & c[j]);
            ne[j] = d[j].wrapping_add(t1);
            na[j] = t1.wrapping_add(s0.wrapping_add(maj));
        }
        v = [na, a, b, c, ne, e, f, g];
    }
    for (r, vr) in v.iter().enumerate() {
        for (j, &lane) in vr.iter().enumerate() {
            states[j][r] = states[j][r].wrapping_add(lane);
        }
    }
}

/// Incremental single-stream SHA-256 with a runtime-dispatched compressor.
///
/// Same `update`/`finalize` surface and identical digests as the scalar
/// [`Sha256`](crate::Sha256); bulk input (whole 64-byte blocks) bypasses
/// the staging buffer and compresses straight from the caller's slice.
#[derive(Debug, Clone)]
pub struct FastSha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
    backend: Backend,
}

impl Default for FastSha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl FastSha256 {
    /// A fresh hasher on the fastest supported backend.
    pub fn new() -> Self {
        Self::with_backend(Backend::auto())
    }

    /// A fresh hasher pinned to `backend`.
    pub fn with_backend(backend: Backend) -> Self {
        FastSha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
            backend,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                compress_blocks(self.backend, &mut self.state, &block);
                self.buffered = 0;
            }
        }
        let bulk = data.len() - data.len() % 64;
        if bulk > 0 {
            compress_blocks(self.backend, &mut self.state, &data[..bulk]);
            data = &data[bulk..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        compress_blocks(self.backend, &mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256 on a pinned backend.
pub fn sha256_with(backend: Backend, data: &[u8]) -> Digest {
    let mut h = FastSha256::with_backend(backend);
    h.update(data);
    h.finalize()
}

/// Incremental SHA-256 over `N` independent equal-length messages, one per
/// lane, with a runtime-dispatched multi-lane compressor.
///
/// Every [`update`](Self::update) feeds all lanes the same number of bytes,
/// which keeps the lanes' block schedules — and final padding — in
/// lockstep, so one compressor call advances all `N` states at once.
#[derive(Debug, Clone)]
pub struct MultiSha256<const N: usize> {
    states: [[u32; 8]; N],
    buffers: [[u8; 64]; N],
    buffered: usize,
    total_len: u64,
    backend: Backend,
}

impl<const N: usize> MultiSha256<N> {
    /// Fresh lane states on `backend`.
    pub fn new(backend: Backend) -> Self {
        MultiSha256 {
            states: [H0; N],
            buffers: [[0u8; 64]; N],
            buffered: 0,
            total_len: 0,
            backend,
        }
    }

    /// Absorbs one equal-length slice per lane.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn update(&mut self, mut parts: [&[u8]; N]) {
        let len = parts.first().map_or(0, |p| p.len());
        assert!(
            parts.iter().all(|p| p.len() == len),
            "MultiSha256 lanes must advance in lockstep"
        );
        if N == 0 {
            return;
        }
        self.total_len = self.total_len.wrapping_add(len as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(len);
            for (buf, part) in self.buffers.iter_mut().zip(parts.iter()) {
                buf[self.buffered..self.buffered + take].copy_from_slice(&part[..take]);
            }
            self.buffered += take;
            for part in parts.iter_mut() {
                *part = &part[take..];
            }
            if self.buffered == 64 {
                let buffers = self.buffers;
                let blocks: [&[u8]; N] = std::array::from_fn(|j| &buffers[j][..]);
                compress_lanes(self.backend, &mut self.states, blocks);
                self.buffered = 0;
            }
        }
        while parts[0].len() >= 64 {
            let blocks: [&[u8]; N] = std::array::from_fn(|j| &parts[j][..64]);
            compress_lanes(self.backend, &mut self.states, blocks);
            for part in parts.iter_mut() {
                *part = &part[64..];
            }
        }
        let rem = parts[0].len();
        if rem > 0 {
            for (buf, part) in self.buffers.iter_mut().zip(parts.iter()) {
                buf[..rem].copy_from_slice(part);
            }
            self.buffered = rem;
        }
    }

    /// Absorbs the same bytes into every lane (shared prefixes such as
    /// domain-separation tags).
    pub fn update_all(&mut self, data: &[u8]) {
        self.update([data; N]);
    }

    /// Finishes all lanes and returns their digests.
    pub fn finalize(mut self) -> [Digest; N] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update_all(&[0x80]);
        while self.buffered != 56 {
            self.update_all(&[0]);
        }
        for buf in self.buffers.iter_mut() {
            buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        }
        let buffers = self.buffers;
        let blocks: [&[u8]; N] = std::array::from_fn(|j| &buffers[j][..]);
        compress_lanes(self.backend, &mut self.states, blocks);
        std::array::from_fn(|j| {
            let mut out = [0u8; 32];
            for (i, word) in self.states[j].iter().enumerate() {
                out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
            }
            out
        })
    }
}

/// Hashes `N` equal-length messages in one multi-lane pass.
pub fn sha256_many_equal<const N: usize>(backend: Backend, msgs: [&[u8]; N]) -> [Digest; N] {
    let mut h = MultiSha256::<N>::new(backend);
    h.update(msgs);
    h.finalize()
}

/// Groups the indices `0..n` by a key, preserving first-seen order — the
/// shared grouping step of every multi-lane batcher (messages by length,
/// leaves by length, tensors by shape): only same-key items can share a
/// block schedule and advance in lockstep.
pub(crate) fn group_indices_by<K: PartialEq>(
    n: usize,
    key: impl Fn(usize) -> K,
) -> Vec<(K, Vec<usize>)> {
    let mut groups: Vec<(K, Vec<usize>)> = Vec::new();
    for i in 0..n {
        let k = key(i);
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((k, vec![i])),
        }
    }
    groups
}

/// Hashes a batch of independent messages, equal to
/// `msgs.iter().map(sha256)` for any input mix.
///
/// Multi-lane backends group the messages by length (lanes must share a
/// block schedule) and hash full groups `lanes()` at a time; ragged
/// remainders fall back to the single-stream path.
pub fn sha256_batch_with<B: AsRef<[u8]>>(backend: Backend, msgs: &[B]) -> Vec<Digest> {
    let lanes = backend.lanes();
    if lanes == 1 {
        return msgs
            .iter()
            .map(|m| match backend {
                Backend::Scalar => sha256(m.as_ref()),
                _ => sha256_with(backend, m.as_ref()),
            })
            .collect();
    }
    let mut out = vec![[0u8; 32]; msgs.len()];
    for (_, idxs) in &group_indices_by(msgs.len(), |i| msgs[i].as_ref().len()) {
        let mut chunks = idxs.chunks_exact(lanes);
        for chunk in &mut chunks {
            if lanes == 4 {
                let batch: [&[u8]; 4] = std::array::from_fn(|j| msgs[chunk[j]].as_ref());
                for (j, d) in sha256_many_equal(backend, batch).into_iter().enumerate() {
                    out[chunk[j]] = d;
                }
            } else {
                let batch: [&[u8]; 8] = std::array::from_fn(|j| msgs[chunk[j]].as_ref());
                for (j, d) in sha256_many_equal(backend, batch).into_iter().enumerate() {
                    out[chunk[j]] = d;
                }
            }
        }
        for &i in chunks.remainder() {
            out[i] = sha256_with(backend, msgs[i].as_ref());
        }
    }
    out
}

/// Hashes a batch of independent messages on the fastest supported
/// backend.
pub fn sha256_batch<B: AsRef<[u8]>>(msgs: &[B]) -> Vec<Digest> {
    sha256_batch_with(Backend::auto(), msgs)
}

/// Intel SHA extensions single-stream compressor.
#[cfg(target_arch = "x86_64")]
mod ni {
    use super::K;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128,
        _mm_set_epi64x, _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32,
        _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_storeu_si128,
    };

    /// Compresses every 64-byte block of `data` into `state` with the SHA
    /// extension instructions. Bit-identical to the scalar rounds: the
    /// instructions implement the FIPS 180-4 round function directly.
    ///
    /// # Safety
    ///
    /// Requires runtime support for `sha`, `sse2`, `ssse3` and `sse4.1`,
    /// and `data.len() % 64 == 0`.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub(super) unsafe fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
        debug_assert_eq!(data.len() % 64, 0);
        // Big-endian 32-bit word loads.
        let shuf = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203u64 as i64);
        // Repack [a,b,c,d|e,f,g,h] into the ABEF/CDGH layout the
        // sha256rnds2 instruction consumes.
        let abcd = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
        let efgh = _mm_loadu_si128(state.as_ptr().add(4).cast::<__m128i>());
        let tmp = _mm_shuffle_epi32::<0xB1>(abcd);
        let efgh = _mm_shuffle_epi32::<0x1B>(efgh);
        let mut state0 = _mm_alignr_epi8::<8>(tmp, efgh); // ABEF
        let mut state1 = _mm_blend_epi16::<0xF0>(efgh, tmp); // CDGH
        for block in data.chunks_exact(64) {
            let save0 = state0;
            let save1 = state1;
            let p = block.as_ptr();
            let mut w = [
                _mm_shuffle_epi8(_mm_loadu_si128(p.cast::<__m128i>()), shuf),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(16).cast::<__m128i>()), shuf),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(32).cast::<__m128i>()), shuf),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(48).cast::<__m128i>()), shuf),
            ];
            for i in 0..16 {
                let wi = if i < 4 {
                    w[i]
                } else {
                    // W(i) = msg2(msg1(W(i-4), W(i-3)) + alignr(W(i-1),
                    // W(i-2), 4), W(i-1)) — the 4-word schedule step.
                    let wn = _mm_sha256msg2_epu32(
                        _mm_add_epi32(
                            _mm_sha256msg1_epu32(w[i % 4], w[(i + 1) % 4]),
                            _mm_alignr_epi8::<4>(w[(i + 3) % 4], w[(i + 2) % 4]),
                        ),
                        w[(i + 3) % 4],
                    );
                    w[i % 4] = wn;
                    wn
                };
                let msg = _mm_add_epi32(wi, _mm_loadu_si128(K.as_ptr().add(4 * i).cast()));
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32::<0x0E>(msg));
            }
            state0 = _mm_add_epi32(state0, save0);
            state1 = _mm_add_epi32(state1, save1);
        }
        let tmp = _mm_shuffle_epi32::<0x1B>(state0); // FEBA
        let st1 = _mm_shuffle_epi32::<0xB1>(state1); // DCHG
        let abcd = _mm_blend_epi16::<0xF0>(tmp, st1); // DCBA
        let efgh = _mm_alignr_epi8::<8>(st1, tmp); // HGFE
        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), abcd);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast::<__m128i>(), efgh);
    }
}

/// AVX2 eight-lane interleaved compressor.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::K;
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_andnot_si256, _mm256_or_si256,
        _mm256_set1_epi32, _mm256_setr_epi32, _mm256_slli_epi32, _mm256_srli_epi32,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    macro_rules! rotr {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(
                _mm256_srli_epi32::<$n>($x),
                _mm256_slli_epi32::<{ 32 - $n }>($x),
            )
        };
    }

    #[inline]
    unsafe fn load_w(blocks: &[&[u8]; 8], t: usize) -> __m256i {
        let g = |j: usize| {
            let b = blocks[j];
            u32::from_be_bytes([b[4 * t], b[4 * t + 1], b[4 * t + 2], b[4 * t + 3]]) as i32
        };
        _mm256_setr_epi32(g(0), g(1), g(2), g(3), g(4), g(5), g(6), g(7))
    }

    /// Compresses one 64-byte block per lane: eight independent messages,
    /// message `j` in 32-bit lane `j` of every vector. Per-lane, the
    /// operations are the identical FIPS 180-4 round function.
    ///
    /// # Safety
    ///
    /// Requires runtime AVX2 support; every block must be 64 bytes.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn compress8(states: &mut [[u32; 8]; 8], blocks: &[&[u8]; 8]) {
        let mut w = [_mm256_set1_epi32(0); 64];
        for (t, wt) in w.iter_mut().enumerate().take(16) {
            *wt = load_w(blocks, t);
        }
        for t in 16..64 {
            let x = w[t - 15];
            let y = w[t - 2];
            let s0 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(x, 7), rotr!(x, 18)),
                _mm256_srli_epi32::<3>(x),
            );
            let s1 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(y, 17), rotr!(y, 19)),
                _mm256_srli_epi32::<10>(y),
            );
            w[t] = _mm256_add_epi32(
                _mm256_add_epi32(w[t - 16], s0),
                _mm256_add_epi32(w[t - 7], s1),
            );
        }
        let gather = |r: usize| {
            _mm256_setr_epi32(
                states[0][r] as i32,
                states[1][r] as i32,
                states[2][r] as i32,
                states[3][r] as i32,
                states[4][r] as i32,
                states[5][r] as i32,
                states[6][r] as i32,
                states[7][r] as i32,
            )
        };
        let init: [__m256i; 8] = [
            gather(0),
            gather(1),
            gather(2),
            gather(3),
            gather(4),
            gather(5),
            gather(6),
            gather(7),
        ];
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = init;
        for (i, &wi) in w.iter().enumerate() {
            let s1 = _mm256_xor_si256(_mm256_xor_si256(rotr!(e, 6), rotr!(e, 11)), rotr!(e, 25));
            let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
            let t1 = _mm256_add_epi32(
                _mm256_add_epi32(_mm256_add_epi32(h, s1), _mm256_add_epi32(ch, wi)),
                _mm256_set1_epi32(K[i] as i32),
            );
            let s0 = _mm256_xor_si256(_mm256_xor_si256(rotr!(a, 2), rotr!(a, 13)), rotr!(a, 22));
            let maj = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
                _mm256_and_si256(b, c),
            );
            let t2 = _mm256_add_epi32(s0, maj);
            h = g;
            g = f;
            f = e;
            e = _mm256_add_epi32(d, t1);
            d = c;
            c = b;
            b = a;
            a = _mm256_add_epi32(t1, t2);
        }
        for (r, v) in [a, b, c, d, e, f, g, h].into_iter().enumerate() {
            let sum = _mm256_add_epi32(init[r], v);
            let mut out = [0u32; 8];
            _mm256_storeu_si256(out.as_mut_ptr().cast(), sum);
            for (j, &lane) in out.iter().enumerate() {
                states[j][r] = lane;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    fn msg(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31) ^ seed).collect()
    }

    #[test]
    fn auto_backend_is_supported() {
        assert!(Backend::auto().is_supported());
        assert!(Backend::available().contains(&Backend::Scalar));
        assert!(Backend::available().contains(&Backend::Wide8));
    }

    #[test]
    fn fast_hasher_matches_scalar_oracle_on_every_backend() {
        for backend in Backend::available() {
            for len in [0usize, 1, 3, 55, 56, 63, 64, 65, 119, 127, 128, 1000, 4096] {
                let data = msg(len, 7);
                assert_eq!(
                    sha256_with(backend, &data),
                    sha256(&data),
                    "{backend:?} len {len}"
                );
            }
        }
    }

    #[test]
    fn fast_hasher_incremental_split_points() {
        let data = msg(1_000, 3);
        let want = sha256(&data);
        for backend in Backend::available() {
            for split in [1usize, 17, 63, 64, 65, 500] {
                let mut h = FastSha256::with_backend(backend);
                for chunk in data.chunks(split) {
                    h.update(chunk);
                }
                assert_eq!(h.finalize(), want, "{backend:?} split {split}");
            }
        }
    }

    #[test]
    fn nist_vectors_on_every_backend() {
        for backend in Backend::available() {
            assert_eq!(
                to_hex(&sha256_with(backend, b"abc")),
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
                "{backend:?}"
            );
            assert_eq!(
                to_hex(&sha256_with(backend, b"")),
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
                "{backend:?}"
            );
        }
    }

    #[test]
    fn multiway_equal_lanes_match_scalar() {
        for backend in Backend::available() {
            for len in [0usize, 5, 55, 64, 65, 130, 640] {
                let msgs: Vec<Vec<u8>> = (0..8).map(|j| msg(len, j as u8)).collect();
                let refs: [&[u8]; 8] = std::array::from_fn(|j| msgs[j].as_slice());
                let got = sha256_many_equal(backend, refs);
                for (j, m) in msgs.iter().enumerate() {
                    assert_eq!(got[j], sha256(m), "{backend:?} len {len} lane {j}");
                }
                let refs4: [&[u8]; 4] = std::array::from_fn(|j| msgs[j].as_slice());
                let got4 = sha256_many_equal(backend, refs4);
                for j in 0..4 {
                    assert_eq!(got4[j], sha256(&msgs[j]), "{backend:?} 4-lane {j}");
                }
            }
        }
    }

    #[test]
    fn multiway_incremental_shared_prefix() {
        let bodies: Vec<Vec<u8>> = (0..8).map(|j| msg(300, 100 + j as u8)).collect();
        for backend in Backend::available() {
            let mut h = MultiSha256::<8>::new(backend);
            h.update_all(b"prefix");
            h.update(std::array::from_fn(|j| bodies[j].as_slice()));
            let got = h.finalize();
            for (j, body) in bodies.iter().enumerate() {
                let mut oracle = crate::Sha256::new();
                oracle.update(b"prefix");
                oracle.update(body);
                assert_eq!(got[j], oracle.finalize(), "{backend:?} lane {j}");
            }
        }
    }

    #[test]
    fn batch_matches_scalar_for_ragged_lengths() {
        let msgs: Vec<Vec<u8>> = (0..23)
            .map(|i| msg([0, 1, 33, 64, 65, 129, 250][i % 7], i as u8))
            .collect();
        let want: Vec<Digest> = msgs.iter().map(|m| sha256(m)).collect();
        for backend in Backend::available() {
            assert_eq!(sha256_batch_with(backend, &msgs), want, "{backend:?}");
        }
        assert_eq!(sha256_batch(&msgs), want);
    }

    #[test]
    fn million_a_on_fast_paths() {
        let chunk = [b'a'; 1000];
        for backend in Backend::available() {
            let mut h = FastSha256::with_backend(backend);
            for _ in 0..1000 {
                h.update(&chunk);
            }
            assert_eq!(
                to_hex(&h.finalize()),
                "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
                "{backend:?}"
            );
        }
    }
}
