//! Model and claim commitments (Phase 0 / Phase 1 artifacts), plus
//! [`TraceCommitment`] — per-node digests of an execution trace.
//!
//! The commitment hot path is allocation-free: tensors are canonicalized
//! row-by-row straight into the runtime-dispatched hashers of
//! [`crate::multiway`] (no per-leaf byte buffers), equal-shaped tensors are
//! hashed several lanes at a time, and trees build level-parallel. The
//! seed materializing paths ([`tensor_hash_reference`],
//! [`TraceCommitment::reference`]) stay in-tree as the differential
//! oracles and microbenchmark baselines; all digests and roots are
//! bit-identical by contract.

use tao_graph::Graph;
use tao_tensor::Tensor;

use crate::canon::{canon_param, canon_param_sink, canon_signature, canon_tensor, canon_tensor_sink};
use crate::multiway::{Backend, FastSha256, MultiSha256};
use crate::sha256::{sha256, Digest, Sha256};
use crate::tree::{verify_inclusion, InclusionProof, MerkleTree};

/// Execution metadata bound into a claim commitment (the paper's "meta":
/// device type, kernel versions, dtypes, and the challenge window Δ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimMeta {
    /// Executing device name.
    pub device: String,
    /// Kernel configuration description.
    pub kernel: String,
    /// Element dtype of the execution.
    pub dtype: String,
    /// Challenge window in coordinator ticks.
    pub challenge_window: u64,
}

impl ClaimMeta {
    fn canon(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for field in [&self.device, &self.kernel, &self.dtype] {
            out.extend_from_slice(&(field.len() as u64).to_le_bytes());
            out.extend_from_slice(field.as_bytes());
        }
        out.extend_from_slice(&self.challenge_window.to_le_bytes());
        out
    }
}

/// The Phase 0 model commitment: weight root `r_w`, graph root `r_g`, and
/// the threshold root `r_e` for the calibrated empirical profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCommitment {
    /// Merkle root over the sorted parameter tensors.
    pub weight_root: Digest,
    /// Merkle root over the operator signatures in canonical order.
    pub graph_root: Digest,
    /// Merkle root over the committed empirical thresholds.
    pub threshold_root: Digest,
}

/// Builds the weight Merkle tree `T_w` (leaves: `canon(name, tensor)` in
/// lexicographic key order — the state dict is a `BTreeMap`, so iteration
/// order is already sorted).
///
/// Each leaf's canonical bytes stream straight into the hasher (no
/// per-leaf buffer); bit-identical to [`weight_tree_reference`].
pub fn weight_tree(graph: &Graph) -> MerkleTree {
    let backend = Backend::auto();
    let leaf_digests: Vec<Digest> = graph
        .params()
        .iter()
        .map(|(name, t)| {
            let mut h = FastSha256::with_backend(backend);
            h.update(&[crate::tree::LEAF_PREFIX]);
            canon_param_sink(name, t, &mut h);
            h.finalize()
        })
        .collect();
    MerkleTree::from_leaf_digests(leaf_digests)
}

/// Seed construction of `T_w`: materialize every `canon(name, tensor)`
/// byte string, hash it scalar, build the tree serially. The differential
/// oracle (and microbenchmark baseline) for [`weight_tree`].
pub fn weight_tree_reference(graph: &Graph) -> MerkleTree {
    let leaves: Vec<Vec<u8>> = graph
        .params()
        .iter()
        .map(|(name, t)| canon_param(name, t))
        .collect();
    MerkleTree::from_leaves_reference(&leaves)
}

/// Builds the graph-structure Merkle tree `T_g` (leaves: `σ(n)` in
/// canonical topological order).
pub fn graph_tree(graph: &Graph) -> MerkleTree {
    let leaves: Vec<Vec<u8>> = graph.nodes().iter().map(canon_signature).collect();
    MerkleTree::from_leaves(&leaves)
}

/// Commits a model given the serialized per-operator thresholds (one byte
/// string per operator, in canonical node order).
pub fn commit_model<B: AsRef<[u8]>>(graph: &Graph, threshold_leaves: &[B]) -> ModelCommitment {
    ModelCommitment {
        weight_root: weight_tree(graph).root(),
        graph_root: graph_tree(graph).root(),
        threshold_root: MerkleTree::from_leaves(threshold_leaves).root(),
    }
}

/// Hash of a tensor's canonical serialization (`H(x)`, `H(y)`).
///
/// Streams the canonical bytes into the fastest supported hasher without
/// materializing them; bit-identical to [`tensor_hash_reference`].
pub fn tensor_hash(t: &Tensor<f32>) -> Digest {
    let mut h = FastSha256::new();
    canon_tensor_sink(t, &mut h);
    h.finalize()
}

/// Seed tensor hash: materialize `canon(t)` and hash it with the scalar
/// oracle. Kept in-tree as the differential reference for
/// [`tensor_hash`].
pub fn tensor_hash_reference(t: &Tensor<f32>) -> Digest {
    sha256(&canon_tensor(t))
}

/// Per-node digests of an execution trace (one [`tensor_hash`] per traced
/// value) together with the Merkle tree over them.
///
/// This is the commitment a screening or proposer trace carries into a
/// dispute: child interface hashes (`h_In`/`h_Out`) re-derive from the
/// cached per-node digests instead of rehashing full activation tensors
/// every round, and the tree's root is a compact binding of the whole
/// trace. Equal-shaped tensors are hashed through the multi-way
/// compressor several lanes at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCommitment {
    digests: Vec<Digest>,
    tree: MerkleTree,
}

impl TraceCommitment {
    /// Commits a trace on the fastest supported backend.
    pub fn build(values: &[Tensor<f32>]) -> Self {
        Self::build_with(values, Backend::auto())
    }

    /// Commits a trace on a pinned backend (equivalence tests and
    /// microbenchmarks sweep every supported one).
    pub fn build_with(values: &[Tensor<f32>], backend: Backend) -> Self {
        Self::from_digests_with(tensor_digests(values, backend), backend)
    }

    /// Assembles a commitment from already-computed per-node digests on
    /// the fastest supported backend. This is the streamed-hashing entry
    /// point: the executor's observer hashes each node's value as the
    /// buffer pool retires it, and only the tree assembly remains at the
    /// end of the pass. Bit-identical to [`TraceCommitment::build`] when
    /// the digests equal `values.iter().map(tensor_hash)`.
    pub fn from_digests(digests: Vec<Digest>) -> Self {
        Self::from_digests_with(digests, Backend::auto())
    }

    /// [`TraceCommitment::from_digests`] on a pinned backend.
    pub fn from_digests_with(digests: Vec<Digest>, backend: Backend) -> Self {
        let leaf_digests = crate::tree::hash_leaves(backend, &digests);
        // Small levels stay serial inside the builder's work threshold.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(crate::tree::MAX_HASH_THREADS);
        TraceCommitment {
            tree: MerkleTree::from_leaf_digests_with(leaf_digests, backend, threads),
            digests,
        }
    }

    /// Seed trace commitment: materialize each tensor's canonical bytes,
    /// hash them scalar, build the tree serially. The differential oracle
    /// and the microbenchmark baseline for [`TraceCommitment::build`].
    pub fn reference(values: &[Tensor<f32>]) -> Self {
        let digests: Vec<Digest> = values.iter().map(tensor_hash_reference).collect();
        TraceCommitment {
            tree: MerkleTree::from_leaves_reference(&digests),
            digests,
        }
    }

    /// The cached digest of node `i`'s value.
    pub fn digest(&self, i: usize) -> Option<&Digest> {
        self.digests.get(i)
    }

    /// All per-node digests, in node order.
    pub fn digests(&self) -> &[Digest] {
        &self.digests
    }

    /// The Merkle tree over the per-node digests.
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }

    /// Root of the trace tree (the compact trace binding).
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// Number of committed node values.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// True when no values were committed.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }
}

/// Hashes every tensor's canonical serialization, batching equal-shaped
/// tensors through the multi-way compressor (their canonical headers and
/// data lengths are identical, so the lanes stay in lockstep). Equal to
/// `values.iter().map(tensor_hash)` for any input.
#[cfg(target_endian = "little")]
pub fn tensor_digests(values: &[Tensor<f32>], backend: Backend) -> Vec<Digest> {
    let lanes = backend.lanes();
    let mut out = vec![[0u8; 32]; values.len()];
    if lanes <= 1 {
        for (o, t) in out.iter_mut().zip(values) {
            let mut h = FastSha256::with_backend(backend);
            canon_tensor_sink(t, &mut h);
            *o = h.finalize();
        }
        return out;
    }
    // Group by shape: identical dims mean identical header bytes and data
    // lengths, the lockstep precondition for multi-lane hashing.
    let groups = crate::multiway::group_indices_by(values.len(), |i| values[i].dims());
    for (dims, idxs) in &groups {
        // Headers beyond the stack staging buffer (absurd ranks) take the
        // single-stream path; correctness never depends on batching.
        let batchable = 27 + 16 * dims.len() <= 512;
        let mut chunks = idxs.chunks_exact(if batchable { lanes } else { usize::MAX });
        for chunk in &mut chunks {
            if lanes == 4 {
                let batch: [&Tensor<f32>; 4] = std::array::from_fn(|j| &values[chunk[j]]);
                for (j, d) in tensor_digests_equal(backend, batch).into_iter().enumerate() {
                    out[chunk[j]] = d;
                }
            } else {
                let batch: [&Tensor<f32>; 8] = std::array::from_fn(|j| &values[chunk[j]]);
                for (j, d) in tensor_digests_equal(backend, batch).into_iter().enumerate() {
                    out[chunk[j]] = d;
                }
            }
        }
        for &i in chunks.remainder() {
            let mut h = FastSha256::with_backend(backend);
            canon_tensor_sink(&values[i], &mut h);
            out[i] = h.finalize();
        }
    }
    out
}

/// Big-endian fallback: single-stream hashing (the multi-lane lockstep
/// path relies on the little-endian byte view of the element data).
#[cfg(not(target_endian = "little"))]
pub fn tensor_digests(values: &[Tensor<f32>], backend: Backend) -> Vec<Digest> {
    values
        .iter()
        .map(|t| {
            let mut h = FastSha256::with_backend(backend);
            canon_tensor_sink(t, &mut h);
            h.finalize()
        })
        .collect()
}

/// Hashes `N` equal-shaped tensors in one multi-lane pass: the shared
/// canonical header goes to every lane, then the element bytes advance in
/// lockstep. The header is staged in a fixed stack buffer, so the whole
/// pass performs no per-leaf heap allocation.
#[cfg(target_endian = "little")]
fn tensor_digests_equal<const N: usize>(
    backend: Backend,
    tensors: [&Tensor<f32>; N],
) -> [Digest; N] {
    let mut h = MultiSha256::<N>::new(backend);
    let t0 = tensors[0];
    let mut header = StackSink::<512>::new();
    crate::canon::canon_header_sink(t0, &mut header);
    h.update_all(header.bytes());
    const CHUNK_ELEMS: usize = 4096;
    let len = t0.len();
    let mut off = 0;
    while off < len {
        let end = (off + CHUNK_ELEMS).min(len);
        let parts: [&[u8]; N] = std::array::from_fn(|j| element_bytes(&tensors[j].data()[off..end]));
        h.update(parts);
        off = end;
    }
    h.finalize()
}

/// Little-endian byte view of a data slice (the canonical element
/// encoding on little-endian targets).
#[cfg(target_endian = "little")]
fn element_bytes(data: &[f32]) -> &[u8] {
    // SAFETY: f32 is plain-old-data; its LE memory layout equals the
    // canonical encoding on this target.
    unsafe { core::slice::from_raw_parts(data.as_ptr().cast::<u8>(), core::mem::size_of_val(data)) }
}

/// A fixed-capacity stack byte sink for small canonical fragments
/// (tensor headers are `19 + 16 * rank` bytes plus the dtype tag).
#[cfg(target_endian = "little")]
struct StackSink<const CAP: usize> {
    buf: [u8; CAP],
    len: usize,
}

#[cfg(target_endian = "little")]
impl<const CAP: usize> StackSink<CAP> {
    fn new() -> Self {
        StackSink {
            buf: [0u8; CAP],
            len: 0,
        }
    }

    fn bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

#[cfg(target_endian = "little")]
impl<const CAP: usize> crate::canon::CanonSink for StackSink<CAP> {
    fn put(&mut self, bytes: &[u8]) {
        self.buf[self.len..self.len + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
    }
}

/// Hash of an ordered tensor list (multi-input/multi-output interfaces):
/// `H(Σ_z H(canon(z)))` as in §5.2.
pub fn tensor_list_hash(ts: &[&Tensor<f32>]) -> Digest {
    let mut h = Sha256::new();
    for t in ts {
        h.update(&tensor_hash(t));
    }
    h.finalize()
}

/// Domain-separated hash of a claim's full ordered input list:
/// `H("tao.v1.inputs" || k || H(x_1) || … || H(x_k))`.
///
/// This is the `H(x)` bound into [`claim_commitment`] — the domain tag and
/// explicit length keep it injective against both single-tensor hashes and
/// list hashes of other arities, so multi-input claims are fully bound.
pub fn inputs_hash(inputs: &[Tensor<f32>]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"tao.v1.inputs");
    h.update(&(inputs.len() as u64).to_le_bytes());
    for t in inputs {
        h.update(&tensor_hash(t));
    }
    h.finalize()
}

/// Domain tag for the trace-root field of [`claim_commitment`]; keeps the
/// root injective against the neighbouring hash fields.
const TRACE_ROOT_DOMAIN: &[u8] = b"tao.v1.trace-root";

/// The Phase 1 claim commitment
/// `C0 = H(r_w || r_g || H(x) || H(y) || "tao.v1.trace-root" || r_t || meta)`.
///
/// `trace_root` is the root of the proposer's [`TraceCommitment`] over its
/// per-node execution digests, computed at prepare time. Binding it here is
/// what makes the dispute game's bisection reveals *verifiable*: every
/// digest the proposer reveals during descent must open against `r_t` via a
/// Merkle path, so a tampered or stale digest cache is detected and
/// attributed instead of silently steering the round.
pub fn claim_commitment(
    model: &ModelCommitment,
    input_hash: &Digest,
    output_hash: &Digest,
    trace_root: &Digest,
    meta: &ClaimMeta,
) -> Digest {
    let mut h = Sha256::new();
    h.update(&model.weight_root);
    h.update(&model.graph_root);
    h.update(input_hash);
    h.update(output_hash);
    h.update(TRACE_ROOT_DOMAIN);
    h.update(trace_root);
    h.update(&meta.canon());
    h.finalize()
}

/// Verifies that a revealed parameter belongs to a weight root.
pub fn verify_weight_leaf(
    root: &Digest,
    name: &str,
    tensor: &Tensor<f32>,
    proof: &InclusionProof,
) -> bool {
    verify_inclusion(root, &canon_param(name, tensor), proof)
}

/// Verifies that a node signature belongs to a graph root.
pub fn verify_graph_leaf(root: &Digest, node: &tao_graph::Node, proof: &InclusionProof) -> bool {
    verify_inclusion(root, &canon_signature(node), proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::{GraphBuilder, OpKind};

    fn model() -> Graph {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter(
            "fc.weight",
            Tensor::<f32>::rand_uniform(&[4, 4], -1.0, 1.0, 1),
        );
        let bias = b.parameter("fc.bias", Tensor::<f32>::zeros(&[4]));
        let y = b.op("fc", OpKind::Linear, &[x, w, bias]);
        b.finish(vec![y]).unwrap()
    }

    fn meta() -> ClaimMeta {
        ClaimMeta {
            device: "sim-a100".into(),
            kernel: "pairwise+fma".into(),
            dtype: "f32".into(),
            challenge_window: 10,
        }
    }

    #[test]
    fn weight_root_changes_with_any_weight_bit() {
        let g1 = model();
        let r1 = weight_tree(&g1).root();
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let mut wt = g1.param("fc.weight").unwrap().clone();
        wt.data_mut()[0] += f32::EPSILON;
        let w = b.parameter("fc.weight", wt);
        let bias = b.parameter("fc.bias", Tensor::<f32>::zeros(&[4]));
        let y = b.op("fc", OpKind::Linear, &[x, w, bias]);
        let g2 = b.finish(vec![y]).unwrap();
        assert_ne!(r1, weight_tree(&g2).root());
    }

    #[test]
    fn graph_root_changes_with_topology() {
        let g1 = model();
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("fc.weight", g1.param("fc.weight").unwrap().clone());
        let bias = b.parameter("fc.bias", Tensor::<f32>::zeros(&[4]));
        let y = b.op("fc", OpKind::Linear, &[x, w, bias]);
        let r = b.op("extra_relu", OpKind::Relu, &[y]);
        let g2 = b.finish(vec![r]).unwrap();
        assert_ne!(graph_tree(&g1).root(), graph_tree(&g2).root());
    }

    #[test]
    fn claim_commitment_binds_everything() {
        let g = model();
        let mc = commit_model(&g, &[b"thresholds".to_vec()]);
        let x = Tensor::<f32>::ones(&[1, 4]);
        let y = Tensor::<f32>::ones(&[1, 4]);
        let rt = sha256(b"trace-root");
        let c0 = claim_commitment(&mc, &tensor_hash(&x), &tensor_hash(&y), &rt, &meta());
        // Different output → different commitment.
        let y2 = Tensor::<f32>::zeros(&[1, 4]);
        let c1 = claim_commitment(&mc, &tensor_hash(&x), &tensor_hash(&y2), &rt, &meta());
        assert_ne!(c0, c1);
        // Different window → different commitment.
        let mut m2 = meta();
        m2.challenge_window = 99;
        let c2 = claim_commitment(&mc, &tensor_hash(&x), &tensor_hash(&y), &rt, &m2);
        assert_ne!(c0, c2);
        // Different trace root → different commitment: the per-node trace
        // tree is bound, so post-hoc digest swaps invalidate the claim.
        let rt2 = sha256(b"another-trace-root");
        let c3 = claim_commitment(&mc, &tensor_hash(&x), &tensor_hash(&y), &rt2, &meta());
        assert_ne!(c0, c3);
    }

    #[test]
    fn inputs_hash_binds_every_tensor_and_arity() {
        let a = Tensor::<f32>::ones(&[2, 2]);
        let b = Tensor::<f32>::zeros(&[2, 2]);
        // Every position is bound.
        assert_ne!(
            inputs_hash(&[a.clone(), b.clone()]),
            inputs_hash(&[a.clone(), a.clone()])
        );
        // Order is bound.
        assert_ne!(
            inputs_hash(&[a.clone(), b.clone()]),
            inputs_hash(&[b.clone(), a.clone()])
        );
        // Arity is bound: a singleton list is not the bare tensor hash and
        // not the undomained list hash.
        assert_ne!(inputs_hash(std::slice::from_ref(&a)), tensor_hash(&a));
        assert_ne!(
            inputs_hash(std::slice::from_ref(&a)),
            tensor_list_hash(&[&a])
        );
    }

    #[test]
    fn weight_inclusion_proofs() {
        let g = model();
        let tree = weight_tree(&g);
        // Keys sorted: fc.bias (0), fc.weight (1).
        let p_bias = tree.prove(0).unwrap();
        assert!(verify_weight_leaf(
            &tree.root(),
            "fc.bias",
            g.param("fc.bias").unwrap(),
            &p_bias
        ));
        // Wrong name fails.
        assert!(!verify_weight_leaf(
            &tree.root(),
            "fc.weight",
            g.param("fc.bias").unwrap(),
            &p_bias
        ));
    }

    #[test]
    fn graph_inclusion_proofs() {
        let g = model();
        let tree = graph_tree(&g);
        for node in g.nodes() {
            let p = tree.prove(node.id.0).unwrap();
            assert!(verify_graph_leaf(&tree.root(), node, &p));
        }
    }

    #[test]
    fn streaming_tensor_hash_matches_reference() {
        for dims in [vec![1], vec![7], vec![3, 5], vec![2, 3, 4], vec![]] {
            let t = Tensor::<f32>::rand_uniform(&dims, -2.0, 2.0, 9);
            assert_eq!(tensor_hash(&t), tensor_hash_reference(&t), "{dims:?}");
        }
    }

    #[test]
    fn streaming_weight_tree_matches_reference() {
        let g = model();
        assert_eq!(weight_tree(&g), weight_tree_reference(&g));
    }

    #[test]
    fn trace_commitment_matches_reference_on_every_backend() {
        let values: Vec<Tensor<f32>> = (0..13)
            .map(|i| {
                let dims: &[usize] = match i % 3 {
                    0 => &[4, 8],
                    1 => &[4, 8], // same shape: exercises the lane batcher
                    _ => &[2, 3, 3],
                };
                Tensor::<f32>::rand_uniform(dims, -1.0, 1.0, 100 + i)
            })
            .collect();
        let oracle = TraceCommitment::reference(&values);
        assert_eq!(TraceCommitment::build(&values), oracle);
        for backend in Backend::available() {
            let got = TraceCommitment::build_with(&values, backend);
            assert_eq!(got, oracle, "{backend:?}");
            // Pre-computed digests assemble to the identical commitment.
            let streamed = TraceCommitment::from_digests_with(
                values.iter().map(tensor_hash).collect(),
                backend,
            );
            assert_eq!(streamed, oracle, "{backend:?} from_digests");
            for (i, v) in values.iter().enumerate() {
                assert_eq!(got.digest(i), Some(&tensor_hash(v)), "{backend:?} node {i}");
            }
        }
        assert_eq!(oracle.len(), values.len());
        assert!(!oracle.is_empty());
        assert_ne!(oracle.root(), sha256(b""));
        assert!(TraceCommitment::build(&[]).is_empty());
    }

    #[test]
    fn tensor_list_hash_order_sensitive() {
        let a = Tensor::<f32>::ones(&[2]);
        let b = Tensor::<f32>::zeros(&[2]);
        assert_ne!(tensor_list_hash(&[&a, &b]), tensor_list_hash(&[&b, &a]));
    }
}
