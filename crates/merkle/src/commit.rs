//! Model and claim commitments (Phase 0 / Phase 1 artifacts).

use tao_graph::Graph;
use tao_tensor::Tensor;

use crate::canon::{canon_param, canon_signature, canon_tensor};
use crate::sha256::{sha256, Digest, Sha256};
use crate::tree::{verify_inclusion, InclusionProof, MerkleTree};

/// Execution metadata bound into a claim commitment (the paper's "meta":
/// device type, kernel versions, dtypes, and the challenge window Δ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimMeta {
    /// Executing device name.
    pub device: String,
    /// Kernel configuration description.
    pub kernel: String,
    /// Element dtype of the execution.
    pub dtype: String,
    /// Challenge window in coordinator ticks.
    pub challenge_window: u64,
}

impl ClaimMeta {
    fn canon(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for field in [&self.device, &self.kernel, &self.dtype] {
            out.extend_from_slice(&(field.len() as u64).to_le_bytes());
            out.extend_from_slice(field.as_bytes());
        }
        out.extend_from_slice(&self.challenge_window.to_le_bytes());
        out
    }
}

/// The Phase 0 model commitment: weight root `r_w`, graph root `r_g`, and
/// the threshold root `r_e` for the calibrated empirical profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCommitment {
    /// Merkle root over the sorted parameter tensors.
    pub weight_root: Digest,
    /// Merkle root over the operator signatures in canonical order.
    pub graph_root: Digest,
    /// Merkle root over the committed empirical thresholds.
    pub threshold_root: Digest,
}

/// Builds the weight Merkle tree `T_w` (leaves: `canon(name, tensor)` in
/// lexicographic key order — the state dict is a `BTreeMap`, so iteration
/// order is already sorted).
pub fn weight_tree(graph: &Graph) -> MerkleTree {
    let leaves: Vec<Vec<u8>> = graph
        .params()
        .iter()
        .map(|(name, t)| canon_param(name, t))
        .collect();
    MerkleTree::from_leaves(&leaves)
}

/// Builds the graph-structure Merkle tree `T_g` (leaves: `σ(n)` in
/// canonical topological order).
pub fn graph_tree(graph: &Graph) -> MerkleTree {
    let leaves: Vec<Vec<u8>> = graph.nodes().iter().map(canon_signature).collect();
    MerkleTree::from_leaves(&leaves)
}

/// Commits a model given the serialized per-operator thresholds (one byte
/// string per operator, in canonical node order).
pub fn commit_model<B: AsRef<[u8]>>(graph: &Graph, threshold_leaves: &[B]) -> ModelCommitment {
    ModelCommitment {
        weight_root: weight_tree(graph).root(),
        graph_root: graph_tree(graph).root(),
        threshold_root: MerkleTree::from_leaves(threshold_leaves).root(),
    }
}

/// Hash of a tensor's canonical serialization (`H(x)`, `H(y)`).
pub fn tensor_hash(t: &Tensor<f32>) -> Digest {
    sha256(&canon_tensor(t))
}

/// Hash of an ordered tensor list (multi-input/multi-output interfaces):
/// `H(Σ_z H(canon(z)))` as in §5.2.
pub fn tensor_list_hash(ts: &[&Tensor<f32>]) -> Digest {
    let mut h = Sha256::new();
    for t in ts {
        h.update(&tensor_hash(t));
    }
    h.finalize()
}

/// Domain-separated hash of a claim's full ordered input list:
/// `H("tao.v1.inputs" || k || H(x_1) || … || H(x_k))`.
///
/// This is the `H(x)` bound into [`claim_commitment`] — the domain tag and
/// explicit length keep it injective against both single-tensor hashes and
/// list hashes of other arities, so multi-input claims are fully bound.
pub fn inputs_hash(inputs: &[Tensor<f32>]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"tao.v1.inputs");
    h.update(&(inputs.len() as u64).to_le_bytes());
    for t in inputs {
        h.update(&tensor_hash(t));
    }
    h.finalize()
}

/// The Phase 1 claim commitment
/// `C0 = H(r_w || r_g || H(x) || H(y) || meta)`.
pub fn claim_commitment(
    model: &ModelCommitment,
    input_hash: &Digest,
    output_hash: &Digest,
    meta: &ClaimMeta,
) -> Digest {
    let mut h = Sha256::new();
    h.update(&model.weight_root);
    h.update(&model.graph_root);
    h.update(input_hash);
    h.update(output_hash);
    h.update(&meta.canon());
    h.finalize()
}

/// Verifies that a revealed parameter belongs to a weight root.
pub fn verify_weight_leaf(
    root: &Digest,
    name: &str,
    tensor: &Tensor<f32>,
    proof: &InclusionProof,
) -> bool {
    verify_inclusion(root, &canon_param(name, tensor), proof)
}

/// Verifies that a node signature belongs to a graph root.
pub fn verify_graph_leaf(root: &Digest, node: &tao_graph::Node, proof: &InclusionProof) -> bool {
    verify_inclusion(root, &canon_signature(node), proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::{GraphBuilder, OpKind};

    fn model() -> Graph {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter(
            "fc.weight",
            Tensor::<f32>::rand_uniform(&[4, 4], -1.0, 1.0, 1),
        );
        let bias = b.parameter("fc.bias", Tensor::<f32>::zeros(&[4]));
        let y = b.op("fc", OpKind::Linear, &[x, w, bias]);
        b.finish(vec![y]).unwrap()
    }

    fn meta() -> ClaimMeta {
        ClaimMeta {
            device: "sim-a100".into(),
            kernel: "pairwise+fma".into(),
            dtype: "f32".into(),
            challenge_window: 10,
        }
    }

    #[test]
    fn weight_root_changes_with_any_weight_bit() {
        let g1 = model();
        let r1 = weight_tree(&g1).root();
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let mut wt = g1.param("fc.weight").unwrap().clone();
        wt.data_mut()[0] += f32::EPSILON;
        let w = b.parameter("fc.weight", wt);
        let bias = b.parameter("fc.bias", Tensor::<f32>::zeros(&[4]));
        let y = b.op("fc", OpKind::Linear, &[x, w, bias]);
        let g2 = b.finish(vec![y]).unwrap();
        assert_ne!(r1, weight_tree(&g2).root());
    }

    #[test]
    fn graph_root_changes_with_topology() {
        let g1 = model();
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("fc.weight", g1.param("fc.weight").unwrap().clone());
        let bias = b.parameter("fc.bias", Tensor::<f32>::zeros(&[4]));
        let y = b.op("fc", OpKind::Linear, &[x, w, bias]);
        let r = b.op("extra_relu", OpKind::Relu, &[y]);
        let g2 = b.finish(vec![r]).unwrap();
        assert_ne!(graph_tree(&g1).root(), graph_tree(&g2).root());
    }

    #[test]
    fn claim_commitment_binds_everything() {
        let g = model();
        let mc = commit_model(&g, &[b"thresholds".to_vec()]);
        let x = Tensor::<f32>::ones(&[1, 4]);
        let y = Tensor::<f32>::ones(&[1, 4]);
        let c0 = claim_commitment(&mc, &tensor_hash(&x), &tensor_hash(&y), &meta());
        // Different output → different commitment.
        let y2 = Tensor::<f32>::zeros(&[1, 4]);
        let c1 = claim_commitment(&mc, &tensor_hash(&x), &tensor_hash(&y2), &meta());
        assert_ne!(c0, c1);
        // Different window → different commitment.
        let mut m2 = meta();
        m2.challenge_window = 99;
        let c2 = claim_commitment(&mc, &tensor_hash(&x), &tensor_hash(&y), &m2);
        assert_ne!(c0, c2);
    }

    #[test]
    fn inputs_hash_binds_every_tensor_and_arity() {
        let a = Tensor::<f32>::ones(&[2, 2]);
        let b = Tensor::<f32>::zeros(&[2, 2]);
        // Every position is bound.
        assert_ne!(
            inputs_hash(&[a.clone(), b.clone()]),
            inputs_hash(&[a.clone(), a.clone()])
        );
        // Order is bound.
        assert_ne!(
            inputs_hash(&[a.clone(), b.clone()]),
            inputs_hash(&[b.clone(), a.clone()])
        );
        // Arity is bound: a singleton list is not the bare tensor hash and
        // not the undomained list hash.
        assert_ne!(inputs_hash(std::slice::from_ref(&a)), tensor_hash(&a));
        assert_ne!(
            inputs_hash(std::slice::from_ref(&a)),
            tensor_list_hash(&[&a])
        );
    }

    #[test]
    fn weight_inclusion_proofs() {
        let g = model();
        let tree = weight_tree(&g);
        // Keys sorted: fc.bias (0), fc.weight (1).
        let p_bias = tree.prove(0).unwrap();
        assert!(verify_weight_leaf(
            &tree.root(),
            "fc.bias",
            g.param("fc.bias").unwrap(),
            &p_bias
        ));
        // Wrong name fails.
        assert!(!verify_weight_leaf(
            &tree.root(),
            "fc.weight",
            g.param("fc.bias").unwrap(),
            &p_bias
        ));
    }

    #[test]
    fn graph_inclusion_proofs() {
        let g = model();
        let tree = graph_tree(&g);
        for node in g.nodes() {
            let p = tree.prove(node.id.0).unwrap();
            assert!(verify_graph_leaf(&tree.root(), node, &p));
        }
    }

    #[test]
    fn tensor_list_hash_order_sensitive() {
        let a = Tensor::<f32>::ones(&[2]);
        let b = Tensor::<f32>::zeros(&[2]);
        assert_ne!(tensor_list_hash(&[&a, &b]), tensor_list_hash(&[&b, &a]));
    }
}
