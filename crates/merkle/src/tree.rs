//! Merkle trees with domain separation and inclusion proofs.

use crate::sha256::{sha256, Digest, Sha256};

/// Domain-separation prefix for leaf hashes.
const LEAF_PREFIX: u8 = 0x00;
/// Domain-separation prefix for interior hashes.
const NODE_PREFIX: u8 = 0x01;

/// A binary Merkle tree over a fixed leaf list.
///
/// Leaves are hashed with a `0x00` prefix and interior nodes with `0x01`
/// (preventing second-preimage splices); odd levels promote the last node
/// unchanged. Proof depth is `⌈log2 n⌉`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    // levels[0] = leaf digests, levels.last() = [root].
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: the leaf index plus sibling digests bottom-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling digest at each level, bottom-up; `None` where the node was
    /// promoted without a sibling.
    pub siblings: Vec<Option<Digest>>,
}

impl MerkleTree {
    /// Builds a tree from raw leaf byte strings.
    pub fn from_leaves<B: AsRef<[u8]>>(leaves: &[B]) -> Self {
        let leaf_digests: Vec<Digest> = leaves
            .iter()
            .map(|l| {
                let mut h = Sha256::new();
                h.update(&[LEAF_PREFIX]);
                h.update(l.as_ref());
                h.finalize()
            })
            .collect();
        Self::from_leaf_digests(leaf_digests)
    }

    /// Builds a tree from precomputed (already domain-separated) leaf
    /// digests.
    pub fn from_leaf_digests(leaf_digests: Vec<Digest>) -> Self {
        let mut levels = vec![leaf_digests];
        while levels.last().map(|l| l.len() > 1).unwrap_or(false) {
            let prev = levels.last().expect("non-empty by loop condition");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(hash_pair(&pair[0], &pair[1]));
                } else {
                    // Odd node promoted unchanged.
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Root digest; for an empty tree, the hash of the empty string.
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or_else(|| sha256(b""))
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map(Vec::len).unwrap_or(0)
    }

    /// True for an empty tree.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inclusion proof for leaf `index`; `None` when out of range.
    pub fn prove(&self, index: usize) -> Option<InclusionProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sib = idx ^ 1;
            siblings.push(level.get(sib).copied());
            idx /= 2;
        }
        Some(InclusionProof { index, siblings })
    }

    /// Proof-size statistic: the number of digests in a proof for `index`.
    pub fn proof_len(&self, index: usize) -> usize {
        self.prove(index)
            .map(|p| p.siblings.iter().flatten().count())
            .unwrap_or(0)
    }
}

fn hash_pair(l: &Digest, r: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(l);
    h.update(r);
    h.finalize()
}

/// Verifies an inclusion proof for raw leaf bytes against a root.
pub fn verify_inclusion(root: &Digest, leaf: &[u8], proof: &InclusionProof) -> bool {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(leaf);
    verify_inclusion_digest(root, h.finalize(), proof)
}

/// Verifies an inclusion proof for a precomputed leaf digest.
pub fn verify_inclusion_digest(root: &Digest, leaf_digest: Digest, proof: &InclusionProof) -> bool {
    let mut acc = leaf_digest;
    let mut idx = proof.index;
    for sib in &proof.siblings {
        match sib {
            Some(s) => {
                acc = if idx.is_multiple_of(2) {
                    hash_pair(&acc, s)
                } else {
                    hash_pair(s, &acc)
                };
            }
            None => {
                // Promoted without sibling: digest unchanged.
            }
        }
        idx /= 2;
    }
    &acc == root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let t = MerkleTree::from_leaves(&leaves(1));
        assert_eq!(t.len(), 1);
        let p = t.prove(0).unwrap();
        assert!(verify_inclusion(&t.root(), b"leaf-0", &p));
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [2usize, 3, 4, 5, 7, 8, 9, 16, 33] {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let p = t.prove(i).unwrap();
                assert!(verify_inclusion(&t.root(), leaf, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let p = t.prove(3).unwrap();
        assert!(!verify_inclusion(&t.root(), b"leaf-4", &p));
        assert!(!verify_inclusion(&t.root(), b"tampered", &p));
    }

    #[test]
    fn wrong_index_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let mut p = t.prove(3).unwrap();
        p.index = 4;
        assert!(!verify_inclusion(&t.root(), b"leaf-3", &p));
    }

    #[test]
    fn tampered_sibling_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let mut p = t.prove(0).unwrap();
        if let Some(Some(s)) = p.siblings.first_mut().map(|s| s.as_mut()) {
            s[0] ^= 0xff;
        }
        assert!(!verify_inclusion(&t.root(), b"leaf-0", &p));
    }

    #[test]
    fn roots_differ_when_any_leaf_differs() {
        let a = MerkleTree::from_leaves(&leaves(5));
        let mut ls = leaves(5);
        ls[2] = b"changed".to_vec();
        let b = MerkleTree::from_leaves(&ls);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_order_matters() {
        let mut ls = leaves(4);
        let a = MerkleTree::from_leaves(&ls);
        ls.swap(0, 1);
        let b = MerkleTree::from_leaves(&ls);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn domain_separation_leaf_vs_node() {
        // A 2-leaf tree's root must differ from a leaf hash of the
        // concatenated children (second-preimage splice).
        let ls = leaves(2);
        let t = MerkleTree::from_leaves(&ls);
        let mut spliced = vec![0x01u8];
        spliced.extend_from_slice(&sha256(b"leaf-0"));
        spliced.extend_from_slice(&sha256(b"leaf-1"));
        assert_ne!(t.root(), sha256(&spliced));
    }

    #[test]
    fn empty_tree_root_is_defined() {
        let t = MerkleTree::from_leaves::<Vec<u8>>(&[]);
        assert!(t.is_empty());
        assert_eq!(t.root(), sha256(b""));
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn proof_depth_logarithmic() {
        let t = MerkleTree::from_leaves(&leaves(1024));
        assert_eq!(t.proof_len(0), 10);
        let t33 = MerkleTree::from_leaves(&leaves(33));
        assert!(t33.proof_len(0) <= 6);
    }
}
