//! Merkle trees with domain separation and inclusion proofs.
//!
//! Tree construction has two implementations with bit-identical output:
//! the seed serial builder ([`MerkleTree::from_leaf_digests_reference`]),
//! kept in-tree permanently as the differential oracle, and the default
//! fast builder, which hashes interior levels with the multi-way SHA-256
//! backends of [`crate::multiway`] and fans large levels out over scoped
//! worker threads. Every interior digest is a pure function of its two
//! children, so row-banding a level cannot change any bit regardless of
//! the thread count (the same argument as the tensor kernels' row bands).

use crate::multiway::{sha256_many_equal, sha256_with, Backend};
use crate::sha256::{sha256, Digest, Sha256};

/// Domain-separation prefix for leaf hashes.
pub(crate) const LEAF_PREFIX: u8 = 0x00;
/// Domain-separation prefix for interior hashes.
pub(crate) const NODE_PREFIX: u8 = 0x01;

/// Upper bound on tree-builder worker threads (matches the kernel cap so
/// nested parallelism stays bounded).
pub const MAX_HASH_THREADS: usize = 8;

/// Minimum pair hashes in a level before it fans out to threads; below
/// this the spawn cost dominates.
const PAR_MIN_PAIRS: usize = 2048;

/// A binary Merkle tree over a fixed leaf list.
///
/// Leaves are hashed with a `0x00` prefix and interior nodes with `0x01`
/// (preventing second-preimage splices); odd levels promote the last node
/// unchanged. Proof depth is `⌈log2 n⌉`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    // levels[0] = leaf digests, levels.last() = [root].
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: the leaf index plus sibling digests bottom-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling digest at each level, bottom-up; `None` where the node was
    /// promoted without a sibling.
    pub siblings: Vec<Option<Digest>>,
}

impl MerkleTree {
    /// Builds a tree from raw leaf byte strings (multi-way leaf hashing,
    /// level-parallel interior build; bit-identical to
    /// [`MerkleTree::from_leaves_reference`]).
    pub fn from_leaves<B: AsRef<[u8]>>(leaves: &[B]) -> Self {
        let backend = Backend::auto();
        let leaf_digests = hash_leaves(backend, leaves);
        Self::from_leaf_digests_with(leaf_digests, backend, auto_threads(leaves.len()))
    }

    /// Seed serial tree construction over raw leaves: scalar leaf hashing
    /// plus the serial interior builder. The differential oracle (and the
    /// microbenchmark baseline) for [`MerkleTree::from_leaves`].
    pub fn from_leaves_reference<B: AsRef<[u8]>>(leaves: &[B]) -> Self {
        let leaf_digests: Vec<Digest> = leaves
            .iter()
            .map(|l| {
                let mut h = Sha256::new();
                h.update(&[LEAF_PREFIX]);
                h.update(l.as_ref());
                h.finalize()
            })
            .collect();
        Self::from_leaf_digests_reference(leaf_digests)
    }

    /// Builds a tree from precomputed (already domain-separated) leaf
    /// digests on the fastest supported backend.
    pub fn from_leaf_digests(leaf_digests: Vec<Digest>) -> Self {
        let threads = auto_threads(leaf_digests.len());
        Self::from_leaf_digests_with(leaf_digests, Backend::auto(), threads)
    }

    /// Builds a tree from leaf digests with a pinned hash backend and
    /// worker count (the equivalence tests sweep both; results are
    /// independent of `threads`).
    pub fn from_leaf_digests_with(leaf_digests: Vec<Digest>, backend: Backend, threads: usize) -> Self {
        let mut levels = vec![leaf_digests];
        while levels.last().map(|l| l.len() > 1).unwrap_or(false) {
            let prev = levels.last().expect("non-empty by loop condition");
            levels.push(level_up(prev, backend, threads));
        }
        MerkleTree { levels }
    }

    /// Seed serial tree construction from leaf digests: one scalar pair
    /// hash at a time, exactly the pre-optimization loop. Kept in-tree
    /// permanently as the differential oracle.
    pub fn from_leaf_digests_reference(leaf_digests: Vec<Digest>) -> Self {
        let mut levels = vec![leaf_digests];
        while levels.last().map(|l| l.len() > 1).unwrap_or(false) {
            let prev = levels.last().expect("non-empty by loop condition");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(hash_pair(&pair[0], &pair[1]));
                } else {
                    // Odd node promoted unchanged.
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Root digest; for an empty tree, the hash of the empty string.
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or_else(|| sha256(b""))
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map(Vec::len).unwrap_or(0)
    }

    /// True for an empty tree.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inclusion proof for leaf `index`; `None` when out of range.
    pub fn prove(&self, index: usize) -> Option<InclusionProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sib = idx ^ 1;
            siblings.push(level.get(sib).copied());
            idx /= 2;
        }
        Some(InclusionProof { index, siblings })
    }

    /// Proof-size statistic: the number of digests in a proof for `index`.
    pub fn proof_len(&self, index: usize) -> usize {
        self.prove(index)
            .map(|p| p.siblings.iter().flatten().count())
            .unwrap_or(0)
    }
}

fn hash_pair(l: &Digest, r: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(l);
    h.update(r);
    h.finalize()
}

/// Worker count for a level of `pairs` pair hashes.
fn auto_threads(pairs: usize) -> usize {
    if pairs < PAR_MIN_PAIRS {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_HASH_THREADS)
}

/// The 65-byte interior-node message `NODE_PREFIX || l || r` on the stack.
#[inline]
fn pair_message(l: &Digest, r: &Digest) -> [u8; 65] {
    let mut msg = [0u8; 65];
    msg[0] = NODE_PREFIX;
    msg[1..33].copy_from_slice(l);
    msg[33..65].copy_from_slice(r);
    msg
}

/// Fills `out[o]` with the parent of leaves `2(o0+o)` and `2(o0+o)+1` of
/// `prev` for every `o`, batching full pairs through the multi-way
/// compressor `backend.lanes()` at a time. Pure per-output, so any band
/// decomposition yields identical digests.
fn fill_parents(backend: Backend, prev: &[Digest], o0: usize, out: &mut [Digest]) {
    let lanes = backend.lanes().max(1);
    let mut o = 0;
    while o < out.len() {
        let global = o0 + o;
        if 2 * global + 1 >= prev.len() {
            // Odd node promoted unchanged (always the last output).
            out[o] = prev[2 * global];
            o += 1;
            continue;
        }
        // Number of consecutive full pairs from here.
        let full = out.len() - o - usize::from(2 * (o0 + out.len() - 1) + 1 >= prev.len());
        if lanes == 8 && full >= 8 {
            let msgs: [[u8; 65]; 8] = std::array::from_fn(|j| {
                let g = global + j;
                pair_message(&prev[2 * g], &prev[2 * g + 1])
            });
            let refs: [&[u8]; 8] = std::array::from_fn(|j| msgs[j].as_slice());
            out[o..o + 8].copy_from_slice(&sha256_many_equal(backend, refs));
            o += 8;
        } else if lanes == 4 && full >= 4 {
            let msgs: [[u8; 65]; 4] = std::array::from_fn(|j| {
                let g = global + j;
                pair_message(&prev[2 * g], &prev[2 * g + 1])
            });
            let refs: [&[u8]; 4] = std::array::from_fn(|j| msgs[j].as_slice());
            out[o..o + 4].copy_from_slice(&sha256_many_equal(backend, refs));
            o += 4;
        } else {
            let msg = pair_message(&prev[2 * global], &prev[2 * global + 1]);
            out[o] = match backend {
                Backend::Scalar => sha256(&msg),
                _ => sha256_with(backend, &msg),
            };
            o += 1;
        }
    }
}

/// Computes one interior level from the previous one, fanning bands of
/// parents out over scoped worker threads when the level is large enough.
fn level_up(prev: &[Digest], backend: Backend, threads: usize) -> Vec<Digest> {
    let n_out = prev.len().div_ceil(2);
    let mut next = vec![[0u8; 32]; n_out];
    let workers = threads.clamp(1, MAX_HASH_THREADS).min(n_out.max(1));
    if workers <= 1 || n_out < PAR_MIN_PAIRS {
        fill_parents(backend, prev, 0, &mut next);
        return next;
    }
    let per = n_out.div_ceil(workers);
    std::thread::scope(|scope| {
        for (wi, band) in next.chunks_mut(per).enumerate() {
            scope.spawn(move || fill_parents(backend, prev, wi * per, band));
        }
    });
    next
}

/// Hashes raw leaves (`LEAF_PREFIX || leaf`) into leaf digests, batching
/// equal-length leaves through the multi-way compressor. Equal to the
/// scalar per-leaf hashing of [`MerkleTree::from_leaves_reference`].
pub fn hash_leaves<B: AsRef<[u8]>>(backend: Backend, leaves: &[B]) -> Vec<Digest> {
    let lanes = backend.lanes();
    if lanes == 1 {
        return leaves
            .iter()
            .map(|l| {
                let mut h = crate::multiway::FastSha256::with_backend(backend);
                h.update(&[LEAF_PREFIX]);
                h.update(l.as_ref());
                h.finalize()
            })
            .collect();
    }
    let mut out = vec![[0u8; 32]; leaves.len()];
    let groups = crate::multiway::group_indices_by(leaves.len(), |i| leaves[i].as_ref().len());
    for (_, idxs) in &groups {
        let mut chunks = idxs.chunks_exact(lanes);
        for chunk in &mut chunks {
            if lanes == 4 {
                let mut h = crate::multiway::MultiSha256::<4>::new(backend);
                h.update_all(&[LEAF_PREFIX]);
                h.update(std::array::from_fn(|j| leaves[chunk[j]].as_ref()));
                for (j, d) in h.finalize().into_iter().enumerate() {
                    out[chunk[j]] = d;
                }
            } else {
                let mut h = crate::multiway::MultiSha256::<8>::new(backend);
                h.update_all(&[LEAF_PREFIX]);
                h.update(std::array::from_fn(|j| leaves[chunk[j]].as_ref()));
                for (j, d) in h.finalize().into_iter().enumerate() {
                    out[chunk[j]] = d;
                }
            }
        }
        for &i in chunks.remainder() {
            let mut h = crate::multiway::FastSha256::with_backend(backend);
            h.update(&[LEAF_PREFIX]);
            h.update(leaves[i].as_ref());
            out[i] = h.finalize();
        }
    }
    out
}

/// Verifies an inclusion proof for raw leaf bytes against a root.
pub fn verify_inclusion(root: &Digest, leaf: &[u8], proof: &InclusionProof) -> bool {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(leaf);
    verify_inclusion_digest(root, h.finalize(), proof)
}

/// Verifies an inclusion proof for a precomputed leaf digest.
pub fn verify_inclusion_digest(root: &Digest, leaf_digest: Digest, proof: &InclusionProof) -> bool {
    let mut acc = leaf_digest;
    let mut idx = proof.index;
    for sib in &proof.siblings {
        match sib {
            Some(s) => {
                acc = if idx.is_multiple_of(2) {
                    hash_pair(&acc, s)
                } else {
                    hash_pair(s, &acc)
                };
            }
            None => {
                // Promoted without sibling: digest unchanged.
            }
        }
        idx /= 2;
    }
    &acc == root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiway::Backend;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let t = MerkleTree::from_leaves(&leaves(1));
        assert_eq!(t.len(), 1);
        let p = t.prove(0).unwrap();
        assert!(verify_inclusion(&t.root(), b"leaf-0", &p));
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [2usize, 3, 4, 5, 7, 8, 9, 16, 33] {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let p = t.prove(i).unwrap();
                assert!(verify_inclusion(&t.root(), leaf, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let p = t.prove(3).unwrap();
        assert!(!verify_inclusion(&t.root(), b"leaf-4", &p));
        assert!(!verify_inclusion(&t.root(), b"tampered", &p));
    }

    #[test]
    fn wrong_index_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let mut p = t.prove(3).unwrap();
        p.index = 4;
        assert!(!verify_inclusion(&t.root(), b"leaf-3", &p));
    }

    #[test]
    fn tampered_sibling_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let mut p = t.prove(0).unwrap();
        if let Some(Some(s)) = p.siblings.first_mut().map(|s| s.as_mut()) {
            s[0] ^= 0xff;
        }
        assert!(!verify_inclusion(&t.root(), b"leaf-0", &p));
    }

    #[test]
    fn roots_differ_when_any_leaf_differs() {
        let a = MerkleTree::from_leaves(&leaves(5));
        let mut ls = leaves(5);
        ls[2] = b"changed".to_vec();
        let b = MerkleTree::from_leaves(&ls);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_order_matters() {
        let mut ls = leaves(4);
        let a = MerkleTree::from_leaves(&ls);
        ls.swap(0, 1);
        let b = MerkleTree::from_leaves(&ls);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn domain_separation_leaf_vs_node() {
        // A 2-leaf tree's root must differ from a leaf hash of the
        // concatenated children (second-preimage splice).
        let ls = leaves(2);
        let t = MerkleTree::from_leaves(&ls);
        let mut spliced = vec![0x01u8];
        spliced.extend_from_slice(&sha256(b"leaf-0"));
        spliced.extend_from_slice(&sha256(b"leaf-1"));
        assert_ne!(t.root(), sha256(&spliced));
    }

    #[test]
    fn empty_tree_root_is_defined() {
        let t = MerkleTree::from_leaves::<Vec<u8>>(&[]);
        assert!(t.is_empty());
        assert_eq!(t.root(), sha256(b""));
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn fast_builder_matches_reference_for_every_backend_and_thread_count() {
        for n in [0usize, 1, 2, 3, 5, 8, 9, 33, 64, 65, 257] {
            let ls = leaves(n);
            let oracle = MerkleTree::from_leaves_reference(&ls);
            assert_eq!(MerkleTree::from_leaves(&ls), oracle, "auto n={n}");
            let digests = oracle.levels.first().cloned().unwrap_or_default();
            for backend in Backend::available() {
                for threads in [1usize, 2, 3, 8] {
                    let fast =
                        MerkleTree::from_leaf_digests_with(digests.clone(), backend, threads);
                    assert_eq!(fast, oracle, "{backend:?} threads={threads} n={n}");
                }
            }
        }
    }

    #[test]
    fn parallel_build_crosses_the_fanout_threshold() {
        // Enough leaves that the first level actually fans out.
        let ls = leaves(2 * PAR_MIN_PAIRS + 3);
        let oracle = MerkleTree::from_leaves_reference(&ls);
        for threads in [2usize, 8] {
            let digests = oracle.levels[0].clone();
            let fast = MerkleTree::from_leaf_digests_with(digests, Backend::auto(), threads);
            assert_eq!(fast.root(), oracle.root(), "threads={threads}");
            assert_eq!(fast, oracle);
        }
    }

    #[test]
    fn proof_depth_logarithmic() {
        let t = MerkleTree::from_leaves(&leaves(1024));
        assert_eq!(t.proof_len(0), 10);
        let t33 = MerkleTree::from_leaves(&leaves(33));
        assert!(t33.proof_len(0) <= 6);
    }
}
