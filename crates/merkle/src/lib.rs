//! # tao-merkle
//!
//! Cryptographic commitments for the TAO protocol: a from-scratch FIPS
//! 180-4 SHA-256, injective canonical serialization of tensors and
//! operator signatures, domain-separated Merkle trees with inclusion
//! proofs, and the Phase 0/1 commitment constructions (`r_w`, `r_g`,
//! `r_e`, `C0`).
//!
//! # Examples
//!
//! ```
//! use tao_merkle::{sha256, to_hex, MerkleTree, verify_inclusion};
//!
//! let t = MerkleTree::from_leaves(&[b"a".to_vec(), b"b".to_vec()]);
//! let proof = t.prove(1).unwrap();
//! assert!(verify_inclusion(&t.root(), b"b", &proof));
//! assert_eq!(to_hex(&sha256(b"abc")).len(), 64);
//! ```

pub mod canon;
pub mod commit;
pub mod multiway;
pub mod sha256;
pub mod stream;
pub mod tree;

pub use canon::{
    canon_param, canon_param_sink, canon_signature, canon_tensor, canon_tensor_len,
    canon_tensor_sink, CanonSink,
};
pub use commit::{
    claim_commitment, commit_model, graph_tree, inputs_hash, tensor_digests, tensor_hash,
    tensor_hash_reference, tensor_list_hash, verify_graph_leaf, verify_weight_leaf, weight_tree,
    weight_tree_reference, ClaimMeta, ModelCommitment, TraceCommitment,
};
pub use multiway::{
    sha256_batch, sha256_batch_with, sha256_many_equal, sha256_with, Backend, FastSha256,
    MultiSha256,
};
pub use sha256::{sha256, to_hex, Digest, Sha256};
pub use stream::{StreamingCommitter, TokenChain};
pub use tree::{
    hash_leaves, verify_inclusion, verify_inclusion_digest, InclusionProof, MerkleTree,
    MAX_HASH_THREADS,
};
