//! # tao
//!
//! TAO: tolerance-aware optimistic verification for floating-point neural
//! networks — the end-to-end runtime tying together the tensor/device/graph
//! substrates, the dual error models, calibration, commitments, the
//! dispute protocol and the attack suite.
//!
//! The runtime is organized around *session handles*: a [`Deployment`] is
//! a cheaply cloneable `Arc` over the Phase 0 artifacts, a
//! [`SessionBuilder`] configures one verification session over it, and the
//! resulting [`Session`] is driven phase by phase (`submit` → `screen` →
//! `dispute` → `settle`) or in one shot via [`SessionBuilder::run`]. Many
//! sessions run concurrently over one coordinator with the [`Scheduler`].
//!
//! # Quickstart
//!
//! ```
//! use tao::{deploy, default_coordinator, SessionBuilder, SharedCoordinator};
//! use tao_device::Fleet;
//! use tao_models::{bert, data, BertConfig};
//!
//! // Phase 0: trace, calibrate and commit a model.
//! let cfg = BertConfig { layers: 1, ..BertConfig::small() };
//! let model = bert::build(cfg, 1);
//! let samples = data::token_dataset(4, cfg.seq, cfg.vocab, 7);
//! let deployment = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
//!
//! // Phases 1-3: an honest run finalizes unchallenged.
//! let coordinator = SharedCoordinator::new(default_coordinator().unwrap());
//! let inputs = vec![bert::sample_ids(cfg, 42)];
//! let report = SessionBuilder::new(&deployment, inputs)
//!     .run(&coordinator)
//!     .unwrap();
//! assert!(report.proposer_prevailed());
//! ```

pub mod analyze;
pub mod deploy;
pub mod error;
pub mod schedule;
pub mod session;
pub mod verify;

pub use analyze::{analyze_model, build_model, render_report, MODEL_NAMES};
pub use deploy::{deploy, deploy_with, Deployment, DeploymentArtifacts};
pub use error::TaoError;
pub use schedule::Scheduler;
pub use session::{
    default_coordinator, PendingSession, ProposerBehavior, Session, SessionBuilder, SessionConfig,
    SessionReport, SharedCoordinator,
};
pub use verify::{make_receipt, screen_output, verify_receipt, Receipt, ScreeningReport};

// Re-export the sub-crates so downstream users need a single dependency.
pub use tao_analysis as analysis;
pub use tao_attack as attack;
pub use tao_bounds as bounds;
pub use tao_calib as calib;
pub use tao_device as device;
pub use tao_graph as graph;
pub use tao_merkle as merkle;
pub use tao_models as models;
pub use tao_protocol as protocol;
pub use tao_tensor as tensor;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, TaoError>;
