//! Phases 1–3: the end-to-end optimistic verification session, as a
//! phase-by-phase driveable handle.
//!
//! A session moves through three owned states:
//!
//! 1. [`SessionBuilder`] — configuration only. [`SessionBuilder::prepare`]
//!    runs the proposer's forward pass (pure compute, no coordinator);
//!    [`SessionBuilder::submit`] additionally posts the claim.
//! 2. [`PendingSession`] — executed but not yet posted; the split exists
//!    so a scheduler can run the expensive proposer passes in parallel and
//!    still submit claims in a deterministic order.
//! 3. [`Session`] — a posted claim. Drive it with [`Session::screen`]
//!    (challenger trigger; caches the screening trace),
//!    [`Session::dispute`] (localization + leaf adjudication, reusing the
//!    screening trace) and [`Session::settle`] (bond settlement, yielding
//!    the final [`SessionReport`]).
//!
//! [`SessionBuilder::run`] is the one-shot convenience that drives all
//! phases in order, preserving the behavior of the old free-function API.
//!
//! The coordinator is shared through [`SharedCoordinator`]: since the
//! coordinator became internally sharded (per-claim and per-account lock
//! shards), sessions on distinct claims never contend at all, and the
//! handle's [`lock`](SharedCoordinator::lock) accessor survives purely for
//! migration compatibility — it hands out the coordinator directly.

use tao_bounds::BoundEngine;
use tao_device::Device;
use tao_graph::{execute_observed, Execution, Perturbations};
use tao_merkle::{
    claim_commitment, inputs_hash, tensor_hash, ClaimMeta, Digest, StreamingCommitter,
    TraceCommitment,
};
use tao_protocol::{
    adjudicate, leaf_case, run_dispute, sample_committee, screen_claim, screen_claim_committed,
    AdjudicationPath, ChallengerView, ClaimCheck, ClaimStatus, Coordinator, DisputeConfig,
    DisputeOutcome, DisputeResult, LeafVerdict, Money, Party, ProposerView, Screening,
};
use tao_tensor::Tensor;

use crate::deploy::Deployment;
use crate::error::TaoError;
use crate::Result;

/// How the proposer behaves during Phase 1.
#[derive(Debug, Clone)]
pub enum ProposerBehavior {
    /// Runs the committed model faithfully on its device.
    Honest,
    /// Injects the given additive perturbations at operator outputs.
    Malicious(Perturbations),
}

/// Configuration of one verification session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Proposer device.
    pub proposer: Device,
    /// Challenger device.
    pub challenger: Device,
    /// Proposer's coordinator account.
    pub proposer_account: String,
    /// Challenger's coordinator account.
    pub challenger_account: String,
    /// Challenge window in coordinator ticks.
    pub window: u64,
    /// Dispute partition width `N`.
    pub n_way: usize,
    /// Committee size for Phase 3 (odd).
    pub committee: usize,
    /// Sortition seed.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            proposer: Device::rtx4090_like(),
            challenger: Device::h100_like(),
            proposer_account: "proposer".to_string(),
            challenger_account: "challenger".to_string(),
            window: 10,
            n_way: 2,
            committee: 3,
            seed: 1,
        }
    }
}

/// A [`Coordinator`] shared across concurrent sessions.
///
/// The coordinator is internally sharded (per-claim and per-account lock
/// shards with a deterministic lock order — see `tao-protocol`'s
/// coordinator docs), so this handle no longer wraps it in a mutex:
/// sessions on distinct claims proceed with zero contention, and
/// settlement runs in parallel. [`lock`](Self::lock) is kept as a
/// migration-compatible accessor from the single-mutex era; it now simply
/// returns the coordinator, whose methods all take `&self`.
#[derive(Debug)]
pub struct SharedCoordinator {
    inner: Coordinator,
}

impl SharedCoordinator {
    /// Wraps a coordinator for shared use.
    pub fn new(coordinator: Coordinator) -> Self {
        SharedCoordinator { inner: coordinator }
    }

    /// Migration-compatible accessor from the single-mutex era: existing
    /// `coordinator.lock().method(...)` call sites keep compiling, but no
    /// global lock is taken — synchronization happens on the coordinator's
    /// internal shards, **per call**. Unlike the old guard, holding the
    /// returned reference provides no atomicity across successive method
    /// calls; prefer [`coordinator`](Self::coordinator) in new code.
    pub fn lock(&self) -> &Coordinator {
        &self.inner
    }

    /// The shared coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.inner
    }

    /// Free (non-escrowed) balance of an account, exact.
    pub fn balance(&self, account: &str) -> Money {
        self.inner.balance(account)
    }

    /// Unwraps the coordinator once all sessions are done.
    pub fn into_inner(self) -> Coordinator {
        self.inner
    }
}

impl From<Coordinator> for SharedCoordinator {
    fn from(coordinator: Coordinator) -> Self {
        SharedCoordinator::new(coordinator)
    }
}

/// Everything that happened in one session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Coordinator claim id.
    pub claim_id: u64,
    /// The proposer's posted output.
    pub output: Tensor<f32>,
    /// Whether the challenger's screen flagged the claim.
    pub challenged: bool,
    /// The screening exceedance (Eq. 15) of the posted output.
    pub exceedance: f64,
    /// Dispute-game outcome when challenged.
    pub dispute: Option<DisputeOutcome>,
    /// Leaf adjudication result when the game reached a leaf.
    pub verdict: Option<(AdjudicationPath, LeafVerdict)>,
    /// Final coordinator status of the claim.
    pub final_status: ClaimStatus,
}

impl SessionReport {
    /// True when the claim finalized in the proposer's favour.
    pub fn proposer_prevailed(&self) -> bool {
        matches!(
            self.final_status,
            ClaimStatus::Finalized
                | ClaimStatus::Settled {
                    winner: Party::Proposer
                }
        )
    }
}

/// Configures one verification session over a shared deployment.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    deployment: Deployment,
    cfg: SessionConfig,
    inputs: Vec<Tensor<f32>>,
    behavior: ProposerBehavior,
}

impl SessionBuilder {
    /// Starts a session over `deployment` serving `inputs`, with the
    /// default configuration and an honest proposer.
    pub fn new(deployment: &Deployment, inputs: Vec<Tensor<f32>>) -> Self {
        SessionBuilder {
            deployment: deployment.clone(),
            cfg: SessionConfig::default(),
            inputs,
            behavior: ProposerBehavior::Honest,
        }
    }

    /// Replaces the session configuration.
    #[must_use]
    pub fn config(mut self, cfg: SessionConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the proposer behavior.
    #[must_use]
    pub fn behavior(mut self, behavior: ProposerBehavior) -> Self {
        self.behavior = behavior;
        self
    }

    /// Phase 1 compute: the proposer executes the committed model on its
    /// device and builds the claim commitment `C0`. No coordinator
    /// interaction happens here, so any number of `prepare` calls can run
    /// concurrently.
    ///
    /// # Errors
    ///
    /// Returns an error when the proposer execution fails.
    pub fn prepare(self) -> Result<PendingSession> {
        let SessionBuilder {
            deployment,
            cfg,
            inputs,
            behavior,
        } = self;
        let perturb = match &behavior {
            ProposerBehavior::Honest => None,
            ProposerBehavior::Malicious(p) => Some(p),
        };
        // The trace commitment streams through the forward pass: every
        // node's value is hashed as it is produced (overlapping the
        // remaining compute on multi-core hosts) instead of in a post-hoc
        // pass over the finished trace. Built exactly once, here — the
        // dispute reuses it, never rebuilds.
        let mut committer = StreamingCommitter::new(deployment.model.graph.len());
        let trace = execute_observed(
            &deployment.model.graph,
            &inputs,
            cfg.proposer.config(),
            perturb,
            &mut committer,
        )?;
        let trace_commitment = committer.finish();
        let output = trace.value(deployment.model.logits)?.clone();
        let meta = ClaimMeta {
            device: cfg.proposer.name().to_string(),
            kernel: format!("{:?}", cfg.proposer.config().accum),
            dtype: "f32".to_string(),
            challenge_window: cfg.window,
        };
        // Bind the full ordered input list (domain-separated), not just
        // the first tensor: multi-input claims are otherwise malleable.
        // The trace root is bound too, so the bisection reveals of any
        // later dispute are verifiable against what was claimed *now*.
        let commitment = claim_commitment(
            &deployment.commitment,
            &inputs_hash(&inputs),
            &tensor_hash(&output),
            &trace_commitment.root(),
            &meta,
        );
        Ok(PendingSession {
            deployment,
            cfg,
            inputs,
            trace,
            trace_commitment,
            output,
            meta,
            commitment,
        })
    }

    /// Phase 1 end-to-end: [`prepare`](Self::prepare) plus claim
    /// submission.
    ///
    /// # Errors
    ///
    /// Returns an error when execution fails or the proposer cannot post
    /// its deposit.
    pub fn submit(self, coordinator: &SharedCoordinator) -> Result<Session> {
        self.prepare()?.submit(coordinator)
    }

    /// One-shot convenience: submits, screens, disputes when flagged, and
    /// settles — the full Phases 1–3 pipeline against `coordinator`.
    ///
    /// # Errors
    ///
    /// Returns an error if any protocol step fails structurally (kernel
    /// errors, missing funds, bad records, missing thresholds). Verdicts —
    /// including "challenger loses" — are reported in the
    /// [`SessionReport`], not as errors.
    pub fn run(self, coordinator: &SharedCoordinator) -> Result<SessionReport> {
        let mut session = self.submit(coordinator)?;
        if session.screen()? {
            session.dispute(coordinator)?;
        }
        session.settle(coordinator)
    }
}

/// A session whose proposer has executed but whose claim is not yet
/// posted. Produced by [`SessionBuilder::prepare`]; consumed by
/// [`PendingSession::submit`].
#[derive(Debug, Clone)]
pub struct PendingSession {
    deployment: Deployment,
    cfg: SessionConfig,
    inputs: Vec<Tensor<f32>>,
    trace: Execution,
    trace_commitment: TraceCommitment,
    output: Tensor<f32>,
    meta: ClaimMeta,
    commitment: Digest,
}

impl PendingSession {
    /// The claim commitment `C0` that will be posted.
    pub fn commitment(&self) -> &Digest {
        &self.commitment
    }

    /// Root of the per-node trace commitment bound into `C0` (streamed
    /// through the proposer's forward pass at prepare time).
    pub fn trace_root(&self) -> Digest {
        self.trace_commitment.root()
    }

    /// The proposer account that will post (and fund) the claim.
    pub fn proposer_account(&self) -> &str {
        &self.cfg.proposer_account
    }

    /// The exact deposit this claim will escrow on submission:
    /// `max(D_p, deposit_bound)` from the deployment's static report.
    pub fn deposit_quote(&self, coordinator: &Coordinator) -> Money {
        coordinator
            .amounts()
            .d_p
            .max(self.deployment.static_report.deposit_bound)
    }

    /// Posts the claim, charging the gas quote and escrowing the deposit
    /// from the deployment's static report (`max(D_p, deposit_bound)`).
    /// Claim ids are assigned by the coordinator in submission order, so
    /// submitting from one thread (as [`crate::Scheduler`] does) keeps
    /// them deterministic.
    ///
    /// # Errors
    ///
    /// Returns an error when the proposer cannot post its deposit.
    pub fn submit(self, coordinator: &SharedCoordinator) -> Result<Session> {
        let claim_id = coordinator.coordinator().submit_claim_quoted(
            &self.cfg.proposer_account,
            self.commitment,
            &self.meta,
            &self.deployment.static_report,
        )?;
        Ok(Session {
            deployment: self.deployment,
            cfg: self.cfg,
            inputs: self.inputs,
            trace: self.trace,
            trace_commitment: self.trace_commitment,
            output: self.output,
            claim_id,
            screening: None,
            dispute: None,
            verdict: None,
            winner: None,
            abandoned: false,
        })
    }
}

/// A live session handle over a posted claim.
#[derive(Debug)]
pub struct Session {
    deployment: Deployment,
    cfg: SessionConfig,
    inputs: Vec<Tensor<f32>>,
    trace: Execution,
    trace_commitment: TraceCommitment,
    output: Tensor<f32>,
    claim_id: u64,
    screening: Option<Screening>,
    dispute: Option<DisputeOutcome>,
    verdict: Option<(AdjudicationPath, LeafVerdict)>,
    winner: Option<Party>,
    abandoned: bool,
}

impl Session {
    /// Coordinator claim id of this session's claim.
    pub fn claim_id(&self) -> u64 {
        self.claim_id
    }

    /// The proposer's posted output.
    pub fn output(&self) -> &Tensor<f32> {
        &self.output
    }

    /// The screening outcome, when [`screen`](Self::screen) has run.
    pub fn screening(&self) -> Option<&Screening> {
        self.screening.as_ref()
    }

    /// Phase 2 trigger: the challenger re-executes the claim on its device
    /// and compares final-output error percentiles against the committed
    /// thresholds. The resulting trace is cached on the session and reused
    /// by [`dispute`](Self::dispute), so the challenger pays exactly one
    /// forward pass. Idempotent; returns whether the claim is flagged.
    ///
    /// # Errors
    ///
    /// Returns an error when re-execution fails or the output operator has
    /// no committed threshold (a deployment bug, not fraud).
    pub fn screen(&mut self) -> Result<bool> {
        if self.screening.is_none() {
            let screening = screen_claim(
                &self.deployment.model.graph,
                self.deployment.model.logits,
                &self.deployment.thresholds,
                ClaimCheck {
                    inputs: &self.inputs,
                    claimed_output: &self.output,
                },
                &self.cfg.challenger,
            )?;
            self.screening = Some(screening);
        }
        Ok(self.screening.as_ref().expect("just cached").flagged)
    }

    /// Phases 2–3 for a flagged claim: opens the challenge, plays the
    /// dispute localization game reusing the screening trace (the
    /// challenger's forward pass is *not* recomputed), and adjudicates the
    /// leaf when one is reached. No-op returning `None` for unflagged
    /// claims; idempotent once resolved.
    ///
    /// # Errors
    ///
    /// Errors when called before [`screen`](Self::screen), or when a
    /// protocol step fails structurally.
    pub fn dispute(&mut self, coordinator: &SharedCoordinator) -> Result<Option<&DisputeOutcome>> {
        let Some(screening) = &self.screening else {
            return Err(TaoError::Config(
                "dispute() requires screen() to have run".into(),
            ));
        };
        if !screening.flagged {
            return Ok(None);
        }
        if self.dispute.is_some() {
            return Ok(self.dispute.as_ref());
        }
        coordinator
            .coordinator()
            .open_challenge(self.claim_id, &self.cfg.challenger_account)?;
        self.resolve_dispute()?;
        Ok(self.dispute.as_ref())
    }

    /// Opens a challenge and plays the dispute game **regardless of the
    /// screening verdict** — the stake-bleed griefing move: a challenger
    /// disputing a claim its own screening did not flag. The dispute is
    /// objective, so against an honest proposer the descent finds no
    /// offending child and the griefer forfeits its deposit at settlement.
    /// Idempotent once a dispute is resolved.
    ///
    /// # Errors
    ///
    /// Errors when called before [`screen`](Self::screen) (the griefer
    /// still needs a trace to play the game with), or when a protocol step
    /// fails structurally (e.g. the griefer cannot post its deposit).
    pub fn force_dispute(
        &mut self,
        coordinator: &SharedCoordinator,
    ) -> Result<Option<&DisputeOutcome>> {
        if self.screening.is_none() {
            return Err(TaoError::Config(
                "force_dispute() requires screen() to have run".into(),
            ));
        }
        if self.dispute.is_some() {
            return Ok(self.dispute.as_ref());
        }
        coordinator
            .coordinator()
            .open_challenge(self.claim_id, &self.cfg.challenger_account)?;
        self.resolve_dispute()?;
        Ok(self.dispute.as_ref())
    }

    /// The collusion exit move: the session's challenger opens a challenge
    /// (escrowing `D_ch`) and then walks away without playing the dispute
    /// game, leaving the claim frozen in `Disputed`. A colluding
    /// proposer/challenger pair uses this to front-run honest watchtowers —
    /// the claim can no longer be challenged by anyone else. The session
    /// cannot settle from this state; a watchtower must take the dispute
    /// over via [`adopt_dispute`](Self::adopt_dispute).
    ///
    /// # Errors
    ///
    /// Errors when the challenge cannot be opened (claim not pending,
    /// window closed, or insufficient challenger funds).
    pub fn challenge_and_abandon(&mut self, coordinator: &SharedCoordinator) -> Result<()> {
        coordinator
            .coordinator()
            .open_challenge(self.claim_id, &self.cfg.challenger_account)?;
        self.abandoned = true;
        Ok(())
    }

    /// Watchtower takeover of an abandoned dispute: `account` becomes
    /// challenger of record (posting a fresh `D_ch`; the deserter's deposit
    /// is burned by the coordinator), screens the claim on `device` — one
    /// forward pass, exactly what a voluntary challenger would have paid —
    /// and plays the dispute game to resolution. The session's challenger
    /// identity is rebound to the adopter, so [`settle`](Self::settle)
    /// then routes bonds to the watchtower.
    ///
    /// # Errors
    ///
    /// Errors when the session was not abandoned, when the adopter cannot
    /// post its deposit, or when a protocol step fails structurally.
    pub fn adopt_dispute(
        &mut self,
        coordinator: &SharedCoordinator,
        account: &str,
        device: &Device,
    ) -> Result<Option<&DisputeOutcome>> {
        if !self.abandoned {
            return Err(TaoError::Config(
                "adopt_dispute() requires an abandoned dispute".into(),
            ));
        }
        coordinator
            .coordinator()
            .adopt_challenge(self.claim_id, account)?;
        self.cfg.challenger = device.clone();
        self.cfg.challenger_account = account.to_string();
        // The adopter screens for itself: its own trace (and flagged-trace
        // commitment) replaces the deserter's, and the dispute below reuses
        // it — the adopter pays one forward pass, never more. The committed
        // variant streams digests through that pass, so the adopter arrives
        // at the dispute with its commitment already assembled.
        self.screening = Some(screen_claim_committed(
            &self.deployment.model.graph,
            self.deployment.model.logits,
            &self.deployment.thresholds,
            ClaimCheck {
                inputs: &self.inputs,
                claimed_output: &self.output,
            },
            device,
        )?);
        self.abandoned = false;
        self.resolve_dispute()?;
        Ok(self.dispute.as_ref())
    }

    /// True when the session's challenge was opened and then abandoned
    /// (see [`challenge_and_abandon`](Self::challenge_and_abandon)) and no
    /// watchtower has adopted it yet.
    pub fn abandoned(&self) -> bool {
        self.abandoned
    }

    /// Plays the dispute localization game for the already-opened
    /// challenge (reusing the cached screening trace) and adjudicates the
    /// leaf when one is reached, recording outcome, verdict and winner.
    fn resolve_dispute(&mut self) -> Result<()> {
        let screening = self
            .screening
            .as_ref()
            .expect("resolve_dispute() runs after a screening is cached");
        let graph = &self.deployment.model.graph;
        // The proposer committed to its trace when the claim was prepared
        // (streamed through the forward pass, root bound into `C0`); the
        // dispute reuses that commitment — it is never rebuilt — and
        // anchors every revealed digest to the committed root, so a
        // tampered or stale digest is detected and attributed instead of
        // silently steering the descent. Child interface hashes re-derive
        // from the cached digests: zero activation tensors are rehashed
        // (asserted via `rehashed_leaves`).
        let trace_root = self.trace_commitment.root();
        let outcome = run_dispute(
            graph,
            self.deployment
                .dispute_anchors()
                .with_trace_root(&trace_root),
            ProposerView::new(&self.trace).with_commitment(&self.trace_commitment),
            &self.inputs,
            ChallengerView::from_screening(&self.cfg.challenger, screening),
            &self.deployment.thresholds,
            DisputeConfig {
                n_way: self.cfg.n_way,
            },
        )?;
        let (verdict, winner) = match outcome.result {
            DisputeResult::Leaf(leaf) => {
                // Phase 3: single-operator adjudication.
                let case = leaf_case(graph, leaf, &self.trace, &self.inputs);
                let committee = sample_committee(
                    self.deployment.fleet.devices(),
                    self.cfg.committee,
                    self.cfg.seed,
                );
                let engine = BoundEngine::paper_default();
                let (path, leaf_verdict) =
                    adjudicate(&case, &engine, &self.deployment.thresholds, &committee)?;
                let winner = match leaf_verdict {
                    LeafVerdict::Fraud => Party::Challenger,
                    LeafVerdict::Accepted => Party::Proposer,
                };
                (Some((path, leaf_verdict)), winner)
            }
            DisputeResult::NoOffendingChild { .. } => (None, Party::Proposer),
            // A reveal failed to open against the root bound into `C0`:
            // attributable proposer fraud, no leaf adjudication needed.
            DisputeResult::CommitmentBreach { .. } => (None, Party::Challenger),
        };
        self.verdict = verdict;
        self.winner = Some(winner);
        self.dispute = Some(outcome);
        Ok(())
    }

    /// Final phase: settles a resolved dispute (slashing the loser) or
    /// lets an unchallenged claim's window elapse, then reports. A
    /// resolved dispute settles whether or not the screening flagged the
    /// claim — a griefer's forced dispute on a clean claim settles for the
    /// proposer.
    ///
    /// # Errors
    ///
    /// Errors when called before [`screen`](Self::screen), when a flagged
    /// claim was never [`dispute`](Self::dispute)d, when the dispute was
    /// [abandoned](Self::challenge_and_abandon) without an
    /// [adoption](Self::adopt_dispute), or when settlement fails on the
    /// coordinator.
    pub fn settle(self, coordinator: &SharedCoordinator) -> Result<SessionReport> {
        let Some(screening) = &self.screening else {
            return Err(TaoError::Config(
                "settle() requires screen() to have run".into(),
            ));
        };
        let final_status = {
            let coord = coordinator.coordinator();
            if let Some(winner) = self.winner {
                coord.settle(self.claim_id, winner, self.cfg.committee)?;
            } else if self.abandoned {
                return Err(TaoError::Config(
                    "settle() on an abandoned dispute: adopt_dispute() first".into(),
                ));
            } else if screening.flagged {
                return Err(TaoError::Config(
                    "settle() requires dispute() on a flagged claim".into(),
                ));
            } else {
                coord.advance(self.cfg.window + 1);
            }
            coord.claim(self.claim_id)?.status
        };
        Ok(SessionReport {
            claim_id: self.claim_id,
            output: self.output,
            challenged: screening.flagged || self.dispute.is_some(),
            exceedance: screening.exceedance,
            dispute: self.dispute,
            verdict: self.verdict,
            final_status,
        })
    }
}

/// Convenience: builds a funded coordinator with default market economics
/// and a mid-region slash.
///
/// # Errors
///
/// Returns an error when the default economics have an empty feasible
/// region (they do not).
pub fn default_coordinator() -> Result<Coordinator> {
    let econ = tao_protocol::EconParams::default_market();
    let (lo, hi) = econ
        .feasible_slash_region()
        .ok_or_else(|| TaoError::Config("default economics infeasible".into()))?;
    let c = Coordinator::new(econ, (lo + hi) / 2.0)?;
    c.fund("proposer", 10_000);
    c.fund("challenger", 1_000);
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy;
    use tao_calib::DEFAULT_ALPHA;
    use tao_device::Fleet;
    use tao_graph::execute;
    use tao_models::{bert, data, BertConfig};

    fn deployment() -> (Deployment, Vec<Tensor<f32>>) {
        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let model = bert::build(cfg, 1);
        let samples = data::token_dataset(6, cfg.seq, cfg.vocab, 100);
        let d = deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).unwrap();
        let inputs = vec![bert::sample_ids(cfg, 777)];
        (d, inputs)
    }

    #[test]
    fn honest_session_finalizes_unchallenged() {
        let (d, inputs) = deployment();
        let coord = SharedCoordinator::new(default_coordinator().unwrap());
        let report = SessionBuilder::new(&d, inputs).run(&coord).unwrap();
        assert!(
            !report.challenged,
            "honest cross-device run must pass screening"
        );
        assert!(report.exceedance <= 1.0);
        assert!(report.proposer_prevailed());
        assert!(matches!(report.final_status, ClaimStatus::Finalized));
    }

    #[test]
    fn malicious_session_is_caught_and_slashed() {
        let (d, inputs) = deployment();
        let coord = SharedCoordinator::new(default_coordinator().unwrap());
        // Perturb an interior operator enough to shift the output.
        let target = d.model.graph.compute_nodes()[2];
        let honest = execute(
            &d.model.graph,
            &inputs,
            Device::rtx4090_like().config(),
            None,
        )
        .unwrap();
        let shape = honest.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.02));
        let report = SessionBuilder::new(&d, inputs)
            .behavior(ProposerBehavior::Malicious(p))
            .run(&coord)
            .unwrap();
        assert!(report.challenged);
        let dispute = report.dispute.as_ref().unwrap();
        assert!(matches!(dispute.result, DisputeResult::Leaf(_)));
        assert_eq!(
            dispute.challenger_forward_passes, 0,
            "the dispute must reuse the screening trace"
        );
        let (_, verdict) = report.verdict.unwrap();
        assert_eq!(verdict, LeafVerdict::Fraud);
        assert!(matches!(
            report.final_status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ));
        assert!(coord.balance("challenger") > Money::from_credits(1_000));
    }

    #[test]
    fn dispute_localizes_exact_perturbed_operator() {
        let (d, inputs) = deployment();
        let coord = SharedCoordinator::new(default_coordinator().unwrap());
        let target = d.model.graph.compute_nodes()[4];
        let honest = execute(
            &d.model.graph,
            &inputs,
            Device::rtx4090_like().config(),
            None,
        )
        .unwrap();
        let shape = honest.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.05));
        let report = SessionBuilder::new(&d, inputs)
            .behavior(ProposerBehavior::Malicious(p))
            .run(&coord)
            .unwrap();
        if let Some(dispute) = &report.dispute {
            if let DisputeResult::Leaf(leaf) = dispute.result {
                assert_eq!(leaf, target, "dispute must land on the perturbed operator");
            }
        }
    }

    #[test]
    fn phases_are_separately_drivable_and_guarded() {
        let (d, inputs) = deployment();
        let coord = SharedCoordinator::new(default_coordinator().unwrap());
        let pending = SessionBuilder::new(&d, inputs).prepare().unwrap();
        let c0 = *pending.commitment();
        let mut session = pending.submit(&coord).unwrap();
        assert_eq!(session.claim_id(), 0);
        assert_eq!(
            coord.lock().claim(0).unwrap().commitment,
            c0,
            "posted commitment matches the prepared one"
        );
        // dispute() before screen() is a contract violation.
        assert!(session.dispute(&coord).is_err());
        assert!(!session.screen().unwrap());
        assert!(session.screening().is_some());
        // Unflagged claims have no dispute.
        assert!(session.dispute(&coord).unwrap().is_none());
        let report = session.settle(&coord).unwrap();
        assert!(report.proposer_prevailed());
    }

    #[test]
    fn griefed_honest_claim_settles_for_the_proposer() {
        let (d, inputs) = deployment();
        let coord = SharedCoordinator::new(default_coordinator().unwrap());
        let mut session = SessionBuilder::new(&d, inputs).submit(&coord).unwrap();
        // Ungated griefing: force_dispute before screen() is a contract
        // violation (the griefer still plays with a trace).
        assert!(session.force_dispute(&coord).is_err());
        assert!(!session.screen().unwrap(), "claim is honest");
        let outcome = session.force_dispute(&coord).unwrap().unwrap();
        assert!(
            matches!(outcome.result, DisputeResult::NoOffendingChild { .. }),
            "honest claim must yield no offending child: {:?}",
            outcome.result
        );
        assert_eq!(outcome.challenger_forward_passes, 0);
        let report = session.settle(&coord).unwrap();
        assert!(report.challenged, "a forced dispute counts as challenged");
        assert!(matches!(
            report.final_status,
            ClaimStatus::Settled {
                winner: Party::Proposer
            }
        ));
        // The griefer forfeited its deposit to the honest proposer.
        assert!(coord.balance("challenger") < Money::from_credits(1_000));
    }

    #[test]
    fn abandoned_dispute_cannot_settle() {
        let (d, inputs) = deployment();
        let coord = SharedCoordinator::new(default_coordinator().unwrap());
        let mut session = SessionBuilder::new(&d, inputs).submit(&coord).unwrap();
        assert!(!session.abandoned());
        session.screen().unwrap();
        session.challenge_and_abandon(&coord).unwrap();
        assert!(session.abandoned());
        // The claim is frozen: nobody else can challenge it...
        assert!(coord
            .coordinator()
            .open_challenge(0, "someone-else")
            .is_err());
        // ...and the session cannot settle out of the frozen state.
        assert!(session.settle(&coord).is_err());
    }

    #[test]
    fn watchtower_adopts_abandoned_dispute_and_convicts() {
        let (d, inputs) = deployment();
        let c = default_coordinator().unwrap();
        c.fund("watchtower", 1_000);
        let coord = SharedCoordinator::new(c);
        // Collusion: a perturbed claim challenged by the partner, which
        // immediately abandons the dispute.
        let target = d.model.graph.compute_nodes()[2];
        let honest = execute(
            &d.model.graph,
            &inputs,
            Device::rtx4090_like().config(),
            None,
        )
        .unwrap();
        let shape = honest.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.02));
        let mut session = SessionBuilder::new(&d, inputs)
            .behavior(ProposerBehavior::Malicious(p))
            .submit(&coord)
            .unwrap();
        // Adoption before abandonment is a contract violation.
        assert!(session
            .adopt_dispute(&coord, "watchtower", &Device::h100_like())
            .is_err());
        session.challenge_and_abandon(&coord).unwrap();
        let outcome = session
            .adopt_dispute(&coord, "watchtower", &Device::h100_like())
            .unwrap()
            .unwrap();
        assert!(matches!(outcome.result, DisputeResult::Leaf(_)));
        assert_eq!(
            outcome.challenger_forward_passes, 0,
            "adoption must reuse the adopter's screening trace"
        );
        assert!(!session.abandoned());
        let report = session.settle(&coord).unwrap();
        assert!(matches!(
            report.final_status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ));
        // The watchtower profits; the deserting colluder's deposit burned.
        assert!(coord.balance("watchtower") > Money::from_credits(1_000));
        let colluder_total =
            coord.balance("challenger") + coord.coordinator().escrowed("challenger");
        assert!(
            colluder_total < Money::from_credits(1_000),
            "deserter kept {colluder_total}"
        );
        let ledger = coord.coordinator().ledger();
        assert_eq!(ledger.total_value(), ledger.injected());
    }

    #[test]
    fn multi_input_claims_bind_every_input() {
        // Two prepared claims differing only in a non-leading input must
        // commit differently (the old API hashed inputs[0] only).
        let (d, _) = deployment();
        // BERT takes one input; emulate a multi-input claim directly via
        // the commitment primitive the session uses.
        let x = Tensor::<f32>::ones(&[2, 2]);
        let y1 = Tensor::<f32>::zeros(&[2, 2]);
        let y2 = Tensor::<f32>::full(&[2, 2], 0.5);
        let meta = ClaimMeta {
            device: "dev".into(),
            kernel: "k".into(),
            dtype: "f32".into(),
            challenge_window: 10,
        };
        let out = Tensor::<f32>::ones(&[1]);
        let rt = tao_merkle::sha256(b"trace-root");
        let c1 = claim_commitment(
            &d.commitment,
            &inputs_hash(&[x.clone(), y1]),
            &tensor_hash(&out),
            &rt,
            &meta,
        );
        let c2 = claim_commitment(
            &d.commitment,
            &inputs_hash(&[x, y2]),
            &tensor_hash(&out),
            &rt,
            &meta,
        );
        assert_ne!(c1, c2, "second input must be bound into C0");
    }
}
