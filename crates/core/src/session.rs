//! Phases 1–3: the end-to-end optimistic verification session.

use tao_bounds::BoundEngine;
use tao_calib::{error_profile, DEFAULT_EPS};
use tao_device::Device;
use tao_graph::{execute, Execution, Perturbations};
use tao_merkle::{claim_commitment, tensor_hash, ClaimMeta};
use tao_protocol::{
    adjudicate, leaf_case, run_dispute, sample_committee, AdjudicationPath, ClaimStatus,
    Coordinator, DisputeConfig, DisputeOutcome, DisputeResult, LeafVerdict, Party,
};
use tao_tensor::Tensor;

use crate::deploy::Deployment;
use crate::error::TaoError;
use crate::Result;

/// How the proposer behaves during Phase 1.
#[derive(Debug, Clone)]
pub enum ProposerBehavior {
    /// Runs the committed model faithfully on its device.
    Honest,
    /// Injects the given additive perturbations at operator outputs.
    Malicious(Perturbations),
}

/// Configuration of one verification session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Proposer device.
    pub proposer: Device,
    /// Challenger device.
    pub challenger: Device,
    /// Challenge window in coordinator ticks.
    pub window: u64,
    /// Dispute partition width `N`.
    pub n_way: usize,
    /// Committee size for Phase 3 (odd).
    pub committee: usize,
    /// Sortition seed.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            proposer: Device::rtx4090_like(),
            challenger: Device::h100_like(),
            window: 10,
            n_way: 2,
            committee: 3,
            seed: 1,
        }
    }
}

/// Everything that happened in one session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Coordinator claim id.
    pub claim_id: u64,
    /// The proposer's posted output.
    pub output: Tensor<f32>,
    /// Whether the challenger's screen flagged the claim.
    pub challenged: bool,
    /// Dispute-game outcome when challenged.
    pub dispute: Option<DisputeOutcome>,
    /// Leaf adjudication result when the game reached a leaf.
    pub verdict: Option<(AdjudicationPath, LeafVerdict)>,
    /// Final coordinator status of the claim.
    pub final_status: ClaimStatus,
}

impl SessionReport {
    /// True when the claim finalized in the proposer's favour.
    pub fn proposer_prevailed(&self) -> bool {
        matches!(
            self.final_status,
            ClaimStatus::Finalized
                | ClaimStatus::Settled {
                    winner: Party::Proposer
                }
        )
    }
}

/// The challenger's Phase 2 trigger: re-execute and compare the *final
/// output* error percentiles against the committed thresholds (§2.2).
///
/// # Errors
///
/// Returns an error when re-execution fails.
pub fn challenger_flags(
    deployment: &Deployment,
    claimed: &Execution,
    inputs: &[Tensor<f32>],
    challenger: &Device,
) -> Result<bool> {
    let logits = deployment.model.logits;
    let own = execute(&deployment.model.graph, inputs, challenger.config(), None)?;
    let prof = error_profile(claimed.value(logits)?, own.value(logits)?, DEFAULT_EPS);
    let exceedance = deployment
        .thresholds
        .exceedance(logits, &prof)
        .unwrap_or(f64::INFINITY);
    Ok(exceedance > 1.0)
}

/// Runs a full session: proposer executes and commits (Phase 1); the
/// challenger screens the result and, if it exceeds thresholds, plays the
/// dispute game (Phase 2) and leaf adjudication (Phase 3); the
/// coordinator settles bonds accordingly.
///
/// # Errors
///
/// Returns an error if any protocol step fails structurally (kernel
/// errors, missing funds, bad records). Verdicts — including "challenger
/// loses" — are reported in the [`SessionReport`], not as errors.
pub fn run_session(
    deployment: &Deployment,
    coordinator: &mut Coordinator,
    cfg: &SessionConfig,
    inputs: &[Tensor<f32>],
    behavior: &ProposerBehavior,
) -> Result<SessionReport> {
    let graph = &deployment.model.graph;

    // Phase 1: proposer executes and commits.
    let perturb = match behavior {
        ProposerBehavior::Honest => None,
        ProposerBehavior::Malicious(p) => Some(p),
    };
    let trace = execute(graph, inputs, cfg.proposer.config(), perturb)?;
    let output = trace.value(deployment.model.logits)?.clone();
    let meta = ClaimMeta {
        device: cfg.proposer.name().to_string(),
        kernel: format!("{:?}", cfg.proposer.config().accum),
        dtype: "f32".to_string(),
        challenge_window: cfg.window,
    };
    let input_hash = tensor_hash(&inputs[0]);
    let c0 = claim_commitment(
        &deployment.commitment,
        &input_hash,
        &tensor_hash(&output),
        &meta,
    );
    let claim_id = coordinator.submit_claim("proposer", c0, &meta)?;

    // Challenger screening.
    let challenged = challenger_flags(deployment, &trace, inputs, &cfg.challenger)?;
    if !challenged {
        coordinator.advance(cfg.window + 1);
        let final_status = coordinator.claim(claim_id)?.status.clone();
        return Ok(SessionReport {
            claim_id,
            output,
            challenged: false,
            dispute: None,
            verdict: None,
            final_status,
        });
    }

    // Phase 2: dispute localization.
    coordinator.open_challenge(claim_id, "challenger")?;
    let outcome = run_dispute(
        graph,
        &deployment.graph_tree,
        &deployment.weight_tree,
        &deployment.commitment.graph_root,
        &deployment.commitment.weight_root,
        &trace,
        inputs,
        &cfg.challenger,
        &deployment.thresholds,
        DisputeConfig { n_way: cfg.n_way },
    )?;

    let (verdict, winner) = match outcome.result {
        DisputeResult::Leaf(leaf) => {
            // Phase 3: single-operator adjudication.
            let case = leaf_case(graph, leaf, &trace, inputs);
            let committee = sample_committee(deployment.fleet.devices(), cfg.committee, cfg.seed);
            let engine = BoundEngine::paper_default();
            let (path, leaf_verdict) =
                adjudicate(&case, &engine, &deployment.thresholds, &committee)?;
            let winner = match leaf_verdict {
                LeafVerdict::Fraud => Party::Challenger,
                LeafVerdict::Accepted => Party::Proposer,
            };
            (Some((path, leaf_verdict)), winner)
        }
        DisputeResult::NoOffendingChild { .. } => (None, Party::Proposer),
    };
    coordinator.settle(claim_id, winner, cfg.committee)?;
    let final_status = coordinator.claim(claim_id)?.status.clone();
    Ok(SessionReport {
        claim_id,
        output,
        challenged: true,
        dispute: Some(outcome),
        verdict,
        final_status,
    })
}

/// Convenience: builds a funded coordinator with default market economics
/// and a mid-region slash.
///
/// # Errors
///
/// Returns an error when the default economics have an empty feasible
/// region (they do not).
pub fn default_coordinator() -> Result<Coordinator> {
    let econ = tao_protocol::EconParams::default_market();
    let (lo, hi) = econ
        .feasible_slash_region()
        .ok_or_else(|| TaoError::Config("default economics infeasible".into()))?;
    let mut c = Coordinator::new(econ, (lo + hi) / 2.0)?;
    c.fund("proposer", 10_000.0);
    c.fund("challenger", 1_000.0);
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy;
    use tao_calib::DEFAULT_ALPHA;
    use tao_device::Fleet;
    use tao_models::{bert, data, BertConfig};

    fn deployment() -> (Deployment, Vec<Tensor<f32>>) {
        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let model = bert::build(cfg, 1);
        let samples = data::token_dataset(6, cfg.seq, cfg.vocab, 100);
        let d = deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).unwrap();
        let inputs = vec![bert::sample_ids(cfg, 777)];
        (d, inputs)
    }

    #[test]
    fn honest_session_finalizes_unchallenged() {
        let (d, inputs) = deployment();
        let mut coord = default_coordinator().unwrap();
        let report = run_session(
            &d,
            &mut coord,
            &SessionConfig::default(),
            &inputs,
            &ProposerBehavior::Honest,
        )
        .unwrap();
        assert!(
            !report.challenged,
            "honest cross-device run must pass screening"
        );
        assert!(report.proposer_prevailed());
        assert!(matches!(report.final_status, ClaimStatus::Finalized));
    }

    #[test]
    fn malicious_session_is_caught_and_slashed() {
        let (d, inputs) = deployment();
        let mut coord = default_coordinator().unwrap();
        // Perturb an interior operator enough to shift the output.
        let target = d.model.graph.compute_nodes()[2];
        let honest = execute(
            &d.model.graph,
            &inputs,
            Device::rtx4090_like().config(),
            None,
        )
        .unwrap();
        let shape = honest.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.02));
        let report = run_session(
            &d,
            &mut coord,
            &SessionConfig::default(),
            &inputs,
            &ProposerBehavior::Malicious(p),
        )
        .unwrap();
        assert!(report.challenged);
        let dispute = report.dispute.as_ref().unwrap();
        assert!(matches!(dispute.result, DisputeResult::Leaf(_)));
        let (_, verdict) = report.verdict.unwrap();
        assert_eq!(verdict, LeafVerdict::Fraud);
        assert!(matches!(
            report.final_status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        ));
        assert!(coord.balance("challenger") > 1_000.0 - 1e-9);
    }

    #[test]
    fn dispute_localizes_exact_perturbed_operator() {
        let (d, inputs) = deployment();
        let mut coord = default_coordinator().unwrap();
        let target = d.model.graph.compute_nodes()[4];
        let honest = execute(
            &d.model.graph,
            &inputs,
            Device::rtx4090_like().config(),
            None,
        )
        .unwrap();
        let shape = honest.values[target.0].dims().to_vec();
        let mut p = Perturbations::new();
        p.insert(target, Tensor::full(&shape, 0.05));
        let report = run_session(
            &d,
            &mut coord,
            &SessionConfig::default(),
            &inputs,
            &ProposerBehavior::Malicious(p),
        )
        .unwrap();
        if let Some(dispute) = &report.dispute {
            if let DisputeResult::Leaf(leaf) = dispute.result {
                assert_eq!(leaf, target, "dispute must land on the perturbed operator");
            }
        }
    }
}
