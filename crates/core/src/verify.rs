//! User-side verification utilities: everything a result consumer can
//! check *without* playing the dispute game — commitment binding, output
//! screening, and receipt construction.

use tao_device::Device;
use tao_merkle::{claim_commitment, inputs_hash, tensor_hash, ClaimMeta, Digest};
use tao_protocol::{screen_claim, ClaimCheck};
use tao_tensor::Tensor;

use crate::deploy::Deployment;
use crate::Result;

/// A verifiable receipt the proposer hands the user alongside the output.
#[derive(Debug, Clone, PartialEq)]
pub struct Receipt {
    /// The claim commitment `C0` as posted on the coordinator.
    pub commitment: Digest,
    /// Execution metadata bound into the commitment.
    pub meta: ClaimMeta,
    /// Domain-separated hash of the full ordered input list the proposer
    /// claims to have served.
    pub input_hash: Digest,
    /// Hash of the returned output.
    pub output_hash: Digest,
    /// Root of the proposer's per-node trace commitment, bound into `C0`
    /// so dispute reveals are verifiable against what was claimed.
    pub trace_root: Digest,
}

/// Builds a receipt for a served request, binding every input tensor and
/// the proposer's trace-commitment root.
pub fn make_receipt(
    deployment: &Deployment,
    inputs: &[Tensor<f32>],
    output: &Tensor<f32>,
    trace_root: Digest,
    meta: ClaimMeta,
) -> Receipt {
    let input_hash = inputs_hash(inputs);
    let output_hash = tensor_hash(output);
    let commitment = claim_commitment(
        &deployment.commitment,
        &input_hash,
        &output_hash,
        &trace_root,
        &meta,
    );
    Receipt {
        commitment,
        meta,
        input_hash,
        output_hash,
        trace_root,
    }
}

/// Checks that a receipt binds the given inputs/output to the deployment's
/// committed model: recomputes `C0` from first principles and compares.
pub fn verify_receipt(
    deployment: &Deployment,
    receipt: &Receipt,
    inputs: &[Tensor<f32>],
    output: &Tensor<f32>,
) -> bool {
    inputs_hash(inputs) == receipt.input_hash
        && tensor_hash(output) == receipt.output_hash
        && claim_commitment(
            &deployment.commitment,
            &receipt.input_hash,
            &receipt.output_hash,
            &receipt.trace_root,
            &receipt.meta,
        ) == receipt.commitment
}

/// Outcome of the user-side output screening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreeningReport {
    /// The Eq. 15 exceedance of the returned output versus a local
    /// re-execution.
    pub exceedance: f64,
    /// True when the output should be disputed.
    pub should_challenge: bool,
}

/// Screens a returned output by re-executing locally on `device` and
/// comparing error percentiles against the committed thresholds — the
/// same check a voluntary challenger runs (§2.2 Phase 2 trigger).
///
/// # Errors
///
/// Returns an error when local re-execution fails or the output operator
/// has no committed threshold (a deployment bug, not fraud).
pub fn screen_output(
    deployment: &Deployment,
    inputs: &[Tensor<f32>],
    claimed_output: &Tensor<f32>,
    device: &Device,
) -> Result<ScreeningReport> {
    let screening = screen_claim(
        &deployment.model.graph,
        deployment.model.logits,
        &deployment.thresholds,
        ClaimCheck {
            inputs,
            claimed_output,
        },
        device,
    )?;
    Ok(ScreeningReport {
        exceedance: screening.exceedance,
        should_challenge: screening.flagged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy;
    use tao_device::Fleet;
    use tao_graph::execute;
    use tao_merkle::TraceCommitment;
    use tao_models::{bert, data, BertConfig};

    fn setup() -> (Deployment, Vec<Tensor<f32>>, Tensor<f32>, Digest) {
        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let model = bert::build(cfg, 1);
        let samples = data::token_dataset(16, cfg.seq, cfg.vocab, 50);
        let d = deploy(model, Fleet::standard(), &samples, 3.0).unwrap();
        let inputs = vec![bert::sample_ids(cfg, 5)];
        let exec = execute(&d.model.graph, &inputs, Device::a100_like().config(), None).unwrap();
        let output = exec.value(d.model.logits).unwrap().clone();
        let trace_root = TraceCommitment::build(&exec.values).root();
        (d, inputs, output, trace_root)
    }

    fn meta() -> ClaimMeta {
        ClaimMeta {
            device: "sim-a100".into(),
            kernel: "pairwise".into(),
            dtype: "f32".into(),
            challenge_window: 10,
        }
    }

    #[test]
    fn receipt_roundtrip() {
        let (d, inputs, output, rt) = setup();
        let r = make_receipt(&d, &inputs, &output, rt, meta());
        assert!(verify_receipt(&d, &r, &inputs, &output));
    }

    #[test]
    fn receipt_rejects_swapped_output() {
        let (d, inputs, output, rt) = setup();
        let r = make_receipt(&d, &inputs, &output, rt, meta());
        let mut other = output.clone();
        other.data_mut()[0] += 1e-3;
        assert!(!verify_receipt(&d, &r, &inputs, &other));
        // And a swapped input.
        let other_inputs = vec![inputs[0].add_scalar(1.0)];
        assert!(!verify_receipt(&d, &r, &other_inputs, &output));
        // And a different input arity.
        let padded: Vec<Tensor<f32>> = vec![inputs[0].clone(), inputs[0].clone()];
        assert!(!verify_receipt(&d, &r, &padded, &output));
    }

    #[test]
    fn receipt_rejects_forged_meta() {
        let (d, inputs, output, rt) = setup();
        let mut r = make_receipt(&d, &inputs, &output, rt, meta());
        r.meta.challenge_window = 1; // Shortened window forgery.
        assert!(!verify_receipt(&d, &r, &inputs, &output));
    }

    #[test]
    fn receipt_rejects_forged_trace_root() {
        // A proposer that swaps the trace root after posting loses the
        // binding: C0 no longer recomputes.
        let (d, inputs, output, rt) = setup();
        let mut r = make_receipt(&d, &inputs, &output, rt, meta());
        r.trace_root[0] ^= 0x01;
        assert!(!verify_receipt(&d, &r, &inputs, &output));
    }

    #[test]
    fn screening_accepts_honest_flags_tampered() {
        let (d, inputs, output, _) = setup();
        let device = Device::h100_like();
        let ok = screen_output(&d, &inputs, &output, &device).unwrap();
        assert!(!ok.should_challenge, "exceedance {}", ok.exceedance);
        let tampered = output.add_scalar(0.01);
        let bad = screen_output(&d, &inputs, &tampered, &device).unwrap();
        assert!(bad.should_challenge);
        assert!(bad.exceedance > ok.exceedance);
    }
}
