//! `tao analyze`: static reports and lint gating for the bundled models.
//!
//! This is the library half of the CLI subcommand — building any bundled
//! model by name, folding the analysis contracts over its graph without
//! executing it, and rendering the [`StaticReport`] for a terminal — so
//! integration tests can drive exactly what the binary does.

use tao_analysis::{analyze_with, LintConfig, Severity, StaticReport};
use tao_models::{
    bert, diffusion, qwen, resnet, transformer, BertConfig, DiffusionConfig, Model, QwenConfig,
    ResNetConfig, TransformerConfig,
};

use crate::error::TaoError;
use crate::Result;

/// Every model name [`build_model`] accepts.
pub const MODEL_NAMES: &[&str] = &["transformer", "bert", "qwen", "resnet", "diffusion"];

/// Builds a bundled model by name at its small configuration.
///
/// # Errors
///
/// Returns an error for a name outside [`MODEL_NAMES`].
pub fn build_model(name: &str) -> Result<Model> {
    Ok(match name {
        "transformer" => transformer::build(TransformerConfig::small(), 1),
        "bert" => bert::build(BertConfig::small(), 1),
        "qwen" => qwen::build(QwenConfig::small(), 1),
        "resnet" => resnet::build(ResNetConfig::small(), 1),
        "diffusion" => diffusion::build(DiffusionConfig::small(), 1),
        other => {
            return Err(TaoError::Config(format!(
                "unknown model {other:?} (expected one of {MODEL_NAMES:?})"
            )))
        }
    })
}

/// Builds `name` and folds the analysis contracts over its graph under
/// `cfg`, without executing it.
///
/// # Errors
///
/// Returns an error for an unknown model name.
pub fn analyze_model(name: &str, cfg: &LintConfig) -> Result<(Model, StaticReport)> {
    let model = build_model(name)?;
    let report = analyze_with(&model.graph, &model.input_shapes, cfg);
    Ok((model, report))
}

/// Renders a static report for the terminal: totals, the heaviest
/// operators, and every lint finding.
pub fn render_report(model: &Model, report: &StaticReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "model:               {}", model.name);
    let _ = writeln!(out, "operators:           {}", model.num_ops());
    let _ = writeln!(out, "inputs:              {:?}", model.input_shapes);
    let _ = writeln!(out, "total FLOPs:         {}", report.total_flops());
    let _ = writeln!(out, "bytes moved:         {}", report.bytes_moved);
    let _ = writeln!(out, "peak resident bytes: {}", report.peak_resident_bytes);
    let _ = writeln!(out, "gas quote:           {}", report.gas_quote);
    let _ = writeln!(out, "deposit bound:       {}", report.deposit_bound);
    let _ = writeln!(out, "admissible:          {}", report.is_admissible());

    let mut heavy: Vec<usize> = (0..report.flops.len()).collect();
    heavy.sort_by_key(|&i| std::cmp::Reverse(report.flops[i]));
    heavy.retain(|&i| report.flops[i] > 0);
    heavy.truncate(10);
    if !heavy.is_empty() {
        let _ = writeln!(out, "\nheaviest operators:");
        let _ = writeln!(out, "{:<6} {:<14} {:>14} {:<18}", "node", "op", "flops", "shape");
        for i in heavy {
            let node = &model.graph.nodes()[i];
            let shape = report.shapes[i]
                .as_ref()
                .map_or_else(|| "?".to_string(), |s| format!("{s:?}"));
            let _ = writeln!(
                out,
                "{:<6} {:<14} {:>14} {:<18}",
                i,
                node.kind.mnemonic(),
                report.flops[i],
                shape
            );
        }
    }

    if report.lint_findings.is_empty() {
        let _ = writeln!(out, "\nlint: clean");
    } else {
        let _ = writeln!(out, "\nlint findings:");
        for f in &report.lint_findings {
            let sev = match f.severity {
                Severity::Deny => "DENY",
                Severity::Warn => "warn",
            };
            let _ = writeln!(out, "  [{sev}] {:?}: {}", f.rule, f.message);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bundled_model_is_statically_admissible() {
        for name in MODEL_NAMES {
            let (model, report) = analyze_model(name, &LintConfig::default()).unwrap();
            assert!(
                report.is_admissible(),
                "{name}: {:?}",
                report.lint_findings
            );
            assert!(report.total_flops() > 0, "{name} must cost something");
            assert!(report.peak_resident_bytes > 0);
            assert!(
                report.shapes.iter().all(Option::is_some),
                "{name}: every shape must resolve"
            );
            assert_eq!(report.shapes.len(), model.graph.len());
        }
    }

    #[test]
    fn transformer_head_is_calibration_safe_even_strict() {
        let (_, report) = analyze_model("transformer", &LintConfig::strict()).unwrap();
        assert!(report.is_admissible(), "{:?}", report.lint_findings);
    }

    #[test]
    fn raw_logit_heads_warn_but_admit_by_default() {
        let (_, report) = analyze_model("bert", &LintConfig::default()).unwrap();
        assert!(report.is_admissible());
        assert!(
            report
                .lint_findings
                .iter()
                .any(|f| f.rule == tao_analysis::LintRule::CalibrationSafety),
            "bert's Linear head must trip the calibration-safety lint"
        );
    }

    #[test]
    fn rendering_mentions_the_essentials() {
        let (model, report) = analyze_model("qwen", &LintConfig::default()).unwrap();
        let text = render_report(&model, &report);
        assert!(text.contains("qwen"));
        assert!(text.contains("gas quote"));
        assert!(text.contains("heaviest operators"));
    }

    #[test]
    fn unknown_model_is_an_error() {
        assert!(build_model("gpt-5").is_err());
    }
}
