//! Unified error type for the end-to-end runtime.

use core::fmt;

use tao_protocol::Money;

/// Errors surfaced by the `tao` facade.
#[derive(Debug, Clone, PartialEq)]
pub enum TaoError {
    /// Graph construction or execution failed.
    Graph(String),
    /// Calibration failed.
    Calib(String),
    /// Protocol action failed.
    Protocol(String),
    /// Bound computation failed.
    Bound(String),
    /// Attack machinery failed.
    Attack(String),
    /// Configuration problem in the runtime itself.
    Config(String),
    /// A batch's peak concurrent escrow exceeds an account's balance.
    ///
    /// Raised by the scheduler **before** any claim in the batch is
    /// posted: concurrent sessions escrow all their deposits at once, so
    /// `needed` is the sum of every deposit quote the account would have
    /// to cover simultaneously — not the single-claim `D_p` the serial
    /// path would report mid-batch.
    InsufficientFunds {
        /// The underfunded proposer account.
        account: String,
        /// Peak concurrent escrow the batch requires from the account.
        needed: Money,
        /// The account's free balance at admission time.
        available: Money,
    },
}

impl fmt::Display for TaoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            TaoError::Graph(m) => ("graph", m),
            TaoError::Calib(m) => ("calibration", m),
            TaoError::Protocol(m) => ("protocol", m),
            TaoError::Bound(m) => ("bound", m),
            TaoError::Attack(m) => ("attack", m),
            TaoError::Config(m) => ("config", m),
            TaoError::InsufficientFunds {
                account,
                needed,
                available,
            } => {
                return write!(
                    f,
                    "admission error: account {account:?} needs {needed} escrowed at the \
                     batch's concurrency peak but holds {available}"
                );
            }
        };
        write!(f, "{kind} error: {msg}")
    }
}

impl std::error::Error for TaoError {}

impl From<tao_graph::GraphError> for TaoError {
    fn from(e: tao_graph::GraphError) -> Self {
        TaoError::Graph(e.to_string())
    }
}

impl From<tao_calib::CalibError> for TaoError {
    fn from(e: tao_calib::CalibError) -> Self {
        TaoError::Calib(e.to_string())
    }
}

impl From<tao_protocol::ProtocolError> for TaoError {
    fn from(e: tao_protocol::ProtocolError) -> Self {
        TaoError::Protocol(e.to_string())
    }
}

impl From<tao_bounds::BoundError> for TaoError {
    fn from(e: tao_bounds::BoundError) -> Self {
        TaoError::Bound(e.to_string())
    }
}

impl From<tao_attack::AttackError> for TaoError {
    fn from(e: tao_attack::AttackError) -> Self {
        TaoError::Attack(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: TaoError = tao_calib::CalibError::NoSamples.into();
        assert!(e.to_string().contains("calibration"));
        let g: TaoError = tao_graph::GraphError::Malformed("x".into()).into();
        assert!(g.to_string().contains("graph"));
    }
}
