//! `tao` — command-line driver for the TAO verification pipeline.
//!
//! ```text
//! tao demo [model]              end-to-end honest + malicious session
//! tao sessions [model] [workers] run a mixed batch concurrently on the scheduler
//! tao analyze [model|--all]  print the static analysis report (no execution)
//! tao calibrate [model]     run the cross-device calibration and print thresholds
//! tao commit [model]        print the Phase 0 Merkle roots
//! tao econ                  print the economic feasibility region
//! tao models                list available model stand-ins
//! ```
//!
//! Models: `bert` (default), `qwen`, `resnet`; `analyze` additionally
//! accepts `transformer` and `diffusion`, or `--all` to lint every
//! bundled model (exiting nonzero on any deny finding).

use tao::analysis::LintConfig;
use tao::{
    analyze_model, default_coordinator, deploy, render_report, Deployment, ProposerBehavior,
    Scheduler, SessionBuilder, SharedCoordinator, MODEL_NAMES,
};
use tao_device::{Device, Fleet};
use tao_graph::{execute, Perturbations};
use tao_merkle::to_hex;
use tao_models::{bert, data, qwen, resnet, BertConfig, QwenConfig, ResNetConfig};
use tao_tensor::Tensor;

fn usage() -> ! {
    eprintln!(
        "usage: tao <command> [model] [workers]\n\
         commands: demo | sessions | analyze | calibrate | commit | econ | models\n\
         models:   bert (default) | qwen | resnet; analyze also: transformer | diffusion | --all\n\
         workers:  scheduler pool size for `sessions` (default: host parallelism)"
    );
    std::process::exit(2)
}

fn build_deployment(model: &str) -> (Deployment, Vec<Tensor<f32>>) {
    match model {
        "bert" => {
            let cfg = BertConfig::small();
            let samples = data::token_dataset(24, cfg.seq, cfg.vocab, 100);
            let d = deploy(bert::build(cfg, 1), Fleet::standard(), &samples, 3.0)
                .expect("calibration succeeds");
            (d, vec![bert::sample_ids(cfg, 42)])
        }
        "qwen" => {
            let cfg = QwenConfig::small();
            let samples = data::token_dataset(24, cfg.seq, cfg.vocab, 200);
            let d = deploy(qwen::build(cfg, 1), Fleet::standard(), &samples, 3.0)
                .expect("calibration succeeds");
            (d, vec![qwen::sample_ids(cfg, 42)])
        }
        "resnet" => {
            let cfg = ResNetConfig::small();
            let samples = data::image_dataset(24, cfg.in_channels, cfg.image, cfg.classes, 300);
            let d = deploy(resnet::build(cfg, 1), Fleet::standard(), &samples, 3.0)
                .expect("calibration succeeds");
            (
                d,
                vec![data::class_image(cfg.in_channels, cfg.image, 3, 42)],
            )
        }
        other => {
            eprintln!("unknown model {other:?}");
            usage()
        }
    }
}

fn mid_node_perturbation(
    deployment: &Deployment,
    inputs: &[Tensor<f32>],
    seed: u64,
) -> Perturbations {
    let nodes = deployment.model.graph.compute_nodes();
    let target = nodes[nodes.len() / 2];
    let trace = execute(
        &deployment.model.graph,
        inputs,
        Device::rtx4090_like().config(),
        None,
    )
    .expect("forward");
    let shape = trace.values[target.0].dims().to_vec();
    let mut p = Perturbations::new();
    p.insert(target, Tensor::<f32>::randn(&shape, seed).mul_scalar(0.05));
    p
}

fn cmd_demo(model: &str) {
    let (deployment, inputs) = build_deployment(model);
    let coordinator = SharedCoordinator::new(default_coordinator().expect("economics feasible"));

    println!("-- honest session --");
    let honest = SessionBuilder::new(&deployment, inputs.clone())
        .run(&coordinator)
        .expect("session runs");
    println!(
        "challenged: {}; status: {:?}",
        honest.challenged, honest.final_status
    );

    println!("\n-- malicious session --");
    let p = mid_node_perturbation(&deployment, &inputs, 7);
    let evil = SessionBuilder::new(&deployment, inputs)
        .behavior(ProposerBehavior::Malicious(p))
        .run(&coordinator)
        .expect("session runs");
    println!(
        "challenged: {}; status: {:?}",
        evil.challenged, evil.final_status
    );
    if let Some(dispute) = &evil.dispute {
        println!(
            "dispute: {} rounds, {} Merkle checks, {:.1} kgas, result {:?}",
            dispute.rounds.len(),
            dispute.merkle_checks,
            dispute.gas.kgas(),
            dispute.result
        );
    }
    if let Some((path, verdict)) = evil.verdict {
        println!("adjudication: {path:?} -> {verdict:?}");
    }
}

fn cmd_sessions(model: &str, workers: Option<usize>) {
    let (deployment, inputs) = build_deployment(model);
    let coordinator = SharedCoordinator::new(default_coordinator().expect("economics feasible"));
    let scheduler = match workers {
        Some(n) => Scheduler::with_threads(n),
        None => Scheduler::new(),
    };
    let jobs = 6;
    println!(
        "running {jobs} sessions concurrently (1 cheat) on a {}-worker scheduler...",
        scheduler.threads()
    );
    let builders: Vec<SessionBuilder> = (0..jobs)
        .map(|i| {
            let b = SessionBuilder::new(&deployment, inputs.clone());
            if i == jobs / 2 {
                b.behavior(ProposerBehavior::Malicious(mid_node_perturbation(
                    &deployment,
                    &inputs,
                    40 + i as u64,
                )))
            } else {
                b
            }
        })
        .collect();
    let start = std::time::Instant::now();
    let reports = scheduler
        .run(&coordinator, builders)
        .expect("sessions run");
    let secs = start.elapsed().as_secs_f64();
    for r in &reports {
        println!(
            "claim #{}: challenged {}; exceedance {:.3}; status {:?}",
            r.claim_id, r.challenged, r.exceedance, r.final_status
        );
    }
    println!(
        "\n{jobs} sessions in {secs:.2}s; proposer balance {}, challenger balance {}",
        coordinator.balance("proposer"),
        coordinator.balance("challenger"),
    );
    // Seal the batch as one epoch: the canonical settlement+gas log is
    // Merkle-committed, and the root is identical for any worker count.
    let epoch = coordinator.coordinator().seal_epoch();
    println!(
        "epoch {} root: {} ({} gas events)",
        epoch.index,
        tao_merkle::to_hex(&epoch.root),
        epoch.entries.len()
    );
}

fn cmd_analyze(model: &str) {
    if model == "--all" {
        // The CI lint gate: every bundled model must carry zero deny
        // findings under the default configuration.
        let mut denies = 0usize;
        for name in MODEL_NAMES {
            let (_, report) = analyze_model(name, &LintConfig::default()).expect("bundled model");
            let warns = report.lint_findings.len() - report.deny_count();
            println!(
                "{name:<12} flops {:>12}  peak {:>10} B  gas {:>8}  deny {}  warn {}",
                report.total_flops(),
                report.peak_resident_bytes,
                report.gas_quote,
                report.deny_count(),
                warns
            );
            denies += report.deny_count();
        }
        if denies > 0 {
            eprintln!("lint gate FAILED: {denies} deny finding(s)");
            std::process::exit(1);
        }
        println!("lint gate passed: zero deny findings");
        return;
    }
    let (m, report) = analyze_model(model, &LintConfig::default()).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    });
    print!("{}", render_report(&m, &report));
    if !report.is_admissible() {
        std::process::exit(1);
    }
}

fn cmd_calibrate(model: &str) {
    let (deployment, _) = build_deployment(model);
    println!(
        "calibrated {} operators (alpha = {})",
        deployment.thresholds.operators.len(),
        deployment.thresholds.alpha
    );
    println!(
        "{:<6} {:<14} {:>12} {:>12}",
        "node", "op", "tau_abs(p50)", "tau_abs(p99)"
    );
    for op in deployment.thresholds.operators.iter().take(20) {
        let grid = &deployment.thresholds.grid;
        let p50 = grid.iter().position(|&p| p == 50.0).expect("grid");
        let p99 = grid.iter().position(|&p| p == 99.0).expect("grid");
        println!(
            "{:<6} {:<14} {:>12.3e} {:>12.3e}",
            op.node.to_string(),
            op.mnemonic,
            op.thresholds.abs[p50],
            op.thresholds.abs[p99]
        );
    }
    if deployment.thresholds.operators.len() > 20 {
        println!("... ({} more)", deployment.thresholds.operators.len() - 20);
    }
}

fn cmd_commit(model: &str) {
    let (deployment, _) = build_deployment(model);
    println!("model:          {}", deployment.model.name);
    println!("operators:      {}", deployment.model.num_ops());
    println!("parameters:     {}", deployment.model.graph.param_count());
    println!(
        "weight root     r_w = {}",
        to_hex(&deployment.commitment.weight_root)
    );
    println!(
        "graph root      r_g = {}",
        to_hex(&deployment.commitment.graph_root)
    );
    println!(
        "threshold root  r_e = {}",
        to_hex(&deployment.commitment.threshold_root)
    );
}

fn cmd_econ() {
    let econ = tao_protocol::EconParams::default_market();
    match econ.feasible_slash_region() {
        Some((lo, hi)) => {
            println!("detection probability d = {:.3}", econ.detection_prob());
            println!("feasible S_slash region: ({lo:.2}, {hi:.2}]");
            let s = (lo + hi) / 2.0;
            println!("at S_slash = {s:.2}:");
            println!(
                "  u_p(honest) - u_p(cheap cheat) = {:.2}",
                econ.u_proposer_honest(s) - econ.u_proposer_cheap(s)
            );
            println!("  u_ch(guilty)  = {:.2}", econ.u_challenger_guilty(s));
            println!(
                "  u_ch(clean)   = {:.2} (spam deterred)",
                econ.u_challenger_clean()
            );
            println!("  u_cm(guilty)  = {:.2}", econ.u_committee_guilty(s));
        }
        None => println!("feasible region is EMPTY under default parameters"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("demo");
    let model = args.get(2).map(String::as_str).unwrap_or("bert");
    let workers = args.get(3).map(|w| {
        w.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("workers must be a number, got {w:?}");
            usage()
        })
    });
    match cmd {
        "demo" => cmd_demo(model),
        "sessions" => cmd_sessions(model, workers),
        "analyze" => cmd_analyze(model),
        "calibrate" => cmd_calibrate(model),
        "commit" => cmd_commit(model),
        "econ" => cmd_econ(),
        "models" => println!("bert\nqwen\nresnet"),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage()
        }
    }
}
