//! Concurrent session scheduling over one shared deployment and
//! coordinator.
//!
//! The scheduler alternates parallel compute phases with short serial
//! coordinator phases so that concurrent execution is *observationally
//! equivalent* to running the same sessions one after another:
//!
//! 1. **Prepare** (parallel): every proposer forward pass runs on a scoped
//!    worker thread — no coordinator interaction.
//! 2. **Submit** (serial, in session order): claims are posted one by one,
//!    so claim ids are assigned deterministically (session `i` gets the
//!    `i`-th id the coordinator hands out).
//! 3. **Screen + dispute** (parallel): challenger screening, dispute
//!    localization and leaf adjudication run concurrently; `open_challenge`
//!    touches only the claim's own shard. No session advances the clock
//!    here, so no claim's challenge window can close under a slower
//!    session.
//! 4. **Settle** (parallel): disputed claims settle and unchallenged
//!    claims' windows elapse concurrently — the sharded coordinator makes
//!    per-claim settlement commutative (per-claim status transitions under
//!    shard locks, account deltas under ordered ledger locks, the clock an
//!    atomic monotone counter) — and reports are collected in session
//!    order.
//!
//! Bond arithmetic on the coordinator is a sum of per-event deltas, so the
//! final balances, claim statuses and per-session reports match a serial
//! run exactly (see `tests/tests/scheduler.rs` for the equivalence test
//! and `tests/tests/coordinator_invariants.rs` for the coordinator-level
//! proptest). The one behavioral difference is peak escrow: all proposer
//! deposits are locked at once during phase 2, so accounts must be funded
//! for the sum of concurrent deposits rather than one at a time. That
//! requirement is checked **at admission**, before any claim is posted:
//! an underfunded batch fails with a typed
//! [`TaoError::InsufficientFunds`] naming the account, its peak escrow
//! requirement and its balance, instead of bouncing mid-batch with
//! earlier claims already pending.
//!
//! The worker pool is configurable up to [`MAX_WORKERS`]. The settle
//! phase is coordinator-bound and uses the full pool; the compute-bound
//! phases (prepare, screen + dispute) spawn kernel row-band workers of
//! their own, so they stay clamped to the kernel-nesting cap
//! ([`MAX_PAR_THREADS`]) and nested parallelism remains bounded by the
//! square of that one constant.

use std::collections::BTreeMap;

use tao_protocol::par::{parallel_map, MAX_PAR_THREADS, MAX_WORKERS};
use tao_protocol::Money;

use crate::error::TaoError;
use crate::session::{PendingSession, Session, SessionBuilder, SessionReport, SharedCoordinator};
use crate::Result;

/// Runs batches of verification sessions concurrently.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    threads: usize,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Scheduler {
    /// A scheduler sized to the host's available parallelism (bounded by
    /// [`MAX_WORKERS`]).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(MAX_WORKERS);
        Scheduler { threads }
    }

    /// A scheduler with an explicit worker count (at least 1). The old
    /// 8-worker ceiling is gone — the sharded coordinator settles in
    /// parallel, so pools up to [`MAX_WORKERS`] are accepted (the
    /// compute-bound phases internally clamp to [`MAX_PAR_THREADS`] to
    /// bound nested kernel parallelism).
    pub fn with_threads(threads: usize) -> Self {
        Scheduler {
            threads: threads.clamp(1, MAX_WORKERS),
        }
    }

    /// The effective worker-thread count after clamping.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every session to completion and returns their reports in
    /// session order. Claim ids are assigned deterministically: session
    /// `i` receives the `i`-th claim id the coordinator allocates.
    ///
    /// # Errors
    ///
    /// Returns the first error (by session order) any phase produced. A
    /// submission error (phase 2) leaves already-submitted claims pending
    /// on the coordinator; an error in a parallel phase propagates only
    /// after that phase completes, so every surviving session has still
    /// been driven through settlement or finality (the reports are
    /// discarded with the error).
    pub fn run(
        &self,
        coordinator: &SharedCoordinator,
        sessions: Vec<SessionBuilder>,
    ) -> Result<Vec<SessionReport>> {
        let resolved = self.run_with(coordinator, sessions, |_, session, coord| {
            if session.screen()? {
                session.dispute(coord)?;
            }
            Ok(())
        })?;
        Ok(resolved.into_iter().map(|(report, ())| report).collect())
    }

    /// [`run`](Self::run) with a custom resolve phase: `resolve` replaces
    /// the default screen-then-dispute-if-flagged logic of phase 3 and
    /// runs once per session (concurrently, at the compute-phase thread
    /// cap), receiving the session's batch index, the session handle and
    /// the shared coordinator. Whatever it returns rides along with the
    /// session's report.
    ///
    /// This is the campaign hook: adversarial drivers use it to play
    /// non-default moves — forced disputes on clean claims, abandoned
    /// challenges adopted by watchtowers — while keeping the scheduler's
    /// four-phase structure (and its determinism guarantees) intact.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run): the first error by session order, after the
    /// failing phase completes.
    pub fn run_with<T: Send>(
        &self,
        coordinator: &SharedCoordinator,
        sessions: Vec<SessionBuilder>,
        resolve: impl Fn(usize, &mut Session, &SharedCoordinator) -> Result<T> + Sync,
    ) -> Result<Vec<(SessionReport, T)>> {
        // Compute-bound phases clamp to the kernel-nesting cap: each
        // worker's forward passes spawn kernel row-band threads of their
        // own, and the old 8-worker ceiling existed exactly to bound that
        // product. Only the coordinator-bound settle phase uses the full
        // pool.
        let compute_threads = self.threads.min(MAX_PAR_THREADS);
        // Phase 1 (parallel): proposer forward passes + commitments.
        let prepared = parallel_map(sessions, compute_threads, SessionBuilder::prepare);
        let mut pending = Vec::with_capacity(prepared.len());
        for p in prepared {
            pending.push(p?);
        }
        // Admission check: concurrent sessions escrow every deposit at
        // once during phase 2, so an account must cover the *sum* of its
        // quotes, not one deposit at a time. Checking up front turns an
        // opaque mid-batch bounce (which would strand already-posted
        // claims) into a typed error naming the peak requirement.
        check_peak_escrow(coordinator, &pending)?;
        // Phase 2 (serial, in order): deterministic claim-id assignment.
        let mut submitted = Vec::with_capacity(pending.len());
        for (index, session) in pending.into_iter().enumerate() {
            submitted.push((index, session.submit(coordinator)?));
        }
        // Phase 3 (parallel): screening, disputes and leaf adjudication —
        // or whatever moves `resolve` plays instead.
        let resolve = &resolve;
        let resolved = parallel_map(
            submitted,
            compute_threads,
            |(index, mut session)| -> Result<_> {
                let extra = resolve(index, &mut session, coordinator)?;
                Ok((session, extra))
            },
        );
        // Phase 4 (parallel): settlement. Per-claim settles and clock
        // advances commute on the sharded coordinator, so reports are
        // produced concurrently and collected in session order.
        let settled = parallel_map(resolved, self.threads, |entry| -> Result<_> {
            let (session, extra) = entry?;
            Ok((session.settle(coordinator)?, extra))
        });
        let mut reports = Vec::with_capacity(settled.len());
        for report in settled {
            reports.push(report?);
        }
        Ok(reports)
    }
}

/// Verifies every proposer account can cover the batch's peak concurrent
/// escrow: the exact sum of its sessions' deposit quotes
/// (`max(D_p, deposit_bound)` each, in fixed-point money) against its
/// free balance. Accounts are checked in name order so the first failure
/// is deterministic.
fn check_peak_escrow(coordinator: &SharedCoordinator, pending: &[PendingSession]) -> Result<()> {
    let inner = coordinator.coordinator();
    let mut peak: BTreeMap<&str, Money> = BTreeMap::new();
    for session in pending {
        let entry = peak.entry(session.proposer_account()).or_insert(Money::ZERO);
        *entry += session.deposit_quote(inner);
    }
    for (account, needed) in peak {
        let available = inner.balance(account);
        if needed > available {
            return Err(TaoError::InsufficientFunds {
                account: account.to_string(),
                needed,
                available,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy;
    use crate::session::{default_coordinator, ProposerBehavior};
    use tao_calib::DEFAULT_ALPHA;
    use tao_device::Fleet;
    use tao_graph::{execute, Perturbations};
    use tao_models::{bert, data, BertConfig};
    use tao_protocol::ClaimStatus;
    use tao_tensor::Tensor;

    #[test]
    fn scheduler_runs_mixed_sessions_with_deterministic_ids() {
        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let model = bert::build(cfg, 1);
        let samples = data::token_dataset(6, cfg.seq, cfg.vocab, 100);
        let d = deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).unwrap();
        let coord = SharedCoordinator::new(default_coordinator().unwrap());

        let target = d.model.graph.compute_nodes()[2];
        let honest_exec = execute(
            &d.model.graph,
            &[bert::sample_ids(cfg, 1)],
            tao_device::Device::rtx4090_like().config(),
            None,
        )
        .unwrap();
        let shape = honest_exec.values[target.0].dims().to_vec();
        let builders: Vec<SessionBuilder> = (0..4)
            .map(|i| {
                let b = SessionBuilder::new(&d, vec![bert::sample_ids(cfg, 100 + i)]);
                if i == 1 {
                    let mut p = Perturbations::new();
                    p.insert(target, Tensor::full(&shape, 0.05));
                    b.behavior(ProposerBehavior::Malicious(p))
                } else {
                    b
                }
            })
            .collect();
        let reports = Scheduler::with_threads(3).run(&coord, builders).unwrap();
        assert_eq!(reports.len(), 4);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.claim_id, i as u64, "claim ids assigned in session order");
            if i == 1 {
                assert!(r.challenged);
                assert!(!r.proposer_prevailed());
            } else {
                assert!(!r.challenged);
                assert!(matches!(r.final_status, ClaimStatus::Finalized));
            }
        }
    }

    /// An account that could fund claims one at a time but not the whole
    /// concurrent batch is rejected at admission with the exact peak
    /// escrow requirement — and no claim is posted.
    #[test]
    fn underfunded_batch_fails_admission_with_peak_escrow_requirement() {
        use tao_protocol::{Coordinator, EconParams};

        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let model = bert::build(cfg, 1);
        let samples = data::token_dataset(6, cfg.seq, cfg.vocab, 100);
        let d = deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).unwrap();

        let econ = EconParams::default_market();
        let (lo, hi) = econ.feasible_slash_region().unwrap();
        let inner = Coordinator::new(econ, (lo + hi) / 2.0).unwrap();
        let quote = inner
            .amounts()
            .d_p
            .max(d.static_report.deposit_bound);
        // Enough for two serial claims, but not three concurrent ones.
        let funded = quote * 2;
        inner.fund("proposer", funded);
        let coord = SharedCoordinator::new(inner);

        let builders: Vec<SessionBuilder> = (0..3)
            .map(|i| SessionBuilder::new(&d, vec![bert::sample_ids(cfg, 300 + i)]))
            .collect();
        let err = Scheduler::with_threads(3)
            .run(&coord, builders)
            .unwrap_err();
        match err {
            TaoError::InsufficientFunds {
                account,
                needed,
                available,
            } => {
                assert_eq!(account, "proposer");
                assert_eq!(needed, quote * 3, "peak = sum of all concurrent quotes");
                assert_eq!(available, funded);
            }
            other => panic!("expected InsufficientFunds, got {other}"),
        }
        // Nothing was posted and nothing is escrowed: the batch was
        // rejected before phase 2 touched the coordinator.
        let inner = coord.into_inner();
        assert!(inner.claim(0).is_err(), "no claim may be posted");
        assert_eq!(inner.escrowed("proposer"), Money::ZERO);
        assert_eq!(inner.balance("proposer"), funded);
    }
}
