//! Phase 0: model deployment — calibration and commitments.

use std::ops::Deref;
use std::sync::Arc;

use tao_analysis::StaticReport;
use tao_calib::{calibrate_with_report, CalibrationRecord, TailEstimator, ThresholdBundle};
use tao_device::Fleet;
use tao_merkle::{commit_model, graph_tree, weight_tree, MerkleTree, ModelCommitment};
use tao_models::Model;
use tao_protocol::DisputeAnchors;
use tao_tensor::Tensor;

use crate::error::TaoError;
use crate::Result;

/// The Phase 0 artifacts of a deployed model: the traced graph plus
/// everything the protocol needs — calibrated thresholds, Merkle trees and
/// the on-coordinator commitment.
#[derive(Debug)]
pub struct DeploymentArtifacts {
    /// The traced model.
    pub model: Model,
    /// The calibration fleet.
    pub fleet: Fleet,
    /// Committed empirical thresholds (α-inflated envelopes).
    pub thresholds: ThresholdBundle,
    /// Raw calibration record (kept for stability diagnostics and plots).
    pub calibration: CalibrationRecord,
    /// Weight Merkle tree `T_w`.
    pub weight_tree: MerkleTree,
    /// Graph-structure Merkle tree `T_g`.
    pub graph_tree: MerkleTree,
    /// The Phase 0 commitment `(r_w, r_g, r_e)`.
    pub commitment: ModelCommitment,
    /// Static analysis of the committed graph: shapes, costs, gas quote,
    /// deposit bound and lint findings. Claim admission
    /// ([`crate::PendingSession::submit`]) prices claims from this report.
    pub static_report: StaticReport,
}

/// A shared handle to a deployed model.
///
/// Deployments are immutable once committed, so the handle is an `Arc`
/// around [`DeploymentArtifacts`]: cloning is a reference-count bump, and
/// any number of concurrent sessions (see [`crate::Scheduler`]) can hold
/// the same deployment without copying model weights or Merkle trees. The
/// artifacts are reachable through `Deref`, so `deployment.model`,
/// `deployment.thresholds` etc. read as direct field accesses.
#[derive(Debug, Clone)]
pub struct Deployment {
    inner: Arc<DeploymentArtifacts>,
}

impl Deployment {
    /// Wraps already-built artifacts into a shareable handle.
    pub fn new(artifacts: DeploymentArtifacts) -> Self {
        Deployment {
            inner: Arc::new(artifacts),
        }
    }

    /// Borrowed view of the underlying artifacts.
    pub fn artifacts(&self) -> &DeploymentArtifacts {
        &self.inner
    }

    /// The dispute anchors (Merkle trees + committed roots) of this
    /// deployment, in the shape [`tao_protocol::run_dispute`] consumes.
    pub fn dispute_anchors(&self) -> DisputeAnchors<'_> {
        DisputeAnchors {
            graph_tree: &self.inner.graph_tree,
            weight_tree: &self.inner.weight_tree,
            graph_root: &self.inner.commitment.graph_root,
            weight_root: &self.inner.commitment.weight_root,
            // The trace root is per-claim, not per-deployment: the session
            // attaches it via `with_trace_root` once `C0` is prepared.
            trace_root: None,
        }
    }
}

impl Deref for Deployment {
    type Target = DeploymentArtifacts;

    fn deref(&self) -> &DeploymentArtifacts {
        &self.inner
    }
}

/// Runs Phase 0: offline cross-device calibration over `samples`, α
/// inflation, and Merkle commitment of weights, graph and thresholds.
///
/// # Errors
///
/// Returns an error when calibration fails (empty fleet or samples).
pub fn deploy(
    model: Model,
    fleet: Fleet,
    samples: &[Vec<Tensor<f32>>],
    alpha: f64,
) -> Result<Deployment> {
    deploy_with(model, fleet, samples, alpha, TailEstimator::RawMax)
}

/// [`deploy`] with an explicit tail estimator for the committed
/// thresholds: [`TailEstimator::RawMax`] is the paper's max envelope,
/// [`TailEstimator::SmoothedTail`] adds tail slack (the calibration
/// variant campaigns A/B against the raw envelope). The chosen estimator's
/// bundle is what gets Merkle-committed — screening, disputes and
/// committees all operate against it.
///
/// # Errors
///
/// Returns an error when calibration fails (empty fleet or samples).
pub fn deploy_with(
    model: Model,
    fleet: Fleet,
    samples: &[Vec<Tensor<f32>>],
    alpha: f64,
    estimator: TailEstimator,
) -> Result<Deployment> {
    if alpha < 1.0 {
        return Err(TaoError::Config(format!(
            "safety factor alpha {alpha} must be >= 1"
        )));
    }
    // Static analysis gates deployment: a graph the interpreter rejects
    // (shape mismatches, missing parameters) would fail calibration anyway
    // — fail fast with the linter's explanation instead.
    let static_report = tao_analysis::analyze(&model.graph, &model.input_shapes);
    if !static_report.is_admissible() {
        let first = static_report
            .lint_findings
            .iter()
            .find(|f| f.severity == tao_analysis::Severity::Deny)
            .expect("deny_count > 0");
        return Err(TaoError::Config(format!(
            "model fails static analysis ({} deny finding(s); first: {})",
            static_report.deny_count(),
            first.message
        )));
    }
    // The report's inferred shapes pre-size every calibration envelope and
    // scratch buffer before the first forward pass.
    let calibration = calibrate_with_report(&model.graph, samples, &fleet, &static_report)?;
    let thresholds = calibration.clone().into_thresholds_with(alpha, estimator);
    let wt = weight_tree(&model.graph);
    let gt = graph_tree(&model.graph);
    let commitment = commit_model(&model.graph, &thresholds.to_leaves());
    Ok(Deployment::new(DeploymentArtifacts {
        model,
        fleet,
        thresholds,
        calibration,
        weight_tree: wt,
        graph_tree: gt,
        commitment,
        static_report,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_calib::DEFAULT_ALPHA;
    use tao_models::{bert, BertConfig};

    #[test]
    fn deploy_produces_consistent_commitments() {
        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let model = bert::build(cfg, 1);
        let samples = tao_models::data::token_dataset(4, cfg.seq, cfg.vocab, 10);
        let d = deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).unwrap();
        assert_eq!(d.commitment.weight_root, d.weight_tree.root());
        assert_eq!(d.commitment.graph_root, d.graph_tree.root());
        assert_eq!(d.thresholds.alpha, DEFAULT_ALPHA);
        assert!(!d.thresholds.operators.is_empty());
    }

    #[test]
    fn deployment_clones_share_artifacts() {
        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let model = bert::build(cfg, 1);
        let samples = tao_models::data::token_dataset(2, cfg.seq, cfg.vocab, 10);
        let d = deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).unwrap();
        let d2 = d.clone();
        // Same allocation, not a deep copy.
        assert!(std::ptr::eq(d.artifacts(), d2.artifacts()));
        let anchors = d2.dispute_anchors();
        assert_eq!(*anchors.graph_root, d.commitment.graph_root);
    }

    #[test]
    fn smoothed_deployment_commits_the_smoothed_bundle() {
        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let samples = tao_models::data::token_dataset(4, cfg.seq, cfg.vocab, 10);
        let raw = deploy(bert::build(cfg, 1), Fleet::standard(), &samples, DEFAULT_ALPHA).unwrap();
        let smoothed = deploy_with(
            bert::build(cfg, 1),
            Fleet::standard(),
            &samples,
            DEFAULT_ALPHA,
            TailEstimator::smoothed_default(),
        )
        .unwrap();
        // The variant bundle dominates pointwise and is what got committed
        // (the threshold leaves differ, so the r_e root differs).
        for (r, s) in raw
            .thresholds
            .operators
            .iter()
            .zip(&smoothed.thresholds.operators)
        {
            for (a, b) in r.thresholds.abs.iter().zip(&s.thresholds.abs) {
                assert!(b >= a);
            }
        }
        assert_ne!(
            raw.commitment.threshold_root, smoothed.commitment.threshold_root,
            "estimator choice must be visible in the commitment"
        );
    }

    #[test]
    fn alpha_below_one_rejected() {
        let cfg = BertConfig {
            layers: 1,
            ..BertConfig::small()
        };
        let model = bert::build(cfg, 1);
        let samples = tao_models::data::token_dataset(2, cfg.seq, cfg.vocab, 10);
        assert!(deploy(model, Fleet::standard(), &samples, 0.5).is_err());
    }
}
