//! Exact fixed-point money for the TAO marketplace ledger.
//!
//! Every balance, escrow, deposit, fee and slash in the protocol is a
//! [`Money`]: a signed 128-bit count of **micro-credits** (`1 credit =
//! 10^6` units, [`SCALE`]). Integer arithmetic makes parallel settlement
//! associative — sharded settlement over any interleaving produces
//! bit-identical balances to the serial reference, and the conservation
//! invariant `Σ balances + Σ escrow == injected` is an exact equality
//! rather than an `abs() < 1e-9` tolerance.
//!
//! # Rounding policy
//!
//! Rounding happens in exactly two places, both documented here and
//! nowhere else:
//!
//! 1. **Conversion from f64** ([`Money::from_f64`]) — used only at
//!    configuration boundaries (economic parameters expressed as f64 in
//!    the paper's formulas). Rounds half away from zero and fails on
//!    non-finite or out-of-range input.
//! 2. **Proportional splits** ([`Ppm::apply`] and [`slash_split`]) —
//!    each share takes the *floor* of its exact proportional amount and
//!    the **remainder goes to the burn** (the protocol sink), so
//!    `reward + committee + burn == slashed` exactly: no dust is ever
//!    dropped or minted. A burn-favoring remainder is the conservative
//!    choice — neither counterparty can profit from rounding.
//!
//! Everywhere else arithmetic is checked: the operator impls panic on
//! overflow (an i128 micro-credit ledger overflows at ~1.7e32 credits,
//! so a panic indicates corrupted state, not a plausible balance), and
//! the `checked_*` methods return `None` for callers that want to
//! surface the failure as a typed error.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Micro-credit scale: number of [`Money`] units per whole credit.
pub const SCALE: i128 = 1_000_000;

/// Denominator of a [`Ppm`] ratio (parts per million).
pub const PPM_SCALE: i128 = 1_000_000;

/// An exact ledger amount in micro-credits (`1/1_000_000` credit).
///
/// `Money` is `Copy`, totally ordered, and hashes/compares by its exact
/// integer value. The arithmetic operators (`+`, `-`, `+=`, `-=`,
/// `* u64`, unary `-`) panic on overflow; use [`Money::checked_add`] /
/// [`Money::checked_sub`] / [`Money::checked_mul`] to handle overflow as
/// a value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Money(i128);

impl Money {
    /// Zero credits.
    pub const ZERO: Money = Money(0);

    /// The largest representable amount.
    pub const MAX: Money = Money(i128::MAX);

    /// Constructs a `Money` from a raw count of micro-credit units.
    pub const fn from_units(units: i128) -> Self {
        Money(units)
    }

    /// Constructs a `Money` from a whole number of credits.
    ///
    /// # Panics
    ///
    /// Panics if `credits * SCALE` overflows i128 (requires |credits|
    /// near 1.7e32 — unreachable from an i64).
    pub const fn from_credits(credits: i64) -> Self {
        Money(credits as i128 * SCALE)
    }

    /// The raw micro-credit count.
    pub const fn units(self) -> i128 {
        self.0
    }

    /// Whole-credit part, truncated toward zero.
    pub const fn credits(self) -> i128 {
        self.0 / SCALE
    }

    /// Converts an f64 credit amount to exact micro-credits, rounding
    /// half away from zero. Returns `None` for NaN, infinities, and
    /// values outside the representable range.
    ///
    /// This is the *only* sanctioned f64 → Money path; it exists for
    /// configuration boundaries (economic parameters are specified as
    /// f64 by the paper's formulas), never for ledger arithmetic.
    pub fn from_f64(credits: f64) -> Option<Self> {
        if !credits.is_finite() {
            return None;
        }
        let scaled = credits * SCALE as f64;
        // i128::MAX as f64 rounds up; compare against 2^127 exactly.
        if scaled >= 2f64.powi(127) || scaled <= -(2f64.powi(127)) {
            return None;
        }
        let rounded = if scaled >= 0.0 {
            (scaled + 0.5).floor()
        } else {
            (scaled - 0.5).ceil()
        };
        Some(Money(rounded as i128))
    }

    /// The amount as f64 credits (lossy above 2^53 micro-credits; for
    /// display, modeling and analytics only — never ledger math).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Money) -> Option<Money> {
        self.0.checked_add(rhs.0).map(Money)
    }

    /// Checked subtraction; `None` on overflow.
    pub fn checked_sub(self, rhs: Money) -> Option<Money> {
        self.0.checked_sub(rhs.0).map(Money)
    }

    /// Checked multiplication by a scalar count; `None` on overflow.
    pub fn checked_mul(self, n: u64) -> Option<Money> {
        self.0.checked_mul(n as i128).map(Money)
    }

    /// True when the amount is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        if self <= other {
            self
        } else {
            other
        }
    }
}

/// Whole credits convert implicitly so call sites read
/// `fund("proposer", 10_000)`.
impl From<i64> for Money {
    fn from(credits: i64) -> Self {
        Money::from_credits(credits)
    }
}

impl From<i32> for Money {
    fn from(credits: i32) -> Self {
        Money::from_credits(credits as i64)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        self.checked_add(rhs).expect("Money addition overflow")
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        self.checked_sub(rhs).expect("Money subtraction overflow")
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Money {
    type Output = Money;
    fn mul(self, n: u64) -> Money {
        self.checked_mul(n).expect("Money multiplication overflow")
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(self.0.checked_neg().expect("Money negation overflow"))
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |acc, m| acc + m)
    }
}

/// Renders as decimal credits, trailing zeros trimmed (`"500"`,
/// `"0.05"`, `"-2.000001"`).
impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let whole = abs / SCALE as u128;
        let frac = abs % SCALE as u128;
        if frac == 0 {
            write!(f, "{sign}{whole}")
        } else {
            let digits = format!("{frac:06}");
            write!(f, "{sign}{whole}.{}", digits.trim_end_matches('0'))
        }
    }
}

/// An exact proportional rate in parts per million.
///
/// `Ppm(500_000)` is one half. Rates above 1_000_000 are legal (a >100%
/// multiplier) but the protocol's split policy requires share rates to
/// sum to at most [`PPM_SCALE`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppm(pub u32);

impl Ppm {
    /// Constructs a rate from an f64 fraction in `[0, 4294.967295]`,
    /// rounding half up to the nearest ppm. Returns `None` for
    /// non-finite or out-of-range input.
    pub fn from_fraction(fraction: f64) -> Option<Self> {
        if !fraction.is_finite() || fraction < 0.0 {
            return None;
        }
        let ppm = (fraction * PPM_SCALE as f64 + 0.5).floor();
        if ppm > u32::MAX as f64 {
            return None;
        }
        Some(Ppm(ppm as u32))
    }

    /// The rate as an f64 fraction.
    pub fn as_fraction(self) -> f64 {
        self.0 as f64 / PPM_SCALE as f64
    }

    /// Applies the rate to an amount, taking the **floor** of the exact
    /// proportional value (floor toward negative infinity, so negative
    /// amounts also round in the ledger's favor). This is rounding
    /// point 2 of the crate-level policy.
    pub fn apply(self, amount: Money) -> Money {
        let exact = amount
            .units()
            .checked_mul(self.0 as i128)
            .expect("Ppm::apply overflow");
        Money::from_units(exact.div_euclid(PPM_SCALE))
    }
}

impl fmt::Display for Ppm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ppm", self.0)
    }
}

/// The three exact parts of a settled slash.
///
/// Invariant (checked in debug builds and by property test):
/// `reward + committee + burn == slashed` for the input the split was
/// computed from, with `burn >= 0` whenever
/// `reward_rate + committee_rate <= 1_000_000` ppm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlashSplit {
    /// Challenger reward: `floor(reward_rate · slashed)`.
    pub reward: Money,
    /// Committee pool share: `floor(committee_rate · slashed)`.
    pub committee: Money,
    /// Protocol burn: the exact remainder, absorbing both rounding
    /// residues per the crate-level policy.
    pub burn: Money,
}

/// Splits a slashed amount into challenger reward, committee share and
/// burn with zero dust: each proportional share floors and the burn
/// takes the remainder, so the parts always sum exactly to `slashed`.
///
/// # Panics
///
/// Panics when `reward_rate + committee_rate` exceeds 1_000_000 ppm
/// (the burn would go negative: the caller's economics are infeasible
/// and were supposed to be rejected at construction).
pub fn slash_split(slashed: Money, reward_rate: Ppm, committee_rate: Ppm) -> SlashSplit {
    assert!(
        reward_rate.0 as u64 + committee_rate.0 as u64 <= PPM_SCALE as u64,
        "slash_split: share rates {reward_rate} + {committee_rate} exceed 100%"
    );
    let reward = reward_rate.apply(slashed);
    let committee = committee_rate.apply(slashed);
    let burn = slashed - reward - committee;
    debug_assert_eq!(reward + committee + burn, slashed);
    SlashSplit {
        reward,
        committee,
        burn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn credit_scale_roundtrips() {
        assert_eq!(Money::from_credits(500).units(), 500 * SCALE);
        assert_eq!(Money::from_credits(-3).credits(), -3);
        assert_eq!(Money::from(10_000i64), Money::from_units(10_000 * SCALE));
    }

    #[test]
    fn from_f64_rounds_half_away_from_zero() {
        assert_eq!(Money::from_f64(1.0).unwrap().units(), SCALE);
        // 0.0000005 credits = 0.5 units -> 1 unit.
        assert_eq!(Money::from_f64(0.000_000_5).unwrap().units(), 1);
        assert_eq!(Money::from_f64(-0.000_000_5).unwrap().units(), -1);
        assert_eq!(Money::from_f64(0.000_000_4).unwrap().units(), 0);
        assert!(Money::from_f64(f64::NAN).is_none());
        assert!(Money::from_f64(f64::INFINITY).is_none());
        assert!(Money::from_f64(1e35).is_none());
    }

    #[test]
    fn display_prints_decimal_credits() {
        assert_eq!(Money::from_credits(500).to_string(), "500");
        assert_eq!(Money::from_units(50_000).to_string(), "0.05");
        assert_eq!(Money::from_units(-2_000_001).to_string(), "-2.000001");
        assert_eq!(Money::ZERO.to_string(), "0");
    }

    #[test]
    fn checked_ops_surface_overflow() {
        assert!(Money::MAX.checked_add(Money::from_units(1)).is_none());
        assert!(Money::from_units(i128::MIN + 1)
            .checked_sub(Money::from_units(2))
            .is_none());
        assert!(Money::MAX.checked_mul(2).is_none());
        assert_eq!(
            Money::from_credits(2).checked_mul(3),
            Some(Money::from_credits(6))
        );
    }

    #[test]
    #[should_panic(expected = "Money addition overflow")]
    fn operator_add_panics_on_overflow() {
        let _ = Money::MAX + Money::from_units(1);
    }

    #[test]
    fn ppm_apply_floors() {
        let half = Ppm::from_fraction(0.5).unwrap();
        assert_eq!(half, Ppm(500_000));
        // floor(0.5 * 3 units) = 1 unit.
        assert_eq!(half.apply(Money::from_units(3)).units(), 1);
        // Floor toward -inf for negative amounts.
        assert_eq!(half.apply(Money::from_units(-3)).units(), -2);
        assert_eq!(
            half.apply(Money::from_credits(500)),
            Money::from_credits(250)
        );
    }

    #[test]
    fn ppm_from_fraction_is_exact_for_market_rates() {
        assert_eq!(Ppm::from_fraction(0.5).unwrap().0, 500_000);
        assert_eq!(Ppm::from_fraction(0.3).unwrap().0, 300_000);
        assert!(Ppm::from_fraction(f64::NAN).is_none());
        assert!(Ppm::from_fraction(-0.1).is_none());
    }

    #[test]
    fn slash_split_routes_remainder_to_burn() {
        // 7 units at 50% + 30%: reward floor(3.5)=3, committee
        // floor(2.1)=2, burn = 7-3-2 = 2.
        let s = slash_split(Money::from_units(7), Ppm(500_000), Ppm(300_000));
        assert_eq!(s.reward.units(), 3);
        assert_eq!(s.committee.units(), 2);
        assert_eq!(s.burn.units(), 2);
        assert_eq!(s.reward + s.committee + s.burn, Money::from_units(7));
    }

    #[test]
    #[should_panic(expected = "exceed 100%")]
    fn slash_split_rejects_over_unity_rates() {
        let _ = slash_split(Money::from_credits(1), Ppm(700_000), Ppm(400_000));
    }

    proptest! {
        /// Satellite 2: every split's parts sum exactly to the whole —
        /// `burn + reward + fee == slashed` — and no share goes negative
        /// for a non-negative slash under feasible (≤100%) rates.
        #[test]
        fn split_parts_always_sum_exactly(
            units in 0i64..1_000_000_000_000i64,
            reward_ppm in 0u32..1_000_001u32,
            committee_frac in 0u32..1_000_001u32,
        ) {
            let committee_ppm = ((1_000_000 - reward_ppm) as u64 * committee_frac as u64
                / 1_000_000) as u32;
            let slashed = Money::from_units(units as i128);
            let s = slash_split(slashed, Ppm(reward_ppm), Ppm(committee_ppm));
            prop_assert_eq!(s.reward + s.committee + s.burn, slashed);
            prop_assert!(s.reward >= Money::ZERO);
            prop_assert!(s.committee >= Money::ZERO);
            prop_assert!(s.burn >= Money::ZERO);
        }

        /// Money addition is associative — the property f64 lacked and
        /// the reason parallel settlement is now bit-exact.
        #[test]
        fn addition_is_associative(
            a in -1_000_000_000_000i64..1_000_000_000_000i64,
            b in -1_000_000_000_000i64..1_000_000_000_000i64,
            c in -1_000_000_000_000i64..1_000_000_000_000i64,
        ) {
            let (a, b, c) = (
                Money::from_units(a as i128),
                Money::from_units(b as i128),
                Money::from_units(c as i128),
            );
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        /// f64 roundtrip is exact for amounts with ≤ 6 decimal places in
        /// the f64-representable range (covers every econ parameter).
        #[test]
        fn f64_roundtrip_exact_in_range(units in -1_000_000_000_000i64..1_000_000_000_000i64) {
            let m = Money::from_units(units as i128);
            prop_assert_eq!(Money::from_f64(m.to_f64()), Some(m));
        }
    }
}
