//! Shared attack-sweep driver for the Table 2 / Fig. 5 binaries.

use tao_attack::{
    bucket_targets, run_attack, AttackConfig, AttackProblem, AttackResult, AttackTableRow,
    ProjectionKind,
};
use tao_device::Device;
use tao_graph::execute;

use crate::Workload;

/// One `(bound check, α)` attack setting.
#[derive(Debug, Clone, Copy)]
pub struct Setting {
    /// Display label (`"emp x1"`, `"theo x1(d)"`, …).
    pub label: &'static str,
    /// Projection family.
    pub kind: ProjectionKind,
    /// Bound scale α.
    pub scale: f64,
}

/// The paper's Table 2 settings.
pub const SETTINGS: [Setting; 6] = [
    Setting {
        label: "Empirical x1",
        kind: ProjectionKind::Empirical,
        scale: 1.0,
    },
    Setting {
        label: "Empirical x2",
        kind: ProjectionKind::Empirical,
        scale: 2.0,
    },
    Setting {
        label: "Empirical x3",
        kind: ProjectionKind::Empirical,
        scale: 3.0,
    },
    Setting {
        label: "Theo x1(d)",
        kind: ProjectionKind::TheoreticalDeterministic,
        scale: 1.0,
    },
    Setting {
        label: "Theo x1(p)",
        kind: ProjectionKind::TheoreticalProbabilistic,
        scale: 1.0,
    },
    Setting {
        label: "Theo x0.5(p)",
        kind: ProjectionKind::TheoreticalProbabilistic,
        scale: 0.5,
    },
];

/// Runs the bucketed attack sweep for one workload and setting; also
/// returns the raw per-attack results (Fig. 5 uses the distribution).
pub fn sweep(
    w: &Workload,
    setting: Setting,
    max_iters: usize,
) -> (AttackTableRow, Vec<AttackResult>) {
    let mut row = AttackTableRow::default();
    let mut raw = Vec::new();
    for (si, input) in w.test_inputs.iter().enumerate() {
        let problem = AttackProblem {
            graph: &w.deployment.model.graph,
            inputs: input,
            logits_node: w.deployment.model.logits,
            thresholds: &w.deployment.thresholds,
        };
        let Ok(lane) = problem.honest_logits() else {
            continue;
        };
        for (bucket, target) in bucket_targets(&lane, si as u64) {
            let cfg = AttackConfig {
                max_iters,
                ..AttackConfig::paper_default(setting.kind, setting.scale)
            };
            if let Ok(r) = run_attack(&problem, target, &cfg) {
                row.record(bucket, &r);
                raw.push(r);
            }
        }
    }
    (row, raw)
}

/// Runs the honest-execution false-positive check: for each held-out
/// input, execute on two different devices and test whether the full
/// screening (final-output exceedance at scale α) flags the honest run.
pub fn false_positives(w: &Workload, alpha_rescale: f64) -> (usize, usize) {
    use tao_calib::{error_profile, DEFAULT_EPS};
    let a_dev = Device::rtx4090_like();
    let b_dev = Device::h100_like();
    let logits = w.deployment.model.logits;
    let mut fp = 0;
    let mut total = 0;
    for input in &w.test_inputs {
        let Ok(a) = execute(&w.deployment.model.graph, input, a_dev.config(), None) else {
            continue;
        };
        let Ok(b) = execute(&w.deployment.model.graph, input, b_dev.config(), None) else {
            continue;
        };
        let prof = error_profile(
            a.value(logits).expect("logits"),
            b.value(logits).expect("logits"),
            DEFAULT_EPS,
        );
        let exc = w
            .deployment
            .thresholds
            .exceedance(logits, &prof)
            .unwrap_or(f64::INFINITY);
        total += 1;
        if exc > alpha_rescale {
            fp += 1;
        }
    }
    (fp, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert_workload;

    #[test]
    fn sweep_produces_results_and_no_empirical_successes() {
        let w = bert_workload(4, 2);
        let (row, raw) = sweep(&w, SETTINGS[0], 30);
        assert!(!raw.is_empty());
        assert_eq!(row.overall_asr(), 0.0, "empirical x1 must yield 0% ASR");
    }

    #[test]
    fn honest_runs_produce_no_false_positives() {
        let w = bert_workload(6, 4);
        let (fp, total) = false_positives(&w, 1.0);
        assert_eq!(fp, 0, "honest runs flagged {fp}/{total}");
        assert!(total > 0);
    }
}
