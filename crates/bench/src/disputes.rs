//! Shared dispute-game driver for the Fig. 8 / Table 3 binaries.

use std::time::Instant;

use tao_device::Device;
use tao_graph::{execute, NodeId, Perturbations};
use tao_protocol::{run_dispute, DisputeConfig, DisputeOutcome};
use tao_tensor::Tensor;

use crate::Workload;

/// A dispute run with wall-clock timing.
pub struct TimedDispute {
    /// Protocol outcome.
    pub outcome: DisputeOutcome,
    /// Wall-clock seconds for the full localization game.
    pub seconds: f64,
    /// Forward FLOPs of the proposer execution (Cost Ratio denominator).
    pub forward_flops: u64,
}

/// Spreads `count` perturbation targets evenly across the compute nodes
/// (the paper perturbs eight operators through the model).
pub fn spread_targets(w: &Workload, count: usize) -> Vec<NodeId> {
    let nodes = w.deployment.model.graph.compute_nodes();
    if nodes.is_empty() {
        return Vec::new();
    }
    (0..count.min(nodes.len()))
        .map(|i| nodes[i * nodes.len() / count.min(nodes.len()).max(1)])
        .collect()
}

/// Runs one dispute against a proposer that perturbed `target` by
/// `magnitude` (uniform additive), with partition width `n_way`.
pub fn run_perturbed_dispute(
    w: &Workload,
    input: &[Tensor<f32>],
    target: NodeId,
    magnitude: f32,
    n_way: usize,
) -> TimedDispute {
    let proposer = Device::rtx4090_like();
    let challenger = Device::h100_like();
    let graph = &w.deployment.model.graph;
    let honest = execute(graph, input, proposer.config(), None).expect("honest forward");
    let shape = honest.values[target.0].dims().to_vec();
    let mut p = Perturbations::new();
    p.insert(target, Tensor::full(&shape, magnitude));
    let trace = execute(graph, input, proposer.config(), Some(&p)).expect("perturbed forward");
    let start = Instant::now();
    let outcome = run_dispute(
        graph,
        &w.deployment.graph_tree,
        &w.deployment.weight_tree,
        &w.deployment.commitment.graph_root,
        &w.deployment.commitment.weight_root,
        &trace,
        input,
        &challenger,
        &w.deployment.thresholds,
        DisputeConfig { n_way },
    )
    .expect("dispute");
    TimedDispute {
        outcome,
        seconds: start.elapsed().as_secs_f64(),
        forward_flops: honest.total_flops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert_workload;
    use tao_protocol::DisputeResult;

    #[test]
    fn perturbed_dispute_reaches_leaf() {
        let w = bert_workload(5, 1);
        let targets = spread_targets(&w, 3);
        let d = run_perturbed_dispute(&w, &w.test_inputs[0], targets[1], 0.05, 2);
        assert!(matches!(d.outcome.result, DisputeResult::Leaf(_)));
        assert!(d.forward_flops > 0);
        assert!(d.seconds >= 0.0);
    }

    #[test]
    fn spread_targets_are_distinct_and_ordered() {
        let w = bert_workload(3, 0);
        let t = spread_targets(&w, 8);
        for pair in t.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
