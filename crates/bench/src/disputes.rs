//! Shared dispute-game driver for the Fig. 8 / Table 3 binaries.

use std::time::Instant;

use tao_device::Device;
use tao_graph::{execute, execute_observed, NodeId, Perturbations};
use tao_merkle::StreamingCommitter;
use tao_protocol::{
    run_dispute, screen_claim, ChallengerView, ClaimCheck, DisputeConfig, DisputeOutcome,
    ProposerView,
};
use tao_tensor::Tensor;

use crate::Workload;

/// A dispute run with wall-clock timing, split into the challenger's
/// screening pass (paid once, before the game) and the localization game
/// itself (which reuses the screening trace).
pub struct TimedDispute {
    /// Protocol outcome.
    pub outcome: DisputeOutcome,
    /// Wall-clock seconds of the challenger's screening forward pass.
    pub screen_seconds: f64,
    /// Wall-clock seconds for the localization game (trace reused; no
    /// challenger forward pass inside).
    pub seconds: f64,
    /// Forward FLOPs of the proposer execution (Cost Ratio denominator).
    pub forward_flops: u64,
}

/// Spreads `count` perturbation targets evenly across the compute nodes
/// (the paper perturbs eight operators through the model).
pub fn spread_targets(w: &Workload, count: usize) -> Vec<NodeId> {
    let nodes = w.deployment.model.graph.compute_nodes();
    if nodes.is_empty() {
        return Vec::new();
    }
    (0..count.min(nodes.len()))
        .map(|i| nodes[i * nodes.len() / count.min(nodes.len()).max(1)])
        .collect()
}

/// Runs one dispute against a proposer that perturbed `target` by
/// `magnitude` (uniform additive), with partition width `n_way`. The
/// challenger screens first (as in the real protocol) and the dispute
/// reuses that screening trace.
pub fn run_perturbed_dispute(
    w: &Workload,
    input: &[Tensor<f32>],
    target: NodeId,
    magnitude: f32,
    n_way: usize,
) -> TimedDispute {
    let proposer = Device::rtx4090_like();
    let challenger = Device::h100_like();
    let graph = &w.deployment.model.graph;
    let honest = execute(graph, input, proposer.config(), None).expect("honest forward");
    let shape = honest.values[target.0].dims().to_vec();
    let mut p = Perturbations::new();
    p.insert(target, Tensor::full(&shape, magnitude));
    // The proposer's trace commitment streams through its forward pass
    // (as in the real protocol) and its root anchors the dispute below.
    let mut committer = StreamingCommitter::new(graph.len());
    let trace = execute_observed(graph, input, proposer.config(), Some(&p), &mut committer)
        .expect("perturbed forward");
    let proposer_commitment = committer.finish();
    let claimed_output = trace
        .value(w.deployment.model.logits)
        .expect("logits traced");
    let screen_start = Instant::now();
    let screening = screen_claim(
        graph,
        w.deployment.model.logits,
        &w.deployment.thresholds,
        ClaimCheck {
            inputs: input,
            claimed_output,
        },
        &challenger,
    )
    .expect("screening");
    let screen_seconds = screen_start.elapsed().as_secs_f64();
    let trace_root = proposer_commitment.root();
    let start = Instant::now();
    let outcome = run_dispute(
        graph,
        w.deployment.dispute_anchors().with_trace_root(&trace_root),
        ProposerView::new(&trace).with_commitment(&proposer_commitment),
        input,
        ChallengerView::from_screening(&challenger, &screening),
        &w.deployment.thresholds,
        DisputeConfig { n_way },
    )
    .expect("dispute");
    assert_eq!(
        outcome.challenger_forward_passes, 0,
        "bench disputes must reuse the screening trace"
    );
    assert_eq!(
        outcome.rehashed_leaves, 0,
        "bench disputes must reuse the screening trace's subtree digests"
    );
    assert!(
        outcome.reveal_checks > 0,
        "anchored disputes must verify reveals against the committed root"
    );
    TimedDispute {
        outcome,
        screen_seconds,
        seconds: start.elapsed().as_secs_f64(),
        forward_flops: honest.total_flops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert_workload;
    use tao_protocol::DisputeResult;

    #[test]
    fn perturbed_dispute_reaches_leaf() {
        let w = bert_workload(5, 1);
        let targets = spread_targets(&w, 3);
        let d = run_perturbed_dispute(&w, &w.test_inputs[0], targets[1], 0.05, 2);
        assert!(matches!(d.outcome.result, DisputeResult::Leaf(_)));
        assert!(d.forward_flops > 0);
        assert!(d.seconds >= 0.0);
        assert!(d.screen_seconds > 0.0);
        assert_eq!(d.outcome.challenger_forward_passes, 0);
    }

    #[test]
    fn spread_targets_are_distinct_and_ordered() {
        let w = bert_workload(3, 0);
        let t = spread_targets(&w, 8);
        for pair in t.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
