//! # tao-bench
//!
//! Shared infrastructure for the experiment binaries that regenerate every
//! table and figure of the TAO paper's evaluation (one binary per
//! artifact; see `src/bin/`), plus Criterion micro-benchmarks under
//! `benches/`.
//!
//! Experiments run at laptop scale on the simulated device fleet; the
//! *shape* of each result (who wins, tightness gaps, scaling trends) is
//! the reproduction target, not the absolute numbers from the authors'
//! GPU testbed.

pub mod attacks;
pub mod disputes;

use tao::{deploy, Deployment};
use tao_calib::DEFAULT_ALPHA;
use tao_device::Fleet;
use tao_models::{bert, data, diffusion, qwen, resnet};
use tao_models::{BertConfig, DiffusionConfig, Model, QwenConfig, ResNetConfig};
use tao_tensor::Tensor;

/// Scale knob: experiment binaries read `TAO_BENCH_SCALE` (default 1) to
/// multiply sample counts; CI can leave it unset and a full reproduction
/// can set 4+.
pub fn scale() -> usize {
    std::env::var("TAO_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// A prepared evaluation workload: deployed model plus fresh test inputs.
pub struct Workload {
    /// Paper model this stands in for.
    pub paper_name: &'static str,
    /// The deployment (model + thresholds + commitments).
    pub deployment: Deployment,
    /// Held-out inputs (not used during calibration).
    pub test_inputs: Vec<Vec<Tensor<f32>>>,
}

impl Workload {
    /// The traced model.
    pub fn model(&self) -> &Model {
        &self.deployment.model
    }
}

fn calib_samples_for(model_kind: &str, n: usize) -> Vec<Vec<Tensor<f32>>> {
    match model_kind {
        "bert" => data::token_dataset(n, BertConfig::small().seq, BertConfig::small().vocab, 1_000),
        "qwen" => data::token_dataset(n, QwenConfig::small().seq, QwenConfig::small().vocab, 2_000),
        "resnet" => {
            let c = ResNetConfig::small();
            data::image_dataset(n, c.in_channels, c.image, c.classes, 3_000)
        }
        _ => unreachable!("unknown model kind"),
    }
}

fn test_inputs_for(model_kind: &str, n: usize) -> Vec<Vec<Tensor<f32>>> {
    match model_kind {
        "bert" => data::token_dataset(n, BertConfig::small().seq, BertConfig::small().vocab, 9_000),
        "qwen" => data::token_dataset(n, QwenConfig::small().seq, QwenConfig::small().vocab, 9_500),
        "resnet" => {
            let c = ResNetConfig::small();
            data::image_dataset(n, c.in_channels, c.image, c.classes, 9_800)
        }
        _ => unreachable!("unknown model kind"),
    }
}

/// Builds the BERT-large stand-in workload.
pub fn bert_workload(calib_n: usize, test_n: usize) -> Workload {
    let model = bert::build(BertConfig::small(), 11);
    let deployment = deploy(
        model,
        Fleet::standard(),
        &calib_samples_for("bert", calib_n),
        DEFAULT_ALPHA,
    )
    .expect("bert deployment");
    Workload {
        paper_name: "BERT-large",
        deployment,
        test_inputs: test_inputs_for("bert", test_n),
    }
}

/// Builds the Qwen3-8B stand-in workload.
pub fn qwen_workload(calib_n: usize, test_n: usize) -> Workload {
    let model = qwen::build(QwenConfig::small(), 13);
    let deployment = deploy(
        model,
        Fleet::standard(),
        &calib_samples_for("qwen", calib_n),
        DEFAULT_ALPHA,
    )
    .expect("qwen deployment");
    Workload {
        paper_name: "Qwen3-8B",
        deployment,
        test_inputs: test_inputs_for("qwen", test_n),
    }
}

/// Builds the ResNet-152 stand-in workload.
pub fn resnet_workload(calib_n: usize, test_n: usize) -> Workload {
    let model = resnet::build(ResNetConfig::small(), 17);
    let deployment = deploy(
        model,
        Fleet::standard(),
        &calib_samples_for("resnet", calib_n),
        DEFAULT_ALPHA,
    )
    .expect("resnet deployment");
    Workload {
        paper_name: "ResNet-152",
        deployment,
        test_inputs: test_inputs_for("resnet", test_n),
    }
}

/// Builds the Stable Diffusion stand-in (UNet) workload; inputs are
/// (latent, time-embedding) pairs.
pub fn diffusion_workload(calib_n: usize, test_n: usize) -> Workload {
    let cfg = DiffusionConfig::small();
    let model = diffusion::build(cfg, 19);
    let mk = |seed: u64| {
        vec![
            Tensor::<f32>::randn(&model.input_shapes[0], seed),
            diffusion::time_embedding((seed % 50) as usize + 1, cfg.temb),
        ]
    };
    let samples: Vec<_> = (0..calib_n).map(|i| mk(4_000 + i as u64)).collect();
    let tests: Vec<_> = (0..test_n).map(|i| mk(9_900 + i as u64)).collect();
    let deployment =
        deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).expect("diffusion deployment");
    Workload {
        paper_name: "Stable Diffusion v1-5",
        deployment,
        test_inputs: tests,
    }
}

/// Builds a deeper BERT-style workload whose graph size pushes dispute
/// depth toward the paper's 11-13 round regime.
pub fn deep_bert_workload(layers: usize, calib_n: usize, test_n: usize) -> Workload {
    let cfg = BertConfig::deep(layers);
    let model = bert::build(cfg, 29);
    let samples = data::token_dataset(calib_n, cfg.seq, cfg.vocab, 1_500);
    let tests = data::token_dataset(test_n, cfg.seq, cfg.vocab, 9_600);
    let deployment =
        deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).expect("deep bert deployment");
    Workload {
        paper_name: "BERT-large",
        deployment,
        test_inputs: tests,
    }
}

/// Builds a deeper Qwen-style workload (see [`deep_bert_workload`]).
pub fn deep_qwen_workload(layers: usize, calib_n: usize, test_n: usize) -> Workload {
    let cfg = QwenConfig::deep(layers);
    let model = qwen::build(cfg, 31);
    let samples = data::token_dataset(calib_n, cfg.seq, cfg.vocab, 2_500);
    let tests = data::token_dataset(test_n, cfg.seq, cfg.vocab, 9_700);
    let deployment =
        deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).expect("deep qwen deployment");
    Workload {
        paper_name: "Qwen3-8B",
        deployment,
        test_inputs: tests,
    }
}

/// Builds a deeper ResNet-style workload (see [`deep_bert_workload`]).
pub fn deep_resnet_workload(blocks: usize, calib_n: usize, test_n: usize) -> Workload {
    let cfg = ResNetConfig::deep(blocks);
    let model = resnet::build(cfg, 37);
    let samples = data::image_dataset(calib_n, cfg.in_channels, cfg.image, cfg.classes, 3_500);
    let tests = data::image_dataset(test_n, cfg.in_channels, cfg.image, cfg.classes, 9_750);
    let deployment =
        deploy(model, Fleet::standard(), &samples, DEFAULT_ALPHA).expect("deep resnet deployment");
    Workload {
        paper_name: "ResNet-152",
        deployment,
        test_inputs: tests,
    }
}

/// Prints a simple aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float in compact scientific notation.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_and_hold_out_test_inputs() {
        let w = bert_workload(3, 2);
        assert_eq!(w.test_inputs.len(), 2);
        assert!(!w.deployment.thresholds.operators.is_empty());
        assert_eq!(w.paper_name, "BERT-large");
    }

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(1.234e-5).contains("e-5"));
    }
}
