//! Ablation: committee size vs adjudication robustness under dishonest
//! members (the honest-majority assumption of §2.1 and §5.4).
//!
//! Run with `cargo run --release -p tao-bench --bin ablation_committee`.

use tao_bench::{bert_workload, print_table};
use tao_device::{Device, Fleet};
use tao_graph::{execute, NodeId, Perturbations};
use tao_protocol::{committee_vote, leaf_case, LeafVerdict};
use tao_tensor::Tensor;

fn main() {
    let w = bert_workload(10, 1);
    let graph = &w.deployment.model.graph;
    let input = &w.test_inputs[0];
    let leaf: NodeId = graph.compute_nodes()[4];
    let prop = Device::rtx4090_like();

    // A fraudulent leaf: perturbation above empirical thresholds but
    // inside the loose theoretical cap (the committee's raison d'être).
    let honest = execute(graph, input, prop.config(), None).expect("forward");
    let shape = honest.values[leaf.0].dims().to_vec();
    let mut p = Perturbations::new();
    p.insert(leaf, Tensor::<f32>::randn(&shape, 5).mul_scalar(2e-5));
    let trace = execute(graph, input, prop.config(), Some(&p)).expect("forward");
    let case = leaf_case(graph, leaf, &trace, input);

    // Pool: replicate the fleet to form larger committees.
    let mut pool = Vec::new();
    for _ in 0..4 {
        pool.extend(Fleet::standard().devices().to_vec());
    }

    let mut rows = Vec::new();
    for n in [1usize, 3, 5, 7] {
        for liars in 0..=n {
            let committee: Vec<Device> = pool[..n].to_vec();
            let dishonest: Vec<bool> = (0..n).map(|i| i < liars).collect();
            let outcome = committee_vote(&case, &w.deployment.thresholds, &committee, &dishonest)
                .expect("vote");
            let correct = outcome.verdict == LeafVerdict::Fraud;
            rows.push(vec![
                n.to_string(),
                liars.to_string(),
                format!("{:?}", outcome.verdict),
                if correct {
                    "correct".into()
                } else {
                    "WRONG".into()
                },
            ]);
        }
    }
    print_table(
        "Ablation — committee size vs dishonest members (fraudulent leaf)",
        &["committee n", "liars", "verdict", "outcome"],
        &rows,
    );
    println!(
        "\nExpected shape: the verdict is correct exactly while liars < n/2 —\n\
         honest majority is necessary and sufficient, motivating randomized\n\
         sortition and the fixed participation fee of §5.5."
    );
}
