//! Fig. 7 reproduction: distribution heatmaps of per-operator empirical vs
//! theoretical error magnitudes (decade bins 1e-1 … 1e-8).
//!
//! Run with `cargo run -p tao-bench --bin fig7_error_heatmaps`.

use tao_bench::{bert_workload, print_table, qwen_workload, resnet_workload, Workload};
use tao_bounds::BoundEngine;
use tao_graph::execute;
use tao_tensor::KernelConfig;

const BIN_LABELS: [&str; 8] = [
    "1e-1", "1e-2", "1e-3", "1e-4", "1e-5", "1e-6", "1e-7", "1e-8",
];

fn bin_of(v: f64) -> Option<usize> {
    if v <= 0.0 {
        return None;
    }
    let exp = v.log10();
    // Bin i covers [1e-(i+1), 1e-i); clamp into the displayed range.
    let idx = (-exp).floor() as i64;
    Some(idx.clamp(1, 8) as usize - 1)
}

fn histogram(values: &[f64]) -> [f64; 8] {
    let mut counts = [0u64; 8];
    let mut total = 0u64;
    for &v in values {
        if let Some(b) = bin_of(v) {
            counts[b] += 1;
            total += 1;
        }
    }
    let mut out = [0.0; 8];
    if total > 0 {
        for i in 0..8 {
            out[i] = 100.0 * counts[i] as f64 / total as f64;
        }
    }
    out
}

fn report(w: &Workload) {
    // Empirical: per-operator mean cross-device error from calibration.
    let empirical: Vec<f64> = w
        .deployment
        .calibration
        .mean_abs
        .values()
        .copied()
        .collect();

    // Theoretical: per-operator mean probabilistic bound on a test input.
    let engine = BoundEngine::paper_default();
    let exec = execute(
        &w.model().graph,
        &w.test_inputs[0],
        &KernelConfig::reference(),
        None,
    )
    .expect("forward");
    let bounds = engine.co_execute(&w.model().graph, &exec).expect("bounds");
    let theoretical: Vec<f64> = w
        .model()
        .graph
        .compute_nodes()
        .iter()
        .map(|&id| {
            let t = &bounds[id.0];
            t.data().iter().sum::<f64>() / t.len().max(1) as f64
        })
        .collect();

    let he = histogram(&empirical);
    let ht = histogram(&theoretical);
    let rows = vec![
        std::iter::once("empirical".to_string())
            .chain(he.iter().map(|p| format!("{p:.0}%")))
            .collect::<Vec<_>>(),
        std::iter::once("theoretical".to_string())
            .chain(ht.iter().map(|p| format!("{p:.0}%")))
            .collect::<Vec<_>>(),
    ];
    let mut header = vec!["bounds"];
    header.extend(BIN_LABELS);
    print_table(
        &format!("Fig. 7 — {} error-magnitude distribution", w.paper_name),
        &header,
        &rows,
    );

    // Tightness gap: ratio of geometric means.
    let gmean = |v: &[f64]| {
        let logs: Vec<f64> = v.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
        (logs.iter().sum::<f64>() / logs.len().max(1) as f64).exp()
    };
    println!(
        "geometric-mean gap (theoretical / empirical): {:.0}x",
        gmean(&theoretical) / gmean(&empirical).max(1e-300)
    );
}

fn main() {
    let n = 6 * tao_bench::scale();
    for w in [
        bert_workload(n, 1),
        qwen_workload(n, 1),
        resnet_workload(n, 1),
    ] {
        report(&w);
    }
    println!(
        "\nExpected shape: empirical mass concentrates around 1e-5..1e-7 while\n\
         theoretical bounds sit 1e2-1e3x higher for the transformers, with a\n\
         smaller gap for the CNN."
    );
}
