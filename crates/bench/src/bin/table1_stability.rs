//! Table 1 reproduction: stability metrics of the empirical percentile
//! profiles (SupNorm / Jackknife / TailAdj / RollSD) at p30/p50/p70,
//! summarized at the 50th/90th percentiles across operators.
//!
//! Run with `cargo run -p tao-bench --bin table1_stability`.

use tao_bench::{bert_workload, print_table, qwen_workload, resnet_workload, Workload};
use tao_calib::{stability_table, DEFAULT_WINDOW};

fn report(w: &Workload) {
    let rows = stability_table(
        &w.deployment.calibration,
        &[30.0, 50.0, 70.0],
        DEFAULT_WINDOW,
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.p as u32),
                format!("{:.2}", r.sup_norm.0),
                format!("{:.2}", r.sup_norm.1),
                format!("{:.2}", r.jackknife.0),
                format!("{:.2}", r.jackknife.1),
                format!("{:.2}", r.tail_adj.0),
                format!("{:.2}", r.tail_adj.1),
                format!("{:.2}", r.roll_sd.0),
                format!("{:.2}", r.roll_sd.1),
            ]
        })
        .collect();
    print_table(
        &format!("Table 1 — {} stability (n=50 samples, W=10)", w.paper_name),
        &[
            "p", "Sup@50", "Sup@90", "JK@50", "JK@90", "Tail@50", "Tail@90", "Roll@50", "Roll@90",
        ],
        &table,
    );
}

fn main() {
    // The paper calibrates over 50 samples per model; W = 10.
    let n = 50;
    for w in [
        qwen_workload(n, 0),
        bert_workload(n, 0),
        resnet_workload(n, 0),
    ] {
        report(&w);
    }
    println!(
        "\nExpected shape: central tendencies ~0 with tight 90th-percentile bounds\n\
         (SupNorm/JK/TailAdj well below ~0.1; RollSD modestly higher), indicating\n\
         near-stationary operator estimates."
    );
}
