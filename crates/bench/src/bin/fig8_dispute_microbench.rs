//! Fig. 8 reproduction: dispute-game microbenchmarks on the BERT-style
//! model — average rounds, dispute time, and Merkle checks as the
//! partition width N varies, plus per-round substep statistics across
//! eight perturbed operators.
//!
//! Run with `cargo run --release -p tao-bench --bin fig8_dispute_microbench`.

use tao_bench::disputes::{run_perturbed_dispute, spread_targets};
use tao_bench::{bert_workload, print_table};
use tao_protocol::DisputeResult;

fn main() {
    let w = bert_workload(6, 1);
    let input = &w.test_inputs[0];
    let targets = spread_targets(&w, 8);
    let n_values = [2usize, 4, 6, 8, 12, 16];

    let mut rows = Vec::new();
    let mut per_round_n4: Vec<(u64, u64)> = Vec::new(); // (partition bytes, selection flops) by round.
    for &n in &n_values {
        let mut rounds = 0usize;
        let mut secs = 0.0;
        let mut screen_secs = 0.0;
        let mut checks = 0u64;
        let mut runs = 0usize;
        for &t in &targets {
            let d = run_perturbed_dispute(&w, input, t, 0.05, n);
            if !matches!(d.outcome.result, DisputeResult::Leaf(_)) {
                continue;
            }
            rounds += d.outcome.rounds.len();
            secs += d.seconds;
            screen_secs += d.screen_seconds;
            checks += d.outcome.merkle_checks;
            runs += 1;
            if n == 4 {
                for r in &d.outcome.rounds {
                    if per_round_n4.len() <= r.round {
                        per_round_n4.resize(r.round + 1, (0, 0));
                    }
                    per_round_n4[r.round].0 += r.partition_bytes;
                    per_round_n4[r.round].1 += r.selection_flops;
                }
            }
        }
        let runs = runs.max(1) as f64;
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", rounds as f64 / runs),
            format!("{:.1}ms", 1e3 * secs / runs),
            format!("{:.1}ms", 1e3 * screen_secs / runs),
            format!("{:.0}", checks as f64 / runs),
        ]);
    }
    print_table(
        "Fig. 8 — dispute microbenchmarks vs partition width N (BERT-style)",
        &[
            "N",
            "avg rounds",
            "avg dispute time",
            "avg screen time",
            "avg Merkle checks",
        ],
        &rows,
    );

    let round_rows: Vec<Vec<String>> = per_round_n4
        .iter()
        .enumerate()
        .map(|(i, (bytes, flops))| {
            vec![
                i.to_string(),
                format!("{:.1}KB", *bytes as f64 / 8.0 / 1024.0),
                format!("{:.2}MFLOP", *flops as f64 / 8.0 / 1e6),
            ]
        })
        .collect();
    print_table(
        "Fig. 8 (right) — per-round substep work at N=4 (mean over 8 perturbed ops)",
        &["round", "proposer partition", "challenger selection"],
        &round_rows,
    );
    println!(
        "\nExpected shape: rounds fall like O(log_N |V|) (~halving from N=2 to\n\
         N>=12); time drops sharply to N~6-8 then plateaus; Merkle checks shrink\n\
         monotonically; both substep costs decay with the round index because the\n\
         first round covers the largest subgraph. Screen time is the challenger's\n\
         one forward pass, paid before the game and reused inside it (the dispute\n\
         itself recomputes zero full passes)."
    );
}
