//! Ablation: the safety factor α (Eq. 7) trades false-positive risk
//! against detection tightness. Sweeps α and reports (i) the honest-run
//! false-positive rate and (ii) the smallest uniform perturbation the
//! final-output screening still detects.
//!
//! Run with `cargo run --release -p tao-bench --bin ablation_alpha`.

use tao_bench::{print_table, qwen_workload, sci};
use tao_calib::{error_profile, DEFAULT_EPS};
use tao_device::Device;
use tao_graph::{execute, Perturbations};
use tao_tensor::Tensor;

fn main() {
    let w = qwen_workload(12, 8);
    let logits = w.deployment.model.logits;
    let graph = &w.deployment.model.graph;
    let prop = Device::rtx4090_like();
    let chal = Device::h100_like();

    let mut rows = Vec::new();
    for alpha in [1.0f64, 1.5, 2.0, 3.0, 5.0, 10.0] {
        // Rescale the committed (α = 3) thresholds to the swept α.
        let rescale = alpha / w.deployment.thresholds.alpha;

        // False positives over honest held-out runs.
        let mut fp = 0;
        for input in &w.test_inputs {
            let a = execute(graph, input, prop.config(), None).expect("forward");
            let b = execute(graph, input, chal.config(), None).expect("forward");
            let prof = error_profile(
                a.value(logits).expect("logits"),
                b.value(logits).expect("logits"),
                DEFAULT_EPS,
            );
            let exc = w
                .deployment
                .thresholds
                .exceedance(logits, &prof)
                .unwrap_or(f64::INFINITY);
            if exc > rescale {
                fp += 1;
            }
        }

        // Detection floor: smallest logit-lane perturbation still caught.
        let input = &w.test_inputs[0];
        let honest = execute(graph, input, prop.config(), None).expect("forward");
        let shape = honest.values[logits.0].dims().to_vec();
        let mut floor = f64::INFINITY;
        let mut mag = 1e-9;
        while mag < 1e-1 {
            mag *= 1.5;
            let mut p = Perturbations::new();
            p.insert(
                logits,
                Tensor::<f32>::randn(&shape, 9).mul_scalar(mag as f32),
            );
            let evil = execute(graph, input, prop.config(), Some(&p)).expect("forward");
            let own = execute(graph, input, chal.config(), None).expect("forward");
            let prof = error_profile(
                evil.value(logits).expect("logits"),
                own.value(logits).expect("logits"),
                DEFAULT_EPS,
            );
            let exc = w
                .deployment
                .thresholds
                .exceedance(logits, &prof)
                .unwrap_or(f64::INFINITY);
            if exc > rescale {
                floor = mag;
                break;
            }
        }

        rows.push(vec![
            format!("{alpha}"),
            format!("{fp}/{}", w.test_inputs.len()),
            if floor.is_finite() {
                sci(floor)
            } else {
                ">1e-1".into()
            },
        ]);
    }
    print_table(
        "Ablation — safety factor α: false positives vs detection floor",
        &["alpha", "honest FPs", "smallest caught perturbation"],
        &rows,
    );
    println!(
        "\nExpected shape: zero honest false positives at every alpha >= 1, with a\n\
         detection floor orders of magnitude below any task-relevant logit\n\
         change. The floor is nearly alpha-insensitive because the screening\n\
         binds at its strictest percentile (the low-percentile relative-error\n\
         channel), where observed/threshold ratios cross 1 very steeply -- the\n\
         reason the paper can inflate alpha to 3 for safety without giving up\n\
         detection power (Table 2's alpha sweep shows the same)."
    );
}
