//! Fig. 4 reproduction: mean empirical cross-device error vs normalized
//! operator position (the non-accumulation result of §4.2).
//!
//! Run with `cargo run -p tao-bench --bin fig4_error_vs_depth`.

use tao_bench::{bert_workload, print_table, qwen_workload, resnet_workload, sci, Workload};

fn report(w: &Workload) {
    let record = &w.deployment.calibration;
    let n_ops = w.model().graph.len() as f64;
    // Bin operators into ten normalized-depth deciles and average.
    let mut bins = [(0.0f64, 0u64); 10];
    for &node in &record.nodes {
        let pos = node.0 as f64 / n_ops;
        let bin = ((pos * 10.0) as usize).min(9);
        bins[bin].0 += record.mean_abs[&node];
        bins[bin].1 += 1;
    }
    let rows: Vec<Vec<String>> = bins
        .iter()
        .enumerate()
        .filter(|(_, (_, c))| *c > 0)
        .map(|(i, (sum, count))| {
            vec![
                format!("{:.1}-{:.1}", i as f64 / 10.0, (i + 1) as f64 / 10.0),
                sci(sum / *count as f64),
                count.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 4 — {}: mean empirical error vs normalized depth",
            w.paper_name
        ),
        &["depth bin", "mean abs error", "#ops"],
        &rows,
    );
    // Flatness statistic: max/min ratio of nonzero bins.
    let nonzero: Vec<f64> = bins
        .iter()
        .filter(|(_, c)| *c > 0)
        .map(|(s, c)| s / *c as f64)
        .filter(|&v| v > 0.0)
        .collect();
    if let (Some(max), Some(min)) = (
        nonzero.iter().cloned().reduce(f64::max),
        nonzero
            .iter()
            .cloned()
            .filter(|&v| v > 0.0)
            .reduce(f64::min),
    ) {
        println!(
            "depth-profile max/min ratio: {:.1} (flat profiles stay within ~2 decades)",
            max / min
        );
    }
}

fn main() {
    let n = 6 * tao_bench::scale();
    for w in [
        bert_workload(n, 0),
        qwen_workload(n, 0),
        resnet_workload(n, 0),
    ] {
        report(&w);
    }
    println!(
        "\nExpected shape: profiles essentially flat (typical magnitudes 1e-6..1e-5)\n\
         with localized spikes; no systematic error accumulation with depth."
    );
}
