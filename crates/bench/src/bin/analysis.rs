//! Static-analysis differential bench: the cost of quoting a claim
//! without executing it, and the drift between the quote and the measured
//! execution — which the oracle contract pins to zero.
//!
//! For every bundled model the bin times [`tao_analysis::analyze`]
//! (contract folding, no kernels) against `execute_with_stats` (the real
//! forward pass), then asserts the drift floor: static FLOPs and peak
//! resident bytes equal the measured values *exactly*, and the pooled
//! executor's working set never exceeds the static peak (which models
//! keep-everything).
//!
//! Run with `cargo run --release -p tao-bench --bin analysis`. Pass
//! `--smoke` for the seconds-scale CI variant. Set `CRITERION_CSV=<path>`
//! to append figure-ready CSV rows.

use std::io::Write as _;
use std::time::Instant;

use tao_analysis::analyze;
use tao_bench::print_table;
use tao_graph::{execute_with_stats, forward_with_stats, BufferPool};
use tao_models::{
    bert, data, diffusion, qwen, resnet, transformer, BertConfig, DiffusionConfig, Model,
    QwenConfig, ResNetConfig, TransformerConfig,
};
use tao_tensor::{KernelConfig, Tensor};

fn export_csv(id: &str, secs: f64, units: u64) {
    let Ok(path) = std::env::var("CRITERION_CSV") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let exists = std::path::Path::new(&path).exists();
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("analysis: CSV export to {path} failed to open");
        return;
    };
    if !exists {
        let _ = writeln!(
            file,
            "id,samples,min_ns,mean_ns,median_ns,stddev_ns,throughput_unit,throughput_per_iter,outliers_rejected"
        );
    }
    let ns = (secs * 1e9) as u128;
    let _ = writeln!(file, "{},1,{ns},{ns},{ns},0,elements,{units},0", id.replace(',', ";"));
}

fn bundled(name: &str) -> (Model, Vec<Tensor<f32>>) {
    match name {
        "transformer" => {
            let cfg = TransformerConfig::small();
            (
                transformer::build(cfg, 1),
                vec![transformer::sample_ids(cfg, 42)],
            )
        }
        "bert" => {
            let cfg = BertConfig::small();
            (bert::build(cfg, 1), vec![bert::sample_ids(cfg, 42)])
        }
        "qwen" => {
            let cfg = QwenConfig::small();
            (qwen::build(cfg, 1), vec![qwen::sample_ids(cfg, 42)])
        }
        "resnet" => {
            let cfg = ResNetConfig::small();
            (
                resnet::build(cfg, 1),
                vec![data::class_image(cfg.in_channels, cfg.image, 3, 42)],
            )
        }
        "diffusion" => {
            let cfg = DiffusionConfig::small();
            let model = diffusion::build(cfg, 1);
            let latent = Tensor::<f32>::randn(&model.input_shapes[0], 42);
            let temb = diffusion::time_embedding(5, cfg.temb);
            (model, vec![latent, temb])
        }
        other => panic!("unknown bundled model {other:?}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 5 };
    let cfg = KernelConfig::reference();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for name in ["transformer", "bert", "qwen", "resnet", "diffusion"] {
        let (model, inputs) = bundled(name);
        let shapes: Vec<Vec<usize>> = inputs.iter().map(|t| t.dims().to_vec()).collect();

        // Static quote: contract folding only, no kernels.
        let t0 = Instant::now();
        let mut report = analyze(&model.graph, &shapes);
        for _ in 1..reps {
            report = analyze(&model.graph, &shapes);
        }
        let static_secs = t0.elapsed().as_secs_f64() / reps as f64;

        // Measured execution: the trace executor with its cost ledger.
        let t0 = Instant::now();
        let (mut exec, mut stats) =
            execute_with_stats(&model.graph, &inputs, &cfg, None).expect("forward");
        for _ in 1..reps {
            (exec, stats) = execute_with_stats(&model.graph, &inputs, &cfg, None).expect("forward");
        }
        let exec_secs = t0.elapsed().as_secs_f64() / reps as f64;

        // Pooled executor working set for the peak comparison.
        let mut pool = BufferPool::new();
        let _ = forward_with_stats(&model.graph, &inputs, &cfg, &mut pool).expect("pooled");
        let (_, pooled) = forward_with_stats(&model.graph, &inputs, &cfg, &mut pool).expect("pooled");

        // Drift floor: the quote IS the measurement.
        let measured_flops: u64 = exec.flops.iter().sum();
        assert_eq!(
            report.total_flops(),
            measured_flops,
            "{name}: static FLOPs drifted from measured"
        );
        assert_eq!(
            report.flops, exec.flops,
            "{name}: per-node FLOP ledger drifted"
        );
        assert_eq!(
            report.peak_resident_bytes, stats.peak_resident_bytes,
            "{name}: static peak drifted from the trace executor"
        );
        assert!(
            pooled.peak_resident_bytes <= report.peak_resident_bytes,
            "{name}: pooled working set {} exceeds the static keep-everything peak {}",
            pooled.peak_resident_bytes,
            report.peak_resident_bytes
        );
        assert!(report.is_admissible(), "{name}: bundled model must admit");

        export_csv(&format!("analysis/static/{name}"), static_secs, measured_flops);
        export_csv(&format!("analysis/measured/{name}"), exec_secs, measured_flops);
        rows.push(vec![
            name.into(),
            format!("{measured_flops}"),
            format!("{}", report.gas_quote),
            format!("{}", report.peak_resident_bytes),
            format!("{}", pooled.peak_resident_bytes),
            format!("{:.1}", static_secs * 1e6),
            format!("{:.2}", exec_secs * 1e3),
            format!("{:.0}x", exec_secs / static_secs.max(1e-9)),
        ]);
    }

    print_table(
        &format!(
            "Static quote vs measured execution — {} reps per model, zero drift asserted",
            reps
        ),
        &[
            "model",
            "flops",
            "gas quote",
            "static peak B",
            "pooled peak B",
            "analyze us",
            "execute ms",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nDrift floor held on all models: static FLOPs/peak equal measured exactly; \
         pooled working set <= static peak."
    );
}
