//! §5.5 reproduction: the economic feasibility region for the slash amount
//! `S_slash` under parameter sweeps of the detection knobs `(φ, φ_ch)` and
//! the error rates `(ε₁, ε₂)`.
//!
//! Run with `cargo run -p tao-bench --bin econ_feasibility`.

use tao_bench::print_table;
use tao_protocol::EconParams;

fn region_row(label: String, p: &EconParams) -> Vec<String> {
    match p.feasible_slash_region() {
        Some((lo, hi)) => {
            let s = (lo + hi) / 2.0;
            vec![
                label,
                format!("({lo:.1}, {hi:.1}]"),
                format!("{:.2}", p.u_proposer_honest(s) - p.u_proposer_cheap(s)),
                format!("{:.2}", p.u_challenger_guilty(s)),
                format!("{:.2}", p.u_committee_guilty(s)),
            ]
        }
        None => vec![label, "EMPTY".into(), "-".into(), "-".into(), "-".into()],
    }
}

fn main() {
    let base = EconParams::default_market();
    let mut rows = vec![region_row("baseline".into(), &base)];
    for phi in [0.0, 0.02, 0.10, 0.25] {
        let p = EconParams { phi, ..base };
        rows.push(region_row(format!("phi={phi}"), &p));
    }
    for eps1 in [0.0, 0.2, 0.5, 0.9] {
        let p = EconParams { eps1, ..base };
        rows.push(region_row(format!("eps1={eps1}"), &p));
    }
    for eps2 in [0.0, 0.05, 0.14] {
        let p = EconParams { eps2, ..base };
        rows.push(region_row(format!("eps2={eps2}"), &p));
    }
    for d_p in [50.0, 150.0, 500.0] {
        let p = EconParams { d_p, ..base };
        rows.push(region_row(format!("D_p={d_p}"), &p));
    }
    print_table(
        "§5.5 — feasible S_slash region (L, D_p] under parameter sweeps",
        &[
            "parameters",
            "region",
            "honest - cheat",
            "u_ch(guilty)",
            "u_cm(guilty)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the region is nonempty for moderate detection\n\
         probability and shrinks to empty as phi+phi_ch -> eps2, as eps1 -> 1,\n\
         or as the proposer deposit falls below L."
    );
}
