//! Table 2 reproduction: bucketed attack outcomes under threshold scaling
//! — ASR (%), mean Δm_fail (δ_fail) per margin bucket, and the honest-run
//! false-positive rate.
//!
//! Run with `cargo run --release -p tao-bench --bin table2_attacks`
//! (the attack sweep is compute-heavy; `TAO_BENCH_SCALE` scales samples).

use tao_attack::ProjectionKind;
use tao_bench::attacks::{false_positives, sweep, SETTINGS};
use tao_bench::{bert_workload, print_table, qwen_workload, resnet_workload, Workload};

/// Diagnostic rows: the attack window must open monotonically as the
/// theoretical bounds are loosened. The paper's nonzero ASR for Qwen3-8B
/// under worst-case bounds arises at production scale, where the total
/// admissible budget (elements x τ) is ~1e5x larger than at laptop scale;
/// these rows show where our models' windows open.
const DIAGNOSTIC: [tao_bench::attacks::Setting; 2] = [
    tao_bench::attacks::Setting {
        label: "Theo x1e2(d) diag",
        kind: ProjectionKind::TheoreticalDeterministic,
        scale: 1e2,
    },
    tao_bench::attacks::Setting {
        label: "Theo x1e4(d) diag",
        kind: ProjectionKind::TheoreticalDeterministic,
        scale: 1e4,
    },
];

fn report(w: &Workload, max_iters: usize) {
    let mut rows = Vec::new();
    for setting in SETTINGS.into_iter().chain(DIAGNOSTIC) {
        let (row, _) = sweep(w, setting, max_iters);
        let fp = if matches!(setting.kind, ProjectionKind::Empirical) {
            let (fp, total) = false_positives(w, setting.scale);
            format!(
                "{:.0}% ({fp}/{total})",
                if total > 0 {
                    100.0 * fp as f64 / total as f64
                } else {
                    0.0
                }
            )
        } else {
            "-".to_string()
        };
        let mut cells = vec![setting.label.to_string()];
        for b in &row.buckets {
            cells.push(format!(
                "{:.1}% {:.2}({:.1}%)",
                b.asr(),
                b.mean_delta_m_fail(),
                100.0 * b.mean_delta_rel_fail()
            ));
        }
        cells.push(fp);
        rows.push(cells);
    }
    print_table(
        &format!(
            "Table 2 — {} bucketed attack outcomes (ASR, Δm_fail(δ_fail))",
            w.paper_name
        ),
        &[
            "bound x scale",
            "0-20%",
            "20-40%",
            "40-60%",
            "60-80%",
            "80-100%",
            "FP",
        ],
        &rows,
    );
}

fn main() {
    let s = tao_bench::scale();
    let iters = 60 * s;
    for w in [
        bert_workload(6, 3 * s),
        resnet_workload(6, 3 * s),
        qwen_workload(6, 3 * s),
    ] {
        report(&w, iters);
    }
    println!(
        "\nExpected shape: empirical thresholds hold 0% ASR at every α with tiny\n\
         failed-attack progress and 0% false positives; deterministic theoretical\n\
         bounds leave the largest attack window, probabilistic ones a small one\n\
         (nonzero mainly for the LLM-style decoder)."
    );
}
