//! Fig. 5 reproduction: distribution of the normalized margin change
//! `δ = Δm / m₀` on failed attacks at α = 1 (boxplot summary statistics).
//!
//! Run with `cargo run --release -p tao-bench --bin fig5_margin_change`.

use tao_attack::ProjectionKind;
use tao_bench::attacks::{sweep, Setting};
use tao_bench::{bert_workload, print_table, qwen_workload, resnet_workload, Workload};
use tao_calib::percentile;

fn boxplot(w: &Workload, label: &str, kind: ProjectionKind, iters: usize) -> Vec<String> {
    let (_, raw) = sweep(
        w,
        Setting {
            label: "fig5",
            kind,
            scale: 1.0,
        },
        iters,
    );
    let fails: Vec<f64> = raw
        .iter()
        .filter(|r| !r.success)
        .map(|r| r.delta_rel.clamp(0.0, 1.0))
        .collect();
    let q = |p: f64| percentile(&fails, p);
    vec![
        format!("{} {}", w.paper_name, label),
        fails.len().to_string(),
        format!("{:.3}", q(25.0)),
        format!("{:.3}", q(50.0)),
        format!("{:.3}", q(75.0)),
        format!("{:.3}", q(95.0)),
    ]
}

fn main() {
    let s = tao_bench::scale();
    let iters = 60 * s;
    let mut rows = Vec::new();
    for w in [
        bert_workload(6, 3 * s),
        qwen_workload(6, 3 * s),
        resnet_workload(6, 3 * s),
    ] {
        rows.push(boxplot(&w, "Emp", ProjectionKind::Empirical, iters));
        rows.push(boxplot(
            &w,
            "Theo(p)",
            ProjectionKind::TheoreticalProbabilistic,
            iters,
        ));
    }
    print_table(
        "Fig. 5 — normalized margin change on failed attacks (α = 1)",
        &["model / bound", "n(fail)", "q25", "median", "q75", "q95"],
        &rows,
    );
    println!(
        "\nExpected shape: empirical-threshold distributions concentrate near zero\n\
         (almost no progress towards a flip); theoretical(p) distributions show\n\
         visibly heavier tails, most pronounced for the LLM-style decoder."
    );
}
