//! §6.3 reproduction: software-determinism overhead on the Qwen-style
//! model — execution latency with determinism flags (fixed kernel
//! selection) vs the free autotuning configuration.
//!
//! Run with `cargo run --release -p tao-bench --bin overhead_determinism`.

use std::time::Instant;

use tao_bench::{print_table, qwen_workload};
use tao_device::Device;
use tao_graph::execute;

fn time_runs(dev: &Device, w: &tao_bench::Workload, reps: usize) -> f64 {
    let graph = &w.deployment.model.graph;
    let mut total = 0.0;
    for input in &w.test_inputs {
        for _ in 0..reps {
            let start = Instant::now();
            let _ = execute(graph, input, dev.config(), None).expect("forward");
            total += start.elapsed().as_secs_f64();
        }
    }
    total
}

fn main() {
    let reps = 20 * tao_bench::scale();
    let w = qwen_workload(3, 5);
    let det = Device::rtx4090_like();
    let free = Device::rtx4090_like().with_autotune();

    // Warm up.
    let _ = time_runs(&det, &w, 2);
    let t_det = time_runs(&det, &w, reps);
    let t_free = time_runs(&free, &w, reps);
    let measured = 100.0 * (t_det / t_free - 1.0);
    let modeled = 100.0 * (det.latency_model(1_000_000) / free.latency_model(1_000_000) - 1.0);

    print_table(
        "§6.3 — deterministic-execution overhead (Qwen-style)",
        &["configuration", "total latency", "overhead"],
        &[
            vec![
                "autotune (free)".into(),
                format!("{:.1}ms", 1e3 * t_free),
                "-".into(),
            ],
            vec![
                "deterministic flags".into(),
                format!("{:.1}ms", 1e3 * t_det),
                format!("{measured:+.2}% measured / {modeled:+.2}% modeled"),
            ],
        ],
    );
    println!(
        "\nExpected shape: the determinism flags cost well under 1% latency\n\
         (the paper measures 0.3% on Qwen3-8B; our device model charges 0.3%)."
    );
}
