//! Kernel microbenchmark: blocked/packed/register-tiled hot paths vs the
//! in-tree scalar oracle kernels, per `KernelConfig`, in the same
//! table format the fig8/table3 binaries use.
//!
//! Every timed pair is also bit-compared, so this doubles as a fast
//! end-to-end regression check of the kernel-equivalence contract
//! (`cargo test --test kernel_equiv` is the exhaustive version).
//!
//! Run with `cargo run --release -p tao-bench --bin kernel_microbench`.
//! Pass `--smoke` for a seconds-scale CI variant (small shapes, few
//! samples, no speedup floor asserted). Set `CRITERION_CSV=<path>` to
//! export figure-ready per-sample statistics via the criterion stub's CSV
//! writer (`cargo bench -p tao-bench` honors the same variable).
//!
//! The headline number — single-thread 256x256 f32 matmul speedup over the
//! seed scalar loop under the reference config — is recorded in BENCH.md
//! and asserted ≥ 4x here (outside smoke mode).

use std::time::Instant;

use tao_bench::print_table;
use tao_tensor::kernel::{gemm, PackedRhs};
use tao_tensor::{AccumMode, Conv2dParams, KernelConfig, MathLib, Tensor};

/// Median wall-clock seconds of `samples` runs of `f` (one warm-up run).
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(f64::total_cmp);
    times[times.len() / 2]
}

fn assert_bits_eq(fast: &[f32], slow: &[f32], what: &str) {
    assert_eq!(fast.len(), slow.len(), "{what}: length");
    for (i, (f, s)) in fast.iter().zip(slow).enumerate() {
        assert!(
            f.to_bits() == s.to_bits(),
            "{what}: element {i}: blocked {f:e} != oracle {s:e}"
        );
    }
}

fn fleet_configs() -> Vec<(&'static str, KernelConfig)> {
    vec![
        ("reference (seq, no fma)", KernelConfig::reference()),
        (
            "seq + fma",
            KernelConfig {
                accum: AccumMode::Sequential,
                fma: true,
                math: MathLib::Reference,
            },
        ),
        (
            "blocked(32) + fma (4090-like)",
            KernelConfig {
                accum: AccumMode::Blocked(32),
                fma: true,
                math: MathLib::VariantA,
            },
        ),
        (
            "pairwise + fma (a100-like)",
            KernelConfig {
                accum: AccumMode::Pairwise,
                fma: true,
                math: MathLib::VariantA,
            },
        ),
        (
            "kahan",
            KernelConfig {
                accum: AccumMode::Kahan,
                fma: false,
                math: MathLib::Reference,
            },
        ),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, samples) = if smoke { (64, 3) } else { (256, 9) };

    // --- matmul: the acceptance benchmark -------------------------------
    let a = Tensor::<f32>::rand_uniform(&[dim, dim], -1.0, 1.0, 1);
    let b = Tensor::<f32>::rand_uniform(&[dim, dim], -1.0, 1.0, 2);
    let mut rows = Vec::new();
    let mut reference_cfg_speedup = 0.0;
    for (name, cfg) in fleet_configs() {
        let t_oracle = median_secs(samples, || a.matmul_reference(&b, &cfg).unwrap());
        let packed = PackedRhs::from_row_major(b.data(), dim, dim);
        let t_st = median_secs(samples, || gemm(&cfg, a.data(), dim, &packed, 1));
        let t_auto = median_secs(samples, || a.matmul(&b, &cfg).unwrap());
        let oracle = a.matmul_reference(&b, &cfg).unwrap();
        assert_bits_eq(
            &gemm(&cfg, a.data(), dim, &packed, 1),
            oracle.data(),
            &format!("matmul st {name}"),
        );
        assert_bits_eq(
            a.matmul(&b, &cfg).unwrap().data(),
            oracle.data(),
            &format!("matmul auto {name}"),
        );
        let st_speedup = t_oracle / t_st;
        if name.starts_with("reference") {
            reference_cfg_speedup = st_speedup;
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.2}ms", 1e3 * t_oracle),
            format!("{:.2}ms", 1e3 * t_st),
            format!("{st_speedup:.2}x"),
            format!("{:.2}ms", 1e3 * t_auto),
            format!("{:.2}x", t_oracle / t_auto),
        ]);
    }
    print_table(
        &format!("Kernel microbench — f32 matmul {dim}x{dim}x{dim}, blocked vs seed scalar oracle"),
        &[
            "kernel config",
            "seed scalar",
            "blocked 1-thread",
            "speedup",
            "blocked auto-threads",
            "speedup",
        ],
        &rows,
    );

    // --- multi-thread speed check ----------------------------------------
    // The row-band threading is bit-identical at every worker count
    // (kernel_equiv proves that); this guards its *speed*: auto-threads
    // must never regress below 0.9x the single-thread path. The reference
    // container is single-core, so the check skips there (with a notice)
    // and bites on multi-core hosts, where a row-band scheduling
    // regression would otherwise go unnoticed.
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if avail == 1 {
        println!(
            "\nThreaded-speedup check skipped: available_parallelism() == 1 on this host\n\
             (the row-band path is still bit-compared above; only its speed is unmeasurable here)."
        );
    } else {
        let cfg = KernelConfig::reference();
        let packed = PackedRhs::from_row_major(b.data(), dim, dim);
        let auto = tao_tensor::kernel::auto_threads((dim * dim * dim) as u64);
        let t_st = median_secs(samples, || gemm(&cfg, a.data(), dim, &packed, 1));
        let t_auto = median_secs(samples, || gemm(&cfg, a.data(), dim, &packed, auto));
        let ratio = t_st / t_auto;
        println!(
            "\nThreaded speedup — {dim}x{dim}x{dim} matmul, {auto} auto-threads on {avail} cores: \
             {ratio:.2}x vs single-thread"
        );
        if smoke {
            println!("(smoke mode: 0.9x threaded floor not asserted)");
        } else {
            assert!(
                ratio >= 0.9,
                "blocked auto-threads ({auto} workers) ran at {ratio:.2}x single-thread, \
                 below the 0.9x floor — row-band threading regressed"
            );
        }
    }

    // --- conv2d + norms: the other rewired hot paths --------------------
    let (c, hw) = if smoke { (4, 8) } else { (8, 16) };
    let x = Tensor::<f32>::rand_uniform(&[1, c, hw, hw], -1.0, 1.0, 3);
    let w = Tensor::<f32>::rand_uniform(&[c, c, 3, 3], -0.3, 0.3, 4);
    let params = Conv2dParams {
        stride: 1,
        padding: 1,
    };
    let lanes = if smoke { 32 } else { 256 };
    let t = Tensor::<f32>::rand_uniform(&[lanes, lanes], -3.0, 3.0, 5);
    let gamma = Tensor::<f32>::ones(&[lanes]);
    let beta = Tensor::<f32>::zeros(&[lanes]);
    let mut rows = Vec::new();
    for (name, cfg) in fleet_configs() {
        let t_conv_ref = median_secs(samples, || {
            x.conv2d_reference(&w, None, params, &cfg).unwrap()
        });
        let t_conv = median_secs(samples, || x.conv2d(&w, None, params, &cfg).unwrap());
        assert_bits_eq(
            x.conv2d(&w, None, params, &cfg).unwrap().data(),
            x.conv2d_reference(&w, None, params, &cfg).unwrap().data(),
            &format!("conv2d {name}"),
        );
        let t_sm_ref = median_secs(samples, || t.softmax_last_reference(&cfg).unwrap());
        let t_sm = median_secs(samples, || t.softmax_last(&cfg).unwrap());
        let t_ln_ref = median_secs(samples, || {
            t.layer_norm_reference(&gamma, &beta, 1e-5, &cfg).unwrap()
        });
        let t_ln = median_secs(samples, || t.layer_norm(&gamma, &beta, 1e-5, &cfg).unwrap());
        rows.push(vec![
            name.to_string(),
            format!("{:.2}x", t_conv_ref / t_conv),
            format!("{:.2}x", t_sm_ref / t_sm),
            format!("{:.2}x", t_ln_ref / t_ln),
        ]);
    }
    print_table(
        &format!(
            "Kernel microbench — conv2d {c}x{hw}x{hw} k3, softmax/layer_norm {lanes}x{lanes}: blocked-vs-oracle speedups"
        ),
        &["kernel config", "conv2d", "softmax", "layer_norm"],
        &rows,
    );

    println!(
        "\nAll timed pairs bit-compared against the scalar oracles: OK.\n\
         Reference-config single-thread matmul speedup: {reference_cfg_speedup:.2}x"
    );
    if smoke {
        println!("(smoke mode: speedup floor not asserted)");
    } else {
        assert!(
            reference_cfg_speedup >= 4.0,
            "single-thread 256x256 matmul speedup {reference_cfg_speedup:.2}x fell below the 4x floor"
        );
    }
}
