//! Kernel microbenchmark: blocked/packed/register-tiled hot paths vs the
//! in-tree scalar oracle kernels, per `KernelConfig`, in the same
//! table format the fig8/table3 binaries use.
//!
//! Every timed pair is also bit-compared, so this doubles as a fast
//! end-to-end regression check of the kernel-equivalence contract
//! (`cargo test --test kernel_equiv` is the exhaustive version).
//!
//! Run with `cargo run --release -p tao-bench --bin kernel_microbench`.
//! Pass `--smoke` for a seconds-scale CI variant (small shapes, few
//! samples, no speedup floor asserted). Set `CRITERION_CSV=<path>` to
//! export figure-ready per-sample statistics via the criterion stub's CSV
//! writer (`cargo bench -p tao-bench` honors the same variable).
//!
//! The headline number — single-thread 256x256 f32 matmul speedup over the
//! seed scalar loop under the reference config — is recorded in BENCH.md
//! and asserted ≥ 4x here (outside smoke mode).

use std::io::Write as _;
use std::time::Instant;

use tao_bench::print_table;
use tao_tensor::kernel::{gemm, gemm_into, gemm_packed_into, PackedLhs, PackedRhs};
use tao_tensor::quant::{quant_gemm_into, quant_gemm_reference, quantize_symmetric};
use tao_tensor::{AccumMode, Conv2dParams, KernelConfig, MathLib, Tensor};

/// Median wall-clock seconds of `samples` runs of `f` (one warm-up run).
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(f64::total_cmp);
    times[times.len() / 2]
}

fn assert_bits_eq(fast: &[f32], slow: &[f32], what: &str) {
    assert_eq!(fast.len(), slow.len(), "{what}: length");
    for (i, (f, s)) in fast.iter().zip(slow).enumerate() {
        assert!(
            f.to_bits() == s.to_bits(),
            "{what}: element {i}: blocked {f:e} != oracle {s:e}"
        );
    }
}

/// Appends one row in the criterion stub's CSV schema when
/// `CRITERION_CSV` is set.
fn export_csv(id: &str, secs: f64, flops: u64) {
    let Ok(path) = std::env::var("CRITERION_CSV") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let exists = std::path::Path::new(&path).exists();
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    let Ok(mut file) = file else {
        eprintln!("kernel_microbench: CSV export to {path} failed to open");
        return;
    };
    if !exists {
        let _ = writeln!(
            file,
            "id,samples,min_ns,mean_ns,median_ns,stddev_ns,throughput_unit,throughput_per_iter,outliers_rejected"
        );
    }
    let ns = (secs * 1e9) as u128;
    let _ = writeln!(
        file,
        "{},1,{ns},{ns},{ns},0,flops,{flops},0",
        id.replace(',', ";")
    );
}

fn fleet_configs() -> Vec<(&'static str, KernelConfig)> {
    vec![
        ("reference (seq, no fma)", KernelConfig::reference()),
        (
            "seq + fma",
            KernelConfig {
                accum: AccumMode::Sequential,
                fma: true,
                math: MathLib::Reference,
            },
        ),
        (
            "blocked(32) + fma (4090-like)",
            KernelConfig {
                accum: AccumMode::Blocked(32),
                fma: true,
                math: MathLib::VariantA,
            },
        ),
        (
            "pairwise + fma (a100-like)",
            KernelConfig {
                accum: AccumMode::Pairwise,
                fma: true,
                math: MathLib::VariantA,
            },
        ),
        (
            "kahan",
            KernelConfig {
                accum: AccumMode::Kahan,
                fma: false,
                math: MathLib::Reference,
            },
        ),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (dim, samples) = if smoke { (64, 3) } else { (256, 9) };

    // --- matmul: the acceptance benchmark -------------------------------
    let a = Tensor::<f32>::rand_uniform(&[dim, dim], -1.0, 1.0, 1);
    let b = Tensor::<f32>::rand_uniform(&[dim, dim], -1.0, 1.0, 2);
    let mut rows = Vec::new();
    let mut reference_cfg_speedup = 0.0;
    for (name, cfg) in fleet_configs() {
        let t_oracle = median_secs(samples, || a.matmul_reference(&b, &cfg).unwrap());
        let packed = PackedRhs::from_row_major(b.data(), dim, dim);
        let t_st = median_secs(samples, || gemm(&cfg, a.data(), dim, &packed, 1));
        let t_auto = median_secs(samples, || a.matmul(&b, &cfg).unwrap());
        let oracle = a.matmul_reference(&b, &cfg).unwrap();
        assert_bits_eq(
            &gemm(&cfg, a.data(), dim, &packed, 1),
            oracle.data(),
            &format!("matmul st {name}"),
        );
        assert_bits_eq(
            a.matmul(&b, &cfg).unwrap().data(),
            oracle.data(),
            &format!("matmul auto {name}"),
        );
        let st_speedup = t_oracle / t_st;
        if name.starts_with("reference") {
            reference_cfg_speedup = st_speedup;
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.2}ms", 1e3 * t_oracle),
            format!("{:.2}ms", 1e3 * t_st),
            format!("{st_speedup:.2}x"),
            format!("{:.2}ms", 1e3 * t_auto),
            format!("{:.2}x", t_oracle / t_auto),
        ]);
    }
    print_table(
        &format!("Kernel microbench — f32 matmul {dim}x{dim}x{dim}, blocked vs seed scalar oracle"),
        &[
            "kernel config",
            "seed scalar",
            "blocked 1-thread",
            "speedup",
            "blocked auto-threads",
            "speedup",
        ],
        &rows,
    );

    // --- multi-thread speed check ----------------------------------------
    // The row-band threading is bit-identical at every worker count
    // (kernel_equiv proves that); this guards its *speed*: auto-threads
    // must never regress below 0.9x the single-thread path. The reference
    // container is single-core, so the check skips there (with a notice)
    // and bites on multi-core hosts, where a row-band scheduling
    // regression would otherwise go unnoticed.
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if avail == 1 {
        println!(
            "\nThreaded-speedup check skipped: available_parallelism() == 1 on this host\n\
             (the row-band path is still bit-compared above; only its speed is unmeasurable here)."
        );
    } else {
        let cfg = KernelConfig::reference();
        let packed = PackedRhs::from_row_major(b.data(), dim, dim);
        let auto = tao_tensor::kernel::auto_threads((dim * dim * dim) as u64);
        let t_st = median_secs(samples, || gemm(&cfg, a.data(), dim, &packed, 1));
        let t_auto = median_secs(samples, || gemm(&cfg, a.data(), dim, &packed, auto));
        let ratio = t_st / t_auto;
        println!(
            "\nThreaded speedup — {dim}x{dim}x{dim} matmul, {auto} auto-threads on {avail} cores: \
             {ratio:.2}x vs single-thread"
        );
        if smoke {
            println!("(smoke mode: 0.9x threaded floor not asserted)");
        } else {
            assert!(
                ratio >= 0.9,
                "blocked auto-threads ({auto} workers) ran at {ratio:.2}x single-thread, \
                 below the 0.9x floor — row-band threading regressed"
            );
        }
    }

    // --- conv2d + norms: the other rewired hot paths --------------------
    let (c, hw) = if smoke { (4, 8) } else { (8, 16) };
    let x = Tensor::<f32>::rand_uniform(&[1, c, hw, hw], -1.0, 1.0, 3);
    let w = Tensor::<f32>::rand_uniform(&[c, c, 3, 3], -0.3, 0.3, 4);
    let params = Conv2dParams {
        stride: 1,
        padding: 1,
    };
    let lanes = if smoke { 32 } else { 256 };
    let t = Tensor::<f32>::rand_uniform(&[lanes, lanes], -3.0, 3.0, 5);
    let gamma = Tensor::<f32>::ones(&[lanes]);
    let beta = Tensor::<f32>::zeros(&[lanes]);
    let mut rows = Vec::new();
    for (name, cfg) in fleet_configs() {
        let t_conv_ref = median_secs(samples, || {
            x.conv2d_reference(&w, None, params, &cfg).unwrap()
        });
        let t_conv = median_secs(samples, || x.conv2d(&w, None, params, &cfg).unwrap());
        assert_bits_eq(
            x.conv2d(&w, None, params, &cfg).unwrap().data(),
            x.conv2d_reference(&w, None, params, &cfg).unwrap().data(),
            &format!("conv2d {name}"),
        );
        let t_sm_ref = median_secs(samples, || t.softmax_last_reference(&cfg).unwrap());
        let t_sm = median_secs(samples, || t.softmax_last(&cfg).unwrap());
        let t_ln_ref = median_secs(samples, || {
            t.layer_norm_reference(&gamma, &beta, 1e-5, &cfg).unwrap()
        });
        let t_ln = median_secs(samples, || t.layer_norm(&gamma, &beta, 1e-5, &cfg).unwrap());
        rows.push(vec![
            name.to_string(),
            format!("{:.2}x", t_conv_ref / t_conv),
            format!("{:.2}x", t_sm_ref / t_sm),
            format!("{:.2}x", t_ln_ref / t_ln),
        ]);
    }
    print_table(
        &format!(
            "Kernel microbench — conv2d {c}x{hw}x{hw} k3, softmax/layer_norm {lanes}x{lanes}: blocked-vs-oracle speedups"
        ),
        &["kernel config", "conv2d", "softmax", "layer_norm"],
        &rows,
    );

    // --- int8 quantized GEMM vs the blocked f32 hot path -----------------
    // The quantized kernel family's acceptance row: the AVX2 int8 GEMM
    // (bit-identical to the scalar int8 oracle) must beat the *fast*
    // blocked f32 path, not just the seed loop. Floor: ≥ 2x at 256³ on
    // AVX2 hosts, asserted outside smoke mode.
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    let avx2 = false;
    let qa_f = Tensor::<f32>::rand_uniform(&[dim, dim], -2.0, 2.0, 6);
    let qb_f = Tensor::<f32>::rand_uniform(&[dim, dim], -2.0, 2.0, 7);
    let (qa, _) = quantize_symmetric(qa_f.data());
    let (qb, _) = quantize_symmetric(qb_f.data());
    let qrhs = PackedRhs::<i8>::from_row_major(&qb, dim, dim);
    let f32_cfg = KernelConfig {
        accum: AccumMode::Blocked(32),
        fma: true,
        math: MathLib::VariantA,
    };
    let f32_rhs = PackedRhs::from_row_major(qb_f.data(), dim, dim);
    let mut fast = vec![0i32; dim * dim];
    quant_gemm_into(&qa, dim, &qrhs, &mut fast, 1);
    assert_eq!(
        fast,
        quant_gemm_reference(&qa, dim, dim, &qb, dim),
        "int8 fast path drifted from the scalar int8 oracle"
    );
    let t_f32_blocked = median_secs(samples, || gemm(&f32_cfg, qa_f.data(), dim, &f32_rhs, 1));
    let t_i8 = median_secs(samples, || {
        quant_gemm_into(&qa, dim, &qrhs, &mut fast, 1);
    });
    let t_i8_oracle = median_secs(samples, || quant_gemm_reference(&qa, dim, dim, &qb, dim));
    let gemm_flops = 2 * (dim as u64).pow(3);
    export_csv(&format!("int8_gemm_{dim}"), t_i8, gemm_flops);
    export_csv(&format!("int8_gemm_oracle_{dim}"), t_i8_oracle, gemm_flops);
    export_csv(&format!("f32_gemm_blocked_{dim}"), t_f32_blocked, gemm_flops);
    let int8_vs_f32 = t_f32_blocked / t_i8;
    print_table(
        &format!("Kernel microbench — int8 GEMM {dim}x{dim}x{dim} vs blocked f32 (avx2: {avx2})"),
        &[
            "kernel",
            "time",
            "vs blocked f32",
            "vs int8 scalar oracle",
        ],
        &[
            vec![
                "blocked f32 + fma".into(),
                format!("{:.2}ms", 1e3 * t_f32_blocked),
                "1.00x".into(),
                String::new(),
            ],
            vec![
                "int8 scalar oracle".into(),
                format!("{:.2}ms", 1e3 * t_i8_oracle),
                format!("{:.2}x", t_f32_blocked / t_i8_oracle),
                "1.00x".into(),
            ],
            vec![
                "int8 fast path".into(),
                format!("{:.2}ms", 1e3 * t_i8),
                format!("{int8_vs_f32:.2}x"),
                format!("{:.2}x", t_i8_oracle / t_i8),
            ],
        ],
    );
    if smoke {
        println!("(smoke mode: 2x int8-vs-f32 floor not asserted)");
    } else if !avx2 {
        println!("(no AVX2 on this host: 2x int8-vs-f32 floor not asserted)");
    } else {
        assert!(
            int8_vs_f32 >= 2.0,
            "int8 GEMM ran at {int8_vs_f32:.2}x the blocked f32 path, below the 2x floor"
        );
    }

    // --- packed-lhs register blocking, attention-shaped ------------------
    // Batched attention matmuls (scores = Q Kᵀ per head) are where lhs
    // panel packing pays: the MR-row register tile reuses each rhs panel
    // load across 4 output rows. Packing happens inside the timed region,
    // exactly as `matmul_with_buf` pays it. Floor: ≥ 1.2x over the
    // unpacked blocked kernel, asserted outside smoke mode.
    let (heads, seq, hd) = if smoke { (2, 32, 16) } else { (8, 128, 64) };
    let att_cfg = KernelConfig::reference();
    let q_heads: Vec<Tensor<f32>> = (0..heads)
        .map(|h| Tensor::<f32>::rand_uniform(&[seq, hd], -1.0, 1.0, 100 + h as u64))
        .collect();
    let k_rhs: Vec<PackedRhs<f32>> = (0..heads)
        .map(|h| {
            let k = Tensor::<f32>::rand_uniform(&[hd, seq], -1.0, 1.0, 200 + h as u64);
            PackedRhs::from_row_major(k.data(), hd, seq)
        })
        .collect();
    let mut scores = vec![0f32; seq * seq];
    let t_unpacked = median_secs(samples, || {
        for (q, k) in q_heads.iter().zip(&k_rhs) {
            gemm_into(&att_cfg, q.data(), seq, k, &mut scores, 1);
        }
    });
    let t_packed = median_secs(samples, || {
        for (q, k) in q_heads.iter().zip(&k_rhs) {
            let lhs = PackedLhs::from_row_major(q.data(), seq, hd);
            gemm_packed_into(&att_cfg, &lhs, k, &mut scores, 1);
        }
    });
    for (q, k) in q_heads.iter().zip(&k_rhs) {
        let mut unpacked = vec![0f32; seq * seq];
        gemm_into(&att_cfg, q.data(), seq, k, &mut unpacked, 1);
        let lhs = PackedLhs::from_row_major(q.data(), seq, hd);
        gemm_packed_into(&att_cfg, &lhs, k, &mut scores, 1);
        assert_bits_eq(&scores, &unpacked, "packed-lhs attention gemm");
    }
    let att_flops = 2 * (heads * seq * hd * seq) as u64;
    export_csv(&format!("attention_gemm_unpacked_{heads}x{seq}x{hd}"), t_unpacked, att_flops);
    export_csv(&format!("attention_gemm_packed_lhs_{heads}x{seq}x{hd}"), t_packed, att_flops);
    let lhs_speedup = t_unpacked / t_packed;
    print_table(
        &format!(
            "Kernel microbench — attention-shaped batched matmul, {heads} heads x {seq}x{hd}x{seq}"
        ),
        &["kernel", "time", "speedup"],
        &[
            vec![
                "unpacked blocked".into(),
                format!("{:.2}ms", 1e3 * t_unpacked),
                "1.00x".into(),
            ],
            vec![
                "packed-lhs MR tile".into(),
                format!("{:.2}ms", 1e3 * t_packed),
                format!("{lhs_speedup:.2}x"),
            ],
        ],
    );
    if smoke {
        println!("(smoke mode: 1.2x packed-lhs floor not asserted)");
    } else {
        assert!(
            lhs_speedup >= 1.2,
            "packed-lhs attention matmul ran at {lhs_speedup:.2}x unpacked, below the 1.2x floor"
        );
    }

    println!(
        "\nAll timed pairs bit-compared against the scalar oracles: OK.\n\
         Reference-config single-thread matmul speedup: {reference_cfg_speedup:.2}x"
    );
    if smoke {
        println!("(smoke mode: speedup floor not asserted)");
    } else {
        assert!(
            reference_cfg_speedup >= 4.0,
            "single-thread 256x256 matmul speedup {reference_cfg_speedup:.2}x fell below the 4x floor"
        );
    }
}
