//! Adversarial campaign at scale: mixed adversary populations driven
//! through the concurrent scheduler, re-validating the paper's security
//! claims under load and A/B-ing the smoothed-tail threshold estimator
//! against the raw max envelope.
//!
//! Run with `cargo run --release -p tao-bench --bin campaign`. Flags:
//!
//! - `--smoke` — small population, two epochs (the fail-fast CI variant);
//! - `--seed <u64>` — master seed (default 42);
//! - `--epochs <n>` — campaign epochs;
//! - `--workers <n>` — scheduler worker threads (default 8, up to 32+);
//! - `--estimator raw|smoothed` — which tail estimator gets committed
//!   (the other becomes the A/B shadow);
//! - `--csv <path>` — write the per-epoch campaign CSV log there.
//!
//! Set `CRITERION_CSV=<path>` to additionally append a figure-style
//! timing row. The security floors (all planted cheats caught, zero
//! false flags, honest operators in the black, adversaries in the red)
//! are asserted on every run, smoke included — this binary failing IS the
//! regression signal.

use std::io::Write as _;
use std::time::Instant;

use tao_bench::print_table;
use tao_calib::TailEstimator;
use tao_campaign::{Campaign, CampaignConfig};

fn export_criterion_csv(id: &str, secs: f64, claims: u64) {
    let Ok(path) = std::env::var("CRITERION_CSV") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let exists = std::path::Path::new(&path).exists();
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("campaign: CSV export to {path} failed to open");
        return;
    };
    if !exists {
        let _ = writeln!(
            file,
            "id,samples,min_ns,mean_ns,median_ns,stddev_ns,throughput_unit,throughput_per_iter,outliers_rejected"
        );
    }
    let ns = (secs * 1e9) as u128;
    let _ = writeln!(file, "{},1,{ns},{ns},{ns},0,elements,{claims},0", id.replace(',', ";"));
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = parse_flag(&args, "--seed").unwrap_or(42);
    let mut cfg = if smoke {
        CampaignConfig::smoke(seed)
    } else {
        CampaignConfig::new(seed)
    };
    if let Some(epochs) = parse_flag(&args, "--epochs") {
        cfg.epochs = epochs;
    }
    if let Some(workers) = parse_flag(&args, "--workers") {
        cfg.workers = workers;
    }
    match parse_flag::<String>(&args, "--estimator").as_deref() {
        Some("smoothed") => cfg.estimator = TailEstimator::smoothed_default(),
        Some("raw") | None => cfg.estimator = TailEstimator::RawMax,
        Some(other) => {
            eprintln!("campaign: unknown --estimator {other} (want raw|smoothed)");
            std::process::exit(2);
        }
    }

    let t0 = Instant::now();
    let report = Campaign::new(cfg.clone()).run().expect("campaign run");
    let secs = t0.elapsed().as_secs_f64();
    let claims = report.outcomes.len();

    if let Some(path) = parse_flag::<String>(&args, "--csv") {
        std::fs::write(&path, report.to_csv()).expect("campaign CSV write");
        println!("campaign: epoch log written to {path}");
    }
    export_criterion_csv(
        &format!("campaign/workers{}", report.workers),
        secs,
        claims as u64,
    );

    let pop = report.population;
    let nets = report.final_nets;
    let last = report.epochs.last().expect("at least one epoch");
    print_table(
        &format!(
            "Adversarial campaign — seed {}, {} epochs x {} claims, {} workers, committed {} (shadow {})",
            report.seed,
            report.epochs.len(),
            pop.claimants(),
            report.workers,
            report.committed,
            report.shadow,
        ),
        &["metric", "value", "floor"],
        &[
            vec![
                "planted cheats caught".into(),
                format!("{}/{}", report.caught(), report.planted()),
                "all".into(),
            ],
            vec![
                "false flags (honest claims)".into(),
                format!("{}", report.false_flags()),
                "0".into(),
            ],
            vec![
                "admissible PGD flips".into(),
                format!("{}", report.admissible_flips),
                "0".into(),
            ],
            vec![
                "honest coverage raw / smoothed".into(),
                format!("{:.4} / {:.4}", last.cov_raw, last.cov_smoothed),
                "smoothed >= raw".into(),
            ],
            vec![
                "worst honest operator net".into(),
                format!("{:+.2}", report.min_honest_operator_net),
                ">= 0".into(),
            ],
            vec![
                "honest / watchtower net".into(),
                format!("{:+.2} / {:+.2}", nets.honest, nets.watchtower),
                "-".into(),
            ],
            vec![
                "evasion / spam / collusion / griefer net".into(),
                format!(
                    "{:+.2} / {:+.2} / {:+.2} / {:+.2}",
                    nets.evasion, nets.spam, nets.collusion, nets.griefer
                ),
                "all < 0".into(),
            ],
            vec![
                "ledger conservation (micro-credit drift)".into(),
                format!("{}", last.conservation_err_units),
                "== 0".into(),
            ],
            vec![
                "wall clock".into(),
                format!("{secs:.2}s ({:.1} claims/s)", claims as f64 / secs),
                "-".into(),
            ],
        ],
    );

    report.assert_floors();
    println!("\nAll campaign floors hold ({} claims, detection rate {:.2}).",
        claims,
        report.detection_rate()
    );
}
