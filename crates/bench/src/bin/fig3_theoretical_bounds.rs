//! Fig. 3 reproduction: deterministic vs probabilistic theoretical error
//! bounds per operator type (Qwen-style and BERT-style models).
//!
//! The paper reports mean absolute theoretical bounds per operator kind,
//! with probabilistic `γ̃_k(4)` markedly tighter than deterministic `γ_k`
//! — especially for large-reduction operators. Run with
//! `cargo run -p tao-bench --bin fig3_theoretical_bounds`.

use std::collections::BTreeMap;

use tao_bench::{bert_workload, print_table, qwen_workload, sci, Workload};
use tao_bounds::BoundEngine;
use tao_graph::execute;
use tao_tensor::KernelConfig;

fn mean_bounds_per_kind(
    w: &Workload,
    engine: &BoundEngine,
    kinds: &[&str],
) -> BTreeMap<String, (f64, u64)> {
    let mut acc: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    for input in &w.test_inputs {
        let exec =
            execute(&w.model().graph, input, &KernelConfig::reference(), None).expect("forward");
        let bounds = engine.co_execute(&w.model().graph, &exec).expect("bounds");
        for node in w.model().graph.nodes() {
            let kind = node.kind.mnemonic();
            if !kinds.contains(&kind) {
                continue;
            }
            let tau = &bounds[node.id.0];
            let entry = acc.entry(kind.to_string()).or_insert((0.0, 0));
            entry.0 += tau.data().iter().sum::<f64>();
            entry.1 += tau.len() as u64;
        }
    }
    acc
}

fn report(name: &str, w: &Workload, kinds: &[&str]) {
    let det = mean_bounds_per_kind(w, &BoundEngine::deterministic(), kinds);
    let prob = mean_bounds_per_kind(w, &BoundEngine::paper_default(), kinds);
    let rows: Vec<Vec<String>> = kinds
        .iter()
        .filter_map(|&k| {
            let (ds, dn) = det.get(k)?;
            let (ps, pn) = prob.get(k)?;
            let d = ds / *dn as f64;
            let p = ps / *pn as f64;
            Some(vec![
                k.to_string(),
                sci(p),
                sci(d),
                format!("{:.1}x", d / p.max(1e-300)),
            ])
        })
        .collect();
    print_table(
        &format!("Fig. 3 — {name} theoretical error (mean abs bound)"),
        &["operator", "probabilistic", "deterministic", "det/prob"],
        &rows,
    );
}

fn main() {
    let n = 3 * tao_bench::scale();
    let qwen = qwen_workload(3, n);
    let bert = bert_workload(3, n);
    // The paper's Fig. 3 panels: mean/linear/matmul for Qwen,
    // linear/matmul/layer_norm for BERT.
    report("Qwen-8B (sim)", &qwen, &["rms_norm", "linear", "matmul"]);
    report(
        "BERT-large (sim)",
        &bert,
        &["linear", "matmul", "layer_norm"],
    );

    // The paper's regime: the det/prob gap grows like sqrt(k)/4 with the
    // reduction depth, crossing 1 at k = 16. Our laptop-scale attention
    // matmuls sit below the crossover (k = 8); production models sit far
    // above it. Show the pure accumulation-factor ratio across k.
    use tao_bounds::{gamma_det, gamma_prob, U32};
    let rows: Vec<Vec<String>> = [8usize, 16, 64, 1024, 8192]
        .iter()
        .map(|&k| {
            let d = gamma_det(k, U32);
            let p = gamma_prob(k, U32, 4.0);
            vec![k.to_string(), sci(p), sci(d), format!("{:.1}x", d / p)]
        })
        .collect();
    print_table(
        "Fig. 3 (context) — gamma_det / gamma_prob vs reduction depth k",
        &["k", "probabilistic", "deterministic", "det/prob"],
        &rows,
    );
    println!(
        "\nExpected shape: deterministic bounds exceed probabilistic ones for every\n\
         reduction deeper than the k = 16 crossover, with the gap growing like\n\
         sqrt(k)/4 (the paper's models sit at k ~ 1024-8192, ours at k ~ 8-128)."
    );
}
