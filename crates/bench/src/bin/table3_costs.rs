//! Table 3 reproduction: forward vs dispute cost across the four models
//! at N = 2 — forward FLOPs, dispute steps, on-chain kgas, the
//! challenger-FLOP range (DCR) and the cost-ratio range over perturbed
//! operators swept through each model.
//!
//! Run with `cargo run --release -p tao-bench --bin table3_costs`.

use tao_bench::disputes::{run_perturbed_dispute, spread_targets};
use tao_bench::{
    deep_bert_workload, deep_qwen_workload, deep_resnet_workload, diffusion_workload, print_table,
    Workload,
};
use tao_protocol::DisputeResult;

fn row(w: &Workload) -> Vec<String> {
    let input = &w.test_inputs[0];
    let targets = spread_targets(w, 6);
    let mut steps = Vec::new();
    let mut kgas = Vec::new();
    let mut dcr: Vec<f64> = Vec::new();
    let mut ratio: Vec<f64> = Vec::new();
    let mut forward = 0u64;
    for &t in &targets {
        let d = run_perturbed_dispute(w, input, t, 0.05, 2);
        if !matches!(d.outcome.result, DisputeResult::Leaf(_)) {
            continue;
        }
        forward = d.forward_flops;
        steps.push(d.outcome.rounds.len());
        kgas.push(d.outcome.gas.kgas());
        dcr.push(d.outcome.challenger_flops as f64);
        ratio.push(d.outcome.cost_ratio(d.forward_flops));
    }
    let fmin = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let fmax = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    vec![
        w.paper_name.to_string(),
        format!("{:.3}", forward as f64 / 1e9),
        format!(
            "{:.1}",
            steps.iter().sum::<usize>() as f64 / steps.len().max(1) as f64
        ),
        format!("{:.1}", kgas.iter().sum::<f64>() / kgas.len().max(1) as f64),
        format!("[{:.3}, {:.3}]", fmin(&dcr) / 1e9, fmax(&dcr) / 1e9),
        format!("[{:.2}, {:.2}]", fmin(&ratio), fmax(&ratio)),
    ]
}

fn main() {
    let rows: Vec<Vec<String>> = [
        deep_bert_workload(10, 6, 1),
        diffusion_workload(6, 1),
        deep_qwen_workload(10, 6, 1),
        deep_resnet_workload(20, 6, 1),
    ]
    .iter()
    .map(row)
    .collect();
    print_table(
        "Table 3 — forward vs dispute costs (N = 2)",
        &[
            "model",
            "forward GFLOP",
            "dispute steps",
            "kgas",
            "DCR GFLOP",
            "cost ratio",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: dispute steps ~= log2(|V|); gas ~2 Mgas regime scaling\n\
         with steps; cost ratio spans roughly [0.4, 1.25] of a forward pass,\n\
         varying with where compute is concentrated along the canonical order.\n\
         The DCR counts only child re-executions: the challenger's screening\n\
         trace is reused by the dispute, never recomputed."
    );
}
