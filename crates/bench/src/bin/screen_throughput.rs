//! Screening throughput: full `screen_batch` sessions/sec over a deployed
//! model — the always-on verification path a marketplace pays per claim.
//!
//! Times four configurations over one committed deployment:
//! per-claim serial screening (`screen_claim` in a loop), batched
//! screening (`screen_batch`, scoped-thread fan-out), the post-hoc
//! flagged-path cost (screening plus a separate trace-commitment pass over
//! the finished trace), and the overlapped flagged path
//! (`screen_claim_committed`, which streams each node's digest through the
//! forward pass so hashing overlaps compute). Batched and committed
//! results are asserted identical to serial, streamed commitments are
//! asserted bit-identical to the post-hoc oracle, and two conservative
//! floors — batch throughput at least half of serial, and (on multi-core
//! hosts) an overlapped surcharge at most half of the recorded 73.2%
//! post-hoc figure — catch pathological regressions without being
//! sensitive to host speed.
//!
//! Run with `cargo run --release -p tao-bench --bin screen_throughput`.
//! Pass `--smoke` for a seconds-scale CI variant. Set
//! `CRITERION_CSV=<path>` to append figure-ready CSV rows.

use std::io::Write as _;
use std::time::Instant;

use tao_bench::{bert_workload, print_table};
use tao_graph::execute;
use tao_merkle::TraceCommitment;
use tao_protocol::{screen_batch, screen_claim, screen_claim_committed, ClaimCheck};
use tao_tensor::Tensor;

/// Half of the 73.2% post-hoc flagged-path surcharge BENCH.md recorded in
/// PR 5 — the ceiling the overlapped path must stay under on multi-core
/// hosts.
const OVERLAP_SURCHARGE_CEILING: f64 = 0.366;

fn export_csv(id: &str, secs: f64, sessions: u64) {
    let Ok(path) = std::env::var("CRITERION_CSV") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let exists = std::path::Path::new(&path).exists();
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("screen_throughput: CSV export to {path} failed to open");
        return;
    };
    if !exists {
        let _ = writeln!(
            file,
            "id,samples,min_ns,mean_ns,median_ns,stddev_ns,throughput_unit,throughput_per_iter,outliers_rejected"
        );
    }
    let ns = (secs * 1e9) as u128;
    let _ = writeln!(file, "{},1,{ns},{ns},{ns},0,elements,{sessions},0", id.replace(',', ";"));
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (claims, reps) = if smoke { (4, 1) } else { (12, 3) };
    let w = bert_workload(if smoke { 4 } else { 8 }, claims);
    let graph = &w.deployment.model.graph;
    let logits = w.deployment.model.logits;
    let proposer = tao_device::Device::rtx4090_like();
    let challenger = tao_device::Device::h100_like();

    // Honest proposer outputs for every claim.
    let outputs: Vec<Tensor<f32>> = w
        .test_inputs
        .iter()
        .map(|input| {
            execute(graph, input, proposer.config(), None)
                .expect("proposer forward")
                .value(logits)
                .expect("logits traced")
                .clone()
        })
        .collect();
    let claim_checks: Vec<ClaimCheck<'_>> = w
        .test_inputs
        .iter()
        .zip(&outputs)
        .map(|(inputs, claimed_output)| ClaimCheck {
            inputs,
            claimed_output,
        })
        .collect();

    // Serial screening baseline.
    let t0 = Instant::now();
    let mut serial = Vec::new();
    for _ in 0..reps {
        serial = claim_checks
            .iter()
            .map(|c| {
                screen_claim(graph, logits, &w.deployment.thresholds, *c, &challenger)
                    .expect("serial screen")
            })
            .collect();
    }
    let serial_secs = t0.elapsed().as_secs_f64() / reps as f64;

    // Batched screening.
    let t0 = Instant::now();
    let mut batched = Vec::new();
    for _ in 0..reps {
        batched = screen_batch(
            graph,
            logits,
            &w.deployment.thresholds,
            &claim_checks,
            &challenger,
        )
        .expect("batch screen");
    }
    let batch_secs = t0.elapsed().as_secs_f64() / reps as f64;

    assert_eq!(serial.len(), batched.len());
    for (i, (s, b)) in serial.iter().zip(&batched).enumerate() {
        assert_eq!(s.flagged, b.flagged, "claim {i}");
        assert_eq!(
            s.exceedance.to_bits(),
            b.exceedance.to_bits(),
            "claim {i}: batched screening must equal serial"
        );
        assert!(!s.flagged, "honest claims must not be flagged");
    }

    // Post-hoc flagged-path overhead: screening + a separate trace
    // commitment pass over the finished trace (the differential oracle).
    let t0 = Instant::now();
    for screening in &batched {
        std::hint::black_box(TraceCommitment::build(&screening.trace.values));
    }
    let commit_secs = t0.elapsed().as_secs_f64();

    // Overlapped flagged path: digests stream through the forward pass,
    // so hashing hides behind compute instead of running after it.
    let t0 = Instant::now();
    let mut committed = Vec::new();
    for _ in 0..reps {
        committed = claim_checks
            .iter()
            .map(|c| {
                screen_claim_committed(graph, logits, &w.deployment.thresholds, *c, &challenger)
                    .expect("committed screen")
            })
            .collect();
    }
    let overlapped_secs = t0.elapsed().as_secs_f64() / reps as f64;

    for (i, (s, c)) in serial.iter().zip(&committed).enumerate() {
        assert_eq!(s.flagged, c.flagged, "claim {i}");
        assert_eq!(
            s.exceedance.to_bits(),
            c.exceedance.to_bits(),
            "claim {i}: committed screening must equal plain"
        );
        // Streamed digests must be bit-identical to the post-hoc oracle.
        assert_eq!(
            c.commitment().map(|t| t.root()),
            Some(TraceCommitment::build(&c.trace.values).root()),
            "claim {i}: streamed commitment diverged from the post-hoc oracle"
        );
    }

    let serial_rate = claim_checks.len() as f64 / serial_secs;
    let batch_rate = claim_checks.len() as f64 / batch_secs;
    let flagged_rate = claim_checks.len() as f64 / (batch_secs + commit_secs);
    let overlapped_rate = claim_checks.len() as f64 / overlapped_secs;
    export_csv("screen/serial", serial_secs, claim_checks.len() as u64);
    export_csv("screen/batch", batch_secs, claim_checks.len() as u64);
    export_csv(
        "screen/batch+commit",
        batch_secs + commit_secs,
        claim_checks.len() as u64,
    );
    export_csv(
        "screen/overlapped-commit",
        overlapped_secs,
        claim_checks.len() as u64,
    );
    print_table(
        &format!(
            "Screening throughput — BERT-small deployment, {} claims x {reps} reps",
            claim_checks.len()
        ),
        &["path", "sessions/sec", "vs serial"],
        &[
            vec![
                "screen_claim serial".into(),
                format!("{serial_rate:.2}"),
                "1.00x".into(),
            ],
            vec![
                "screen_batch".into(),
                format!("{batch_rate:.2}"),
                format!("{:.2}x", batch_rate / serial_rate),
            ],
            vec![
                "screen_batch + trace commitment (post-hoc flagged path)".into(),
                format!("{flagged_rate:.2}"),
                format!("{:.2}x", flagged_rate / serial_rate),
            ],
            vec![
                "screen_claim_committed (overlapped flagged path)".into(),
                format!("{overlapped_rate:.2}"),
                format!("{:.2}x", overlapped_rate / serial_rate),
            ],
        ],
    );
    let posthoc_surcharge = 100.0 * commit_secs / batch_secs;
    let overlapped_surcharge = 100.0 * (overlapped_secs - serial_secs).max(0.0) / serial_secs;
    println!(
        "\nBatched and committed screenings bit-identical to serial: OK.\n\
         Streamed commitments bit-identical to the post-hoc oracle: OK.\n\
         Flagged-path surcharge: {posthoc_surcharge:.1}% post-hoc, \
         {overlapped_surcharge:.1}% overlapped (vs serial screening)"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if smoke {
        println!("(smoke mode: throughput floor and surcharge ceiling not asserted)");
    } else {
        assert!(
            batch_rate >= 0.5 * serial_rate,
            "screen_batch throughput {batch_rate:.2}/s fell below half of serial {serial_rate:.2}/s"
        );
        assert!(
            commit_secs < batch_secs,
            "trace commitment ({commit_secs:.3}s) must cost less than the screening pass ({batch_secs:.3}s)"
        );
        // The overlap only buys anything when a second core can hash
        // while the first computes; single-core hosts fall back to the
        // inline path and are exempt from the ceiling.
        if cores >= 2 {
            assert!(
                overlapped_surcharge <= 100.0 * OVERLAP_SURCHARGE_CEILING,
                "overlapped flagged-path surcharge {overlapped_surcharge:.1}% exceeded the \
                 {:.1}% ceiling (half the recorded post-hoc figure)",
                100.0 * OVERLAP_SURCHARGE_CEILING
            );
        } else {
            println!("(single-core host: overlapped surcharge ceiling not asserted)");
        }
    }
}
