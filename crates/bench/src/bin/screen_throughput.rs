//! Screening throughput: full `screen_batch` sessions/sec over a deployed
//! model — the always-on verification path a marketplace pays per claim.
//!
//! Times three configurations over one committed deployment:
//! per-claim serial screening (`screen_claim` in a loop), batched
//! screening (`screen_batch`, scoped-thread fan-out), and the flagged-path
//! cost (screening plus the trace commitment a flagged claim carries into
//! its dispute). Batched results are asserted identical to serial, and a
//! conservative floor — batch throughput at least half of serial —
//! catches pathological regressions in the fan-out plumbing without being
//! sensitive to host speed.
//!
//! Run with `cargo run --release -p tao-bench --bin screen_throughput`.
//! Pass `--smoke` for a seconds-scale CI variant. Set
//! `CRITERION_CSV=<path>` to append figure-ready CSV rows.

use std::io::Write as _;
use std::time::Instant;

use tao_bench::{bert_workload, print_table};
use tao_graph::execute;
use tao_merkle::TraceCommitment;
use tao_protocol::{screen_batch, screen_claim, ClaimCheck};
use tao_tensor::Tensor;

fn export_csv(id: &str, secs: f64, sessions: u64) {
    let Ok(path) = std::env::var("CRITERION_CSV") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let exists = std::path::Path::new(&path).exists();
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("screen_throughput: CSV export to {path} failed to open");
        return;
    };
    if !exists {
        let _ = writeln!(
            file,
            "id,samples,min_ns,mean_ns,median_ns,stddev_ns,throughput_unit,throughput_per_iter,outliers_rejected"
        );
    }
    let ns = (secs * 1e9) as u128;
    let _ = writeln!(file, "{},1,{ns},{ns},{ns},0,elements,{sessions},0", id.replace(',', ";"));
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (claims, reps) = if smoke { (4, 1) } else { (12, 3) };
    let w = bert_workload(if smoke { 4 } else { 8 }, claims);
    let graph = &w.deployment.model.graph;
    let logits = w.deployment.model.logits;
    let proposer = tao_device::Device::rtx4090_like();
    let challenger = tao_device::Device::h100_like();

    // Honest proposer outputs for every claim.
    let outputs: Vec<Tensor<f32>> = w
        .test_inputs
        .iter()
        .map(|input| {
            execute(graph, input, proposer.config(), None)
                .expect("proposer forward")
                .value(logits)
                .expect("logits traced")
                .clone()
        })
        .collect();
    let claim_checks: Vec<ClaimCheck<'_>> = w
        .test_inputs
        .iter()
        .zip(&outputs)
        .map(|(inputs, claimed_output)| ClaimCheck {
            inputs,
            claimed_output,
        })
        .collect();

    // Serial screening baseline.
    let t0 = Instant::now();
    let mut serial = Vec::new();
    for _ in 0..reps {
        serial = claim_checks
            .iter()
            .map(|c| {
                screen_claim(graph, logits, &w.deployment.thresholds, *c, &challenger)
                    .expect("serial screen")
            })
            .collect();
    }
    let serial_secs = t0.elapsed().as_secs_f64() / reps as f64;

    // Batched screening.
    let t0 = Instant::now();
    let mut batched = Vec::new();
    for _ in 0..reps {
        batched = screen_batch(
            graph,
            logits,
            &w.deployment.thresholds,
            &claim_checks,
            &challenger,
        )
        .expect("batch screen");
    }
    let batch_secs = t0.elapsed().as_secs_f64() / reps as f64;

    assert_eq!(serial.len(), batched.len());
    for (i, (s, b)) in serial.iter().zip(&batched).enumerate() {
        assert_eq!(s.flagged, b.flagged, "claim {i}");
        assert_eq!(
            s.exceedance.to_bits(),
            b.exceedance.to_bits(),
            "claim {i}: batched screening must equal serial"
        );
        assert!(!s.flagged, "honest claims must not be flagged");
    }

    // Flagged-path overhead: screening + the trace commitment a dispute
    // would consume (the multi-way hashers keep this a small surcharge).
    let t0 = Instant::now();
    for screening in &batched {
        std::hint::black_box(TraceCommitment::build(&screening.trace.values));
    }
    let commit_secs = t0.elapsed().as_secs_f64();

    let serial_rate = claim_checks.len() as f64 / serial_secs;
    let batch_rate = claim_checks.len() as f64 / batch_secs;
    let flagged_rate = claim_checks.len() as f64 / (batch_secs + commit_secs);
    export_csv("screen/serial", serial_secs, claim_checks.len() as u64);
    export_csv("screen/batch", batch_secs, claim_checks.len() as u64);
    export_csv(
        "screen/batch+commit",
        batch_secs + commit_secs,
        claim_checks.len() as u64,
    );
    print_table(
        &format!(
            "Screening throughput — BERT-small deployment, {} claims x {reps} reps",
            claim_checks.len()
        ),
        &["path", "sessions/sec", "vs serial"],
        &[
            vec![
                "screen_claim serial".into(),
                format!("{serial_rate:.2}"),
                "1.00x".into(),
            ],
            vec![
                "screen_batch".into(),
                format!("{batch_rate:.2}"),
                format!("{:.2}x", batch_rate / serial_rate),
            ],
            vec![
                "screen_batch + trace commitment (flagged path)".into(),
                format!("{flagged_rate:.2}"),
                format!("{:.2}x", flagged_rate / serial_rate),
            ],
        ],
    );
    println!(
        "\nBatched screenings bit-identical to serial: OK.\n\
         Trace-commitment surcharge on the flagged path: {:.1}% of screening time",
        100.0 * commit_secs / batch_secs
    );
    if smoke {
        println!("(smoke mode: throughput floor not asserted)");
    } else {
        assert!(
            batch_rate >= 0.5 * serial_rate,
            "screen_batch throughput {batch_rate:.2}/s fell below half of serial {serial_rate:.2}/s"
        );
        assert!(
            commit_secs < batch_secs,
            "trace commitment ({commit_secs:.3}s) must cost less than the screening pass ({batch_secs:.3}s)"
        );
    }
}
