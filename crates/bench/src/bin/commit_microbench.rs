//! Commitment-layer microbenchmark: multi-way SHA-256 and the streaming,
//! level-parallel trace committer vs the seed scalar paths.
//!
//! Three sections, every timed pair also bit-compared (digests and roots),
//! so this doubles as a fast regression check of the commitment
//! equivalence contract (`cargo test --test commit_equiv` is the
//! exhaustive version):
//!
//! 1. **Multi-way SHA-256** — batches of independent messages per
//!    supported backend (scalar oracle, portable 4/8-lane, AVX2 8-lane,
//!    SHA-NI) vs the seed scalar hasher.
//! 2. **Trace commitment** — the headline number: committing a ≥ 1 MiB
//!    activation trace (leaf hash + tree build) on the fast path vs the
//!    seed path (materialize canon bytes, scalar SHA-256, serial tree).
//!    Asserted ≥ 4x outside smoke mode; roots must match bit-for-bit.
//! 3. **Tree build** — parallel vs serial interior construction over a
//!    1 MiB leaf set, swept across forced thread counts (bit-identical at
//!    every count; the speedup column is only interesting on multi-core
//!    hosts).
//!
//! Run with `cargo run --release -p tao-bench --bin commit_microbench`.
//! Pass `--smoke` for a seconds-scale CI variant. Set
//! `CRITERION_CSV=<path>` to append figure-ready CSV rows (same schema as
//! the criterion stub's writer).

use std::io::Write as _;
use std::time::Instant;

use tao_bench::print_table;
use tao_merkle::{
    sha256, sha256_batch_with, Backend, MerkleTree, TraceCommitment, MAX_HASH_THREADS,
};
use tao_tensor::Tensor;

/// Median wall-clock seconds of `samples` runs of `f` (one warm-up run).
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Appends one row in the criterion stub's CSV schema when
/// `CRITERION_CSV` is set.
fn export_csv(id: &str, secs: f64, bytes: u64) {
    let Ok(path) = std::env::var("CRITERION_CSV") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let exists = std::path::Path::new(&path).exists();
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    let Ok(mut file) = file else {
        eprintln!("commit_microbench: CSV export to {path} failed to open");
        return;
    };
    if !exists {
        let _ = writeln!(
            file,
            "id,samples,min_ns,mean_ns,median_ns,stddev_ns,throughput_unit,throughput_per_iter,outliers_rejected"
        );
    }
    let ns = (secs * 1e9) as u128;
    let _ = writeln!(file, "{},1,{ns},{ns},{ns},0,bytes,{bytes},0", id.replace(',', ";"));
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let backends = Backend::available();
    println!(
        "commit_microbench — backends on this host: {}  (auto: {})",
        backends
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", "),
        Backend::auto().name()
    );

    // --- 1. multi-way SHA-256 over independent messages ------------------
    let (msg_count, msg_len, samples) = if smoke { (64, 512, 3) } else { (512, 2048, 9) };
    let msgs: Vec<Vec<u8>> = (0..msg_count)
        .map(|i| (0..msg_len).map(|j| ((i * 31 + j) % 251) as u8).collect())
        .collect();
    let total_bytes = (msg_count * msg_len) as u64;
    let want: Vec<_> = msgs.iter().map(|m| sha256(m)).collect();
    let t_scalar = median_secs(samples, || sha256_batch_with(Backend::Scalar, &msgs));
    let mut rows = Vec::new();
    for &backend in &backends {
        let got = sha256_batch_with(backend, &msgs);
        assert_eq!(got, want, "{backend:?} digests drifted from scalar");
        let t = median_secs(samples, || sha256_batch_with(backend, &msgs));
        export_csv(&format!("commit/sha256_batch/{}", backend.name()), t, total_bytes);
        rows.push(vec![
            backend.name().to_string(),
            format!("{:.3}ms", 1e3 * t),
            format!("{:.2}x", t_scalar / t),
            format!("{:.2} GiB/s", total_bytes as f64 / t / (1u64 << 30) as f64),
        ]);
    }
    print_table(
        &format!("Multi-way SHA-256 — {msg_count} messages x {msg_len} B vs scalar oracle"),
        &["backend", "batch time", "speedup", "throughput"],
        &rows,
    );

    // --- 2. the headline: 1 MiB trace commitment -------------------------
    // 64 activation tensors of [64, 64] f32 = 1 MiB of trace data (plus a
    // few odd shapes so the lane batcher sees ragged groups).
    let (tensors, dim) = if smoke { (16, 32) } else { (64, 64) };
    let values: Vec<Tensor<f32>> = (0..tensors)
        .map(|i| {
            if i % 13 == 12 {
                Tensor::<f32>::rand_uniform(&[dim / 2, dim, 2], -1.0, 1.0, i as u64)
            } else {
                Tensor::<f32>::rand_uniform(&[dim, dim], -1.0, 1.0, i as u64)
            }
        })
        .collect();
    let trace_bytes: u64 = values.iter().map(|t| 4 * t.len() as u64).sum();
    let oracle = TraceCommitment::reference(&values);
    let t_seed = median_secs(samples, || TraceCommitment::reference(&values));
    export_csv("commit/trace_commitment/seed-scalar", t_seed, trace_bytes);
    let mut rows = Vec::new();
    let mut auto_speedup = 0.0;
    for &backend in &backends {
        let got = TraceCommitment::build_with(&values, backend);
        assert_eq!(got, oracle, "{backend:?}: trace commitment drifted");
        assert_eq!(got.root(), oracle.root());
        let t = median_secs(samples, || TraceCommitment::build_with(&values, backend));
        if backend == Backend::auto() {
            auto_speedup = t_seed / t;
        }
        export_csv(&format!("commit/trace_commitment/{}", backend.name()), t, trace_bytes);
        rows.push(vec![
            backend.name().to_string(),
            format!("{:.3}ms", 1e3 * t),
            format!("{:.2}x", t_seed / t),
            format!("{:.2} GiB/s", trace_bytes as f64 / t / (1u64 << 30) as f64),
        ]);
    }
    print_table(
        &format!(
            "Trace commitment — {} KiB trace ({} tensors), leaf hash + tree build vs seed path ({:.3}ms)",
            trace_bytes / 1024,
            values.len(),
            1e3 * t_seed
        ),
        &["backend", "commit time", "speedup vs seed", "throughput"],
        &rows,
    );

    // --- 3. parallel vs serial tree build over a 1 MiB leaf set ----------
    let (leaf_count, leaf_len) = if smoke { (2048, 64) } else { (16384, 64) };
    let leaves: Vec<Vec<u8>> = (0..leaf_count)
        .map(|i| (0..leaf_len).map(|j| ((i * 7 + j) % 256) as u8).collect())
        .collect();
    let tree_oracle = MerkleTree::from_leaves_reference(&leaves);
    let t_tree_seed = median_secs(samples, || MerkleTree::from_leaves_reference(&leaves));
    export_csv("commit/tree_build/seed-serial", t_tree_seed, (leaf_count * leaf_len) as u64);
    let digests = tao_merkle::hash_leaves(Backend::auto(), &leaves);
    let mut rows = Vec::new();
    for threads in [1usize, 2, MAX_HASH_THREADS] {
        let got = MerkleTree::from_leaf_digests_with(digests.clone(), Backend::auto(), threads);
        assert_eq!(
            got.root(),
            tree_oracle.root(),
            "threads={threads}: tree root drifted"
        );
        let t = median_secs(samples, || {
            MerkleTree::from_leaf_digests_with(digests.clone(), Backend::auto(), threads)
        });
        export_csv(
            &format!("commit/tree_build/{}threads", threads),
            t,
            (leaf_count * leaf_len) as u64,
        );
        rows.push(vec![
            format!("{threads}"),
            format!("{:.3}ms", 1e3 * t),
            format!("{:.2}x vs seed", t_tree_seed / t),
        ]);
    }
    print_table(
        &format!(
            "Tree build — {leaf_count} leaves x {leaf_len} B, {} backend, forced thread counts (roots bit-identical; thread speedup needs a multi-core host)",
            Backend::auto().name()
        ),
        &["threads", "interior build", "speedup"],
        &rows,
    );

    println!(
        "\nAll timed pairs bit-compared against the seed scalar paths: OK.\n\
         Auto-backend 1 MiB trace-commitment speedup vs seed: {auto_speedup:.2}x"
    );
    if smoke {
        println!("(smoke mode: speedup floor not asserted)");
    } else {
        assert!(
            auto_speedup >= 4.0,
            "trace-commitment speedup {auto_speedup:.2}x fell below the 4x floor"
        );
    }
}
