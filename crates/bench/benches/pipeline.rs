//! Criterion macrobenchmarks: bound co-execution overhead, calibration,
//! and the end-to-end dispute game.

use criterion::{criterion_group, criterion_main, Criterion};
use tao_bench::disputes::{run_perturbed_dispute, spread_targets};
use tao_bench::{bert_workload, qwen_workload};
use tao_bounds::BoundEngine;
use tao_graph::execute;
use tao_tensor::KernelConfig;

fn bench_bound_coexecution(c: &mut Criterion) {
    let w = qwen_workload(3, 1);
    let graph = &w.deployment.model.graph;
    let input = &w.test_inputs[0];
    let exec = execute(graph, input, &KernelConfig::reference(), None).expect("forward");
    // Forward alone vs forward + bound co-execution: the optimistic-phase
    // overhead story of §6.
    c.bench_function("qwen_forward", |b| {
        b.iter(|| execute(graph, input, &KernelConfig::reference(), None).expect("forward"));
    });
    let engine = BoundEngine::paper_default();
    c.bench_function("qwen_bound_coexecution", |b| {
        b.iter(|| engine.co_execute(graph, &exec).expect("bounds"));
    });
}

fn bench_dispute_game(c: &mut Criterion) {
    let w = bert_workload(4, 1);
    let input = w.test_inputs[0].clone();
    let target = spread_targets(&w, 4)[2];
    c.bench_function("dispute_bert_n2", |b| {
        b.iter(|| run_perturbed_dispute(&w, &input, target, 0.05, 2));
    });
    c.bench_function("dispute_bert_n8", |b| {
        b.iter(|| run_perturbed_dispute(&w, &input, target, 0.05, 8));
    });
}

fn bench_calibration(c: &mut Criterion) {
    use tao_calib::calibrate;
    use tao_device::Fleet;
    use tao_models::{bert, data, BertConfig};
    let cfg = BertConfig {
        layers: 1,
        ..BertConfig::small()
    };
    let model = bert::build(cfg, 1);
    let samples = data::token_dataset(4, cfg.seq, cfg.vocab, 5);
    c.bench_function("calibrate_bert_1layer_4samples", |b| {
        b.iter(|| calibrate(&model.graph, &samples, &Fleet::standard()).expect("calibration"));
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_bound_coexecution, bench_dispute_game, bench_calibration
}
criterion_main!(pipeline);
