//! Criterion microbenchmarks: SHA-256 and Merkle commitments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tao_merkle::{graph_tree, sha256, weight_tree, MerkleTree};
use tao_models::{bert, BertConfig};

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xa5u8; 64 * 1024];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("64KiB", |b| b.iter(|| sha256(&data)));
    group.finish();
}

fn bench_model_commitments(c: &mut Criterion) {
    let model = bert::build(BertConfig::small(), 1);
    c.bench_function("weight_tree_bert_small", |b| {
        b.iter(|| weight_tree(&model.graph))
    });
    c.bench_function("graph_tree_bert_small", |b| {
        b.iter(|| graph_tree(&model.graph))
    });
}

fn bench_proofs(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..1024).map(|i| format!("leaf{i}").into_bytes()).collect();
    let tree = MerkleTree::from_leaves(&leaves);
    c.bench_function("prove_1024_leaves", |b| {
        b.iter(|| tree.prove(511).expect("in range"))
    });
    let proof = tree.prove(511).expect("in range");
    c.bench_function("verify_1024_leaves", |b| {
        b.iter(|| tao_merkle::verify_inclusion(&tree.root(), &leaves[511], &proof))
    });
}

criterion_group! {
    name = merkle;
    config = Criterion::default().sample_size(30);
    targets = bench_sha256, bench_model_commitments, bench_proofs
}
criterion_main!(merkle);
