//! Criterion microbenchmarks: tensor kernels across simulated devices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tao_device::Device;
use tao_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::<f32>::rand_uniform(&[32, 128], -1.0, 1.0, 1);
    let b = Tensor::<f32>::rand_uniform(&[128, 32], -1.0, 1.0, 2);
    let mut group = c.benchmark_group("matmul_32x128x32");
    for dev in Device::standard_fleet() {
        group.bench_with_input(BenchmarkId::from_parameter(dev.name()), &dev, |bch, dev| {
            bch.iter(|| a.matmul(&b, dev.config()).expect("matmul"));
        });
    }
    group.bench_function("reference", |bch| {
        let r = Device::reference();
        bch.iter(|| a.matmul(&b, r.config()).expect("matmul"));
    });
    // The scalar oracle the blocked kernels are differentially tested
    // against, for a direct blocked-vs-seed comparison in one report.
    group.bench_function("reference_scalar_oracle", |bch| {
        let r = Device::reference();
        bch.iter(|| a.matmul_reference(&b, r.config()).expect("matmul"));
    });
    group.finish();
}

fn bench_softmax_and_norms(c: &mut Criterion) {
    let x = Tensor::<f32>::rand_uniform(&[64, 256], -3.0, 3.0, 3);
    let gamma = Tensor::<f32>::ones(&[256]);
    let beta = Tensor::<f32>::zeros(&[256]);
    let dev = Device::a100_like();
    c.bench_function("softmax_64x256", |bch| {
        bch.iter(|| x.softmax_last(dev.config()).expect("softmax"));
    });
    c.bench_function("layer_norm_64x256", |bch| {
        bch.iter(|| x.layer_norm(&gamma, &beta, 1e-5, dev.config()).expect("ln"));
    });
    c.bench_function("rms_norm_64x256", |bch| {
        bch.iter(|| x.rms_norm(&gamma, 1e-6, dev.config()).expect("rms"));
    });
}

fn bench_conv(c: &mut Criterion) {
    let x = Tensor::<f32>::rand_uniform(&[1, 8, 16, 16], -1.0, 1.0, 4);
    let w = Tensor::<f32>::rand_uniform(&[8, 8, 3, 3], -0.3, 0.3, 5);
    let dev = Device::rtx4090_like();
    c.bench_function("conv2d_8x16x16_3x3", |bch| {
        bch.iter(|| {
            x.conv2d(
                &w,
                None,
                tao_tensor::Conv2dParams {
                    stride: 1,
                    padding: 1,
                },
                dev.config(),
            )
            .expect("conv")
        });
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_softmax_and_norms, bench_conv
}
criterion_main!(kernels);
