//! Adam optimizer state for per-operator perturbation tensors.

/// Adam hyperparameters; the paper uses `(β₁, β₂, ε) = (0.9, 0.999, 1e-8)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamParams {
    /// First-moment decay `β₁`.
    pub beta1: f64,
    /// Second-moment decay `β₂`.
    pub beta2: f64,
    /// Denominator stabilizer `ε`.
    pub eps: f64,
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Adam state for one flat tensor.
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    params: AdamParams,
}

impl AdamState {
    /// Creates zeroed state for `n` scalars.
    pub fn new(n: usize, params: AdamParams) -> Self {
        AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            params,
        }
    }

    /// One Adam *ascent* step: returns the update to add, given the
    /// gradient of the objective being maximized and a stepsize.
    pub fn step(&mut self, grad: &[f32], lr: f64) -> Vec<f32> {
        assert_eq!(grad.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        let b1 = self.params.beta1;
        let b2 = self.params.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        grad.iter()
            .enumerate()
            .map(|(i, &g)| {
                let g = g as f64;
                self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
                self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
                let mhat = self.m[i] / bc1;
                let vhat = self.v[i] / bc2;
                (lr * mhat / (vhat.sqrt() + self.params.eps)) as f32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascends_towards_gradient_sign() {
        let mut s = AdamState::new(2, AdamParams::default());
        let up = s.step(&[1.0, -1.0], 0.1);
        assert!(up[0] > 0.0);
        assert!(up[1] < 0.0);
    }

    #[test]
    fn step_magnitude_approaches_lr() {
        // With constant gradients, |update| → lr.
        let mut s = AdamState::new(1, AdamParams::default());
        let mut last = 0.0;
        for _ in 0..200 {
            last = s.step(&[2.0], 0.01)[0];
        }
        assert!((last - 0.01).abs() < 2e-3, "update {last}");
    }

    #[test]
    fn zero_gradient_zero_update() {
        let mut s = AdamState::new(3, AdamParams::default());
        let up = s.step(&[0.0; 3], 0.5);
        assert!(up.iter().all(|&u| u == 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut s = AdamState::new(2, AdamParams::default());
        let _ = s.step(&[1.0], 0.1);
    }
}
