//! Projected-gradient attacks over per-operator perturbations (§4.4).

use std::collections::HashMap;

use tao_bounds::BoundEngine;
use tao_calib::{CapCurve, ThresholdBundle};
use tao_graph::{backward, execute, Graph, NodeId, Perturbations};
use tao_tensor::{KernelConfig, Tensor};

use crate::adam::{AdamParams, AdamState};
use crate::error::AttackError;
use crate::Result;

/// Which admissible set the attack projects onto.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProjectionKind {
    /// Order-statistics projection onto the empirical cap curves (Eq. 12).
    Empirical,
    /// Element-wise clipping to deterministic theoretical bounds (Eq. 11).
    TheoreticalDeterministic,
    /// Element-wise clipping to probabilistic theoretical bounds (Eq. 11).
    TheoreticalProbabilistic,
}

/// Attack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Feasible-set family.
    pub kind: ProjectionKind,
    /// Bound scale `α` (>1 loosens empirical thresholds; <1 tightens
    /// theoretical bounds — diagnostic only).
    pub scale: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stepsize as a fraction of the per-operator median bound (the paper
    /// uses 1/4).
    pub lr_frac: f64,
    /// Early-stopping stall window.
    pub patience: usize,
    /// Early-stopping relative tolerance (the paper uses `1e-3 |m₀|`).
    pub tol: f64,
}

impl AttackConfig {
    /// The paper's default attack settings for the given projection.
    pub fn paper_default(kind: ProjectionKind, scale: f64) -> Self {
        AttackConfig {
            kind,
            scale,
            max_iters: 120,
            lr_frac: 0.25,
            patience: 10,
            tol: 1e-3,
        }
    }
}

/// Outcome of one attack run against one `(input, target-class)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackResult {
    /// True when the prediction flipped to the target while admissible.
    pub success: bool,
    /// Iterations executed.
    pub iters: usize,
    /// Initial logit margin `m₀ = z_{c1} − z_{c2} > 0`.
    pub m0: f64,
    /// Final margin `m' = z'_{c1} − z'_{c2}` (≤ 0 on success).
    pub m_final: f64,
    /// Margin reduction `Δm = m₀ − m'`.
    pub delta_m: f64,
    /// Normalized progress `δ = Δm / m₀`.
    pub delta_rel: f64,
}

/// Outcome of [`run_attack_with_deltas`]: the scalar summary plus the
/// final per-node perturbations (admissible at return time — the last
/// projection has been applied). Campaign adversaries consume the deltas
/// directly: an evasion operator that fails to flip within the admissible
/// set escalates these same perturbations beyond it to model a cheat the
/// screening must catch.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The scalar attack summary.
    pub result: AttackResult,
    /// The final admissible per-node perturbations.
    pub deltas: Perturbations,
}

/// A prepared attack problem: the traced model, the committed inputs, the
/// logits node, and the admissible-set data.
pub struct AttackProblem<'a> {
    /// The traced model.
    pub graph: &'a Graph,
    /// Model inputs.
    pub inputs: &'a [Tensor<f32>],
    /// Node producing the logits.
    pub logits_node: NodeId,
    /// Committed empirical thresholds (for empirical projections and
    /// stepsize selection).
    pub thresholds: &'a ThresholdBundle,
}

impl<'a> AttackProblem<'a> {
    /// Honest logits lane: the last length-`C` chunk of the logits node
    /// output (the next-token / classification row).
    ///
    /// # Errors
    ///
    /// Returns an error when execution fails or logits are empty.
    pub fn honest_logits(&self) -> Result<Vec<f32>> {
        let exec = execute(self.graph, self.inputs, &KernelConfig::reference(), None)?;
        let out = exec.value(self.logits_node)?;
        let c = last_dim(out)?;
        let lane = &out.data()[out.len() - c..];
        Ok(lane.to_vec())
    }
}

fn last_dim(t: &Tensor<f32>) -> Result<usize> {
    let c = *t.dims().last().unwrap_or(&0);
    if c < 2 {
        return Err(AttackError::BadLogits(format!("logit lane of width {c}")));
    }
    Ok(c)
}

/// Runs the PGD/Adam attack of §4.4 against one target class.
///
/// The adversary perturbs every compute-node output; each iteration
/// executes the perturbed graph, backpropagates the logit margin
/// (Eq. 10), takes an Adam ascent step with per-operator stepsizes, and
/// projects onto the admissible set (Eq. 11 or Eq. 12). Early stopping
/// follows the paper's stall rule.
///
/// # Errors
///
/// Returns an error when execution/backprop fails or the target class is
/// out of range.
pub fn run_attack(
    problem: &AttackProblem<'_>,
    target: usize,
    cfg: &AttackConfig,
) -> Result<AttackResult> {
    run_attack_with_deltas(problem, target, cfg).map(|o| o.result)
}

/// [`run_attack`], additionally returning the final perturbations — the
/// campaign-drivable adversary API. See [`AttackOutcome`].
///
/// # Errors
///
/// Returns an error when execution/backprop fails or the target class is
/// out of range.
pub fn run_attack_with_deltas(
    problem: &AttackProblem<'_>,
    target: usize,
    cfg: &AttackConfig,
) -> Result<AttackOutcome> {
    let graph = problem.graph;
    let cfg_exec = KernelConfig::reference();

    // Honest forward: fixes c1 (original argmax) and m0.
    let honest = execute(graph, problem.inputs, &cfg_exec, None)?;
    let logits0 = honest.value(problem.logits_node)?;
    let c = last_dim(logits0)?;
    if target >= c {
        return Err(AttackError::BadLogits(format!(
            "target {target} out of {c} classes"
        )));
    }
    let lane0 = &logits0.data()[logits0.len() - c..];
    let c1 = argmax(lane0);
    if c1 == target {
        return Err(AttackError::BadLogits(
            "target equals current prediction".into(),
        ));
    }
    let m0 = (lane0[c1] - lane0[target]) as f64;

    // Admissible-set data per perturbed node.
    let engine = match cfg.kind {
        ProjectionKind::TheoreticalDeterministic => Some(BoundEngine::deterministic()),
        ProjectionKind::TheoreticalProbabilistic => Some(BoundEngine::paper_default()),
        ProjectionKind::Empirical => None,
    };
    let targets: Vec<NodeId> = graph.compute_nodes();
    let caps: HashMap<NodeId, CapCurve> = if engine.is_none() {
        targets
            .iter()
            .filter_map(|&id| {
                problem.thresholds.for_node(id).map(|entry| {
                    (
                        id,
                        CapCurve::from_thresholds(&entry.thresholds).scaled(cfg.scale),
                    )
                })
            })
            .collect()
    } else {
        HashMap::new()
    };

    // Per-operator stepsizes: lr_frac × median admissible magnitude.
    let honest_bounds = engine
        .as_ref()
        .map(|e| e.co_execute(graph, &honest))
        .transpose()
        .map_err(|e| AttackError::Bound(e.to_string()))?;
    let mut lr: HashMap<NodeId, f64> = HashMap::new();
    for &id in &targets {
        let step = match (&honest_bounds, caps.get(&id)) {
            (Some(bounds), _) => {
                let tau = &bounds[id.0];
                cfg.lr_frac * cfg.scale * median64(tau.data())
            }
            (None, Some(curve)) => cfg.lr_frac * curve.at(0.5),
            (None, None) => 0.0,
        };
        if step > 0.0 {
            lr.insert(id, step);
        }
    }

    let mut deltas: Perturbations = Perturbations::new();
    let mut adam: HashMap<NodeId, AdamState> = HashMap::new();
    let mut m_prev = m0;
    let mut stall = 0usize;
    let mut iters = 0usize;
    let mut m_final = m0;
    let mut success = false;

    for it in 0..cfg.max_iters {
        iters = it + 1;
        let exec = execute(graph, problem.inputs, &cfg_exec, Some(&deltas))?;
        let logits = exec.value(problem.logits_node)?;
        let lane = &logits.data()[logits.len() - c..];
        let m = (lane[c1] - lane[target]) as f64;
        m_final = m;
        if m <= 0.0 {
            // Prediction flipped while admissible: attack succeeded.
            success = true;
            break;
        }
        // Early stopping on stall.
        if (m - m_prev).abs() < cfg.tol * m0.abs() {
            stall += 1;
            if stall >= cfg.patience {
                break;
            }
        } else {
            stall = 0;
        }
        m_prev = m;

        // Seed: ∂L/∂z with L = z_target − z_c1 on the final lane.
        let mut seed = Tensor::<f32>::zeros(logits.dims());
        let base = logits.len() - c;
        seed.data_mut()[base + target] = 1.0;
        seed.data_mut()[base + c1] = -1.0;
        let mut seeds = HashMap::new();
        seeds.insert(problem.logits_node, seed);
        let grads = backward(graph, &exec, problem.inputs, &seeds)?;

        // Recompute theoretical bounds on the *current* perturbed trace
        // (τ_v is input-dependent).
        let bounds = engine
            .as_ref()
            .map(|e| e.co_execute(graph, &exec))
            .transpose()
            .map_err(|e| AttackError::Bound(e.to_string()))?;

        for &id in &targets {
            let Some(&step) = lr.get(&id) else { continue };
            let Some(g) = grads[id.0].as_ref() else {
                continue;
            };
            let state = adam
                .entry(id)
                .or_insert_with(|| AdamState::new(g.len(), AdamParams::default()));
            let update = state.step(g.data(), step);
            let current = deltas.entry(id).or_insert_with(|| Tensor::zeros(g.dims()));
            for (d, u) in current.data_mut().iter_mut().zip(&update) {
                *d += u;
            }
            // Projection.
            match (&bounds, caps.get(&id)) {
                (Some(bounds), _) => {
                    let tau = &bounds[id.0];
                    for (d, &t) in current.data_mut().iter_mut().zip(tau.data()) {
                        let cap = (cfg.scale * t) as f32;
                        *d = d.clamp(-cap, cap);
                    }
                }
                (None, Some(curve)) => {
                    let projected = curve.project(current.data());
                    current.data_mut().copy_from_slice(&projected);
                }
                (None, None) => {}
            }
        }
    }
    Ok(AttackOutcome {
        result: summary(success, iters, m0, m_final),
        deltas,
    })
}

fn summary(success: bool, iters: usize, m0: f64, m_final: f64) -> AttackResult {
    let delta_m = m0 - m_final;
    AttackResult {
        success,
        iters,
        m0,
        m_final,
        delta_m,
        delta_rel: if m0.abs() > 0.0 { delta_m / m0 } else { 0.0 },
    }
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

fn median64(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_calib::{calibrate, DEFAULT_ALPHA};
    use tao_device::Fleet;
    use tao_graph::{GraphBuilder, OpKind};

    /// A small classifier whose logits node is the final linear layer.
    fn classifier() -> (Graph, NodeId, Vec<Tensor<f32>>, ThresholdBundle) {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w1 = b.parameter("w1", Tensor::<f32>::rand_uniform(&[64, 32], -0.4, 0.4, 1));
        let h = b.op("h", OpKind::MatMul, &[x, w1]);
        let a = b.op("a", OpKind::Gelu, &[h]);
        let w2 = b.parameter("w2", Tensor::<f32>::rand_uniform(&[32, 8], -0.4, 0.4, 2));
        let logits = b.op("logits", OpKind::MatMul, &[a, w2]);
        let g = b.finish(vec![logits]).unwrap();
        let samples: Vec<Vec<Tensor<f32>>> = (0..5)
            .map(|i| vec![Tensor::<f32>::rand_uniform(&[1, 64], -1.0, 1.0, 40 + i)])
            .collect();
        let bundle = calibrate(&g, &samples, &Fleet::standard())
            .unwrap()
            .into_thresholds(DEFAULT_ALPHA);
        let inputs = vec![Tensor::<f32>::rand_uniform(&[1, 64], -1.0, 1.0, 123)];
        (g, logits, inputs, bundle)
    }

    #[test]
    fn empirical_attack_fails_with_tiny_progress() {
        let (g, logits, inputs, bundle) = classifier();
        let problem = AttackProblem {
            graph: &g,
            inputs: &inputs,
            logits_node: logits,
            thresholds: &bundle,
        };
        let lane = problem.honest_logits().unwrap();
        let c1 = argmax(&lane);
        let target = (c1 + 1) % lane.len();
        let cfg = AttackConfig::paper_default(ProjectionKind::Empirical, 1.0);
        let r = run_attack(&problem, target, &cfg).unwrap();
        assert!(!r.success, "empirical thresholds must block the attack");
        assert!(r.delta_rel < 0.2, "progress {:.3} too large", r.delta_rel);
        assert!(r.m0 > 0.0);
    }

    #[test]
    fn unconstrained_margin_attack_would_succeed() {
        // Sanity check that the optimizer itself works: with a huge scale
        // the theoretical feasible set is effectively unconstrained.
        let (g, logits, inputs, bundle) = classifier();
        let problem = AttackProblem {
            graph: &g,
            inputs: &inputs,
            logits_node: logits,
            thresholds: &bundle,
        };
        let lane = problem.honest_logits().unwrap();
        let c1 = argmax(&lane);
        let target = (c1 + 1) % lane.len();
        let cfg = AttackConfig {
            max_iters: 400,
            ..AttackConfig::paper_default(ProjectionKind::TheoreticalProbabilistic, 1e9)
        };
        let r = run_attack(&problem, target, &cfg).unwrap();
        assert!(r.success, "unconstrained attack must flip: {r:?}");
        assert!(r.m_final <= 0.0);
    }

    #[test]
    fn deterministic_bounds_leave_more_headroom_than_probabilistic() {
        let (g, logits, inputs, bundle) = classifier();
        let problem = AttackProblem {
            graph: &g,
            inputs: &inputs,
            logits_node: logits,
            thresholds: &bundle,
        };
        let lane = problem.honest_logits().unwrap();
        let c1 = argmax(&lane);
        let target = (c1 + 1) % lane.len();
        let det = run_attack(
            &problem,
            target,
            &AttackConfig::paper_default(ProjectionKind::TheoreticalDeterministic, 1.0),
        )
        .unwrap();
        let prob = run_attack(
            &problem,
            target,
            &AttackConfig::paper_default(ProjectionKind::TheoreticalProbabilistic, 1.0),
        )
        .unwrap();
        assert!(
            det.delta_m >= prob.delta_m * 0.8,
            "deterministic bounds should allow at least comparable progress: {det:?} vs {prob:?}"
        );
    }

    #[test]
    fn deltas_are_returned_admissible_and_match_summary() {
        let (g, logits, inputs, bundle) = classifier();
        let problem = AttackProblem {
            graph: &g,
            inputs: &inputs,
            logits_node: logits,
            thresholds: &bundle,
        };
        let lane = problem.honest_logits().unwrap();
        let c1 = argmax(&lane);
        let target = (c1 + 1) % lane.len();
        let cfg = AttackConfig::paper_default(ProjectionKind::Empirical, 1.0);
        let outcome = run_attack_with_deltas(&problem, target, &cfg).unwrap();
        assert!(!outcome.result.success);
        assert!(
            !outcome.deltas.is_empty(),
            "empirical attack must have perturbed thresholded nodes"
        );
        // Every returned delta is a fixed point of its cap projection:
        // the optimizer handed back an admissible perturbation.
        for (id, d) in &outcome.deltas {
            let entry = bundle.for_node(*id).expect("perturbed node calibrated");
            let curve = CapCurve::from_thresholds(&entry.thresholds);
            let projected = curve.project(d.data());
            for (a, b) in d.data().iter().zip(&projected) {
                assert!(
                    (a - b).abs() <= 1e-6,
                    "node {id}: delta {a} not admissible (projects to {b})"
                );
            }
        }
        // The wrapper and the deltas variant agree on the summary.
        let r = run_attack(&problem, target, &cfg).unwrap();
        assert_eq!(r, outcome.result);
    }

    #[test]
    fn rejects_degenerate_targets() {
        let (g, logits, inputs, bundle) = classifier();
        let problem = AttackProblem {
            graph: &g,
            inputs: &inputs,
            logits_node: logits,
            thresholds: &bundle,
        };
        let lane = problem.honest_logits().unwrap();
        let c1 = argmax(&lane);
        let cfg = AttackConfig::paper_default(ProjectionKind::Empirical, 1.0);
        assert!(
            run_attack(&problem, c1, &cfg).is_err(),
            "target == prediction"
        );
        assert!(
            run_attack(&problem, 999, &cfg).is_err(),
            "target out of range"
        );
    }

    #[test]
    fn early_stopping_limits_iterations() {
        let (g, logits, inputs, bundle) = classifier();
        let problem = AttackProblem {
            graph: &g,
            inputs: &inputs,
            logits_node: logits,
            thresholds: &bundle,
        };
        let lane = problem.honest_logits().unwrap();
        let c1 = argmax(&lane);
        let target = (c1 + 1) % lane.len();
        // Empirical projection stalls quickly; far fewer than max_iters.
        let cfg = AttackConfig {
            max_iters: 500,
            ..AttackConfig::paper_default(ProjectionKind::Empirical, 1.0)
        };
        let r = run_attack(&problem, target, &cfg).unwrap();
        assert!(r.iters < 500, "expected early stop, ran {}", r.iters);
    }
}
