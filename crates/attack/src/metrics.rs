//! Attack-evaluation metrics: margin bucketing, ASR, and progress stats.

use rand::Rng;
use rand::SeedableRng;

use crate::pgd::AttackResult;

/// The five target-margin buckets of §4.5.
pub const BUCKETS: [(f64, f64); 5] = [(0.0, 0.2), (0.2, 0.4), (0.4, 0.6), (0.6, 0.8), (0.8, 1.0)];

/// Buckets candidate target classes by the percentile of their logit
/// margin `m₀(c) = z_{c1} − z_c` and samples one class per bucket.
///
/// Returns `(bucket index, class)` pairs; buckets too narrow to contain a
/// class are skipped.
pub fn bucket_targets(logits: &[f32], seed: u64) -> Vec<(usize, usize)> {
    let c1 = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    // Candidates sorted by margin ascending (small margin = easy flip).
    let mut candidates: Vec<(usize, f64)> = logits
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != c1)
        .map(|(i, &z)| (i, (logits[c1] - z) as f64))
        .collect();
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite margins"));
    let n = candidates.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let k = BUCKETS.len();
    (0..k)
        .filter_map(|bi| {
            // Non-overlapping index ranges so each candidate belongs to
            // exactly one bucket even for tiny class counts.
            let lo_idx = bi * n / k;
            let hi_idx = (bi + 1) * n / k;
            if lo_idx >= hi_idx {
                return None;
            }
            let pick = rng.gen_range(lo_idx..hi_idx);
            Some((bi, candidates[pick].0))
        })
        .collect()
}

/// Aggregated outcomes for one bucket (one cell of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BucketStats {
    /// Attacks attempted.
    pub attempts: usize,
    /// Successful flips.
    pub successes: usize,
    /// Sum of `Δm` over failed attacks.
    sum_delta_m_fail: f64,
    /// Sum of `δ` over failed attacks.
    sum_delta_rel_fail: f64,
    /// Failed attacks.
    failures: usize,
}

impl BucketStats {
    /// Records one attack result.
    pub fn record(&mut self, r: &AttackResult) {
        self.attempts += 1;
        if r.success {
            self.successes += 1;
        } else {
            self.failures += 1;
            self.sum_delta_m_fail += r.delta_m;
            self.sum_delta_rel_fail += r.delta_rel;
        }
    }

    /// Attack success rate in percent.
    pub fn asr(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            100.0 * self.successes as f64 / self.attempts as f64
        }
    }

    /// Mean `Δm` over failed attacks.
    pub fn mean_delta_m_fail(&self) -> f64 {
        if self.failures == 0 {
            0.0
        } else {
            self.sum_delta_m_fail / self.failures as f64
        }
    }

    /// Mean `δ = Δm/m₀` over failed attacks.
    pub fn mean_delta_rel_fail(&self) -> f64 {
        if self.failures == 0 {
            0.0
        } else {
            self.sum_delta_rel_fail / self.failures as f64
        }
    }
}

/// A full Table 2 row: per-bucket stats for one `(bound, α)` setting.
#[derive(Debug, Clone, Default)]
pub struct AttackTableRow {
    /// Per-bucket aggregates.
    pub buckets: [BucketStats; 5],
    /// Honest-run disputes raised (false-positive numerator).
    pub false_positives: usize,
    /// Honest runs checked (false-positive denominator).
    pub honest_runs: usize,
}

impl AttackTableRow {
    /// Records one result into its bucket.
    pub fn record(&mut self, bucket: usize, r: &AttackResult) {
        if bucket < self.buckets.len() {
            self.buckets[bucket].record(r);
        }
    }

    /// Overall ASR across buckets, in percent.
    pub fn overall_asr(&self) -> f64 {
        let attempts: usize = self.buckets.iter().map(|b| b.attempts).sum();
        let successes: usize = self.buckets.iter().map(|b| b.successes).sum();
        if attempts == 0 {
            0.0
        } else {
            100.0 * successes as f64 / attempts as f64
        }
    }

    /// False-positive rate in percent.
    pub fn fp_rate(&self) -> f64 {
        if self.honest_runs == 0 {
            0.0
        } else {
            100.0 * self.false_positives as f64 / self.honest_runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(success: bool, m0: f64, m_final: f64) -> AttackResult {
        AttackResult {
            success,
            iters: 10,
            m0,
            m_final,
            delta_m: m0 - m_final,
            delta_rel: (m0 - m_final) / m0,
        }
    }

    #[test]
    fn bucket_targets_cover_buckets() {
        let logits: Vec<f32> = (0..20).map(|i| i as f32 * 0.1).collect();
        let picks = bucket_targets(&logits, 1);
        assert!(!picks.is_empty());
        assert!(picks.len() <= 5);
        // Picks are distinct buckets in ascending order.
        for w in picks.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Deterministic under the same seed.
        assert_eq!(picks, bucket_targets(&logits, 1));
    }

    #[test]
    fn bucket_targets_exclude_argmax() {
        let logits = vec![0.0f32, 5.0, 1.0, 2.0];
        for (_, class) in bucket_targets(&logits, 3) {
            assert_ne!(class, 1);
        }
    }

    #[test]
    fn stats_aggregate() {
        let mut b = BucketStats::default();
        b.record(&result(false, 1.0, 0.9));
        b.record(&result(false, 1.0, 0.8));
        b.record(&result(true, 1.0, -0.1));
        assert_eq!(b.attempts, 3);
        assert!((b.asr() - 33.333).abs() < 0.01);
        assert!((b.mean_delta_m_fail() - 0.15).abs() < 1e-9);
        assert!((b.mean_delta_rel_fail() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let b = BucketStats::default();
        assert_eq!(b.asr(), 0.0);
        assert_eq!(b.mean_delta_m_fail(), 0.0);
    }

    #[test]
    fn table_row_overall_and_fp() {
        let mut row = AttackTableRow::default();
        row.record(0, &result(true, 1.0, -0.5));
        row.record(4, &result(false, 2.0, 1.9));
        row.honest_runs = 100;
        row.false_positives = 0;
        assert!((row.overall_asr() - 50.0).abs() < 1e-9);
        assert_eq!(row.fp_rate(), 0.0);
    }

    #[test]
    fn two_class_logits_single_candidate() {
        let picks = bucket_targets(&[1.0, 2.0], 1);
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].1, 0);
    }
}
