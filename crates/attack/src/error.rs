//! Error types for attacks.

use core::fmt;

/// Errors from attack construction and optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// The logits node or target class is unusable.
    BadLogits(String),
    /// Underlying graph failure.
    Graph(String),
    /// Underlying bound-engine failure.
    Bound(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::BadLogits(m) => write!(f, "bad logits/target: {m}"),
            AttackError::Graph(m) => write!(f, "graph error: {m}"),
            AttackError::Bound(m) => write!(f, "bound error: {m}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<tao_graph::GraphError> for AttackError {
    fn from(e: tao_graph::GraphError) -> Self {
        AttackError::Graph(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AttackError::BadLogits("x".into()).to_string().contains("x"));
    }
}
