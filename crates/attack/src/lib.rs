//! # tao-attack
//!
//! Bound-aware adversarial attacks on the TAO admissible sets (§4): a
//! white-box proposer injects additive perturbations `Δ_v` at operator
//! outputs and optimizes the logit margin (Eq. 10) with PGD/Adam, while
//! projecting onto either the element-wise theoretical feasible set
//! (Eq. 11) or the empirical order-statistics feasible set (Eq. 12). The
//! crate also provides the §4.5 evaluation metrics (margin-percentile
//! bucketing, ASR, failed-attack progress).

pub mod adam;
pub mod error;
pub mod metrics;
pub mod pgd;

pub use adam::{AdamParams, AdamState};
pub use error::AttackError;
pub use metrics::{bucket_targets, AttackTableRow, BucketStats, BUCKETS};
pub use pgd::{
    run_attack, run_attack_with_deltas, AttackConfig, AttackOutcome, AttackProblem, AttackResult,
    ProjectionKind,
};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, AttackError>;
