//! Campaign results: per-claim outcomes, per-epoch aggregates, floor
//! assertions and the CSV epoch log.

use std::collections::BTreeMap;

use tao_protocol::{ClaimStatus, DisputeOutcome, Money, Party};

use crate::population::{Population, Role};

/// What happened to one claim of the campaign.
#[derive(Debug, Clone)]
pub struct ClaimOutcome {
    /// Epoch the claim was posted in.
    pub epoch: usize,
    /// Role of the posting operator.
    pub role: Role,
    /// Proposer account name.
    pub operator: String,
    /// Coordinator claim id.
    pub claim_id: u64,
    /// Screening exceedance against the *committed* bundle.
    pub exceedance: f64,
    /// Screening exceedance against the A/B shadow bundle (absent only
    /// when the session never screened).
    pub shadow_exceedance: Option<f64>,
    /// Whether a dispute was opened.
    pub challenged: bool,
    /// Final coordinator status.
    pub final_status: ClaimStatus,
    /// Dispute telemetry when one ran.
    pub dispute: Option<DisputeOutcome>,
}

impl ClaimOutcome {
    /// True when the claim settled for the challenger (a caught cheat).
    pub fn caught(&self) -> bool {
        matches!(
            self.final_status,
            ClaimStatus::Settled {
                winner: Party::Challenger
            }
        )
    }

    /// True when the claim survived for the proposer (finalized
    /// unchallenged, or settled in the proposer's favor).
    pub fn proposer_survived(&self) -> bool {
        matches!(
            self.final_status,
            ClaimStatus::Finalized
                | ClaimStatus::Settled {
                    winner: Party::Proposer
                }
        )
    }
}

/// Cumulative net profit per role at an epoch boundary: on-ledger wealth
/// (balance + escrow) minus funding minus modeled compute costs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoleNets {
    /// Honest claimants, summed.
    pub honest: f64,
    /// Evasion operators, summed.
    pub evasion: f64,
    /// Spam claimants, summed.
    pub spam: f64,
    /// Collusion pairs (proposer + partner), summed.
    pub collusion: f64,
    /// Griefers, summed.
    pub griefer: f64,
    /// Watchtower challengers, summed.
    pub watchtower: f64,
}

/// Per-epoch aggregates (each row of the CSV log).
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Claims posted this epoch.
    pub claims: usize,
    /// Planted cheats this epoch.
    pub planted: usize,
    /// Planted cheats settled for the challenger this epoch.
    pub caught: usize,
    /// Honest claims flagged by screening this epoch (floor: zero).
    pub false_flags: usize,
    /// Honest claims a griefer disputed this epoch.
    pub griefed: usize,
    /// Griefed claims that settled for the honest proposer.
    pub griefers_repelled: usize,
    /// Fraction of honest claims within tolerance under the raw max
    /// envelope.
    pub cov_raw: f64,
    /// Fraction of honest claims within tolerance under the smoothed-tail
    /// envelope (floor: never below `cov_raw`).
    pub cov_smoothed: f64,
    /// Cumulative per-role nets at this epoch boundary.
    pub nets: RoleNets,
    /// Absolute ledger-conservation error `|total_value - injected|` at
    /// the boundary, in micro-credits. The ledger is exact fixed-point,
    /// so the floor is **exactly zero** — no tolerance.
    pub conservation_err_units: i128,
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Master seed the run derived from.
    pub seed: u64,
    /// Scheduler worker threads used.
    pub workers: usize,
    /// Population fielded per epoch.
    pub population: Population,
    /// Label of the committed tail estimator.
    pub committed: String,
    /// Label of the A/B shadow estimator.
    pub shadow: String,
    /// Slash amount `s` the coordinator was configured with.
    pub slash: f64,
    /// PGD runs that found an admissible prediction flip (floor: zero).
    pub admissible_flips: usize,
    /// Per-epoch aggregates in epoch order.
    pub epochs: Vec<EpochStats>,
    /// Per-claim outcomes in submission order.
    pub outcomes: Vec<ClaimOutcome>,
    /// Final cumulative per-role nets.
    pub final_nets: RoleNets,
    /// Worst final net over individual honest operator accounts
    /// (0 when no honest operators were fielded).
    pub min_honest_operator_net: f64,
    /// Final wealth (balance + escrow) per account, exact.
    pub wealth: BTreeMap<String, Money>,
}

impl CampaignReport {
    /// Total planted cheats across the campaign.
    pub fn planted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.role.is_planted_cheat()).count()
    }

    /// Planted cheats settled for the challenger.
    pub fn caught(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.role.is_planted_cheat() && o.caught())
            .count()
    }

    /// Overall detection rate (1.0 when nothing was planted).
    pub fn detection_rate(&self) -> f64 {
        let planted = self.planted();
        if planted == 0 {
            1.0
        } else {
            self.caught() as f64 / planted as f64
        }
    }

    /// Honest claims flagged by screening across the campaign.
    pub fn false_flags(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.role == Role::Honest && o.exceedance > 1.0)
            .count()
    }

    /// Asserts the paper's security and economic floors, panicking with a
    /// claim-level diagnosis on the first violation:
    ///
    /// 1. every planted cheat settled for the challenger;
    /// 2. no honest claim was flagged by screening (zero false positives);
    /// 3. no honest proposer was ever slashed (griefed claims settle for
    ///    the proposer);
    /// 4. no PGD run found an admissible prediction flip;
    /// 5. every fielded honest operator ended with non-negative net;
    /// 6. every fielded adversary role ended strictly in the red;
    /// 7. smoothed-tail coverage never fell below raw-max coverage;
    /// 8. the ledger conserved value **exactly** at every epoch boundary
    ///    (zero micro-credits of drift — the fixed-point ledger admits no
    ///    tolerance).
    ///
    /// # Panics
    ///
    /// Panics when any floor is violated.
    pub fn assert_floors(&self) {
        for o in &self.outcomes {
            if o.role.is_planted_cheat() {
                assert!(
                    o.caught(),
                    "floor: planted {} cheat escaped — claim {} (epoch {}, {}) ended {:?}",
                    o.role,
                    o.claim_id,
                    o.epoch,
                    o.operator,
                    o.final_status
                );
            }
            if o.role == Role::Honest {
                assert!(
                    o.exceedance <= 1.0,
                    "floor: false flag — honest claim {} (epoch {}, {}) screened at exceedance {}",
                    o.claim_id,
                    o.epoch,
                    o.operator,
                    o.exceedance
                );
                assert!(
                    o.proposer_survived(),
                    "floor: honest proposer slashed — claim {} (epoch {}, {}) ended {:?}",
                    o.claim_id,
                    o.epoch,
                    o.operator,
                    o.final_status
                );
            }
        }
        assert_eq!(
            self.admissible_flips, 0,
            "floor: {} PGD runs found an admissible flip at the operating point",
            self.admissible_flips
        );
        let p = self.population;
        if p.honest > 0 {
            assert!(
                self.min_honest_operator_net >= -1e-9,
                "floor: an honest operator ended in the red (worst net {})",
                self.min_honest_operator_net
            );
        }
        let nets = self.final_nets;
        if p.evasion > 0 {
            assert!(nets.evasion < 0.0, "floor: evasion profitable ({})", nets.evasion);
        }
        if p.spam > 0 {
            assert!(nets.spam < 0.0, "floor: spam profitable ({})", nets.spam);
        }
        if p.collusion > 0 {
            assert!(
                nets.collusion < 0.0,
                "floor: collusion pairs profitable ({})",
                nets.collusion
            );
        }
        if p.griefers > 0 && p.honest > 0 {
            assert!(nets.griefer < 0.0, "floor: griefing profitable ({})", nets.griefer);
        }
        for e in &self.epochs {
            assert!(
                e.cov_smoothed >= e.cov_raw - 1e-12,
                "floor: smoothed-tail coverage regressed at epoch {} ({} < {})",
                e.epoch,
                e.cov_smoothed,
                e.cov_raw
            );
            assert_eq!(
                e.conservation_err_units, 0,
                "floor: ledger conservation violated at epoch {} ({} micro-credits of drift)",
                e.epoch, e.conservation_err_units
            );
        }
    }

    /// The epoch log as CSV, one row per epoch, with the raw/smoothed
    /// coverage A/B columns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "epoch,claims,planted,caught,detection_rate,false_flags,griefed,\
             griefers_repelled,cov_raw,cov_smoothed,honest_net,evasion_net,\
             spam_net,collusion_net,griefer_net,watchtower_net,conservation_err\n",
        );
        for e in &self.epochs {
            let rate = if e.planted == 0 {
                1.0
            } else {
                e.caught as f64 / e.planted as f64
            };
            out.push_str(&format!(
                "{},{},{},{},{:.6},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
                e.epoch,
                e.claims,
                e.planted,
                e.caught,
                rate,
                e.false_flags,
                e.griefed,
                e.griefers_repelled,
                e.cov_raw,
                e.cov_smoothed,
                e.nets.honest,
                e.nets.evasion,
                e.nets.spam,
                e.nets.collusion,
                e.nets.griefer,
                e.nets.watchtower,
                e.conservation_err_units,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(role: Role, status: ClaimStatus, exceedance: f64) -> ClaimOutcome {
        ClaimOutcome {
            epoch: 0,
            role,
            operator: format!("{role}-0"),
            claim_id: 0,
            exceedance,
            shadow_exceedance: Some(exceedance),
            challenged: role != Role::Honest,
            final_status: status,
            dispute: None,
        }
    }

    fn passing_report() -> CampaignReport {
        let caught = ClaimStatus::Settled {
            winner: Party::Challenger,
        };
        CampaignReport {
            seed: 1,
            workers: 2,
            population: Population {
                honest: 1,
                evasion: 1,
                spam: 0,
                collusion: 0,
                griefers: 0,
            },
            committed: "raw-max".into(),
            shadow: "smoothed-tail-k4".into(),
            slash: 100.0,
            admissible_flips: 0,
            epochs: vec![EpochStats {
                epoch: 0,
                claims: 2,
                planted: 1,
                caught: 1,
                false_flags: 0,
                griefed: 0,
                griefers_repelled: 0,
                cov_raw: 1.0,
                cov_smoothed: 1.0,
                nets: RoleNets {
                    honest: 5.0,
                    evasion: -110.0,
                    ..RoleNets::default()
                },
                conservation_err_units: 0,
            }],
            outcomes: vec![
                outcome(Role::Honest, ClaimStatus::Finalized, 0.4),
                outcome(Role::Evasion, caught, 24.0),
            ],
            final_nets: RoleNets {
                honest: 5.0,
                evasion: -110.0,
                ..RoleNets::default()
            },
            min_honest_operator_net: 5.0,
            wealth: BTreeMap::new(),
        }
    }

    #[test]
    fn passing_report_clears_floors_and_serializes() {
        let r = passing_report();
        r.assert_floors();
        assert_eq!(r.planted(), 1);
        assert_eq!(r.caught(), 1);
        assert_eq!(r.detection_rate(), 1.0);
        assert_eq!(r.false_flags(), 0);
        let csv = r.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("epoch,"));
        assert!(header.contains("cov_raw,cov_smoothed"));
        assert!(header.contains("conservation_err"));
        assert_eq!(lines.count(), r.epochs.len());
    }

    #[test]
    #[should_panic(expected = "planted evasion cheat escaped")]
    fn escaped_cheat_trips_the_floor() {
        let mut r = passing_report();
        r.outcomes[1].final_status = ClaimStatus::Finalized;
        r.assert_floors();
    }

    #[test]
    #[should_panic(expected = "false flag")]
    fn false_flag_trips_the_floor() {
        let mut r = passing_report();
        r.outcomes[0].exceedance = 1.5;
        r.assert_floors();
    }

    #[test]
    #[should_panic(expected = "coverage regressed")]
    fn coverage_regression_trips_the_floor() {
        let mut r = passing_report();
        r.epochs[0].cov_smoothed = 0.5;
        r.assert_floors();
    }
}
