//! # tao-campaign
//!
//! Adversarial-scale campaign harness: re-validates TAO's security and
//! economic claims under concurrent load by pushing mixed adversary
//! populations through the real scheduler and coordinator.
//!
//! A [`Campaign`] composes, per epoch, honest operators alongside four
//! adversary archetypes — PGD [evasion](population::Role::Evasion)
//! operators driving `tao-attack` against the committed thresholds,
//! [spam](population::Role::Spam) claimants posting garbage logits,
//! [colluding](population::Role::Collusion) proposer/challenger pairs
//! that abandon their own dispute, and stake-bleed
//! [griefers](population::Role::Griefer) disputing clean claims — and
//! drives every session through [`tao::Scheduler::run_with`] at the
//! configured worker count. Watchtower challengers screen claims and
//! adopt abandoned disputes.
//!
//! The resulting [`CampaignReport`] carries per-claim outcomes, a
//! per-epoch CSV log A/B-comparing the committed tail estimator against
//! its shadow (raw max vs smoothed tail), per-role profit-and-loss, and
//! [`CampaignReport::assert_floors`] — the paper's falsifiable floors:
//! every planted cheat caught, zero false flags, no honest slashing, no
//! admissible evasion flip, honest operators in the black and every
//! adversary role in the red, with ledger conservation at every epoch
//! boundary.
//!
//! ```
//! use tao_campaign::{Campaign, CampaignConfig};
//!
//! let report = Campaign::new(CampaignConfig::smoke(7)).run().unwrap();
//! report.assert_floors();
//! assert_eq!(report.detection_rate(), 1.0);
//! ```

pub mod config;
pub mod population;
pub mod report;
pub mod runner;

pub use config::CampaignConfig;
pub use population::{Population, Role};
pub use report::{CampaignReport, ClaimOutcome, EpochStats, RoleNets};
pub use runner::{campaign_model, Campaign, NUM_WATCHTOWERS};
