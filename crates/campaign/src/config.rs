//! Campaign configuration.

use tao::TaoError;
use tao_calib::TailEstimator;

use crate::population::Population;

/// Full configuration of one campaign run.
///
/// Everything downstream — input draws, device assignment, attack
/// trajectories, committee sortition — derives deterministically from
/// `seed`, so two runs with identical configs produce identical claim
/// statuses, dispute winners and (up to f64 summation order in parallel
/// settlement) final balances at any worker count.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every other random draw is derived from it.
    pub seed: u64,
    /// Number of campaign epochs (each claimant posts one claim per epoch).
    pub epochs: usize,
    /// Scheduler worker threads (the PR 4 knob; floors must hold up to 32).
    pub workers: usize,
    /// Adversary mix fielded each epoch.
    pub population: Population,
    /// Tail estimator for the *committed* threshold bundle. The other
    /// estimator becomes the A/B shadow bundle whose exceedances ride
    /// along in the epoch CSV.
    pub estimator: TailEstimator,
    /// Calibration samples for Phase 0 (the safe operating point is 48).
    pub calib_samples: usize,
    /// Safety factor α (the safe operating point is 5.0).
    pub alpha: f64,
    /// PGD iterations each evasion operator spends per epoch.
    pub attack_iters: usize,
    /// Factor evasion operators scale their (failed) admissible deltas by
    /// before submitting; must push exceedance well past 1.
    pub escalation: f64,
}

impl CampaignConfig {
    /// A full-size campaign at the safe operating point.
    pub fn new(seed: u64) -> Self {
        CampaignConfig {
            seed,
            epochs: 4,
            workers: 8,
            population: Population::standard(),
            estimator: TailEstimator::RawMax,
            calib_samples: 48,
            alpha: 5.0,
            attack_iters: 40,
            escalation: 24.0,
        }
    }

    /// The CI smoke configuration: small population, few epochs, still at
    /// the safe calibration operating point so the zero-false-flag floor
    /// stays assertable.
    pub fn smoke(seed: u64) -> Self {
        CampaignConfig {
            epochs: 2,
            population: Population::smoke(),
            attack_iters: 24,
            ..CampaignConfig::new(seed)
        }
    }

    /// The estimator the campaign A/Bs the committed bundle against:
    /// smoothed-tail when raw max is committed, and vice versa.
    pub fn shadow_estimator(&self) -> TailEstimator {
        match self.estimator {
            TailEstimator::RawMax => TailEstimator::smoothed_default(),
            TailEstimator::SmoothedTail { .. } => TailEstimator::RawMax,
        }
    }

    /// Validates the knobs a runner cannot tolerate being degenerate.
    ///
    /// # Errors
    ///
    /// Returns [`TaoError::Config`] on zero epochs/workers/claimants, a
    /// sub-unity escalation factor, or too few calibration samples.
    pub fn validate(&self) -> Result<(), TaoError> {
        if self.epochs == 0 {
            return Err(TaoError::Config("campaign needs at least one epoch".into()));
        }
        if self.workers == 0 {
            return Err(TaoError::Config("campaign needs at least one worker".into()));
        }
        if self.population.claimants() == 0 {
            return Err(TaoError::Config(
                "campaign population posts no claims".into(),
            ));
        }
        if self.escalation <= 1.0 {
            return Err(TaoError::Config(format!(
                "escalation {} must exceed 1 so planted evasion cheats are inadmissible",
                self.escalation
            )));
        }
        if self.calib_samples < 2 {
            return Err(TaoError::Config(
                "calibration needs at least two samples".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_shadow_flips() {
        let cfg = CampaignConfig::new(1);
        cfg.validate().unwrap();
        assert!(matches!(
            cfg.shadow_estimator(),
            TailEstimator::SmoothedTail { .. }
        ));
        let flipped = CampaignConfig {
            estimator: TailEstimator::smoothed_default(),
            ..cfg
        };
        assert!(matches!(flipped.shadow_estimator(), TailEstimator::RawMax));
        CampaignConfig::smoke(9).validate().unwrap();
    }

    #[test]
    fn degenerate_configs_rejected() {
        let ok = CampaignConfig::smoke(1);
        for bad in [
            CampaignConfig { epochs: 0, ..ok.clone() },
            CampaignConfig { workers: 0, ..ok.clone() },
            CampaignConfig {
                population: Population { honest: 0, evasion: 0, spam: 0, collusion: 0, griefers: 3 },
                ..ok.clone()
            },
            CampaignConfig { escalation: 1.0, ..ok.clone() },
            CampaignConfig { calib_samples: 1, ..ok },
        ] {
            assert!(bad.validate().is_err());
        }
    }
}
