//! The campaign runner: composes mixed adversary populations and drives
//! them through the concurrent scheduler against one shared deployment.
//!
//! Each epoch every claimant posts one claim. Honest operators run the
//! committed model faithfully; evasion operators spend a PGD budget
//! searching for an admissible prediction flip and submit the escalated
//! (inadmissible) perturbation when the search fails; spam claimants post
//! garbage logits; collusion pairs plant an interior perturbation, have
//! the partner self-challenge and abandon, and count on the dispute dying
//! with the deserter; griefers open disputes against flagless honest
//! claims. Two watchtowers screen everything else round-robin and adopt
//! abandoned disputes.
//!
//! All randomness — calibration inputs, per-epoch claim inputs, operator
//! hardware, sortition seeds — derives from [`CampaignConfig::seed`]
//! through a SplitMix64 finalizer and a per-epoch ChaCha8 stream drawn in
//! fixed operator order, so a campaign replays identically at any worker
//! count (the ledger is exact fixed-point [`tao_protocol::Money`], so
//! balances, statuses and winners all match bit-exactly).

use std::collections::{BTreeMap, HashMap};

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tao::{
    deploy_with, Deployment, ProposerBehavior, Result, Scheduler, SessionBuilder, SessionConfig,
    SharedCoordinator, TaoError,
};
use tao_attack::{run_attack_with_deltas, AttackConfig, AttackProblem, ProjectionKind};
use tao_calib::TailEstimator;
use tao_device::{Device, Fleet};
use tao_graph::{GraphBuilder, NodeId, OpKind, Perturbations};
use tao_models::Model;
use tao_protocol::{Coordinator, EconParams, Money};
use tao_tensor::Tensor;

use crate::config::CampaignConfig;
use crate::population::Role;
use crate::report::{CampaignReport, ClaimOutcome, EpochStats, RoleNets};

/// Honest challengers every campaign fields regardless of population.
pub const NUM_WATCHTOWERS: usize = 2;

/// Campaign model input width.
const IN_DIM: usize = 64;
/// Campaign model hidden width.
const HID_DIM: usize = 32;
/// Campaign model class count.
const CLASSES: usize = 8;

/// SplitMix64 finalizer over a salted seed: one full-avalanche step so
/// derived streams (inputs, devices, sortition) never correlate.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The small classifier campaigns verify: `x[1,64] → matmul → gelu →
/// matmul → softmax[1,8]`. Small enough that a 32-worker epoch with PGD
/// adversaries stays fast, deep enough that disputes genuinely localize.
/// The softmax head matters for the zero-false-flag floor: screening's
/// relative-error grid is heavy-tailed at raw logit zero-crossings,
/// whereas bounded class probabilities calibrate tightly (the same choice
/// the coverage operating-point suite validates).
///
/// # Errors
///
/// Returns an error when graph construction fails (it does not for these
/// fixed shapes).
pub fn campaign_model(seed: u64) -> Result<Model> {
    let mut b = GraphBuilder::new(1);
    let x = b.input(0, "x");
    let w1 = b.parameter(
        "w1",
        Tensor::<f32>::rand_uniform(&[IN_DIM, HID_DIM], -0.4, 0.4, mix(seed, 0xB001)),
    );
    let h = b.op("h", OpKind::MatMul, &[x, w1]);
    let a = b.op("a", OpKind::Gelu, &[h]);
    let w2 = b.parameter(
        "w2",
        Tensor::<f32>::rand_uniform(&[HID_DIM, CLASSES], -0.4, 0.4, mix(seed, 0xB002)),
    );
    let logits = b.op("logits", OpKind::MatMul, &[a, w2]);
    let probs = b.op("probs", OpKind::Softmax, &[logits]);
    let graph = b.finish(vec![probs])?;
    Ok(Model {
        name: "campaign-mlp".to_string(),
        graph,
        logits: probs,
        input_shapes: vec![vec![1, IN_DIM]],
    })
}

/// Account-level aggregation bucket (roles plus the watchtowers, which
/// are not a [`Role`] because they never post claims).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Group {
    Honest,
    Evasion,
    Spam,
    Collusion,
    Griefer,
    Watchtower,
}

/// One claim-posting operator of the roster.
struct Claimant {
    role: Role,
    account: String,
    device: Device,
}

/// The non-default move a session plays during the scheduler's resolve
/// phase.
#[derive(Debug, Clone, Copy)]
enum Move {
    /// Default: screen, dispute only when flagged.
    Screen,
    /// Griefer: screen (clean), then force a dispute anyway.
    Grief,
    /// Collusion: partner challenges and abandons; the indexed watchtower
    /// adopts.
    Collude { watchtower: usize },
}

/// A seed-deterministic adversarial campaign over one deployment.
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: CampaignConfig,
}

impl Campaign {
    /// Wraps a validated-on-run configuration.
    pub fn new(cfg: CampaignConfig) -> Self {
        Campaign { cfg }
    }

    /// The configuration this campaign runs.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Runs the full campaign and returns the report (floors are *not*
    /// asserted here — call [`CampaignReport::assert_floors`]).
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid config or when any protocol phase
    /// fails; adversarial moves played through the public session API are
    /// expected to *lose*, not to error.
    pub fn run(&self) -> Result<CampaignReport> {
        let cfg = &self.cfg;
        cfg.validate()?;
        let pop = cfg.population;

        // Phase 0: deploy under the committed estimator; derive the A/B
        // shadow bundle from the same calibration record.
        let fleet = Fleet::standard();
        let calib_inputs: Vec<Vec<Tensor<f32>>> = (0..cfg.calib_samples)
            .map(|i| {
                vec![Tensor::<f32>::rand_uniform(
                    &[1, IN_DIM],
                    -1.0,
                    1.0,
                    mix(cfg.seed, 0xCA11_B000 + i as u64),
                )]
            })
            .collect();
        let deployment = deploy_with(
            campaign_model(cfg.seed)?,
            fleet.clone(),
            &calib_inputs,
            cfg.alpha,
            cfg.estimator,
        )?;
        let logits_node = deployment.model.logits;
        let interior_node = deployment.model.graph.compute_nodes()[1];
        let shadow_bundle = deployment
            .calibration
            .clone()
            .into_thresholds_with(cfg.alpha, cfg.shadow_estimator());

        // Coordinator with default market economics and a mid-region slash.
        let econ = EconParams::default_market();
        let (lo, hi) = econ
            .feasible_slash_region()
            .ok_or_else(|| TaoError::Config("campaign economics infeasible".into()))?;
        let slash = (lo + hi) / 2.0;
        let coord = SharedCoordinator::new(Coordinator::new(econ, slash)?);

        // Roster: claimants in fixed order, then the challenger-side cast.
        let mut claimants = Vec::new();
        let mut dev_seed = 0u64;
        let mut next_device = || {
            dev_seed += 1;
            fleet.sample_device(mix(cfg.seed, 0xD0_0000 + dev_seed)).clone()
        };
        for i in 0..pop.honest {
            claimants.push(Claimant {
                role: Role::Honest,
                account: format!("honest-{i}"),
                device: next_device(),
            });
        }
        for i in 0..pop.evasion {
            claimants.push(Claimant {
                role: Role::Evasion,
                account: format!("evader-{i}"),
                device: next_device(),
            });
        }
        for i in 0..pop.spam {
            claimants.push(Claimant {
                role: Role::Spam,
                account: format!("spammer-{i}"),
                device: next_device(),
            });
        }
        for i in 0..pop.collusion {
            claimants.push(Claimant {
                role: Role::Collusion,
                account: format!("collusion-p-{i}"),
                device: next_device(),
            });
        }
        let partners: Vec<(String, Device)> = (0..pop.collusion)
            .map(|i| (format!("collusion-ch-{i}"), next_device()))
            .collect();
        let griefers: Vec<(String, Device)> = (0..pop.griefers)
            .map(|i| (format!("griefer-{i}"), next_device()))
            .collect();
        let watchtowers: Vec<(String, Device)> = (0..NUM_WATCHTOWERS)
            .map(|i| (format!("watchtower-{i}"), next_device()))
            .collect();

        // Fund everyone generously (profits are measured as deltas against
        // the recorded funding, so headroom does not distort the floors).
        // Funding math is exact Money derived from the coordinator's own
        // admission amounts.
        let amounts = coord.coordinator().amounts();
        let slash_m = coord.coordinator().slash_amount();
        let mut funded: HashMap<String, Money> = HashMap::new();
        let mut accounts: Vec<(String, Group)> = Vec::new();
        let claimant_fund = amounts.d_p * 2 + slash_m * cfg.epochs as u64 + Money::from(100);
        for c in &claimants {
            let group = match c.role {
                Role::Honest => Group::Honest,
                Role::Evasion => Group::Evasion,
                Role::Spam => Group::Spam,
                Role::Collusion => Group::Collusion,
                Role::Griefer => unreachable!("griefers never post claims"),
            };
            coord.coordinator().fund(&c.account, claimant_fund);
            funded.insert(c.account.clone(), claimant_fund);
            accounts.push((c.account.clone(), group));
        }
        let challenger_fund = amounts.d_ch * (cfg.epochs + 1) as u64 + Money::from(100);
        for (name, group) in partners
            .iter()
            .map(|(a, _)| (a, Group::Collusion))
            .chain(griefers.iter().map(|(a, _)| (a, Group::Griefer)))
        {
            coord.coordinator().fund(name, challenger_fund);
            funded.insert(name.clone(), challenger_fund);
            accounts.push((name.clone(), group));
        }
        let watchtower_fund =
            amounts.d_ch * ((pop.claimants() + 1) * cfg.epochs) as u64 + Money::from(100);
        for (name, _) in &watchtowers {
            coord.coordinator().fund(name, watchtower_fund);
            funded.insert(name.clone(), watchtower_fund);
            accounts.push((name.clone(), Group::Watchtower));
        }

        // Modeled off-ledger compute costs, accrued as moves are planned.
        let mut costs: HashMap<String, f64> = HashMap::new();
        let scheduler = Scheduler::with_threads(cfg.workers);
        let mut admissible_flips = 0usize;
        let mut outcomes: Vec<ClaimOutcome> = Vec::new();
        let mut epoch_stats: Vec<EpochStats> = Vec::new();

        for epoch in 0..cfg.epochs {
            let epoch_seed = mix(cfg.seed, 0xE70C_0000 + epoch as u64);
            let mut rng = ChaCha8Rng::seed_from_u64(epoch_seed);

            // Griefer targeting: rotate over honest operators, at most one
            // griefer per claim (a claim holds one challenge); surplus
            // griefers sit the epoch out.
            let mut griefed_by: Vec<Option<usize>> = vec![None; pop.honest];
            if pop.honest > 0 {
                for g in 0..pop.griefers {
                    let t = (g + epoch) % pop.honest;
                    if griefed_by[t].is_none() {
                        griefed_by[t] = Some(g);
                    }
                }
            }

            let mut builders = Vec::with_capacity(claimants.len());
            let mut moves: Vec<Move> = Vec::with_capacity(claimants.len());
            let mut wt_rr = 0usize;
            let mut honest_idx = 0usize;
            let mut collusion_idx = 0usize;
            for (ci, cl) in claimants.iter().enumerate() {
                // Inputs are drawn in fixed operator order from the epoch
                // stream, so the draw is independent of worker count.
                let inputs = vec![Tensor::<f32>::rand_uniform(
                    &[1, IN_DIM],
                    -1.0,
                    1.0,
                    rng.next_u64(),
                )];
                let behavior = match cl.role {
                    Role::Honest => {
                        *costs.entry(cl.account.clone()).or_default() += econ.c_p;
                        ProposerBehavior::Honest
                    }
                    Role::Evasion => {
                        *costs.entry(cl.account.clone()).or_default() += econ.c_p_targeted;
                        let (behavior, flipped) =
                            evasion_behavior(&deployment, &inputs, logits_node, cfg, epoch_seed)?;
                        admissible_flips += usize::from(flipped);
                        behavior
                    }
                    Role::Spam => {
                        *costs.entry(cl.account.clone()).or_default() += econ.c_p_cheap;
                        let mut p = Perturbations::new();
                        p.insert(
                            logits_node,
                            Tensor::<f32>::randn(&[1, CLASSES], rng.next_u64()).mul_scalar(0.5),
                        );
                        ProposerBehavior::Malicious(p)
                    }
                    Role::Collusion => {
                        *costs.entry(cl.account.clone()).or_default() += econ.c_p_cheap;
                        let mut p = Perturbations::new();
                        p.insert(
                            interior_node,
                            Tensor::<f32>::randn(&[1, HID_DIM], rng.next_u64()).mul_scalar(0.1),
                        );
                        ProposerBehavior::Malicious(p)
                    }
                    Role::Griefer => unreachable!("griefers never post claims"),
                };
                let (ch_account, ch_device, mv) = match cl.role {
                    Role::Honest => {
                        let h = honest_idx;
                        honest_idx += 1;
                        if let Some(g) = griefed_by[h] {
                            *costs.entry(griefers[g].0.clone()).or_default() += econ.c_ch;
                            (griefers[g].0.clone(), griefers[g].1.clone(), Move::Grief)
                        } else {
                            let w = wt_rr % NUM_WATCHTOWERS;
                            wt_rr += 1;
                            *costs.entry(watchtowers[w].0.clone()).or_default() += econ.c_ch;
                            (watchtowers[w].0.clone(), watchtowers[w].1.clone(), Move::Screen)
                        }
                    }
                    Role::Evasion | Role::Spam => {
                        let w = wt_rr % NUM_WATCHTOWERS;
                        wt_rr += 1;
                        *costs.entry(watchtowers[w].0.clone()).or_default() += econ.c_ch;
                        (watchtowers[w].0.clone(), watchtowers[w].1.clone(), Move::Screen)
                    }
                    Role::Collusion => {
                        let pi = collusion_idx;
                        collusion_idx += 1;
                        let w = wt_rr % NUM_WATCHTOWERS;
                        wt_rr += 1;
                        // The adopting watchtower re-screens the claim.
                        *costs.entry(watchtowers[w].0.clone()).or_default() += econ.c_ch;
                        (
                            partners[pi].0.clone(),
                            partners[pi].1.clone(),
                            Move::Collude { watchtower: w },
                        )
                    }
                    Role::Griefer => unreachable!("griefers never post claims"),
                };
                let session_cfg = SessionConfig {
                    proposer: cl.device.clone(),
                    challenger: ch_device,
                    proposer_account: cl.account.clone(),
                    challenger_account: ch_account,
                    seed: mix(epoch_seed, 0x5EED_0000 + ci as u64),
                    ..SessionConfig::default()
                };
                builders.push(
                    SessionBuilder::new(&deployment, inputs)
                        .config(session_cfg)
                        .behavior(behavior),
                );
                moves.push(mv);
            }

            // Drive the epoch through the real scheduler; the resolve hook
            // plays each session's move and computes the shadow-bundle
            // exceedance off the already-screened trace.
            let results = scheduler.run_with(&coord, builders, |idx, session, c| {
                match moves[idx] {
                    Move::Screen => {
                        if session.screen()? {
                            session.dispute(c)?;
                        }
                    }
                    Move::Grief => {
                        session.screen()?;
                        session.force_dispute(c)?;
                    }
                    Move::Collude { watchtower } => {
                        session.challenge_and_abandon(c)?;
                        let (account, device) = &watchtowers[watchtower];
                        session.adopt_dispute(c, account, device)?;
                    }
                }
                match session.screening() {
                    Some(s) => Ok(Some(s.exceedance_under(
                        &shadow_bundle,
                        logits_node,
                        session.output(),
                    )?)),
                    None => Ok(None),
                }
            })?;

            // Per-epoch aggregation.
            let mut planted = 0usize;
            let mut caught = 0usize;
            let mut false_flags = 0usize;
            let mut griefed = 0usize;
            let mut repelled = 0usize;
            let mut honest_claims = 0usize;
            let mut covered_committed = 0usize;
            let mut covered_shadow = 0usize;
            for ((report, shadow_exc), cl) in results.into_iter().zip(&claimants) {
                let outcome = ClaimOutcome {
                    epoch,
                    role: cl.role,
                    operator: cl.account.clone(),
                    claim_id: report.claim_id,
                    exceedance: report.exceedance,
                    shadow_exceedance: shadow_exc,
                    challenged: report.challenged,
                    final_status: report.final_status.clone(),
                    dispute: report.dispute,
                };
                if cl.role.is_planted_cheat() {
                    planted += 1;
                    caught += usize::from(outcome.caught());
                }
                if cl.role == Role::Honest {
                    honest_claims += 1;
                    false_flags += usize::from(outcome.exceedance > 1.0);
                    covered_committed += usize::from(outcome.exceedance <= 1.0);
                    covered_shadow +=
                        usize::from(outcome.shadow_exceedance.unwrap_or(f64::INFINITY) <= 1.0);
                    if outcome.challenged {
                        griefed += 1;
                        repelled += usize::from(outcome.proposer_survived());
                    }
                }
                outcomes.push(outcome);
            }
            let frac = |n: usize| {
                if honest_claims == 0 {
                    1.0
                } else {
                    n as f64 / honest_claims as f64
                }
            };
            let (cov_committed, cov_shadow) = (frac(covered_committed), frac(covered_shadow));
            let (cov_raw, cov_smoothed) = match cfg.estimator {
                TailEstimator::RawMax => (cov_committed, cov_shadow),
                TailEstimator::SmoothedTail { .. } => (cov_shadow, cov_committed),
            };
            let (nets, _) = nets_snapshot(&coord, &accounts, &funded, &costs);
            let ledger = coord.coordinator().ledger();
            let conservation_err_units =
                (ledger.total_value() - ledger.injected()).units().abs();
            epoch_stats.push(EpochStats {
                epoch,
                claims: claimants.len(),
                planted,
                caught,
                false_flags,
                griefed,
                griefers_repelled: repelled,
                cov_raw,
                cov_smoothed,
                nets,
                conservation_err_units,
            });
        }

        let (final_nets, min_honest) = nets_snapshot(&coord, &accounts, &funded, &costs);
        let wealth: BTreeMap<String, Money> = coord
            .coordinator()
            .ledger()
            .accounts()
            .into_iter()
            .map(|a| {
                let w = coord.balance(&a) + coord.coordinator().escrowed(&a);
                (a, w)
            })
            .collect();
        Ok(CampaignReport {
            seed: cfg.seed,
            workers: cfg.workers,
            population: pop,
            committed: cfg.estimator.label(),
            shadow: cfg.shadow_estimator().label(),
            slash,
            admissible_flips,
            epochs: epoch_stats,
            outcomes,
            final_nets,
            min_honest_operator_net: min_honest,
            wealth,
        })
    }
}

/// The evasion operator's move: PGD inside the committed tolerance; when
/// (as the paper predicts) no admissible flip exists, submit the deltas
/// escalated far past tolerance — a greedy operator cheats detectably
/// rather than not at all. Returns the behavior and whether the search
/// found an admissible flip.
fn evasion_behavior(
    deployment: &Deployment,
    inputs: &[Tensor<f32>],
    logits_node: NodeId,
    cfg: &CampaignConfig,
    epoch_seed: u64,
) -> Result<(ProposerBehavior, bool)> {
    let problem = AttackProblem {
        graph: &deployment.model.graph,
        inputs,
        logits_node,
        thresholds: &deployment.thresholds,
    };
    let logits = problem.honest_logits()?;
    let c1 = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    let target = (c1 + 1) % logits.len();
    let attack_cfg = AttackConfig {
        max_iters: cfg.attack_iters,
        ..AttackConfig::paper_default(ProjectionKind::Empirical, 1.0)
    };
    let outcome = run_attack_with_deltas(&problem, target, &attack_cfg)?;
    let mut deltas: Perturbations = outcome
        .deltas
        .iter()
        .map(|(node, t)| (*node, t.mul_scalar(cfg.escalation as f32)))
        .collect();
    // Degenerate searches can park at (near-)zero deltas; those escalate
    // to nothing, so fall back to an unmistakably inadmissible logit shift.
    if deltas.values().all(|t| t.max_abs() < 1e-9) {
        deltas.insert(
            logits_node,
            Tensor::<f32>::randn(&[1, CLASSES], mix(epoch_seed, 0xFA11_BACC)).mul_scalar(0.5),
        );
    }
    Ok((ProposerBehavior::Malicious(deltas), outcome.result.success))
}

/// Cumulative per-group nets (wealth minus funding minus modeled costs)
/// and the worst individual honest-operator net. The on-ledger part
/// (wealth − funding) is computed exactly in Money before the modeled
/// f64 compute costs — an analysis quantity, not ledger state — are
/// subtracted.
fn nets_snapshot(
    coord: &SharedCoordinator,
    accounts: &[(String, Group)],
    funded: &HashMap<String, Money>,
    costs: &HashMap<String, f64>,
) -> (RoleNets, f64) {
    let mut nets = RoleNets::default();
    let mut min_honest = f64::INFINITY;
    for (account, group) in accounts {
        let wealth = coord.balance(account) + coord.coordinator().escrowed(account);
        let on_ledger = wealth - funded.get(account).copied().unwrap_or(Money::ZERO);
        let net = on_ledger.to_f64() - costs.get(account).copied().unwrap_or(0.0);
        match group {
            Group::Honest => {
                nets.honest += net;
                min_honest = min_honest.min(net);
            }
            Group::Evasion => nets.evasion += net,
            Group::Spam => nets.spam += net,
            Group::Collusion => nets.collusion += net,
            Group::Griefer => nets.griefer += net,
            Group::Watchtower => nets.watchtower += net,
        }
    }
    if min_honest.is_infinite() {
        min_honest = 0.0;
    }
    (nets, min_honest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use tao_protocol::ClaimStatus;

    #[test]
    fn campaign_model_shapes() {
        let m = campaign_model(1).unwrap();
        assert_eq!(m.graph.compute_nodes().len(), 4);
        assert_eq!(m.input_shapes, vec![vec![1, 64]]);
        // Same seed, same weights; different seed, different weights.
        let m2 = campaign_model(1).unwrap();
        assert_eq!(
            m.graph.param("w1").unwrap().data(),
            m2.graph.param("w1").unwrap().data()
        );
        let m3 = campaign_model(2).unwrap();
        assert_ne!(
            m.graph.param("w1").unwrap().data(),
            m3.graph.param("w1").unwrap().data()
        );
    }

    #[test]
    fn mix_avalanches() {
        assert_ne!(mix(1, 0), mix(1, 1));
        assert_ne!(mix(1, 0), mix(2, 0));
        assert_eq!(mix(7, 9), mix(7, 9));
    }

    #[test]
    fn smoke_campaign_clears_every_floor() {
        let campaign = Campaign::new(CampaignConfig::smoke(42));
        let report = campaign.run().unwrap();
        report.assert_floors();
        let pop = report.population;
        assert_eq!(report.outcomes.len(), pop.claimants() * 2);
        assert_eq!(report.planted(), pop.planted() * 2);
        assert_eq!(report.detection_rate(), 1.0);
        assert_eq!(report.false_flags(), 0);
        // Every epoch actually griefed someone and repelled them.
        for e in &report.epochs {
            assert_eq!(e.griefed, 1);
            assert_eq!(e.griefers_repelled, 1);
        }
        // Honest claims finalize or beat the griefer; cheats all settle
        // for the challenger.
        for o in &report.outcomes {
            if o.role.is_planted_cheat() {
                assert!(matches!(o.final_status, ClaimStatus::Settled { .. }));
                let d = o.dispute.as_ref().expect("cheats are disputed");
                assert_eq!(d.rehashed_leaves, 0);
                assert_eq!(d.challenger_forward_passes, 0);
            }
        }
        // The CSV epoch log has one row per epoch plus a header.
        assert_eq!(report.to_csv().lines().count(), report.epochs.len() + 1);
    }
}
