//! Adversary roles and population mixes.

use core::fmt;

/// The behavioral role an account plays inside a campaign.
///
/// Claimant roles (everything except [`Role::Griefer`]) post one claim per
/// epoch; griefers never post claims — they open disputes against honest
/// operators' clean claims hoping to bleed deposits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Runs the committed model faithfully and collects rewards.
    Honest,
    /// Drives projected PGD against the committed thresholds looking for
    /// an admissible prediction flip; failing that, submits the escalated
    /// (inadmissible) perturbation anyway.
    Evasion,
    /// Skips the computation and posts garbage logits (the paper's
    /// "cheap cheating" strategy).
    Spam,
    /// Posts a perturbed interior activation while a colluding partner
    /// self-challenges and abandons the dispute, hoping it dies with the
    /// deserting challenger.
    Collusion,
    /// Opens disputes against flagless honest claims (stake-bleed
    /// griefing).
    Griefer,
}

impl Role {
    /// True for roles whose claims are planted cheats (must all be
    /// caught for the detection floor to hold).
    pub fn is_planted_cheat(self) -> bool {
        matches!(self, Role::Evasion | Role::Spam | Role::Collusion)
    }

    /// Stable lowercase label used in account names and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            Role::Honest => "honest",
            Role::Evasion => "evasion",
            Role::Spam => "spam",
            Role::Collusion => "collusion",
            Role::Griefer => "griefer",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How many operators of each role a campaign fields per epoch.
///
/// Every collusion entry is a *pair* of accounts (proposer + deserting
/// partner); watchtowers are implicit — campaigns always run
/// [`crate::runner::NUM_WATCHTOWERS`] honest challengers that screen
/// claims and adopt abandoned disputes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Population {
    /// Honest operators.
    pub honest: usize,
    /// PGD evasion operators.
    pub evasion: usize,
    /// Garbage-logit spam claimants.
    pub spam: usize,
    /// Colluding proposer/challenger pairs.
    pub collusion: usize,
    /// Stake-bleed griefers (challenger-side only).
    pub griefers: usize,
}

impl Population {
    /// The small CI mix: enough of every role to exercise each code path
    /// while keeping a smoke run fast.
    pub fn smoke() -> Self {
        Population {
            honest: 3,
            evasion: 1,
            spam: 1,
            collusion: 1,
            griefers: 1,
        }
    }

    /// The default load mix used by the `campaign` bench bin.
    pub fn standard() -> Self {
        Population {
            honest: 8,
            evasion: 2,
            spam: 2,
            collusion: 2,
            griefers: 2,
        }
    }

    /// Number of claims posted per epoch (griefers post none).
    pub fn claimants(&self) -> usize {
        self.honest + self.evasion + self.spam + self.collusion
    }

    /// Number of planted cheats per epoch.
    pub fn planted(&self) -> usize {
        self.evasion + self.spam + self.collusion
    }

    /// Total adversarial accounts (collusion counts the pair).
    pub fn adversaries(&self) -> usize {
        self.evasion + self.spam + 2 * self.collusion + self.griefers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_up() {
        let p = Population::standard();
        assert_eq!(p.claimants(), 14);
        assert_eq!(p.planted(), 6);
        assert_eq!(p.adversaries(), 10);
        let s = Population::smoke();
        assert_eq!(s.claimants(), 6);
        assert_eq!(s.planted(), 3);
    }

    #[test]
    fn planted_cheat_roles() {
        assert!(Role::Evasion.is_planted_cheat());
        assert!(Role::Spam.is_planted_cheat());
        assert!(Role::Collusion.is_planted_cheat());
        assert!(!Role::Honest.is_planted_cheat());
        assert!(!Role::Griefer.is_planted_cheat());
        assert_eq!(Role::Griefer.to_string(), "griefer");
    }
}
