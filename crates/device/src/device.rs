//! Named simulated accelerator profiles.

use tao_tensor::{AccumMode, KernelConfig, MathLib};

/// Broad device family, used in commitments' `meta` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Consumer / workstation class (RTX-like).
    Consumer,
    /// Datacenter class (A100/H100-like).
    Datacenter,
    /// Canonical reference executor used for leaf re-execution.
    Reference,
}

/// A simulated accelerator: a name plus the kernel configuration describing
/// how its kernels round.
///
/// Profiles mirror the paper's calibration fleet. Each differs from the
/// others in at least one of: reduction order (thread-sequential vs. warp
/// pairwise tree vs. block-tiled), FMA contraction, and intrinsic family.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    class: DeviceClass,
    config: KernelConfig,
    /// When true, autotuning-style kernel re-selection is disabled and the
    /// device always uses `config` verbatim (the paper's "software
    /// determinism" flags). When false, [`Device::config_for_size`] may
    /// legally pick a different tile size per problem size, modeling
    /// autotuned kernel selection.
    deterministic: bool,
}

impl Device {
    /// Creates a custom device profile.
    pub fn new(name: impl Into<String>, class: DeviceClass, config: KernelConfig) -> Self {
        Device {
            name: name.into(),
            class,
            config,
            deterministic: true,
        }
    }

    /// Canonical reference device (sequential, no FMA, reference libm).
    ///
    /// Leaf adjudication and theoretical-bound checks re-execute here.
    pub fn reference() -> Self {
        Device {
            name: "reference".into(),
            class: DeviceClass::Reference,
            config: KernelConfig::reference(),
            deterministic: true,
        }
    }

    /// RTX 4090-like profile: blocked reductions with small tiles, FMA on,
    /// Cephes-style fast intrinsics.
    pub fn rtx4090_like() -> Self {
        Device {
            name: "sim-rtx4090".into(),
            class: DeviceClass::Consumer,
            config: KernelConfig {
                accum: AccumMode::Blocked(32),
                fma: true,
                math: MathLib::VariantA,
            },
            deterministic: true,
        }
    }

    /// RTX 6000-like profile: blocked reductions with larger tiles, FMA on,
    /// base-2 intrinsic family.
    pub fn rtx6000_like() -> Self {
        Device {
            name: "sim-rtx6000".into(),
            class: DeviceClass::Consumer,
            config: KernelConfig {
                accum: AccumMode::Blocked(64),
                fma: true,
                math: MathLib::VariantB,
            },
            deterministic: true,
        }
    }

    /// A100-like profile: pairwise (warp-tree) reductions, FMA on,
    /// Cephes-style intrinsics.
    pub fn a100_like() -> Self {
        Device {
            name: "sim-a100".into(),
            class: DeviceClass::Datacenter,
            config: KernelConfig {
                accum: AccumMode::Pairwise,
                fma: true,
                math: MathLib::VariantA,
            },
            deterministic: true,
        }
    }

    /// H100-like profile: pairwise reductions, FMA on, base-2 intrinsics.
    pub fn h100_like() -> Self {
        Device {
            name: "sim-h100".into(),
            class: DeviceClass::Datacenter,
            config: KernelConfig {
                accum: AccumMode::Pairwise,
                fma: true,
                math: MathLib::VariantB,
            },
            deterministic: true,
        }
    }

    /// The paper's four-GPU calibration fleet.
    pub fn standard_fleet() -> Vec<Device> {
        vec![
            Self::rtx4090_like(),
            Self::rtx6000_like(),
            Self::a100_like(),
            Self::h100_like(),
        ]
    }

    /// Device name (e.g. `"sim-a100"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// The kernel configuration in deterministic mode.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Whether software-determinism flags are set (see struct docs).
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    /// Returns a copy with software-determinism flags cleared.
    pub fn with_autotune(mut self) -> Self {
        self.deterministic = false;
        self
    }

    /// Returns a copy with software-determinism flags set.
    pub fn with_determinism(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Kernel configuration for a given reduction length.
    ///
    /// In deterministic mode this is always [`Device::config`]. With
    /// autotuning enabled, blocked kernels re-tile by problem size — the
    /// same run-to-run schedule variability the paper's determinism flags
    /// suppress (at a measured ~0.3% latency cost, reproduced by the
    /// `overhead_determinism` bench).
    pub fn config_for_size(&self, reduction_len: usize) -> KernelConfig {
        if self.deterministic {
            return self.config.clone();
        }
        let accum = match self.config.accum {
            AccumMode::Blocked(_) => {
                // Autotuner heuristic: tile grows with problem size.
                let tile = match reduction_len {
                    0..=128 => 16,
                    129..=1024 => 64,
                    _ => 256,
                };
                AccumMode::Blocked(tile)
            }
            other => other,
        };
        KernelConfig {
            accum,
            ..self.config.clone()
        }
    }

    /// Simulated per-dot-product latency cost in arbitrary units; the
    /// deterministic path adds a small constant for the disabled-autotuner
    /// penalty. Used only by the overhead bench.
    pub fn latency_model(&self, flops: u64) -> f64 {
        let base = flops as f64;
        if self.deterministic {
            base * 1.003
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_tensor::Tensor;

    #[test]
    fn fleet_has_four_distinct_devices() {
        let fleet = Device::standard_fleet();
        assert_eq!(fleet.len(), 4);
        for i in 0..fleet.len() {
            for j in i + 1..fleet.len() {
                assert_ne!(fleet[i].name(), fleet[j].name());
                assert_ne!(fleet[i].config(), fleet[j].config(), "{} vs {}", i, j);
            }
        }
    }

    #[test]
    fn devices_produce_different_bits_on_reductions() {
        let x = Tensor::<f32>::rand_uniform(&[4096], -1e3, 1e3, 42);
        let fleet = Device::standard_fleet();
        let sums: Vec<u32> = fleet
            .iter()
            .map(|d| x.sum_all(d.config()).to_bits())
            .collect();
        // At least two devices must disagree in the last bits.
        assert!(sums.windows(2).any(|w| w[0] != w[1]), "sums {sums:?}");
    }

    #[test]
    fn devices_agree_within_tolerance() {
        let x = Tensor::<f32>::rand_uniform(&[4096], -1.0, 1.0, 7);
        let reference: f64 = x.data().iter().map(|&v| v as f64).sum();
        for d in Device::standard_fleet() {
            let got = x.sum_all(d.config()) as f64;
            assert!(
                (got - reference).abs() < 1e-2,
                "{}: {got} vs {reference}",
                d.name()
            );
        }
    }

    #[test]
    fn reference_is_sequential_no_fma() {
        let r = Device::reference();
        assert_eq!(r.config(), &KernelConfig::reference());
        assert_eq!(r.class(), DeviceClass::Reference);
    }

    #[test]
    fn autotune_changes_tile_by_size() {
        let d = Device::rtx4090_like().with_autotune();
        assert!(!d.is_deterministic());
        let small = d.config_for_size(64);
        let big = d.config_for_size(1 << 20);
        assert_ne!(small.accum, big.accum);
        let det = d.with_determinism();
        assert_eq!(det.config_for_size(64), det.config_for_size(1 << 20));
    }

    #[test]
    fn autotune_does_not_retile_pairwise_devices() {
        let d = Device::a100_like().with_autotune();
        assert_eq!(d.config_for_size(10).accum, AccumMode::Pairwise);
    }

    #[test]
    fn determinism_latency_overhead_is_small() {
        let d = Device::h100_like();
        let det = d.latency_model(1_000_000);
        let free = d.clone().with_autotune().latency_model(1_000_000);
        let overhead = det / free - 1.0;
        assert!(overhead > 0.0 && overhead < 0.01, "overhead {overhead}");
    }
}
